//! Integration: the architecture-extraction adversary, checked through
//! the public facade.
//!
//! The contracts under test (DESIGN.md §15):
//!
//! 1. **Recovery floor** — on the unprotected default platform the
//!    extractor recovers the victim's depth exactly and its per-layer
//!    kinds with ≥ 90% precision at the default sample count.
//! 2. **Countermeasures degrade recovery** — at least two
//!    [`Countermeasure`] arms score strictly below the unprotected arm.
//! 3. **Deterministic fan-out** — the outcome (struct, JSON, rendered
//!    table) is byte-identical on one worker and four.
//! 4. **Resume from cache** — a warm campaign against the same cache
//!    directory enters no `extract.train`/`extract.collect` span and
//!    reproduces the cold outcome, modulo the cache-hit markers.
//!
//! The recorder is process-global, so the test that installs one holds
//! [`INSTALL_LOCK`] for its whole body.

use scnn::cache::ArtifactCache;
use scnn::core::extract::{run_extract, ExtractOutcome};
use scnn::core::pipeline::{DatasetKind, ExperimentConfig};
use scnn::core::ToJson;
use scnn::obs::Recorder;
use scnn::par::Threads;
use std::sync::{Arc, Mutex};

static INSTALL_LOCK: Mutex<()> = Mutex::new(());

fn config() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::quick(DatasetKind::Mnist)
        .samples(8)
        .epochs(1);
    cfg.train_per_class = 6;
    cfg.test_per_class = 3;
    cfg
}

fn scratch(tag: &str) -> (std::path::PathBuf, ArtifactCache) {
    let dir = std::env::temp_dir().join(format!("scnn-it-extract-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cache = ArtifactCache::open(&dir).unwrap();
    (dir, cache)
}

#[test]
fn extraction_pins_the_architecture_and_degrades_under_countermeasures() {
    let cfg = config();
    let one = run_extract(&cfg, 0.75, 20_000, Threads::Count(1), None).unwrap();
    let four = run_extract(&cfg, 0.75, 20_000, Threads::Count(4), None).unwrap();
    assert_eq!(one, four, "worker count must not affect the outcome");
    assert_eq!(
        one.to_json(),
        four.to_json(),
        "and the serialized outcome is byte-identical"
    );
    assert_eq!(
        one.render_table(),
        four.render_table(),
        "and so is the rendered table"
    );

    let unprotected = &one.rows[0];
    assert_eq!(unprotected.arm, "unprotected");
    assert_eq!(
        unprotected.score.depth_recovered,
        one.truth.len(),
        "recovered: {}",
        unprotected.hypothesis.render()
    );
    assert!(
        unprotected.score.kind_precision >= 0.9,
        "unprotected kind precision {} below the 0.9 floor; recovered: {}",
        unprotected.score.kind_precision,
        unprotected.hypothesis.render()
    );
    assert!(
        unprotected.score.dim_accuracy >= 0.9,
        "unprotected dim accuracy {} below the 0.9 floor",
        unprotected.score.dim_accuracy
    );

    let degraded = one
        .rows
        .iter()
        .skip(1)
        .filter(|r| r.score.overall < unprotected.score.overall)
        .count();
    assert!(
        degraded >= 2,
        "at least two countermeasure arms must degrade recovery: {}",
        one.render_table()
    );

    // The sample-count curve is monotone in coverage: the full-corpus
    // point can only improve on (or match) the single-trace point.
    assert!(one.curve.len() >= 2, "curve needs at least two points");
    let first = one.curve.first().unwrap();
    let last = one.curve.last().unwrap();
    assert_eq!(first.samples, 1);
    assert!(last.samples > first.samples);
    assert!(last.overall >= first.overall - 1e-12);
}

#[test]
fn warm_extraction_resumes_from_cache_without_retracing() {
    let _guard = INSTALL_LOCK.lock().unwrap();
    let (dir, cache) = scratch("warm");
    let cfg = config();

    let cold = run_extract(&cfg, 0.75, 20_000, Threads::Count(2), Some(&cache)).unwrap();
    assert!(
        cold.rows.iter().all(|r| !r.trace_cache_hit),
        "cold run measures every arm"
    );

    let recorder = Arc::new(Recorder::new());
    scnn::obs::install(recorder.clone());
    let warm = run_extract(&cfg, 0.75, 20_000, Threads::Count(2), Some(&cache)).unwrap();
    scnn::obs::uninstall();
    let snapshot = recorder.snapshot();

    assert!(
        warm.rows.iter().all(|r| r.trace_cache_hit),
        "warm run restores every arm's trace corpus"
    );
    assert_eq!(
        strip_cache(&cold),
        strip_cache(&warm),
        "verdicts identical modulo cache-hit markers"
    );
    assert_eq!(
        cold.render_table(),
        warm.render_table(),
        "rendered tables byte-identical"
    );
    let names: Vec<&str> = snapshot.spans.iter().map(|s| s.name).collect();
    assert!(
        !names.contains(&"extract.train"),
        "warm campaign must not retrain, got spans {names:?}"
    );
    assert!(
        !names.contains(&"extract.collect"),
        "warm campaign must not re-trace, got spans {names:?}"
    );
    assert!(
        names.contains(&"extract.arm"),
        "per-arm spans are always present"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// The verdict parts of an outcome, with cache-hit markers zeroed —
/// cold and warm runs legitimately differ there and nowhere else.
fn strip_cache(outcome: &ExtractOutcome) -> ExtractOutcome {
    let mut out = outcome.clone();
    for row in &mut out.rows {
        row.trace_cache_hit = false;
    }
    out
}
