//! Cross-crate consistency: the instrumented execution path must compute
//! exactly the reference numbers while driving the full simulator, and
//! the counter model must keep its internal identities.

use scnn::data::mnist_synth::{generate, MnistSynthConfig};
use scnn::hpc::{CounterGroup, HpcEvent, Pmu, SimPmuConfig, SimulatedPmu};
use scnn::nn::models;
use scnn::uarch::{CoreConfig, CoreSim, NoiseConfig, Probe};

fn dataset() -> scnn::data::Dataset {
    generate(
        &MnistSynthConfig {
            per_class: 3,
            side: 12,
            ..MnistSynthConfig::default()
        },
        77,
    )
    .unwrap()
}

#[test]
fn traced_inference_equals_reference_through_core_sim() {
    let mut net = models::small_cnn(1, 12, 10, 5);
    let mut core = CoreSim::new(CoreConfig::tiny()).unwrap();
    for (image, _) in dataset().iter() {
        let reference = {
            // The reference path needs &mut for cache bookkeeping.
            net.infer(image).unwrap()
        };
        let traced = net.infer_traced(image, &mut core).unwrap();
        assert_eq!(traced, reference, "simulation must not perturb semantics");
    }
    let snap = core.snapshot();
    assert!(snap.instructions > 0);
    assert_eq!(
        snap.instructions,
        snap.loads + snap.stores + snap.branches + snap_alu(&snap),
        "instruction identity"
    );
}

fn snap_alu(snap: &scnn::uarch::CounterSnapshot) -> u64 {
    snap.instructions - snap.loads - snap.stores - snap.branches
}

#[test]
fn counter_identities_hold_under_measurement() {
    let mut pmu = SimulatedPmu::new(
        SimPmuConfig {
            core: CoreConfig::tiny(),
            noise: NoiseConfig::quiet(),
            ..SimPmuConfig::default()
        },
        9,
    )
    .unwrap();
    let events = vec![
        HpcEvent::Instructions,
        HpcEvent::Cycles,
        HpcEvent::RefCycles,
        HpcEvent::BusCycles,
        HpcEvent::CacheReferences,
        HpcEvent::CacheMisses,
        HpcEvent::Branches,
        HpcEvent::BranchMisses,
    ];
    let group = CounterGroup::new(events, 8).unwrap();
    let net = models::small_cnn(1, 12, 10, 5);
    let ds = dataset();
    let (image, _) = ds.get(0).unwrap();
    let m = pmu
        .measure(&group, &mut |probe: &mut dyn Probe| {
            let _ = net.classify_traced(image, probe);
        })
        .unwrap();

    let v = |e| m.value(e).unwrap();
    // The orderings the paper's Figure 2(b) exhibits.
    assert!(v(HpcEvent::Instructions) > v(HpcEvent::Branches));
    assert!(v(HpcEvent::Cycles) > v(HpcEvent::RefCycles));
    assert!(v(HpcEvent::RefCycles) > v(HpcEvent::BusCycles));
    assert!(v(HpcEvent::CacheReferences) >= v(HpcEvent::CacheMisses));
    assert!(v(HpcEvent::Branches) > v(HpcEvent::BranchMisses));
}

#[test]
fn countermeasure_switch_keeps_model_semantics_under_trace() {
    let mut net = models::small_cnn(1, 12, 10, 5);
    let ds = dataset();
    let (image, _) = ds.get(4).unwrap();
    let before = net.infer(image).unwrap();
    net.set_constant_time(true);
    let mut core = CoreSim::new(CoreConfig::tiny()).unwrap();
    let after = net.infer_traced(image, &mut core).unwrap();
    assert_eq!(before, after);
}

#[test]
fn full_fig2b_group_fits_without_multiplexing() {
    let group = CounterGroup::new(HpcEvent::FIG2B.to_vec(), 8).unwrap();
    assert!(!group.is_multiplexed());
    let mut pmu = SimulatedPmu::new(SimPmuConfig::default(), 3).unwrap();
    let m = pmu
        .measure(&group, &mut |p: &mut dyn Probe| p.alu(100))
        .unwrap();
    assert!(m.readings.iter().all(|r| !r.was_multiplexed()));
}

#[test]
fn serialized_model_reproduces_observations() {
    use scnn::core::collect::{collect, CollectionConfig};
    use scnn::hpc::{SimPmuConfig, SimulatedPmu};
    use scnn::nn::Network;

    let ds = dataset().select_classes(&[0, 1]);
    let mut net = models::small_cnn(1, 12, 10, 5);
    let config = CollectionConfig {
        samples_per_category: 4,
        ..CollectionConfig::default()
    };
    let pmu_config = SimPmuConfig {
        core: CoreConfig::tiny(),
        noise: NoiseConfig::quiet(),
        ..SimPmuConfig::default()
    };

    let mut pmu = SimulatedPmu::new(pmu_config, 3).unwrap();
    let original = collect(&mut net, &ds, &mut pmu, &config).unwrap();

    // Round-trip the trained model through the binary format; the leak
    // profile must be identical.
    let mut restored = Network::from_bytes(&net.to_bytes()).unwrap();
    let mut pmu = SimulatedPmu::new(pmu_config, 3).unwrap();
    let replayed = collect(&mut restored, &ds, &mut pmu, &config).unwrap();
    assert_eq!(original, replayed);
}

#[test]
fn warm_attach_hides_footprint_but_not_work() {
    use scnn::core::collect::{collect, CollectionConfig};
    use scnn::hpc::{SimPmuConfig, SimulatedPmu, WarmupPolicy};
    use scnn::stats::Summary;

    let ds = dataset().select_classes(&[0, 1]);
    let mut net = models::small_cnn(1, 12, 10, 5);
    let config = CollectionConfig {
        events: vec![HpcEvent::CacheMisses, HpcEvent::Instructions],
        samples_per_category: 6,
        ..CollectionConfig::default()
    };
    let run = |net: &mut scnn::nn::Network, warmup| {
        let mut pmu = SimulatedPmu::new(
            SimPmuConfig {
                core: CoreConfig::tiny(),
                noise: NoiseConfig::quiet(),
                warmup,
                ..SimPmuConfig::default()
            },
            3,
        )
        .unwrap();
        collect(net, &ds, &mut pmu, &config).unwrap()
    };
    let cold = run(&mut net, WarmupPolicy::ColdStart);
    let warm = run(&mut net, WarmupPolicy::Warm);

    let mean = |obs: &[scnn::core::CategoryObservations], event| {
        obs.iter()
            .map(|o| {
                o.series(event)
                    .unwrap()
                    .iter()
                    .copied()
                    .collect::<Summary>()
                    .mean()
            })
            .sum::<f64>()
    };
    // Warm caches absorb most cold misses…
    assert!(
        mean(&warm, HpcEvent::CacheMisses) < mean(&cold, HpcEvent::CacheMisses) / 2.0,
        "warm {} vs cold {}",
        mean(&warm, HpcEvent::CacheMisses),
        mean(&cold, HpcEvent::CacheMisses)
    );
    // …but the retired work is identical either way.
    assert_eq!(
        mean(&warm, HpcEvent::Instructions),
        mean(&cold, HpcEvent::Instructions)
    );
}
