//! Integration: countermeasures reduce what the evaluator and the
//! attacker can see.

use scnn::core::attack::AttackConfig;
use scnn::core::countermeasure::Countermeasure;
use scnn::core::pipeline::{DatasetKind, Experiment, ExperimentConfig};
use scnn::hpc::HpcEvent;
use scnn::uarch::{CoreConfig, NoiseConfig};

fn fast() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::quick(DatasetKind::Mnist)
        .samples(10)
        .epochs(2);
    cfg.train_per_class = 8;
    cfg.test_per_class = 4;
    cfg.pmu.core = CoreConfig::tiny();
    cfg.pmu.noise = NoiseConfig::quiet();
    cfg
}

#[test]
fn constant_time_removes_cache_miss_leak() {
    let leaky = Experiment::new(fast()).run().unwrap();
    let protected = Experiment::new(fast().with_countermeasure(Countermeasure::ConstantTime))
        .run()
        .unwrap();

    let pairs = |outcome: &scnn::core::ExperimentOutcome, event| {
        outcome
            .report
            .event(event)
            .map(|e| e.pairwise.leak_count())
            .unwrap_or(0)
    };
    let leaky_cm = pairs(&leaky, HpcEvent::CacheMisses);
    let protected_cm = pairs(&protected, HpcEvent::CacheMisses);
    assert!(
        leaky_cm > 0,
        "baseline must leak for the test to mean anything"
    );
    assert_eq!(
        protected_cm, 0,
        "under a quiet system, constant-footprint kernels leave nothing to test"
    );
}

#[test]
fn constant_time_keeps_accuracy() {
    let leaky = Experiment::new(fast()).run().unwrap();
    let protected = Experiment::new(fast().with_countermeasure(Countermeasure::ConstantTime))
        .run()
        .unwrap();
    assert_eq!(
        leaky.test_accuracy, protected.test_accuracy,
        "the countermeasure changes the footprint, never the function"
    );
}

#[test]
fn constant_time_defeats_the_attack() {
    let cfg = fast().samples(12);
    let leaky = Experiment::new(cfg.clone()).run().unwrap();
    let protected = Experiment::new(cfg.with_countermeasure(Countermeasure::ConstantTime))
        .run()
        .unwrap();

    // Built fluently — same parameters as `AttackConfig::default()`,
    // but through the validated builder path the CLI uses.
    let attack = AttackConfig::default().profile_fraction(0.5).seed(0xA77AC4);
    let leaky_acc = leaky.mount_attack(&attack).unwrap().accuracy;
    let protected_acc = protected.mount_attack(&attack).unwrap().accuracy;
    assert!(
        protected_acc <= leaky_acc,
        "protection must not help the attacker: {protected_acc} vs {leaky_acc}"
    );
    assert!(
        protected_acc < 0.60,
        "category recovery should collapse towards chance: {protected_acc}"
    );
}

#[test]
fn shuffle_preserves_predictions() {
    let plain = Experiment::new(fast()).run().unwrap();
    let shuffled = Experiment::new(fast().with_countermeasure(Countermeasure::Shuffle))
        .run()
        .unwrap();
    assert_eq!(
        plain.test_accuracy, shuffled.test_accuracy,
        "shuffling permutes the traced access order, never the numbers"
    );
}

#[test]
fn oblivious_shape_equalises_footprints_across_categories() {
    let outcome = Experiment::new(fast().with_countermeasure(Countermeasure::ObliviousShape))
        .run()
        .unwrap();
    // Every layer window is padded to one shared ceiling, so under a
    // quiet system each category's per-event distribution collapses to
    // the same constant: nothing is left for any t-test to see.
    for ev in &outcome.report.per_event {
        assert_eq!(
            ev.pairwise.leak_count(),
            0,
            "event {:?} still distinguishes a pair under oblivious shapes",
            ev.event
        );
        let means: Vec<f64> = ev.summaries.iter().map(|s| s.mean()).collect();
        assert!(
            means.windows(2).all(|w| w[0] == w[1]),
            "event {:?} footprints differ across categories: {means:?}",
            ev.event
        );
    }
}

#[test]
fn noise_injection_inflates_variance() {
    let plain = Experiment::new(fast()).run().unwrap();
    let noisy = Experiment::new(fast().with_countermeasure(Countermeasure::NoiseInjection {
        dummy_events: 5_000,
    }))
    .run()
    .unwrap();

    let spread = |outcome: &scnn::core::ExperimentOutcome| {
        outcome
            .report
            .event(HpcEvent::CacheMisses)
            .unwrap()
            .summaries
            .iter()
            .map(|s| s.sample_std())
            .sum::<f64>()
    };
    assert!(
        spread(&noisy) > spread(&plain),
        "dummy work must disperse the distributions: {} vs {}",
        spread(&noisy),
        spread(&plain)
    );
}
