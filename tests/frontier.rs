//! Integration: the countermeasure leakage-vs-overhead frontier,
//! checked through the public facade.
//!
//! The contracts under test (DESIGN.md §16):
//!
//! 1. **Full panel** — the campaign reports every fixed arm plus the
//!    calibrated-noise arm, baseline first, each with a leakage scalar
//!    in [0, 1] and a positive overhead normalized to 1 on the baseline.
//! 2. **The alarm separates arms** — the baseline trips the evaluator
//!    while at least two protected arms stay quiet.
//! 3. **Pareto discipline** — the marked set is non-empty, never
//!    contains the baseline, and contains no dominated member.
//! 4. **Deterministic fan-out** — the outcome (struct, JSON, rendered
//!    table) is byte-identical on one worker and four.
//! 5. **Resume from cache** — a warm campaign against the same cache
//!    directory reproduces the cold outcome, modulo cache-hit markers.

use scnn::cache::ArtifactCache;
use scnn::core::frontier::{run_frontier, FrontierOptions, FrontierOutcome};
use scnn::core::pipeline::{CacheUsage, DatasetKind, ExperimentConfig};
use scnn::core::ToJson;
use scnn::par::Threads;

fn config() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::quick(DatasetKind::Mnist)
        .samples(8)
        .epochs(1);
    cfg.train_per_class = 6;
    cfg.test_per_class = 3;
    cfg
}

/// A generous |t| target keeps the calibration loop to a couple of
/// doublings — the search logic still runs, the test stays fast.
fn options() -> FrontierOptions {
    FrontierOptions {
        target_t: 25.0,
        ..FrontierOptions::default()
    }
}

fn scratch(tag: &str) -> (std::path::PathBuf, ArtifactCache) {
    let dir = std::env::temp_dir().join(format!("scnn-it-frontier-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cache = ArtifactCache::open(&dir).unwrap();
    (dir, cache)
}

#[test]
fn frontier_reports_every_arm_and_is_thread_invariant() {
    let cfg = config();
    let opts = options();
    let one = run_frontier(&cfg, &opts, Threads::Count(1), None).unwrap();
    let four = run_frontier(&cfg, &opts, Threads::Count(4), None).unwrap();
    assert_eq!(one, four, "worker count must not affect the outcome");
    assert_eq!(
        one.to_json(),
        four.to_json(),
        "and the serialized outcome is byte-identical"
    );
    assert_eq!(
        one.render_table(),
        four.render_table(),
        "and so is the rendered table"
    );

    assert!(one.rows.len() >= 6, "full panel: {}", one.render_table());
    assert_eq!(one.rows[0].arm, "baseline");
    assert_eq!(one.rows[0].overhead, 1.0, "overhead is baseline-relative");
    for row in &one.rows {
        assert!(
            (0.0..=1.0).contains(&row.leakage),
            "arm {} leakage {} escapes [0, 1]",
            row.arm,
            row.leakage
        );
        assert!(
            row.overhead > 0.0 && row.mean_cycles > 0.0,
            "arm {} has a degenerate overhead axis",
            row.arm
        );
    }

    assert!(
        one.rows[0].alarm,
        "the unprotected baseline must trip the alarm"
    );
    let quiet = one.rows.iter().skip(1).filter(|r| !r.alarm).count();
    assert!(
        quiet >= 2,
        "at least two protected arms must silence the evaluator: {}",
        one.render_table()
    );

    // Pareto discipline: non-empty, baseline-free, no dominated member.
    let pareto: Vec<_> = one.rows.iter().filter(|r| r.pareto).collect();
    assert!(!pareto.is_empty(), "{}", one.render_table());
    assert!(pareto.iter().all(|r| r.arm != "baseline"));
    for a in &pareto {
        assert!(
            a.leakage < one.rows[0].leakage,
            "frontier member {} does not beat the baseline",
            a.arm
        );
        for b in &pareto {
            let dominates = a.arm != b.arm
                && a.leakage <= b.leakage
                && a.overhead <= b.overhead
                && (a.leakage < b.leakage || a.overhead < b.overhead);
            assert!(!dominates, "{} dominates frontier member {}", a.arm, b.arm);
        }
    }
}

#[test]
fn warm_frontier_resumes_from_cache() {
    let (dir, cache) = scratch("warm");
    let cfg = config();
    let opts = options();

    let cold = run_frontier(&cfg, &opts, Threads::Count(2), Some(&cache)).unwrap();
    assert!(
        cold.rows.iter().all(|r| !r.trace_cache_hit),
        "cold run traces every arm"
    );
    let warm = run_frontier(&cfg, &opts, Threads::Count(2), Some(&cache)).unwrap();
    assert!(
        warm.rows.iter().all(|r| r.trace_cache_hit),
        "warm run restores every arm's trace corpus"
    );
    assert!(
        warm.rows.iter().all(|r| r.cache.model_hit),
        "warm run restores the shared victim model"
    );
    assert_eq!(
        strip_cache(&cold),
        strip_cache(&warm),
        "verdicts identical modulo cache-hit markers"
    );
    assert_eq!(
        cold.render_table(),
        warm.render_table(),
        "rendered tables byte-identical"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// The verdict parts of an outcome, with cache markers zeroed — cold
/// and warm runs legitimately differ there and nowhere else.
fn strip_cache(outcome: &FrontierOutcome) -> FrontierOutcome {
    let mut out = outcome.clone();
    for row in &mut out.rows {
        row.trace_cache_hit = false;
        row.cache = CacheUsage::default();
    }
    out
}
