//! Integration: the determinism contract of the parallel layer, checked
//! through the public facade on a full experiment. Whatever the thread
//! count, every artefact — observations, leakage verdicts, serialized
//! report — must be byte-identical to the sequential run.

use scnn::core::json::ToJson;
use scnn::core::pipeline::{DatasetKind, Experiment, ExperimentConfig, ExperimentOutcome};
use scnn::par::Threads;

fn run(threads: Threads) -> ExperimentOutcome {
    let mut cfg = ExperimentConfig::quick(DatasetKind::Mnist);
    cfg.train_per_class = 6;
    cfg.test_per_class = 3;
    cfg.train.epochs = 1;
    cfg.collection.samples_per_category = 6;
    cfg.collection.threads = threads;
    cfg.evaluator.threads = threads;
    cfg.train.threads = threads;
    Experiment::new(cfg).run().unwrap()
}

#[test]
fn experiment_is_bit_identical_across_thread_counts() {
    let sequential = run(Threads::Count(1));
    let parallel = run(Threads::Count(4));

    assert_eq!(sequential.observations, parallel.observations);
    assert_eq!(sequential.report.per_event, parallel.report.per_event);
    assert_eq!(sequential.test_accuracy, parallel.test_accuracy);
    assert_eq!(
        sequential.report.to_json(),
        parallel.report.to_json(),
        "serialized report must not leak the thread count"
    );
}
