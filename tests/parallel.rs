//! Integration: the determinism contract of the parallel layer, checked
//! through the public facade on a full experiment. Whatever the thread
//! count, every artefact — observations, leakage verdicts, serialized
//! report — must be byte-identical to the sequential run.

use scnn::core::json::ToJson;
use scnn::core::pipeline::{DatasetKind, Experiment, ExperimentConfig, ExperimentOutcome};
use scnn::par::Threads;

fn run(threads: Threads) -> ExperimentOutcome {
    let mut cfg = ExperimentConfig::quick(DatasetKind::Mnist)
        .samples(6)
        .epochs(1)
        .threads(threads);
    cfg.train_per_class = 6;
    cfg.test_per_class = 3;
    Experiment::new(cfg).run().unwrap()
}

#[test]
fn experiment_is_bit_identical_across_thread_counts() {
    let sequential = run(Threads::Count(1));
    let parallel = run(Threads::Count(4));

    assert_eq!(sequential.observations, parallel.observations);
    assert_eq!(sequential.report.per_event, parallel.report.per_event);
    assert_eq!(sequential.test_accuracy, parallel.test_accuracy);
    assert_eq!(
        sequential.report.to_json(),
        parallel.report.to_json(),
        "serialized report must not leak the thread count"
    );
}
