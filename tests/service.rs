//! Integration: the fleet-scale evaluation service, checked through the
//! public facade.
//!
//! The contracts under test (DESIGN.md §14):
//!
//! 1. **Exactly-once delivery over a blocking transport** — jobs
//!    streamed through a real Unix socket pair are each answered once;
//!    nothing is lost, duplicated, or reordered past recognition (the
//!    id is the correlation key).
//! 2. **Concurrent shared-cache byte-identity** — jobs racing on the
//!    same artifact-cache keys produce output byte-identical to a
//!    direct, cache-less run of the same experiment, and leave the
//!    cache directory clean (no `.tmp-*` orphans, nothing
//!    quarantined).
//! 3. **Failure isolation** — one failing or panicking job is an error
//!    response, not a dead service.

use scnn::cache::ArtifactCache;
use scnn::core::json;
use scnn::core::pipeline::{DatasetKind, Experiment, ExperimentConfig};
use scnn::core::service::{serve, CacheTraffic, JobOutput, JobSpec, ServiceConfig};
use scnn::par::Threads;
use std::io::{BufRead, BufReader, Cursor, Write};

fn config(samples: usize) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::quick(DatasetKind::Mnist)
        .samples(samples)
        .epochs(1)
        .threads(Threads::Count(1));
    cfg.train_per_class = 6;
    cfg.test_per_class = 3;
    cfg
}

fn scratch(tag: &str) -> (std::path::PathBuf, ArtifactCache) {
    let dir = std::env::temp_dir().join(format!("scnn-it-service-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cache = ArtifactCache::open(&dir).unwrap();
    (dir, cache)
}

/// Executor used across the tests: renders the leak table of a tiny
/// experiment, through the shared cache when one is given.
fn experiment_executor(spec: &JobSpec, cache: Option<&ArtifactCache>) -> Result<JobOutput, String> {
    let samples = spec.usize_param("samples")?.unwrap_or(6);
    let experiment = Experiment::new(config(samples));
    let outcome = match cache {
        Some(cache) => experiment.run_cached(cache),
        None => experiment.run(),
    }
    .map_err(|e| e.to_string())?;
    let mut traffic = CacheTraffic::default();
    traffic.add_usage(&outcome.cache);
    Ok(JobOutput {
        stdout: outcome.report.render_table(),
        cache: cache.is_some().then_some(traffic),
    })
}

#[test]
fn unix_socket_transport_delivers_every_job_exactly_once() {
    let (client, server) = std::os::unix::net::UnixStream::pair().unwrap();

    // The client lives on its own thread, exactly like a remote
    // submitter: write jobs, shut down the write half, read responses.
    let submitter = std::thread::spawn(move || {
        let mut writer = client.try_clone().unwrap();
        for i in 0..12 {
            writeln!(
                writer,
                "{{\"id\":\"sock-{i}\",\"command\":\"echo\",\"n\":{i}}}"
            )
            .unwrap();
        }
        writeln!(writer, "{{\"id\":\"bye\",\"command\":\"shutdown\"}}").unwrap();
        writer.shutdown(std::net::Shutdown::Write).unwrap();
        let mut ids = Vec::new();
        for line in BufReader::new(client).lines() {
            let value = json::parse(&line.unwrap()).expect("response is valid JSON");
            assert_eq!(value.get("status").and_then(|v| v.as_str()), Some("ok"));
            ids.push(value.get("id").unwrap().as_str().unwrap().to_owned());
        }
        ids
    });

    let report = serve(
        BufReader::new(server.try_clone().unwrap()),
        server,
        &ServiceConfig {
            workers: Threads::Count(3),
            include_stdout: true,
        },
        |spec: &JobSpec| {
            let n = spec.usize_param("n")?.unwrap_or(0);
            Ok(JobOutput {
                stdout: format!("echo {n}\n"),
                cache: None,
            })
        },
    );

    let mut ids = submitter.join().unwrap();
    assert_eq!(report.jobs, 13, "12 jobs + shutdown accepted");
    assert_eq!(report.ok, 13);
    assert!(report.shutdown);
    assert_eq!(ids.len(), 13, "one response per submission");
    ids.sort();
    ids.dedup();
    assert_eq!(ids.len(), 13, "no duplicated responses");
}

#[test]
fn concurrent_jobs_sharing_a_cache_match_direct_runs_byte_for_byte() {
    let (dir, cache) = scratch("shared");

    // Ground truth: cache-less direct runs of the two experiment shapes.
    let direct_a = experiment_executor(
        &JobSpec::parse_line(r#"{"id":"d1","command":"run","samples":6}"#).unwrap(),
        None,
    )
    .unwrap()
    .stdout;
    let direct_b = experiment_executor(
        &JobSpec::parse_line(r#"{"id":"d2","command":"run","samples":8}"#).unwrap(),
        None,
    )
    .unwrap()
    .stdout;
    assert_ne!(direct_a, direct_b, "the two shapes must be distinguishable");

    // 16 jobs racing on two shared key sets: 8 per shape, interleaved so
    // several cold submissions of one shape are in flight at once.
    let input: String = (0..16usize)
        .map(|i| {
            format!(
                "{{\"id\":\"job-{i}\",\"command\":\"run\",\"samples\":{}}}\n",
                if i.is_multiple_of(2) { 6 } else { 8 }
            )
        })
        .collect();
    let mut out = Vec::new();
    let report = serve(
        Cursor::new(input),
        &mut out,
        &ServiceConfig {
            workers: Threads::Count(4),
            include_stdout: true,
        },
        |spec: &JobSpec| experiment_executor(spec, Some(&cache)),
    );

    assert_eq!(report.jobs, 16);
    assert_eq!(report.ok, 16, "no job may fail under cache contention");
    let responses = String::from_utf8(out).unwrap();
    let mut answered = 0;
    for line in responses.lines() {
        let value = json::parse(line).unwrap();
        let id = value.get("id").unwrap().as_str().unwrap();
        let index: usize = id.strip_prefix("job-").unwrap().parse().unwrap();
        let want = if index.is_multiple_of(2) {
            &direct_a
        } else {
            &direct_b
        };
        assert_eq!(
            value.get("stdout").unwrap().as_str(),
            Some(want.as_str()),
            "{id}: cached service output must equal the direct run byte for byte"
        );
        answered += 1;
    }
    assert_eq!(answered, 16);
    assert!(
        report.cache.hit_rate() > 0.0,
        "warm jobs must hit the cache"
    );

    // Racing writers must leave a clean directory: committed artifacts
    // only, nothing orphaned, nothing quarantined.
    let tmp_leftovers = std::fs::read_dir(&dir)
        .unwrap()
        .filter(|e| {
            e.as_ref()
                .unwrap()
                .file_name()
                .to_string_lossy()
                .starts_with(".tmp-")
        })
        .count();
    assert_eq!(tmp_leftovers, 0, "no orphaned tmp files");
    let quarantined = std::fs::read_dir(cache.quarantine_dir())
        .map(|d| d.count())
        .unwrap_or(0);
    assert_eq!(quarantined, 0, "no artifact may be quarantined");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn failing_and_panicking_jobs_do_not_take_the_service_down() {
    let input = concat!(
        r#"{"id":"ok-1","command":"work"}"#,
        "\n",
        r#"{"id":"dies","command":"panic"}"#,
        "\n",
        r#"{"id":"fails","command":"fail"}"#,
        "\n",
        r#"{"id":"ok-2","command":"work"}"#,
        "\n",
    );
    let mut out = Vec::new();
    let report = serve(
        Cursor::new(input.to_owned()),
        &mut out,
        &ServiceConfig {
            workers: Threads::Count(2),
            include_stdout: true,
        },
        |spec: &JobSpec| match spec.command.as_str() {
            "panic" => panic!("deliberate test panic"),
            "fail" => Err("deliberate failure".into()),
            _ => Ok(JobOutput {
                stdout: "done\n".into(),
                cache: None,
            }),
        },
    );
    assert_eq!(report.jobs, 4);
    assert_eq!(report.ok, 2, "healthy jobs complete around the failures");
    assert_eq!(report.errors, 2);
    let responses = String::from_utf8(out).unwrap();
    for line in responses.lines() {
        let value = json::parse(line).unwrap();
        let id = value.get("id").unwrap().as_str().unwrap();
        let status = value.get("status").unwrap().as_str().unwrap();
        match id {
            "ok-1" | "ok-2" => assert_eq!(status, "ok"),
            "dies" | "fails" => assert_eq!(status, "error"),
            other => panic!("unexpected response id {other}"),
        }
    }
}
