//! Integration: the observability layer's two contracts, checked through
//! the public facade.
//!
//! 1. **Golden shape** — the telemetry JSON a run produces has the
//!    stable, documented keys; spans nest (every phase span is a child
//!    of `pipeline.run`); counters are monotone across runs.
//! 2. **Observation-only** — the experiment's report is byte-identical
//!    with telemetry on and off, and with the recorder installed the
//!    output stays byte-identical between 1 and 4 worker threads.
//!
//! The recorder is process-global, so every test that installs one
//! holds [`INSTALL_LOCK`] for its whole body.

use scnn::core::json::{parse, ToJson, Value};
use scnn::core::pipeline::{DatasetKind, Experiment, ExperimentConfig, ExperimentOutcome};
use scnn::obs::{Recorder, TelemetrySnapshot};
use scnn::par::Threads;
use std::sync::{Arc, Mutex};

static INSTALL_LOCK: Mutex<()> = Mutex::new(());

fn config(threads: Threads) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::quick(DatasetKind::Mnist)
        .samples(6)
        .epochs(1)
        .threads(threads);
    cfg.train_per_class = 6;
    cfg.test_per_class = 3;
    cfg
}

/// Runs one experiment with a fresh recorder installed, returning the
/// outcome and the recorder's snapshot.
fn observed_run(threads: Threads) -> (ExperimentOutcome, TelemetrySnapshot) {
    let recorder = Arc::new(Recorder::new());
    scnn::obs::install(recorder.clone());
    let outcome = Experiment::new(config(threads)).run();
    scnn::obs::uninstall();
    (outcome.unwrap(), recorder.snapshot())
}

#[test]
fn telemetry_json_has_the_golden_shape() {
    let _guard = INSTALL_LOCK.lock().unwrap();
    let (_, snapshot) = observed_run(Threads::Count(2));
    let root = parse(&snapshot.to_json()).expect("telemetry JSON parses");

    // Top level: exactly the five documented sections.
    let Value::Object(members) = &root else {
        panic!("telemetry root is not an object");
    };
    let keys: Vec<&str> = members.iter().map(|(k, _)| k.as_str()).collect();
    assert_eq!(
        keys,
        ["version", "spans", "counters", "histograms", "series"],
        "stable top-level key set and order"
    );
    assert_eq!(root.get("version").and_then(Value::as_f64), Some(1.0));

    // Every span carries the full documented key set.
    let spans = root.get("spans").unwrap().as_array().unwrap();
    assert!(!spans.is_empty());
    for span in spans {
        let Value::Object(members) = span else {
            panic!("span is not an object");
        };
        let keys: Vec<&str> = members.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            keys,
            [
                "id",
                "parent",
                "name",
                "index",
                "thread",
                "depth",
                "start_ns",
                "duration_ns"
            ],
            "stable span key set and order"
        );
    }

    // The phase spans nest under pipeline.run.
    let find = |name: &str| {
        spans
            .iter()
            .find(|s| s.get("name").and_then(Value::as_str) == Some(name))
            .unwrap_or_else(|| panic!("span {name:?} present"))
    };
    let run_id = find("pipeline.run").get("id").unwrap().as_f64().unwrap();
    for phase in [
        "pipeline.dataset",
        "pipeline.train",
        "pipeline.collect",
        "pipeline.evaluate",
    ] {
        assert_eq!(
            find(phase).get("parent").and_then(Value::as_f64),
            Some(run_id),
            "{phase} is a child of pipeline.run"
        );
    }
    assert!(
        find("train.epoch").get("index").unwrap().as_f64() == Some(0.0),
        "epoch spans carry their index"
    );

    // Counters and series the pipeline must have produced.
    let counters = root.get("counters").unwrap().as_array().unwrap();
    let counter = |name: &str| {
        counters
            .iter()
            .find(|c| c.get("name").and_then(Value::as_str) == Some(name))
            .and_then(|c| c.get("value"))
            .and_then(Value::as_f64)
            .unwrap_or_else(|| panic!("counter {name:?} present"))
    };
    assert_eq!(counter("collect.categories"), 4.0);
    assert_eq!(counter("collect.samples"), 4.0 * 6.0);
    assert!(counter("evaluate.ttests") > 0.0);
    assert!(counter("train.steps") > 0.0);
    let series = root.get("series").unwrap().as_array().unwrap();
    assert!(series
        .iter()
        .any(|s| s.get("name").and_then(Value::as_str) == Some("train.epoch_loss")));
}

#[test]
fn counters_are_monotone_while_installed() {
    let _guard = INSTALL_LOCK.lock().unwrap();
    let recorder = Arc::new(Recorder::new());
    scnn::obs::install(recorder.clone());
    Experiment::new(config(Threads::Count(1))).run().unwrap();
    let first = recorder.snapshot();
    Experiment::new(config(Threads::Count(1))).run().unwrap();
    let second = recorder.snapshot();
    scnn::obs::uninstall();

    for counter in &first.counters {
        let later = second
            .counters
            .iter()
            .find(|c| c.name == counter.name)
            .unwrap_or_else(|| panic!("counter {} persists", counter.name));
        assert!(
            later.value >= counter.value,
            "counter {} went backwards: {} -> {}",
            counter.name,
            counter.value,
            later.value
        );
    }
}

#[test]
fn report_is_byte_identical_with_telemetry_on_and_off() {
    let _guard = INSTALL_LOCK.lock().unwrap();
    let bare = Experiment::new(config(Threads::Count(2))).run().unwrap();
    let (observed, snapshot) = observed_run(Threads::Count(2));
    assert!(!snapshot.spans.is_empty(), "telemetry actually recorded");
    assert_eq!(bare.observations, observed.observations);
    assert_eq!(bare.test_accuracy, observed.test_accuracy);
    assert_eq!(
        bare.report.to_json(),
        observed.report.to_json(),
        "telemetry must be observation-only"
    );
}

#[test]
fn observed_report_is_byte_identical_across_thread_counts() {
    let _guard = INSTALL_LOCK.lock().unwrap();
    let (sequential, _) = observed_run(Threads::Count(1));
    let (parallel, _) = observed_run(Threads::Count(4));
    assert_eq!(sequential.observations, parallel.observations);
    assert_eq!(
        sequential.report.to_json(),
        parallel.report.to_json(),
        "determinism contract holds with the recorder installed"
    );
}
