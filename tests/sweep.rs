//! Integration: the microarchitecture-zoo sweep, checked through the
//! public facade.
//!
//! The contracts under test (DESIGN.md §13):
//!
//! 1. **Platforms are actually different** — two presets produce
//!    different raw event counts for the same classification stream
//!    (otherwise the zoo would be decorative).
//! 2. **Deterministic fan-out** — the sweep's leak table is
//!    byte-identical whether the presets run on one worker or four,
//!    and row order always follows zoo order.
//! 3. **Resume from cache** — a warm sweep against the same cache
//!    directory enters no `pipeline.train`/`pipeline.collect` span and
//!    reproduces the cold table byte for byte, while every preset
//!    shares the single trained-model artifact.
//!
//! The recorder is process-global, so every test that installs one holds
//! [`INSTALL_LOCK`] for its whole body.

use scnn::cache::ArtifactCache;
use scnn::core::pipeline::{DatasetKind, ExperimentConfig};
use scnn::core::sweep::{run_sweep, SweepOutcome};
use scnn::core::zoo;
use scnn::core::ToJson;
use scnn::obs::Recorder;
use scnn::par::Threads;
use scnn::uarch::Probe;
use std::sync::{Arc, Mutex};

static INSTALL_LOCK: Mutex<()> = Mutex::new(());

fn config() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::quick(DatasetKind::Mnist)
        .samples(6)
        .epochs(1);
    cfg.train_per_class = 6;
    cfg.test_per_class = 3;
    cfg
}

fn scratch(tag: &str) -> (std::path::PathBuf, ArtifactCache) {
    let dir = std::env::temp_dir().join(format!("scnn-it-sweep-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cache = ArtifactCache::open(&dir).unwrap();
    (dir, cache)
}

/// Raw simulated event counts for one classification, per preset.
fn event_counts(preset: &scnn::uarch::UarchConfig) -> scnn::uarch::CounterSnapshot {
    let mut core = preset.build().unwrap();
    // A strided scan long enough to exercise caches, TLB and branches.
    for i in 0..50_000u64 {
        core.load(i * 48, 0x40);
        if i % 7 == 0 {
            core.branch(0x40 + i % 1024, i % 3 == 0);
        }
    }
    core.snapshot()
}

#[test]
fn presets_are_distinct_platforms() {
    let presets = zoo::zoo();
    assert!(presets.len() >= 3);
    let xeon = event_counts(&zoo::preset("xeon-like").unwrap());
    let embedded = event_counts(&zoo::preset("embedded-like").unwrap());
    let mobile = event_counts(&zoo::preset("mobile-like").unwrap());
    // Same instruction stream, different machines: the event counts that
    // feed the HPC model must differ.
    assert_ne!(
        xeon.llc_misses, embedded.llc_misses,
        "64B-line Xeon vs 32B-line embedded must miss differently"
    );
    assert_ne!(
        xeon.cycles, mobile.cycles,
        "different latency models must cost differently"
    );
    assert_ne!(
        xeon.branch_misses, embedded.branch_misses,
        "tournament vs bimodal predictors must mispredict differently"
    );
}

#[test]
fn sweep_is_byte_identical_across_worker_counts() {
    let cfg = config();
    let presets = zoo::zoo();
    let one = run_sweep(&cfg, &presets, Threads::Count(1), None).unwrap();
    let four = run_sweep(&cfg, &presets, Threads::Count(4), None).unwrap();
    assert_eq!(one, four, "worker count must not affect results");
    assert_eq!(
        one.to_json(),
        four.to_json(),
        "and the serialized table is byte-identical"
    );
    assert_eq!(
        one.render_table(),
        four.render_table(),
        "and so is the rendered table"
    );
    let names: Vec<&str> = one.rows.iter().map(|r| r.preset.as_str()).collect();
    let zoo_names: Vec<&str> = presets.iter().map(|p| p.name.as_str()).collect();
    assert_eq!(names, zoo_names, "rows come back in zoo order");
    assert!(one.alarms() >= 1, "the leak must be visible somewhere");
}

#[test]
fn warm_sweep_resumes_from_cache_and_shares_the_model() {
    let _guard = INSTALL_LOCK.lock().unwrap();
    let (dir, cache) = scratch("warm");
    let cfg = config();
    // Two presets keep the test fast; distinctness is covered above.
    let presets = vec![
        zoo::preset("xeon-like").unwrap(),
        zoo::preset("embedded-like").unwrap(),
    ];

    let cold = run_sweep(&cfg, &presets, Threads::Count(2), Some(&cache)).unwrap();
    // The base config's platform is the Xeon, so the warm-up run trains
    // the model and collects the xeon-like row's observations; only the
    // embedded row measures anything afterwards.
    assert!(
        cold.rows.iter().all(|r| r.cache.model_hit),
        "every preset restores the one shared model artifact"
    );

    let recorder = Arc::new(Recorder::new());
    scnn::obs::install(recorder.clone());
    let warm = run_sweep(&cfg, &presets, Threads::Count(2), Some(&cache)).unwrap();
    scnn::obs::uninstall();
    let snapshot = recorder.snapshot();

    assert_eq!(strip_cache(&cold), strip_cache(&warm), "verdicts identical");
    assert_eq!(
        cold.render_table(),
        warm.render_table(),
        "rendered tables byte-identical"
    );
    let names: Vec<&str> = snapshot.spans.iter().map(|s| s.name).collect();
    assert!(
        !names.contains(&"pipeline.train"),
        "warm sweep must not retrain, got spans {names:?}"
    );
    assert!(
        !names.contains(&"pipeline.collect"),
        "warm sweep must not re-collect"
    );
    assert!(
        names.contains(&"sweep.preset"),
        "per-preset spans are always present"
    );
    assert!(
        warm.rows
            .iter()
            .all(|r| r.cache.model_hit && r.cache.categories_collected == 0),
        "warm rows are fully cache-fed"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// The verdict parts of a sweep outcome, with cache usage zeroed —
/// cold and warm runs legitimately differ there and nowhere else.
fn strip_cache(outcome: &SweepOutcome) -> SweepOutcome {
    let mut out = outcome.clone();
    for row in &mut out.rows {
        row.cache = Default::default();
    }
    out
}
