//! Integration: the persistent artifact cache, checked through the
//! public facade.
//!
//! The contracts under test (DESIGN.md §11):
//!
//! 1. **Warm runs skip the expensive phases** — a second `run_cached`
//!    against the same directory restores the model and every category
//!    checkpoint, so no `pipeline.train`/`pipeline.collect` span is
//!    entered at all.
//! 2. **Byte-identical results** — cached, resumed and uncached runs
//!    produce identical observations and reports.
//! 3. **Corruption is a miss, never a wrong answer** — a flipped byte in
//!    an artifact causes recomputation, not a crash or a skewed report.
//!
//! The recorder is process-global, so every test that installs one holds
//! [`INSTALL_LOCK`] for its whole body.

use scnn::cache::ArtifactCache;
use scnn::core::artifact::{category_key, CATEGORY_KIND};
use scnn::core::json::ToJson;
use scnn::core::pipeline::{DatasetKind, Experiment, ExperimentConfig};
use scnn::obs::Recorder;
use std::sync::{Arc, Mutex};

static INSTALL_LOCK: Mutex<()> = Mutex::new(());

fn config() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::quick(DatasetKind::Mnist)
        .samples(6)
        .epochs(1);
    cfg.train_per_class = 6;
    cfg.test_per_class = 3;
    cfg
}

fn scratch(tag: &str) -> (std::path::PathBuf, ArtifactCache) {
    let dir = std::env::temp_dir().join(format!("scnn-it-cache-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cache = ArtifactCache::open(&dir).unwrap();
    (dir, cache)
}

#[test]
fn warm_run_skips_training_and_matches_uncached_byte_for_byte() {
    let _guard = INSTALL_LOCK.lock().unwrap();
    let (dir, cache) = scratch("warm");
    let cfg = config();

    let cold = Experiment::new(cfg.clone()).run_cached(&cache).unwrap();
    assert!(!cold.cache.model_hit);
    assert_eq!(cold.cache.writes, 5, "model + 4 categories stored");

    let recorder = Arc::new(Recorder::new());
    scnn::obs::install(recorder.clone());
    let warm = Experiment::new(cfg.clone()).run_cached(&cache).unwrap();
    scnn::obs::uninstall();
    let snapshot = recorder.snapshot();

    assert!(warm.cache.model_hit);
    assert_eq!(warm.cache.categories_hit, 4);
    let names: Vec<&str> = snapshot.spans.iter().map(|s| s.name).collect();
    assert!(
        !names.contains(&"pipeline.train"),
        "warm run must skip the train phase entirely, got spans {names:?}"
    );
    assert!(
        !names.contains(&"pipeline.collect"),
        "warm run must skip collection entirely"
    );
    assert!(
        !names.contains(&"pipeline.dataset"),
        "fully warm runs skip synthesis too"
    );
    assert!(names.contains(&"cache.lookup"), "lookups are spanned");
    assert!(
        names.contains(&"pipeline.evaluate"),
        "evaluation always runs"
    );
    assert_eq!(snapshot.counter("cache.hits"), Some(5));
    assert_eq!(snapshot.counter("cache.misses"), None);

    let plain = Experiment::new(cfg).run().unwrap();
    assert_eq!(warm.observations, plain.observations);
    assert_eq!(warm.test_accuracy, plain.test_accuracy);
    assert_eq!(
        warm.report.to_json(),
        plain.report.to_json(),
        "cached and uncached reports must be byte-identical"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_category_artifact_is_recollected_not_trusted() {
    // Cache traffic from this test must not leak into a recorder another
    // test has installed (the recorder is process-global).
    let _guard = INSTALL_LOCK.lock().unwrap();
    let (dir, cache) = scratch("corrupt");
    let cfg = config();
    let cold = Experiment::new(cfg.clone()).run_cached(&cache).unwrap();

    // Flip a byte in the middle of category 1's checkpoint.
    let path = cache.path_for(CATEGORY_KIND, category_key(&cfg, 1));
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&path, &bytes).unwrap();

    let rerun = Experiment::new(cfg).run_cached(&cache).unwrap();
    assert!(rerun.cache.model_hit);
    assert_eq!(rerun.cache.categories_hit, 3, "the corrupt one misses");
    assert_eq!(rerun.cache.categories_collected, 1);
    assert_eq!(rerun.observations, cold.observations);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn model_artifact_is_reused_across_sample_counts() {
    // See corrupt_category_artifact_is_recollected_not_trusted.
    let _guard = INSTALL_LOCK.lock().unwrap();
    let (dir, cache) = scratch("reuse");
    let cold = Experiment::new(config().samples(6))
        .run_cached(&cache)
        .unwrap();
    assert!(!cold.cache.model_hit);

    // More measurements per category: collection must rerun, but the
    // trained model is collection-independent and is reused.
    let more = Experiment::new(config().samples(8))
        .run_cached(&cache)
        .unwrap();
    assert!(
        more.cache.model_hit,
        "sample count is outside the model key"
    );
    assert_eq!(more.cache.categories_hit, 0);
    assert_eq!(more.cache.categories_collected, 4);

    let plain = Experiment::new(config().samples(8)).run().unwrap();
    assert_eq!(more.observations, plain.observations);
    assert_eq!(more.report.to_json(), plain.report.to_json());
    let _ = std::fs::remove_dir_all(&dir);
}
