//! Cross-crate integration: the full paper pipeline (data → train →
//! measure → evaluate) at test scale, on both case studies.

use scnn::core::pipeline::{DatasetKind, Experiment, ExperimentConfig};
use scnn::hpc::HpcEvent;
use scnn::uarch::CoreConfig;

fn fast(dataset: DatasetKind) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::quick(dataset).samples(8).epochs(3);
    cfg.train_per_class = 8;
    cfg.test_per_class = 4;
    cfg.pmu.core = CoreConfig::tiny();
    cfg
}

#[test]
fn mnist_pipeline_trains_measures_and_alarms() {
    let outcome = Experiment::new(fast(DatasetKind::Mnist)).run().unwrap();

    // The model learned something.
    assert!(
        outcome.train_report.final_train_accuracy > 0.5,
        "train accuracy {}",
        outcome.train_report.final_train_accuracy
    );
    // Four categories, both paper events measured for each.
    assert_eq!(outcome.observations.len(), 4);
    for obs in &outcome.observations {
        assert_eq!(obs.len(), 8);
        assert!(obs.series(HpcEvent::CacheMisses).is_some());
        assert!(obs.series(HpcEvent::Branches).is_some());
    }
    // The zero-skipping implementation leaks.
    assert!(outcome.report.alarm().raised());
    assert!(outcome
        .report
        .alarm()
        .triggering_events()
        .contains(&HpcEvent::CacheMisses));
}

#[test]
fn cifar_pipeline_runs() {
    let outcome = Experiment::new(fast(DatasetKind::Cifar10)).run().unwrap();
    assert_eq!(outcome.observations.len(), 4);
    assert_eq!(outcome.report.categories, 4);
    // Table rendering covers every pair.
    let table = outcome.report.render_table();
    for pair in ["t1,2", "t1,3", "t1,4", "t2,3", "t2,4", "t3,4"] {
        assert!(table.contains(pair), "missing {pair}:\n{table}");
    }
}

#[test]
fn experiments_are_reproducible() {
    let a = Experiment::new(fast(DatasetKind::Mnist)).run().unwrap();
    let b = Experiment::new(fast(DatasetKind::Mnist)).run().unwrap();
    assert_eq!(a.observations, b.observations);
    assert_eq!(a.test_accuracy, b.test_accuracy);
    // And a different seed genuinely changes the measurements.
    let mut cfg = fast(DatasetKind::Mnist);
    cfg.seed ^= 1;
    let c = Experiment::new(cfg).run().unwrap();
    assert_ne!(a.observations, c.observations);
}

#[test]
fn monitored_categories_follow_config() {
    let mut cfg = fast(DatasetKind::Mnist);
    cfg.categories = vec![7, 2];
    let outcome = Experiment::new(cfg).run().unwrap();
    assert_eq!(outcome.observations.len(), 2);
    assert_eq!(outcome.report.categories, 2);
    assert_eq!(
        outcome.report.per_event[0].pairwise.pairs.len(),
        1,
        "two categories give one pair"
    );
}
