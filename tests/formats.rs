//! Integration: on-disk dataset formats feed the same pipeline as the
//! synthetic generators.

use scnn::data::mnist_synth::{generate, MnistSynthConfig};
use scnn::data::{cifar_bin, cifar_synth, idx};
use scnn::nn::models;
use scnn::nn::train::{train, TrainConfig};
use scnn::tensor::Tensor;

#[test]
fn idx_roundtrip_then_train() {
    // Write a synthetic dataset in real MNIST IDX format, read it back,
    // and train on the decoded data — the path a user with the genuine
    // files exercises.
    let ds = generate(
        &MnistSynthConfig {
            per_class: 6,
            side: 12,
            ..MnistSynthConfig::default()
        },
        5,
    )
    .unwrap();
    let images: Vec<Tensor> = ds.iter().map(|(img, _)| img.clone()).collect();
    let labels: Vec<usize> = ds.iter().map(|(_, l)| l).collect();

    let mut img_bytes = Vec::new();
    idx::write_images(&mut img_bytes, &images).unwrap();
    let mut lbl_bytes = Vec::new();
    idx::write_labels(&mut lbl_bytes, &labels).unwrap();

    let decoded = idx::read_dataset(&img_bytes[..], &lbl_bytes[..], 10).unwrap();
    assert_eq!(decoded.len(), ds.len());
    assert_eq!(decoded.class_counts(), ds.class_counts());

    let mut net = models::small_cnn(1, 12, 10, 3);
    let report = train(
        &mut net,
        &decoded.to_samples(),
        &TrainConfig {
            epochs: 2,
            ..TrainConfig::default()
        },
    )
    .unwrap();
    assert!(report.epoch_losses[1] < report.epoch_losses[0] * 1.2);
}

#[test]
fn cifar_bin_roundtrip_preserves_selection() {
    let ds = cifar_synth::generate(
        &cifar_synth::CifarSynthConfig {
            per_class: 3,
            ..cifar_synth::CifarSynthConfig::default()
        },
        6,
    )
    .unwrap();
    let mut bytes = Vec::new();
    cifar_bin::write_batch(&mut bytes, &ds).unwrap();
    let decoded = cifar_bin::read_batch(&bytes[..]).unwrap();

    // The paper's 4-category selection must behave identically on decoded
    // data.
    let sel_a = ds.select_classes(&[0, 1, 2, 3]);
    let sel_b = decoded.select_classes(&[0, 1, 2, 3]);
    assert_eq!(sel_a.len(), sel_b.len());
    assert_eq!(sel_a.class_counts(), sel_b.class_counts());
}

#[test]
fn normalization_and_split_compose() {
    let mut ds = generate(
        &MnistSynthConfig {
            per_class: 10,
            side: 12,
            ..MnistSynthConfig::default()
        },
        8,
    )
    .unwrap();
    let (mean, std) = ds.normalize();
    assert!(std > 0.0 && mean > 0.0);
    let (train_set, test_set) = ds.split(0.7, 1);
    assert_eq!(train_set.len() + test_set.len(), ds.len());
    assert_eq!(train_set.class_counts(), vec![7; 10]);
}
