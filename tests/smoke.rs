//! CI smoke test: the paper's headline claim, exercised on every push.
//!
//! Runs the full tiny-scale pipeline (synthetic MNIST → CNN training →
//! instrumented inference → HPC collection → `Evaluator` t-tests) with
//! `ModelScale::Tiny` and asserts the evaluator raises an alarm whose
//! triggering events include `cache-misses` — the leak of Figure 1 and
//! Table 1. Kept deliberately small so the whole test finishes in a few
//! seconds even in debug builds.

use scnn::core::json::ToJson;
use scnn::core::pipeline::{DatasetKind, Experiment, ExperimentConfig, ModelScale};
use scnn::hpc::HpcEvent;
use scnn::uarch::CoreConfig;

#[test]
fn tiny_scale_pipeline_raises_cache_miss_alarm() {
    let mut cfg = ExperimentConfig::quick(DatasetKind::Mnist).samples(8);
    assert_eq!(cfg.scale, ModelScale::Tiny, "quick config is tiny-scale");
    cfg.train_per_class = 8;
    cfg.test_per_class = 4;
    cfg.pmu.core = CoreConfig::tiny();

    let outcome = Experiment::new(cfg).run().unwrap();

    let alarm = outcome.report.alarm();
    assert!(alarm.raised(), "tiny-scale run must leak");
    assert!(
        alarm.triggering_events().contains(&HpcEvent::CacheMisses),
        "cache-misses is the paper's headline leaking event, got {:?}",
        alarm.triggering_events()
    );

    // The report also serialises: the machine-readable artefact CI can
    // archive is well-formed (balanced, non-empty, names the event).
    let json = outcome.report.to_json();
    assert!(json.contains("\"cache-misses\""), "json:\n{json}");
    let depth = json.chars().fold(0i64, |d, c| match c {
        '{' | '[' => d + 1,
        '}' | ']' => d - 1,
        _ => d,
    });
    assert_eq!(depth, 0, "balanced JSON");
}
