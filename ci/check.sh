#!/usr/bin/env bash
# Local tier-1 gate — mirrors .github/workflows/ci.yml exactly.
#
# The workspace is hermetic (zero external crates), so every cargo step
# runs with --offline / CARGO_NET_OFFLINE=true: a step that needs the
# network is a regression, not an inconvenience. Run from the repo root:
#
#   ci/check.sh
#
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

step() { printf '\n== %s ==\n' "$*"; }

step "cargo fmt --check"
cargo fmt --all -- --check

step "cargo clippy (all targets, -D warnings)"
cargo clippy --offline --workspace --all-targets -- -D warnings

step "cargo build --release --offline"
cargo build --release --offline --workspace

step "cargo test --offline"
cargo test -q --offline --workspace

step "batch-equivalence suite (batched GEMM path bitwise-equals scalar path)"
cargo test -q --offline -p scnn-nn --test batch

step "repro smoke run (tiny scale, threads 1 vs 4 must be byte-identical)"
out="$(cargo run --release --offline -q -p scnn-bench --bin repro -- \
      table1 --quick --samples 8 --threads 1)"
out4="$(cargo run --release --offline -q -p scnn-bench --bin repro -- \
      table1 --quick --samples 8 --threads 4)"
printf '%s\n' "$out"
printf '%s' "$out" | grep -q "ALARM" || { echo "FAIL: no alarm raised"; exit 1; }
printf '%s' "$out" | grep -q "cache-misses" || { echo "FAIL: cache-misses absent"; exit 1; }
diff <(printf '%s' "$out") <(printf '%s' "$out4") \
  || { echo "FAIL: report differs between --threads 1 and --threads 4"; exit 1; }

step "telemetry smoke run (observation-only: stdout must not change)"
telemetry_json="$(mktemp)"
out_tel="$(cargo run --release --offline -q -p scnn-bench --bin repro -- \
      table1 --quick --samples 8 --threads 4 --telemetry "$telemetry_json")"
diff <(printf '%s' "$out4") <(printf '%s' "$out_tel") \
  || { echo "FAIL: report differs with --telemetry on"; exit 1; }
cargo run --release --offline -q -p scnn-bench --bin telemetry_lint -- "$telemetry_json" \
  || { echo "FAIL: telemetry JSON did not lint"; exit 1; }
grep -q '"name":"pipeline.train"' "$telemetry_json" \
  || { echo "FAIL: telemetry missing the train phase span"; exit 1; }
grep -q '"name":"collect.samples"' "$telemetry_json" \
  || { echo "FAIL: telemetry missing the collect.samples counter"; exit 1; }
rm -f "$telemetry_json"

step "artifact cache (warm rerun skips training, stdout byte-identical)"
cache_dir="$(mktemp -d)"
cold_err="$(mktemp)"
warm_err="$(mktemp)"
out_cold="$(cargo run --release --offline -q -p scnn-bench --bin repro -- \
      table1 --quick --samples 8 --threads 4 --cache-dir "$cache_dir" 2>"$cold_err")"
out_warm="$(cargo run --release --offline -q -p scnn-bench --bin repro -- \
      table1 --quick --samples 8 --threads 4 --cache-dir "$cache_dir" 2>"$warm_err")"
grep -q "model miss — trained and stored" "$cold_err" \
  || { echo "FAIL: cold run did not report a model miss"; cat "$cold_err"; exit 1; }
grep -q "model hit — training skipped" "$warm_err" \
  || { echo "FAIL: warm run did not skip training"; cat "$warm_err"; exit 1; }
diff <(printf '%s' "$out_cold") <(printf '%s' "$out_warm") \
  || { echo "FAIL: report differs between cold and warm cache runs"; exit 1; }
diff <(printf '%s' "$out4") <(printf '%s' "$out_cold") \
  || { echo "FAIL: report differs between cached and uncached runs"; exit 1; }
rm -rf "$cache_dir" "$cold_err" "$warm_err"

step "uarch preset zoo lints (strict parse + canonical round-trip)"
cargo run --release --offline -q -p scnn-bench --bin uarch_lint \
  || { echo "FAIL: embedded presets did not lint"; exit 1; }
cargo run --release --offline -q -p scnn-bench --bin uarch_lint -- crates/core/presets/*.json \
  || { echo "FAIL: preset files did not lint"; exit 1; }

step "uarch zoo sweep (>=3 presets, warm rerun skips train/collect, stdout byte-identical)"
sweep_cache="$(mktemp -d)"
sweep_json="$(mktemp)"
sweep_tel="$(mktemp)"
out_sweep_cold="$(cargo run --release --offline -q -p scnn-bench --bin repro -- \
      sweep --quick --samples 8 --threads 4 --cache-dir "$sweep_cache" --out "$sweep_json")"
out_sweep_warm="$(cargo run --release --offline -q -p scnn-bench --bin repro -- \
      sweep --quick --samples 8 --threads 4 --cache-dir "$sweep_cache" --out "$sweep_json" \
      --telemetry "$sweep_tel")"
printf '%s\n' "$out_sweep_cold"
for preset in xeon-like mobile-like embedded-like xeon-plru; do
  printf '%s' "$out_sweep_cold" | grep -q "$preset" \
    || { echo "FAIL: sweep table missing preset $preset"; exit 1; }
  grep -q "\"preset\":\"$preset\"" "$sweep_json" \
    || { echo "FAIL: sweep JSON missing preset row $preset"; exit 1; }
done
diff <(printf '%s' "$out_sweep_cold") <(printf '%s' "$out_sweep_warm") \
  || { echo "FAIL: sweep stdout differs between cold and warm cache runs"; exit 1; }
# Warm rerun must resume from artifacts: no train or collect spans.
if grep -q '"name":"pipeline.train"' "$sweep_tel"; then
  echo "FAIL: warm sweep re-trained the model"; exit 1
fi
if grep -q '"name":"pipeline.collect"' "$sweep_tel"; then
  echo "FAIL: warm sweep re-collected observations"; exit 1
fi
grep -q '"name":"sweep.preset"' "$sweep_tel" \
  || { echo "FAIL: sweep telemetry missing per-preset spans"; exit 1; }
# The zoo must actually separate platforms: at least two distinct
# distinguishable-pair counts across presets.
distinct="$(grep -o '"distinguishable_pairs":[0-9]*' "$sweep_json" | sort -u | wc -l)"
[ "$distinct" -ge 2 ] \
  || { echo "FAIL: all presets report identical distinguishable-pair counts"; cat "$sweep_json"; exit 1; }
rm -rf "$sweep_cache" "$sweep_json" "$sweep_tel"

step "architecture extraction smoke (recovery floor, cold/warm byte-identical, JSON lints)"
extract_cache="$(mktemp -d)"
extract_json="$(mktemp)"
out_ex_cold="$(cargo run --release --offline -q -p scnn-bench --bin repro -- \
      extract --quick --samples 8 --threads 4 --cache-dir "$extract_cache" --out "$extract_json")"
out_ex_warm="$(cargo run --release --offline -q -p scnn-bench --bin repro -- \
      extract --quick --samples 8 --threads 4 --cache-dir "$extract_cache" --out "$extract_json")"
printf '%s\n' "$out_ex_cold"
for arm in unprotected constant-time noise-injection combined; do
  printf '%s' "$out_ex_cold" | grep -q "$arm" \
    || { echo "FAIL: extraction table missing arm $arm"; exit 1; }
done
printf '%s' "$out_ex_cold" | grep -q "victim (ground truth)" \
  || { echo "FAIL: extraction output missing the ground-truth line"; exit 1; }
diff <(printf '%s' "$out_ex_cold") <(printf '%s' "$out_ex_warm") \
  || { echo "FAIL: extraction stdout differs between cold and warm cache runs"; exit 1; }
cargo run --release --offline -q -p scnn-bench --bin extract_lint -- "$extract_json" \
  || { echo "FAIL: extraction JSON did not lint"; exit 1; }
rm -rf "$extract_cache" "$extract_json"

step "countermeasure frontier smoke (all arms, Pareto set, cold/warm byte-identical, JSON lints)"
frontier_cache="$(mktemp -d)"
frontier_json="$(mktemp)"
out_fr_cold="$(cargo run --release --offline -q -p scnn-bench --bin repro -- \
      frontier --quick --samples 8 --threads 4 --cache-dir "$frontier_cache" --out "$frontier_json")"
out_fr_warm="$(cargo run --release --offline -q -p scnn-bench --bin repro -- \
      frontier --quick --samples 8 --threads 4 --cache-dir "$frontier_cache" --out "$frontier_json")"
printf '%s\n' "$out_fr_cold"
for arm in baseline constant-time shuffle noise-injection decoy-inference oblivious-shape calibrated-noise; do
  printf '%s' "$out_fr_cold" | grep -q "$arm" \
    || { echo "FAIL: frontier table missing arm $arm"; exit 1; }
  grep -q "\"arm\":\"$arm\"" "$frontier_json" \
    || { echo "FAIL: frontier JSON missing arm row $arm"; exit 1; }
done
printf '%s' "$out_fr_cold" | grep -q "pareto frontier: [a-z]" \
  || { echo "FAIL: frontier printed an empty Pareto set"; exit 1; }
diff <(printf '%s' "$out_fr_cold") <(printf '%s' "$out_fr_warm") \
  || { echo "FAIL: frontier stdout differs between cold and warm cache runs"; exit 1; }
cargo run --release --offline -q -p scnn-bench --bin frontier_lint -- "$frontier_json" \
  || { echo "FAIL: frontier JSON did not lint"; exit 1; }
rm -rf "$frontier_cache" "$frontier_json"

step "evaluation service smoke (concurrent jobs, shared cache, byte-identical to direct runs)"
serve_dir="$(mktemp -d)"
cat > "$serve_dir/jobs.ndjson" <<'EOF'
{"id":"a","command":"table1","quick":true,"samples":8,"threads":1}
{"id":"b","command":"table1","quick":true,"samples":8,"threads":1}
{"id":"c","command":"table2","quick":true,"samples":8,"threads":1}
{"id":"bye","command":"shutdown"}
EOF
cargo run --release --offline -q -p scnn-bench --bin repro -- \
      serve --jobs "$serve_dir/jobs.ndjson" --workers 3 \
      --cache-dir "$serve_dir/cache" --job-stdout-dir "$serve_dir/out" \
      --out "$serve_dir/report.json" \
      > "$serve_dir/responses.ndjson" 2> "$serve_dir/serve.err" \
  || { echo "FAIL: repro serve exited non-zero"; cat "$serve_dir/serve.err"; exit 1; }
cargo run --release --offline -q -p scnn-bench --bin repro -- \
      table1 --quick --samples 8 --threads 1 > "$serve_dir/direct_table1.out"
cargo run --release --offline -q -p scnn-bench --bin repro -- \
      table2 --quick --samples 8 --threads 1 > "$serve_dir/direct_table2.out"
# Per-job stdout must be byte-identical to the equivalent direct CLI run,
# and the two jobs sharing one cache key must agree with each other.
diff "$serve_dir/direct_table1.out" "$serve_dir/out/a.out" \
  || { echo "FAIL: service job a differs from direct table1 run"; exit 1; }
diff "$serve_dir/out/a.out" "$serve_dir/out/b.out" \
  || { echo "FAIL: jobs a and b (same cache key) produced different output"; exit 1; }
diff "$serve_dir/direct_table2.out" "$serve_dir/out/c.out" \
  || { echo "FAIL: service job c differs from direct table2 run"; exit 1; }
# Every job answered exactly once, shutdown honoured.
ok_count="$(grep -c '"status":"ok"' "$serve_dir/responses.ndjson")"
[ "$ok_count" -eq 4 ] \
  || { echo "FAIL: expected 4 ok responses, got $ok_count"; cat "$serve_dir/responses.ndjson"; exit 1; }
grep -q '"jobs":4' "$serve_dir/report.json" && grep -q '"shutdown":true' "$serve_dir/report.json" \
  || { echo "FAIL: service report accounting wrong"; cat "$serve_dir/report.json"; exit 1; }
# Concurrency hygiene: committed artifacts only — no orphaned tmp files,
# nothing quarantined.
leftover_tmp="$(find "$serve_dir/cache" -name '.tmp-*' | wc -l)"
[ "$leftover_tmp" -eq 0 ] \
  || { echo "FAIL: $leftover_tmp orphaned .tmp files in the shared cache"; exit 1; }
quarantined="$(find "$serve_dir/cache/quarantine" -type f 2>/dev/null | wc -l)"
[ "$quarantined" -eq 0 ] \
  || { echo "FAIL: $quarantined artifacts quarantined during the smoke run"; exit 1; }
rm -rf "$serve_dir"

step "bench invariant gate (bit_identical, batch-inference speedup, service delivery)"
ci/bench_gate.sh

step "all checks passed"
