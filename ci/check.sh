#!/usr/bin/env bash
# Local tier-1 gate — mirrors .github/workflows/ci.yml exactly.
#
# The workspace is hermetic (zero external crates), so every cargo step
# runs with --offline / CARGO_NET_OFFLINE=true: a step that needs the
# network is a regression, not an inconvenience. Run from the repo root:
#
#   ci/check.sh
#
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

step() { printf '\n== %s ==\n' "$*"; }

step "cargo fmt --check"
cargo fmt --all -- --check

step "cargo clippy (all targets, -D warnings)"
cargo clippy --offline --workspace --all-targets -- -D warnings

step "cargo build --release --offline"
cargo build --release --offline --workspace

step "cargo test --offline"
cargo test -q --offline --workspace

step "batch-equivalence suite (batched GEMM path bitwise-equals scalar path)"
cargo test -q --offline -p scnn-nn --test batch

step "repro smoke run (tiny scale, threads 1 vs 4 must be byte-identical)"
out="$(cargo run --release --offline -q -p scnn-bench --bin repro -- \
      table1 --quick --samples 8 --threads 1)"
out4="$(cargo run --release --offline -q -p scnn-bench --bin repro -- \
      table1 --quick --samples 8 --threads 4)"
printf '%s\n' "$out"
printf '%s' "$out" | grep -q "ALARM" || { echo "FAIL: no alarm raised"; exit 1; }
printf '%s' "$out" | grep -q "cache-misses" || { echo "FAIL: cache-misses absent"; exit 1; }
diff <(printf '%s' "$out") <(printf '%s' "$out4") \
  || { echo "FAIL: report differs between --threads 1 and --threads 4"; exit 1; }

step "telemetry smoke run (observation-only: stdout must not change)"
telemetry_json="$(mktemp)"
out_tel="$(cargo run --release --offline -q -p scnn-bench --bin repro -- \
      table1 --quick --samples 8 --threads 4 --telemetry "$telemetry_json")"
diff <(printf '%s' "$out4") <(printf '%s' "$out_tel") \
  || { echo "FAIL: report differs with --telemetry on"; exit 1; }
cargo run --release --offline -q -p scnn-bench --bin telemetry_lint -- "$telemetry_json" \
  || { echo "FAIL: telemetry JSON did not lint"; exit 1; }
grep -q '"name":"pipeline.train"' "$telemetry_json" \
  || { echo "FAIL: telemetry missing the train phase span"; exit 1; }
grep -q '"name":"collect.samples"' "$telemetry_json" \
  || { echo "FAIL: telemetry missing the collect.samples counter"; exit 1; }
rm -f "$telemetry_json"

step "artifact cache (warm rerun skips training, stdout byte-identical)"
cache_dir="$(mktemp -d)"
cold_err="$(mktemp)"
warm_err="$(mktemp)"
out_cold="$(cargo run --release --offline -q -p scnn-bench --bin repro -- \
      table1 --quick --samples 8 --threads 4 --cache-dir "$cache_dir" 2>"$cold_err")"
out_warm="$(cargo run --release --offline -q -p scnn-bench --bin repro -- \
      table1 --quick --samples 8 --threads 4 --cache-dir "$cache_dir" 2>"$warm_err")"
grep -q "model miss — trained and stored" "$cold_err" \
  || { echo "FAIL: cold run did not report a model miss"; cat "$cold_err"; exit 1; }
grep -q "model hit — training skipped" "$warm_err" \
  || { echo "FAIL: warm run did not skip training"; cat "$warm_err"; exit 1; }
diff <(printf '%s' "$out_cold") <(printf '%s' "$out_warm") \
  || { echo "FAIL: report differs between cold and warm cache runs"; exit 1; }
diff <(printf '%s' "$out4") <(printf '%s' "$out_cold") \
  || { echo "FAIL: report differs between cached and uncached runs"; exit 1; }
rm -rf "$cache_dir" "$cold_err" "$warm_err"

step "all checks passed"
