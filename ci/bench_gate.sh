#!/usr/bin/env bash
# Benchmark invariant gate — runs the `parallel` and `service` benches
# and fails on broken *invariants*, never on timings.
#
# CI machines have noisy, heterogeneous performance, so asserting "the
# parallel path is N× faster" would flake. Two properties are load-
# bearing and machine-independent, and those are what this gate checks
# in the emitted BENCH_parallel.json:
#
#   1. bit_identical == true — the parallel collect/evaluate paths and
#      the batched GEMM inference path produced byte-identical results
#      to their sequential/scalar counterparts (the determinism
#      contract; a timing-independent correctness assertion).
#   2. batch_infer speedup >= 1.0 — batched inference amortises GEMM
#      setup algorithmically, so it must not be slower than per-sample
#      inference even on a single-CPU host. A regression below 1.0
#      means the batching path stopped paying for itself.
#
# It also checks the report carries both parallelism fields
# (host_parallelism from /proc/cpuinfo, available_parallelism from the
# runtime) so speedup columns stay interpretable on pinned CI shards.
#
#   ci/bench_gate.sh
#
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== bench gate: parallel invariants =="
cargo bench -q --offline -p scnn-bench --bench parallel

report="BENCH_parallel.json"
[ -f "$report" ] || { echo "FAIL: $report was not written"; exit 1; }

grep -q '"bit_identical": true' "$report" \
  || { echo "FAIL: bit_identical is not true"; cat "$report"; exit 1; }

grep -q '"host_parallelism": [0-9]' "$report" \
  || { echo "FAIL: host_parallelism missing"; cat "$report"; exit 1; }
grep -q '"available_parallelism": [0-9]' "$report" \
  || { echo "FAIL: available_parallelism missing"; cat "$report"; exit 1; }
grep -q '"degraded_host": \(true\|false\)' "$report" \
  || { echo "FAIL: degraded_host flag missing"; cat "$report"; exit 1; }

# On an effectively single-CPU host the "parallel" arms time-slice one
# core, so the speedup columns measure scheduler overhead, not
# parallelism. Skip any judgement of them — loudly, so a reader of the
# CI log knows the columns were not vouched for on this shard.
if grep -q '"degraded_host": true' "$report"; then
  echo "=============================================================================="
  echo "SKIP: degraded host (host/available parallelism is 1)."
  echo "      The threads_1 vs threads_n speedup columns in $report"
  echo "      measure time-slicing overhead on this shard, not parallel scaling."
  echo "      Determinism (bit_identical) and single-thread invariants still gate."
  echo "=============================================================================="
fi

# batch_infer_ms.speedup >= 1.0: extract the last "speedup" value on the
# batch_infer_ms line and compare with awk (no bc dependency).
speedup="$(grep '"batch_infer_ms"' "$report" | sed 's/.*"speedup": \([0-9.]*\).*/\1/')"
[ -n "$speedup" ] || { echo "FAIL: batch_infer speedup missing"; cat "$report"; exit 1; }
awk -v s="$speedup" 'BEGIN { exit (s >= 1.0) ? 0 : 1 }' \
  || { echo "FAIL: batch_infer speedup $speedup < 1.0"; cat "$report"; exit 1; }

echo "== bench gate: service invariants =="
cargo bench -q --offline -p scnn-bench --bench service

service_report="BENCH_service.json"
[ -f "$service_report" ] || { echo "FAIL: $service_report was not written"; exit 1; }

# The service bench asserts exactly-once delivery and warm==cold
# byte-identity internally (a violation aborts before the JSON is
# written); the gate re-checks the recorded outcome so a stale or
# hand-edited report cannot pass.
grep -q '"lost": 0, "duplicated": 0' "$service_report" \
  || { echo "FAIL: service bench lost or duplicated jobs"; cat "$service_report"; exit 1; }
grep -q '"warm_equals_cold": true' "$service_report" \
  || { echo "FAIL: warm service output diverged from cold"; cat "$service_report"; exit 1; }
grep -q '"total": 200' "$service_report" \
  || { echo "FAIL: service bench did not queue 200 jobs"; cat "$service_report"; exit 1; }
grep -q '"ok": 200' "$service_report" \
  || { echo "FAIL: service bench jobs failed"; cat "$service_report"; exit 1; }

# Warm submissions dominate 8 cold arms 24:1, so the shared-cache hit
# rate must be high. The exact value depends on how many racing
# submissions of one arm start before its first write commits, so gate
# on a conservative floor rather than a point value.
hit_rate="$(grep '"cache"' "$service_report" | sed 's/.*"hit_rate": \([0-9.]*\).*/\1/')"
[ -n "$hit_rate" ] || { echo "FAIL: cache hit_rate missing"; cat "$service_report"; exit 1; }
awk -v h="$hit_rate" 'BEGIN { exit (h >= 0.5) ? 0 : 1 }' \
  || { echo "FAIL: service cache hit rate $hit_rate < 0.5"; cat "$service_report"; exit 1; }

echo "bench gate OK (bit_identical, batch_infer speedup $speedup, service hit rate $hit_rate)"
