#!/usr/bin/env bash
# Benchmark invariant gate — runs the `parallel` bench and fails on
# broken *invariants*, never on timings.
#
# CI machines have noisy, heterogeneous performance, so asserting "the
# parallel path is N× faster" would flake. Two properties are load-
# bearing and machine-independent, and those are what this gate checks
# in the emitted BENCH_parallel.json:
#
#   1. bit_identical == true — the parallel collect/evaluate paths and
#      the batched GEMM inference path produced byte-identical results
#      to their sequential/scalar counterparts (the determinism
#      contract; a timing-independent correctness assertion).
#   2. batch_infer speedup >= 1.0 — batched inference amortises GEMM
#      setup algorithmically, so it must not be slower than per-sample
#      inference even on a single-CPU host. A regression below 1.0
#      means the batching path stopped paying for itself.
#
# It also checks the report carries both parallelism fields
# (host_parallelism from /proc/cpuinfo, available_parallelism from the
# runtime) so speedup columns stay interpretable on pinned CI shards.
#
#   ci/bench_gate.sh
#
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== bench gate: parallel invariants =="
cargo bench -q --offline -p scnn-bench --bench parallel

report="BENCH_parallel.json"
[ -f "$report" ] || { echo "FAIL: $report was not written"; exit 1; }

grep -q '"bit_identical": true' "$report" \
  || { echo "FAIL: bit_identical is not true"; cat "$report"; exit 1; }

grep -q '"host_parallelism": [0-9]' "$report" \
  || { echo "FAIL: host_parallelism missing"; cat "$report"; exit 1; }
grep -q '"available_parallelism": [0-9]' "$report" \
  || { echo "FAIL: available_parallelism missing"; cat "$report"; exit 1; }

# batch_infer_ms.speedup >= 1.0: extract the last "speedup" value on the
# batch_infer_ms line and compare with awk (no bc dependency).
speedup="$(grep '"batch_infer_ms"' "$report" | sed 's/.*"speedup": \([0-9.]*\).*/\1/')"
[ -n "$speedup" ] || { echo "FAIL: batch_infer speedup missing"; cat "$report"; exit 1; }
awk -v s="$speedup" 'BEGIN { exit (s >= 1.0) ? 0 : 1 }' \
  || { echo "FAIL: batch_infer speedup $speedup < 1.0"; cat "$report"; exit 1; }

echo "bench gate OK (bit_identical, batch_infer speedup $speedup)"
