//! The adversary's view: recover which category of CIFAR-10 image a
//! victim classified, purely from hardware-performance-counter readings —
//! the "reverse engineering" of the paper's title made concrete.
//!
//! ```text
//! cargo run --release --example attack_cifar [samples_per_category]
//! ```

use scnn::core::attack::{AttackClassifier, AttackConfig};
use scnn::core::pipeline::{DatasetKind, Experiment, ExperimentConfig};

fn main() -> scnn::core::Result<()> {
    let samples: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()
        .map_err(|e| scnn::core::Error::msg(format!("samples argument: {e}")))?
        .unwrap_or(60);

    let config = ExperimentConfig::paper(DatasetKind::Cifar10).samples(samples);
    println!("running the CIFAR-10 case study ({samples} measurements per category)…");
    let outcome = Experiment::new(config).run()?;
    println!(
        "victim CNN test accuracy: {:.1}%",
        outcome.test_accuracy * 100.0
    );
    println!("\nevaluator verdict: {}\n", outcome.report.alarm());

    // The attacker profiles half the measurements per category, then
    // labels the other half.
    for (name, classifier) in [
        (
            "Gaussian template attack",
            AttackClassifier::GaussianTemplate,
        ),
        ("5-nearest-neighbours", AttackClassifier::Knn { k: 5 }),
    ] {
        let result = outcome.mount_attack(&AttackConfig::default().classifier(classifier))?;
        println!("--- {name} ---");
        print!("{result}");
        println!(
            "verdict: {}\n",
            if result.beats_chance_by(0.15) {
                "input categories are recoverable from the side channel"
            } else {
                "recovery is no better than guessing"
            }
        );
    }
    Ok(())
}
