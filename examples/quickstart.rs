//! Quickstart: run the paper's evaluation pipeline end to end on a small
//! scale and print the verdict.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use scnn::core::pipeline::{DatasetKind, Experiment, ExperimentConfig};

fn main() -> scnn::core::Result<()> {
    // A fast, small-scale configuration: synthetic MNIST, a compact CNN,
    // a simulated Xeon-class PMU, 12 measurements per category.
    let config = ExperimentConfig::quick(DatasetKind::Mnist).samples(12);
    println!(
        "running quick MNIST experiment ({} measurements per category)…\n",
        config.collection.samples_per_category
    );

    let outcome = Experiment::new(config).run()?;

    println!(
        "CNN trained to {:.1}% train / {:.1}% test accuracy",
        outcome.train_report.final_train_accuracy * 100.0,
        outcome.test_accuracy * 100.0
    );
    println!();
    println!("{}", outcome.report.render_table());

    let alarm = outcome.report.alarm();
    if alarm.raised() {
        println!("the evaluator raised an alarm — this CNN implementation leaks its inputs.");
    } else {
        println!("no leakage detected at this sample size.");
    }
    Ok(())
}
