//! Model persistence: train once, save the model to disk, reload it in a
//! "deployment" process and show that the restored network classifies —
//! and *leaks* — identically to the original.
//!
//! ```text
//! cargo run --release --example save_load [model_path]
//! ```

use scnn::data::mnist_synth::{generate, MnistSynthConfig};
use scnn::nn::train::{accuracy, train, TrainConfig};
use scnn::nn::{models, Network};
use scnn::uarch::CountingProbe;

fn main() -> scnn::core::Result<()> {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "/tmp/scnn_mnist.model".to_owned());

    // -- Training side -----------------------------------------------------
    println!("training…");
    let train_set = generate(
        &MnistSynthConfig {
            per_class: 40,
            ..MnistSynthConfig::default()
        },
        0xDAC2019,
    )?;
    let mut net = models::mnist_cnn(42);
    let report = train(
        &mut net,
        &train_set.to_samples(),
        &TrainConfig {
            epochs: 3,
            ..TrainConfig::default()
        },
    )?;
    println!(
        "  trained to {:.1}% train accuracy ({} parameters)",
        report.final_train_accuracy * 100.0,
        net.param_count()
    );

    let bytes = net.to_bytes();
    std::fs::write(&path, &bytes)?;
    println!("saved {} bytes to {path}", bytes.len());

    // -- Deployment side ---------------------------------------------------
    let mut restored = Network::from_bytes(&std::fs::read(&path)?)?;
    println!(
        "reloaded: {} layers, {} parameters",
        restored.len(),
        restored.param_count()
    );

    let test_set = generate(
        &MnistSynthConfig {
            per_class: 10,
            ..MnistSynthConfig::default()
        },
        7,
    )?;
    let samples = test_set.to_samples();
    let acc_original = accuracy(&mut net, &samples)?;
    let acc_restored = accuracy(&mut restored, &samples)?;
    println!(
        "accuracy: original {:.1}%, restored {:.1}%",
        acc_original * 100.0,
        acc_restored * 100.0
    );
    assert_eq!(acc_original, acc_restored, "weights round-trip bit-for-bit");

    // The side-channel footprint survives serialization too: same loads,
    // stores and branches for the same input.
    let (image, _) = samples.first().expect("test set non-empty");
    let count = |n: &Network| {
        let mut probe = CountingProbe::new();
        n.infer_traced(image, &mut probe).expect("shape is valid");
        (probe.loads, probe.stores, probe.branches)
    };
    let a = count(&net);
    let b = count(&restored);
    println!("footprint original {a:?} vs restored {b:?}");
    assert_eq!(a, b, "the leak profile is a property of the weights");
    println!("restored model behaves identically — including its side channel.");
    Ok(())
}
