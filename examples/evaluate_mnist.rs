//! The paper's MNIST case study (§5.2), spelled out step by step with the
//! underlying APIs instead of the one-shot `Experiment` driver:
//!
//! 1. generate a class-conditioned MNIST-style dataset;
//! 2. train the case-study CNN;
//! 3. measure HPC events around each classification with a `perf stat`
//!    style session over the simulated Xeon PMU;
//! 4. run pairwise t-tests per event and print Table 1 / Figures 1 & 3.
//!
//! ```text
//! cargo run --release --example evaluate_mnist [samples_per_category]
//! ```

use scnn::core::collect::{collect, CollectionConfig};
use scnn::core::evaluator::{Evaluator, EvaluatorConfig};
use scnn::core::report::{render_distributions, render_summary};
use scnn::data::mnist_synth::{self, MnistSynthConfig};
use scnn::hpc::{HpcEvent, SimPmuConfig, SimulatedPmu};
use scnn::nn::models;
use scnn::nn::train::{accuracy, train, TrainConfig};

fn main() -> scnn::core::Result<()> {
    let samples: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()
        .map_err(|e| scnn::core::Error::msg(format!("samples argument: {e}")))?
        .unwrap_or(60);

    // 1. Data: 10 digit classes; the evaluator will monitor 4 of them,
    //    exactly like the paper.
    println!("generating synthetic MNIST…");
    let train_set = mnist_synth::generate(
        &MnistSynthConfig {
            per_class: 60,
            ..MnistSynthConfig::default()
        },
        0xDAC2019,
    )?;
    let test_set = mnist_synth::generate(
        &MnistSynthConfig {
            per_class: 25,
            ..MnistSynthConfig::default()
        },
        0xDAC2019 ^ 0xFACE,
    )?;

    // 2. Model: the LeNet-style CNN of §5.2, with the data-dependent
    //    (zero-skipping, branchy-ReLU) kernels a real CPU stack uses.
    println!("training the case-study CNN…");
    let mut net = models::mnist_cnn(42);
    let report = train(&mut net, &train_set.to_samples(), &TrainConfig::default())?;
    println!(
        "  train accuracy {:.1}%, test accuracy {:.1}%",
        report.final_train_accuracy * 100.0,
        accuracy(&mut net, &test_set.to_samples())? * 100.0
    );

    // 3. Measurement: the evaluator watches cache-misses and branches in
    //    parallel — the two events of the paper's Tables 1–2 — for four
    //    categories of test inputs.
    println!("collecting {samples} measurements per category…");
    let monitored = test_set.select_classes(&[0, 1, 2, 3]);
    let mut pmu = SimulatedPmu::new(SimPmuConfig::default(), 0x9019)?;
    let config = CollectionConfig {
        events: vec![HpcEvent::CacheMisses, HpcEvent::Branches],
        samples_per_category: samples,
        ..CollectionConfig::default()
    };
    let observations = collect(&mut net, &monitored, &mut pmu, &config)?;

    // 4. Hypothesis testing at 95% confidence (the paper's §4).
    let leakage = Evaluator::new(EvaluatorConfig::default()).evaluate(&observations)?;

    println!("\n--- Figure 1(a): average cache-misses per category ---");
    print!("{}", leakage.render_means(HpcEvent::CacheMisses, 40));

    println!("\n--- Figure 3: distributions ---");
    print!("{}", render_summary(&observations, HpcEvent::CacheMisses));
    print!(
        "{}",
        render_distributions(&observations, HpcEvent::CacheMisses, 10)
    );

    println!("\n--- Table 1: pairwise t-tests ---");
    print!("{}", leakage.render_table());
    Ok(())
}
