//! Countermeasure ablation: the paper's conclusion calls for "CNN
//! architectures with indistinguishable CPU footprints" — this example
//! measures how far each mitigation gets.
//!
//! ```text
//! cargo run --release --example countermeasures [samples_per_category]
//! ```

use scnn::core::attack::AttackConfig;
use scnn::core::countermeasure::Countermeasure;
use scnn::core::pipeline::{DatasetKind, Experiment, ExperimentConfig};
use scnn::hpc::HpcEvent;

fn main() -> scnn::core::Result<()> {
    let samples: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()
        .map_err(|e| scnn::core::Error::msg(format!("samples argument: {e}")))?
        .unwrap_or(50);

    let base = ExperimentConfig::paper(DatasetKind::Mnist).samples(samples);

    let arms: Vec<(&str, Option<Countermeasure>)> = vec![
        ("leaky baseline (zero-skip + branchy ReLU)", None),
        ("constant-time kernels", Some(Countermeasure::ConstantTime)),
        (
            "noise injection (20k dummy events)",
            Some(Countermeasure::NoiseInjection {
                dummy_events: 20_000,
            }),
        ),
        (
            "constant-time + noise injection",
            Some(Countermeasure::Combined {
                dummy_events: 20_000,
            }),
        ),
    ];

    println!(
        "{:<46} {:>10} {:>10} {:>9} {:>9}",
        "configuration", "cm pairs", "br pairs", "attack", "alarm"
    );
    for (label, cm) in arms {
        let config = match cm {
            Some(cm) => base.clone().countermeasure(cm),
            None => base.clone(),
        };
        let outcome = Experiment::new(config).run()?;
        let pairs = |event: HpcEvent| {
            outcome
                .report
                .event(event)
                .map(|e| e.pairwise.leak_count())
                .unwrap_or(0)
        };
        let attack = outcome.mount_attack(&AttackConfig::default().profile_fraction(0.5))?;
        println!(
            "{:<46} {:>8}/6 {:>8}/6 {:>8.0}% {:>9}",
            label,
            pairs(HpcEvent::CacheMisses),
            pairs(HpcEvent::Branches),
            attack.accuracy * 100.0,
            if outcome.report.alarm().raised() {
                "RAISED"
            } else {
                "quiet"
            }
        );
    }
    println!("\n(pairs = category pairs distinguishable at 95%; attack chance level is 25%)");
    Ok(())
}
