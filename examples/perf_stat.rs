//! The measurement instrument by itself: a `perf stat`-style session over
//! the simulated PMU, reproducing the paper's Figure 2(b) workflow —
//! `perf stat -e <events> -p <pid>` around one classification.
//!
//! Also demonstrates the §3 hardware-counter budget: asking for more
//! events than the PMU has counters triggers time multiplexing with
//! perf-style scaled estimates.
//!
//! ```text
//! cargo run --release --example perf_stat
//! ```

use scnn::data::mnist_synth::{self, MnistSynthConfig};
use scnn::hpc::{CounterGroup, HpcEvent, PerfStat, SimPmuConfig, SimulatedPmu};
use scnn::nn::models;

fn main() -> scnn::core::Result<()> {
    let net = models::mnist_cnn(42);
    let ds = mnist_synth::generate(
        &MnistSynthConfig {
            per_class: 1,
            ..MnistSynthConfig::default()
        },
        7,
    )?;
    let (image, label) = ds
        .get(5)
        .map(|(img, l)| (img.clone(), l))
        .expect("dataset non-empty");

    // The exact eight events of the paper's Figure 2(b), all scheduled at
    // once on an 8-counter PMU.
    println!(
        "perf stat -e {} -p <cnn>",
        HpcEvent::FIG2B.map(|e| e.perf_name()).join(",")
    );
    let pmu = SimulatedPmu::new(SimPmuConfig::default(), 0xF1)?;
    let mut session = PerfStat::new(pmu, CounterGroup::new(HpcEvent::FIG2B.to_vec(), 8)?);
    let report = session.stat(&mut |probe| {
        let _ = net.classify_traced(&image, probe);
    })?;
    println!("\n(classifying one image of digit {label})\n{report}");

    // Oversubscribed: all 12 modelled events on a 4-counter budget — the
    // kernel would time-multiplex and scale, and so does the model.
    println!("--- same classification, 12 events on a 4-counter PMU (scaled) ---");
    let pmu = SimulatedPmu::new(SimPmuConfig::default(), 0xF2)?;
    let mut session = PerfStat::new(pmu, CounterGroup::new(HpcEvent::ALL.to_vec(), 4)?);
    let report = session.stat(&mut |probe| {
        let _ = net.classify_traced(&image, probe);
    })?;
    println!("{report}");
    Ok(())
}
