//! # scnn — side-channel leakage evaluation of CNN classifiers
//!
//! Facade crate for the `scnn` workspace, a full Rust reproduction of
//! *"How Secure are Deep Learning Algorithms from Side-Channel based
//! Reverse Engineering?"* (Alam & Mukhopadhyay, DAC 2019).
//!
//! The workspace builds every layer of the paper's experimental stack from
//! scratch:
//!
//! - [`tensor`] — dense `f32` tensors and reference numeric kernels;
//! - [`nn`] — CNN inference/training with microarchitecturally
//!   instrumented execution;
//! - [`uarch`] — cache hierarchy, branch predictors, TLB, prefetcher and
//!   OS-noise simulation;
//! - [`hpc`] — a `perf stat`-style hardware-performance-counter façade
//!   over the simulator (or, behind the `linux-perf` feature of
//!   `scnn-hpc`, real `perf_event_open`);
//! - [`data`] — synthetic MNIST/CIFAR-10 generators plus real-format
//!   loaders;
//! - [`stats`] — t-tests, histograms and leakage matrices;
//! - [`core`] — the paper's evaluator, plus template-attack and
//!   countermeasure extensions;
//! - [`obs`] — zero-dependency spans/counters/histograms telemetry,
//!   observation-only (never changes experiment output);
//! - [`cache`] — content-addressed on-disk artifact cache that lets the
//!   pipeline reuse trained models and resume interrupted campaigns.
//!
//! # Quickstart
//!
//! ```no_run
//! use scnn::core::pipeline::{Experiment, ExperimentConfig};
//! use scnn::core::DatasetKind;
//!
//! # fn main() -> scnn::core::error::Result<()> {
//! let config = ExperimentConfig::quick(DatasetKind::Mnist).samples(20);
//! let outcome = Experiment::new(config).run()?;
//! println!("{}", outcome.report.render_table());
//! assert!(outcome.report.alarm().raised());
//! # Ok(())
//! # }
//! ```

pub use scnn_cache as cache;
pub use scnn_core as core;
pub use scnn_data as data;
pub use scnn_hpc as hpc;
pub use scnn_nn as nn;
pub use scnn_obs as obs;
pub use scnn_par as par;
pub use scnn_stats as stats;
pub use scnn_tensor as tensor;
pub use scnn_uarch as uarch;
