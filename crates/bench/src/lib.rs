//! # scnn-bench
//!
//! Benchmark harness and paper-artefact regeneration for the `scnn`
//! workspace. The interesting entry points are:
//!
//! - the `repro` binary (`cargo run --release -p scnn-bench --bin repro`),
//!   which regenerates every table and figure of the paper plus the
//!   extension experiments;
//! - the benches under `benches/` (`cargo bench`), which measure the
//!   throughput of each substrate (t-tests, cache simulation, traced
//!   inference, the full evaluator, the template attack) on the in-tree
//!   [`harness`].
//!
//! This library target only hosts small helpers shared between them.

#![warn(missing_docs)]

pub mod flags;
pub mod harness;

use flags::{FlagError, FlagSet};
use scnn_core::pipeline::{DatasetKind, ExperimentConfig};

/// The `repro` binary's flag vocabulary — declared here (not in the
/// binary) so unit tests can exercise every flag without spawning a
/// process.
pub fn repro_flags() -> FlagSet {
    FlagSet::new(
        "repro",
        "<fig1|fig2b|fig3|fig4|table1|table2|attack|extract|ablation|noise|events|uarch|archs|sweep|frontier|serve|all> [options]",
    )
    .value("--samples", "N", "measurements per category (default 100)")
    .switch("--quick", "tiny models and few samples, for smoke tests")
    .value(
        "--classifier",
        "NAME",
        "for `attack`: profiling classifier (gaussian-template|lda|knn[:K]); default runs all three",
    )
    .value(
        "--profile-frac",
        "F",
        "for `attack`/`extract`: fraction of measurements spent profiling, in (0,1)",
    )
    .value(
        "--threads",
        "N|auto",
        "worker threads; output is bit-identical at every setting",
    )
    .value("--csv", "DIR", "also write raw figure/table series as CSV files")
    .value(
        "--telemetry",
        "PATH",
        "write span/metric telemetry JSON and show live phase progress on stderr",
    )
    .value(
        "--cache-dir",
        "DIR",
        "reuse trained models and per-category observations across runs; stdout stays byte-identical",
    )
    .value(
        "--uarch",
        "NAME|PATH",
        "simulated platform: a preset name from the zoo or a JSON config file",
    )
    .value(
        "--out",
        "PATH",
        "for `sweep`/`frontier`: write the result table as JSON; for `serve`: write the service report as JSON",
    )
    .value(
        "--dummy-events",
        "N",
        "for `ablation`/`extract`/`frontier`: mean dummy events of the noise arms (default 20000)",
    )
    .value(
        "--decoys",
        "N",
        "for `frontier`: decoy classifications per real inference (default 3)",
    )
    .value(
        "--target-t",
        "T",
        "for `frontier`: max-|t| target of the calibrated-noise arm (default 1.5)",
    )
    .value(
        "--workers",
        "N|auto",
        "for `serve`: size of the job-executing worker fleet (default auto)",
    )
    .value(
        "--jobs",
        "PATH",
        "for `serve`: read newline-delimited job JSON from a file instead of stdin",
    )
    .value(
        "--socket",
        "PATH",
        "for `serve`: accept job connections on a Unix socket instead of stdin/stdout",
    )
    .value(
        "--cache-budget",
        "BYTES",
        "for `serve`: evict oldest artifacts past this cache size after the run",
    )
    .value(
        "--job-stdout-dir",
        "DIR",
        "for `serve`: additionally write each job's captured stdout to DIR/<id>.out",
    )
    .switch("--help", "print this help")
}

/// Parses a value-taking flag as a strictly positive integer: zero is a
/// typed [`FlagError::Invalid`], not a silent no-op arm (a noise
/// countermeasure with zero dummy events, or a decoy arm with zero
/// decoys, measures nothing and would masquerade as protection).
///
/// # Errors
///
/// [`FlagError::Invalid`] on non-numeric input or zero.
pub fn parse_positive_u64(flag: &'static str, value: &str) -> Result<u64, FlagError> {
    let n: u64 = value.parse().map_err(|_| FlagError::Invalid {
        flag,
        reason: format!("expected a positive integer, got {value:?}"),
    })?;
    if n == 0 {
        return Err(FlagError::Invalid {
            flag,
            reason: "must be positive".to_owned(),
        });
    }
    Ok(n)
}

/// Parses a value-taking flag as a finite, strictly positive float
/// (thresholds like `--target-t`).
///
/// # Errors
///
/// [`FlagError::Invalid`] on non-numeric, non-finite or non-positive
/// input.
pub fn parse_positive_f64(flag: &'static str, value: &str) -> Result<f64, FlagError> {
    let t: f64 = value.parse().map_err(|_| FlagError::Invalid {
        flag,
        reason: format!("expected a number, got {value:?}"),
    })?;
    if !t.is_finite() || t <= 0.0 {
        return Err(FlagError::Invalid {
            flag,
            reason: format!("must be finite and positive, got {value}"),
        });
    }
    Ok(t)
}

/// A small but paper-shaped experiment configuration used by benches:
/// paper-scale models with few training examples and measurements so a
/// benchmark iteration stays in the tens-of-milliseconds range.
pub fn bench_config(dataset: DatasetKind) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::paper(dataset);
    cfg.train_per_class = 8;
    cfg.test_per_class = 4;
    cfg.train.epochs = 1;
    cfg.collection.samples_per_category = 4;
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_config_is_small() {
        let cfg = bench_config(DatasetKind::Mnist);
        assert!(cfg.train_per_class <= 10);
        assert!(cfg.collection.samples_per_category <= 10);
    }

    #[test]
    fn repro_samples_flag_takes_a_value() {
        let p = repro_flags().parse(["table1", "--samples", "8"]).unwrap();
        assert_eq!(p.positionals, ["table1"]);
        assert_eq!(p.value("--samples"), Some("8"));
    }

    #[test]
    fn repro_quick_flag_is_a_switch() {
        let p = repro_flags().parse(["--quick"]).unwrap();
        assert!(p.is_set("--quick"));
    }

    #[test]
    fn repro_threads_flag_takes_a_value() {
        let p = repro_flags().parse(["--threads", "auto"]).unwrap();
        assert_eq!(p.value("--threads"), Some("auto"));
    }

    #[test]
    fn repro_csv_flag_takes_a_directory() {
        let p = repro_flags().parse(["--csv", "out/csv"]).unwrap();
        assert_eq!(p.value("--csv"), Some("out/csv"));
    }

    #[test]
    fn repro_telemetry_flag_takes_a_path() {
        let p = repro_flags()
            .parse(["table1", "--telemetry", "out.json"])
            .unwrap();
        assert_eq!(p.value("--telemetry"), Some("out.json"));
        assert_eq!(
            repro_flags().parse(["--telemetry"]).unwrap_err(),
            flags::FlagError::MissingValue("--telemetry")
        );
    }

    #[test]
    fn repro_cache_dir_flag_takes_a_directory() {
        let p = repro_flags()
            .parse(["table1", "--cache-dir", "artifacts"])
            .unwrap();
        assert_eq!(p.value("--cache-dir"), Some("artifacts"));
        assert_eq!(
            repro_flags().parse(["--cache-dir"]).unwrap_err(),
            flags::FlagError::MissingValue("--cache-dir")
        );
    }

    #[test]
    fn repro_uarch_flag_takes_a_name_or_path() {
        let p = repro_flags()
            .parse(["sweep", "--uarch", "mobile-like"])
            .unwrap();
        assert_eq!(p.value("--uarch"), Some("mobile-like"));
        assert_eq!(
            repro_flags().parse(["--uarch"]).unwrap_err(),
            flags::FlagError::MissingValue("--uarch")
        );
    }

    #[test]
    fn repro_out_flag_takes_a_path() {
        let p = repro_flags()
            .parse(["sweep", "--out", "sweep.json"])
            .unwrap();
        assert_eq!(p.value("--out"), Some("sweep.json"));
        assert_eq!(
            repro_flags().parse(["--out"]).unwrap_err(),
            flags::FlagError::MissingValue("--out")
        );
    }

    #[test]
    fn repro_serve_flags_take_values() {
        let p = repro_flags()
            .parse([
                "serve",
                "--workers",
                "3",
                "--jobs",
                "jobs.ndjson",
                "--cache-budget",
                "1048576",
                "--job-stdout-dir",
                "out/jobs",
            ])
            .unwrap();
        assert_eq!(p.positionals, ["serve"]);
        assert_eq!(p.value("--workers"), Some("3"));
        assert_eq!(p.value("--jobs"), Some("jobs.ndjson"));
        assert_eq!(p.value("--cache-budget"), Some("1048576"));
        assert_eq!(p.value("--job-stdout-dir"), Some("out/jobs"));
        for flag in [
            "--workers",
            "--jobs",
            "--socket",
            "--cache-budget",
            "--job-stdout-dir",
        ] {
            assert_eq!(
                repro_flags().parse([flag]).unwrap_err(),
                flags::FlagError::MissingValue(flag),
                "{flag} needs a value"
            );
        }
    }

    #[test]
    fn repro_socket_flag_takes_a_path() {
        let p = repro_flags()
            .parse(["serve", "--socket", "/tmp/repro.sock"])
            .unwrap();
        assert_eq!(p.value("--socket"), Some("/tmp/repro.sock"));
    }

    #[test]
    fn repro_usage_names_both_sweep_commands() {
        let help = repro_flags().help();
        assert!(help.contains("noise"), "Extension C command:\n{help}");
        assert!(help.contains("sweep"), "zoo sweep command:\n{help}");
        assert!(help.contains("serve"), "service command:\n{help}");
        assert!(help.contains("extract"), "extraction command:\n{help}");
    }

    #[test]
    fn repro_classifier_flag_takes_a_name() {
        let p = repro_flags()
            .parse(["attack", "--classifier", "knn:3"])
            .unwrap();
        assert_eq!(p.value("--classifier"), Some("knn:3"));
        assert_eq!(
            repro_flags().parse(["--classifier"]).unwrap_err(),
            flags::FlagError::MissingValue("--classifier")
        );
    }

    #[test]
    fn repro_profile_frac_flag_takes_a_fraction() {
        let p = repro_flags()
            .parse(["extract", "--profile-frac", "0.6"])
            .unwrap();
        assert_eq!(p.positionals, ["extract"]);
        assert_eq!(p.value("--profile-frac"), Some("0.6"));
        assert_eq!(
            repro_flags().parse(["--profile-frac"]).unwrap_err(),
            flags::FlagError::MissingValue("--profile-frac")
        );
    }

    #[test]
    fn repro_frontier_flags_take_values() {
        let p = repro_flags()
            .parse([
                "frontier",
                "--dummy-events",
                "30000",
                "--decoys",
                "2",
                "--target-t",
                "1.8",
            ])
            .unwrap();
        assert_eq!(p.positionals, ["frontier"]);
        assert_eq!(p.value("--dummy-events"), Some("30000"));
        assert_eq!(p.value("--decoys"), Some("2"));
        assert_eq!(p.value("--target-t"), Some("1.8"));
        for flag in ["--dummy-events", "--decoys", "--target-t"] {
            assert_eq!(
                repro_flags().parse([flag]).unwrap_err(),
                flags::FlagError::MissingValue(flag),
                "{flag} needs a value"
            );
        }
        assert!(repro_flags().help().contains("frontier"));
    }

    #[test]
    fn positive_u64_rejects_zero_and_garbage() {
        assert_eq!(parse_positive_u64("--dummy-events", "20000"), Ok(20_000));
        for bad in ["0", "-3", "many", "1.5", ""] {
            let err = parse_positive_u64("--dummy-events", bad).unwrap_err();
            assert!(
                matches!(
                    err,
                    FlagError::Invalid {
                        flag: "--dummy-events",
                        ..
                    }
                ),
                "{bad:?} must be a typed flag error, got {err}"
            );
        }
    }

    #[test]
    fn positive_f64_rejects_nonpositive_and_nonfinite() {
        assert_eq!(parse_positive_f64("--target-t", "1.5"), Ok(1.5));
        for bad in ["0", "-1.5", "nan", "inf", "threshold"] {
            assert!(
                parse_positive_f64("--target-t", bad).is_err(),
                "{bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn repro_help_flag_and_page() {
        let p = repro_flags().parse(["--help"]).unwrap();
        assert!(p.is_set("--help"));
        let help = repro_flags().help();
        for flag in [
            "--samples <N>",
            "--quick",
            "--classifier <NAME>",
            "--profile-frac <F>",
            "--threads <N|auto>",
            "--csv <DIR>",
            "--telemetry <PATH>",
            "--cache-dir <DIR>",
            "--uarch <NAME|PATH>",
            "--out <PATH>",
            "--dummy-events <N>",
            "--decoys <N>",
            "--target-t <T>",
            "--workers <N|auto>",
            "--jobs <PATH>",
            "--socket <PATH>",
            "--cache-budget <BYTES>",
            "--job-stdout-dir <DIR>",
        ] {
            assert!(help.contains(flag), "missing {flag} in:\n{help}");
        }
    }

    #[test]
    fn repro_rejects_unknown_flags() {
        assert_eq!(
            repro_flags().parse(["--bogus"]).unwrap_err(),
            flags::FlagError::Unknown("--bogus".into())
        );
    }
}
