//! # scnn-bench
//!
//! Benchmark harness and paper-artefact regeneration for the `scnn`
//! workspace. The interesting entry points are:
//!
//! - the `repro` binary (`cargo run --release -p scnn-bench --bin repro`),
//!   which regenerates every table and figure of the paper plus the
//!   extension experiments;
//! - the benches under `benches/` (`cargo bench`), which measure the
//!   throughput of each substrate (t-tests, cache simulation, traced
//!   inference, the full evaluator, the template attack) on the in-tree
//!   [`harness`].
//!
//! This library target only hosts small helpers shared between them.

#![warn(missing_docs)]

pub mod harness;

use scnn_core::pipeline::{DatasetKind, ExperimentConfig};

/// A small but paper-shaped experiment configuration used by benches:
/// paper-scale models with few training examples and measurements so a
/// benchmark iteration stays in the tens-of-milliseconds range.
pub fn bench_config(dataset: DatasetKind) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::paper(dataset);
    cfg.train_per_class = 8;
    cfg.test_per_class = 4;
    cfg.train.epochs = 1;
    cfg.collection.samples_per_category = 4;
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_config_is_small() {
        let cfg = bench_config(DatasetKind::Mnist);
        assert!(cfg.train_per_class <= 10);
        assert!(cfg.collection.samples_per_category <= 10);
    }
}
