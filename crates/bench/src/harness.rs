//! A minimal `Instant`-based micro-benchmark harness.
//!
//! The workspace builds hermetically, so the `harness = false` bench
//! targets use this instead of an external framework. The protocol per
//! benchmark: one calibration call sizes a batch to roughly 10 ms, then
//! several timed batches run and the best (least-noise) per-iteration
//! time is reported. That is deliberately simpler than a full sampling
//! framework — these numbers guide optimisation work, they are not
//! statistical artefacts of the paper.
//!
//! CLI compatibility: `cargo bench` invokes each target with `--bench`;
//! that flag (and any other `--…` flag) is ignored, and the first bare
//! argument is kept as a substring filter over benchmark names, matching
//! the usual `cargo bench <filter>` workflow.

use std::time::{Duration, Instant};

/// Re-export of the optimisation barrier benches wrap inputs in.
pub use std::hint::black_box;

/// Number of timed batches per benchmark.
const BATCHES: u32 = 7;
/// Target wall-clock per batch.
const BATCH_TARGET: Duration = Duration::from_millis(10);
/// Cap on iterations per batch, so trivially cheap bodies terminate.
const MAX_ITERS: u128 = 1_000_000;

/// The benchmark runner: filters, times, and reports.
pub struct Harness {
    filter: Option<String>,
    ran: usize,
}

impl Harness {
    /// Builds a harness from the process's CLI arguments, tolerating the
    /// flags `cargo bench`/`cargo test` pass to custom harnesses.
    pub fn from_args() -> Self {
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            if !arg.starts_with('-') {
                filter = Some(arg);
            }
        }
        Harness { filter, ran: 0 }
    }

    /// A harness with an explicit name filter (`None` runs everything).
    pub fn with_filter(filter: Option<String>) -> Self {
        Harness { filter, ran: 0 }
    }

    /// Times `f` and prints its per-iteration cost.
    pub fn bench<F: FnMut()>(&mut self, name: &str, f: F) {
        self.bench_elements(name, 0, f);
    }

    /// Times `f`, additionally reporting throughput as `elements`
    /// processed per call (for loops over a known-size workload).
    pub fn bench_elements<F: FnMut()>(&mut self, name: &str, elements: u64, mut f: F) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        self.ran += 1;
        let per_iter = measure(&mut f);
        let mut line = format!("{name:<44} {:>14}/iter", format_ns(per_iter));
        if elements > 0 && per_iter > 0.0 {
            let rate = elements as f64 / (per_iter * 1e-9);
            line.push_str(&format!("  {:>12}/s", format_count(rate)));
        }
        println!("{line}");
    }

    /// Prints a footer; call once after the last benchmark.
    pub fn finish(self) {
        if self.ran == 0 {
            match self.filter {
                Some(f) => println!("no benchmarks match filter {f:?}"),
                None => println!("no benchmarks registered"),
            }
        }
    }
}

/// Logical CPUs physically present on the host, regardless of the CPU
/// affinity mask this process runs under.
///
/// [`std::thread::available_parallelism`] respects cgroup limits and
/// `sched_setaffinity` pinning, so under `taskset -c 0` (or a 1-CPU CI
/// runner shard) it reports 1 even on a 64-core box. Benchmark reports
/// want both numbers: what the host *has* (to judge whether a speedup
/// was even possible) and what the process *got*. This reads
/// `/proc/cpuinfo` first and falls back to `nproc --all`, then to
/// `available_parallelism`, so it degrades gracefully off Linux.
pub fn host_parallelism() -> usize {
    let available = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    if let Ok(cpuinfo) = std::fs::read_to_string("/proc/cpuinfo") {
        let processors = cpuinfo
            .lines()
            .filter(|l| l.starts_with("processor"))
            .count();
        if processors > 0 {
            return processors.max(available);
        }
    }
    if let Ok(out) = std::process::Command::new("nproc").arg("--all").output() {
        if let Some(n) = String::from_utf8_lossy(&out.stdout)
            .trim()
            .parse::<usize>()
            .ok()
            .filter(|&n| n > 0)
        {
            return n.max(available);
        }
    }
    available
}

/// Best observed nanoseconds per iteration over the timed batches.
fn measure<F: FnMut()>(f: &mut F) -> f64 {
    // Calibration: size the batch so one batch is ~BATCH_TARGET.
    let start = Instant::now();
    f();
    let once = start.elapsed().as_nanos().max(1);
    let iters = (BATCH_TARGET.as_nanos() / once).clamp(1, MAX_ITERS) as u32;

    let mut best = f64::INFINITY;
    for _ in 0..BATCHES {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        let per = t0.elapsed().as_nanos() as f64 / f64::from(iters);
        best = best.min(per);
    }
    best
}

/// `1234.5` → `"1.23 µs"`, scaling through ns/µs/ms/s.
fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

/// `1234567.0` → `"1.2M"`, for throughput rates.
fn format_count(x: f64) -> String {
    if x < 1e3 {
        format!("{x:.0}")
    } else if x < 1e6 {
        format!("{:.1}k", x / 1e3)
    } else if x < 1e9 {
        format!("{:.1}M", x / 1e6)
    } else {
        format!("{:.1}G", x / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn units_scale_sensibly() {
        assert_eq!(format_ns(12.34), "12.3 ns");
        assert_eq!(format_ns(12_340.0), "12.34 µs");
        assert_eq!(format_ns(12_340_000.0), "12.34 ms");
        assert_eq!(format_ns(2.5e9), "2.50 s");
        assert_eq!(format_count(950.0), "950");
        assert_eq!(format_count(1_200.0), "1.2k");
        assert_eq!(format_count(3_400_000.0), "3.4M");
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut h = Harness::with_filter(Some("match-me".to_owned()));
        let mut hits = 0;
        h.bench("other", || hits += 1);
        assert_eq!(hits, 0, "filtered-out benchmark must not run");
        h.bench("does-match-me-indeed", || hits += 1);
        assert!(hits > 0, "matching benchmark runs");
    }

    #[test]
    fn host_parallelism_is_at_least_available_parallelism() {
        let host = host_parallelism();
        let available = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        assert!(host >= available, "host {host} < available {available}");
        assert!(host >= 1);
    }

    #[test]
    fn measure_returns_positive_time() {
        let mut acc = 0u64;
        let per = measure(&mut || {
            for i in 0..100u64 {
                acc = acc.wrapping_add(black_box(i));
            }
        });
        assert!(per.is_finite() && per > 0.0);
        black_box(acc);
    }
}
