//! Declarative command-line flags.
//!
//! A [`FlagSet`] describes a binary's flags once — name, whether a value
//! follows, placeholder, help text — and from that single description
//! derives the parser *and* the `--help` page, so the two can never
//! drift apart. Parsing is strict: an unknown flag or a flag missing
//! its value is a [`FlagError`], which the binary turns into a nonzero
//! exit.
//!
//! The grammar is the subset the `repro` binary needs: `--flag` switches
//! and `--flag VALUE` pairs (space-separated only), plus bare positional
//! words (subcommands). `--` ends flag processing; everything after it
//! is positional.

use std::collections::BTreeMap;
use std::fmt;

/// Whether a flag stands alone or consumes the next argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlagKind {
    /// `--quick` — presence is the signal.
    Switch,
    /// `--samples N` — the next argument is the value.
    Value(&'static str),
}

/// One flag's declaration.
#[derive(Debug, Clone, Copy)]
pub struct FlagSpec {
    /// The spelling, including leading dashes (`"--samples"`).
    pub name: &'static str,
    /// Switch or value-taking (with the placeholder shown in help).
    pub kind: FlagKind,
    /// One-line description for the help page.
    pub help: &'static str,
}

/// A binary's complete flag vocabulary.
#[derive(Debug, Clone)]
pub struct FlagSet {
    program: &'static str,
    usage: &'static str,
    specs: Vec<FlagSpec>,
}

/// Result of a successful parse: positional words in order, plus the
/// flags that appeared.
#[derive(Debug, Clone, Default)]
pub struct Parsed {
    /// Non-flag arguments, in command-line order.
    pub positionals: Vec<String>,
    values: BTreeMap<&'static str, String>,
    switches: Vec<&'static str>,
}

impl Parsed {
    /// The value of `--name VALUE`, if it appeared (last wins).
    pub fn value(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// True when the switch `--name` appeared.
    pub fn is_set(&self, name: &str) -> bool {
        self.switches.contains(&name) || self.values.contains_key(name)
    }
}

/// A parse failure, precise enough for a helpful one-line diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlagError {
    /// An argument started with `-` but matches no declared flag.
    Unknown(String),
    /// A value-taking flag was the last argument.
    MissingValue(&'static str),
    /// A flag's value parsed but is outside its domain (zero where a
    /// positive count is needed, a non-finite threshold, …).
    Invalid {
        /// The offending flag's spelling.
        flag: &'static str,
        /// Why the value was rejected.
        reason: String,
    },
}

impl fmt::Display for FlagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlagError::Unknown(flag) => write!(f, "unknown flag: {flag}"),
            FlagError::MissingValue(flag) => write!(f, "{flag} requires a value"),
            FlagError::Invalid { flag, reason } => write!(f, "invalid value for {flag}: {reason}"),
        }
    }
}

impl std::error::Error for FlagError {}

impl FlagSet {
    /// Declares a flag set for `program` with a one-line `usage`
    /// synopsis (shown under "usage:" in help).
    pub fn new(program: &'static str, usage: &'static str) -> Self {
        FlagSet {
            program,
            usage,
            specs: Vec::new(),
        }
    }

    /// Adds a presence-only flag.
    pub fn switch(mut self, name: &'static str, help: &'static str) -> Self {
        self.specs.push(FlagSpec {
            name,
            kind: FlagKind::Switch,
            help,
        });
        self
    }

    /// Adds a value-taking flag; `placeholder` names the value in help
    /// (`--samples <N>`).
    pub fn value(
        mut self,
        name: &'static str,
        placeholder: &'static str,
        help: &'static str,
    ) -> Self {
        self.specs.push(FlagSpec {
            name,
            kind: FlagKind::Value(placeholder),
            help,
        });
        self
    }

    /// The declared specs, in declaration order.
    pub fn specs(&self) -> &[FlagSpec] {
        &self.specs
    }

    fn spec(&self, name: &str) -> Option<&FlagSpec> {
        self.specs.iter().find(|s| s.name == name)
    }

    /// Parses `args` (without the program name).
    ///
    /// # Errors
    ///
    /// [`FlagError::Unknown`] for an undeclared `-`-prefixed argument,
    /// [`FlagError::MissingValue`] when a value-taking flag ends the
    /// line.
    pub fn parse<I, S>(&self, args: I) -> Result<Parsed, FlagError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut parsed = Parsed::default();
        let mut it = args.into_iter().map(Into::into);
        let mut only_positionals = false;
        while let Some(arg) = it.next() {
            if only_positionals {
                parsed.positionals.push(arg);
                continue;
            }
            if arg == "--" {
                only_positionals = true;
                continue;
            }
            if !arg.starts_with('-') || arg == "-" {
                parsed.positionals.push(arg);
                continue;
            }
            let Some(spec) = self.spec(&arg) else {
                return Err(FlagError::Unknown(arg));
            };
            match spec.kind {
                FlagKind::Switch => {
                    if !parsed.switches.contains(&spec.name) {
                        parsed.switches.push(spec.name);
                    }
                }
                FlagKind::Value(_) => match it.next() {
                    Some(value) => {
                        parsed.values.insert(spec.name, value);
                    }
                    None => return Err(FlagError::MissingValue(spec.name)),
                },
            }
        }
        Ok(parsed)
    }

    /// The generated help page.
    pub fn help(&self) -> String {
        let mut out = format!("usage: {} {}\n\noptions:\n", self.program, self.usage);
        let width = self
            .specs
            .iter()
            .map(|s| match s.kind {
                FlagKind::Switch => s.name.len(),
                FlagKind::Value(ph) => s.name.len() + ph.len() + 3,
            })
            .max()
            .unwrap_or(0);
        for spec in &self.specs {
            let left = match spec.kind {
                FlagKind::Switch => spec.name.to_owned(),
                FlagKind::Value(ph) => format!("{} <{}>", spec.name, ph),
            };
            out.push_str(&format!("  {left:<width$}  {}\n", spec.help));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> FlagSet {
        FlagSet::new("demo", "<command> [options]")
            .switch("--quick", "small models")
            .value("--samples", "N", "measurements per category")
            .value("--out", "PATH", "output file")
    }

    #[test]
    fn switches_values_and_positionals_parse() {
        let p = demo()
            .parse(["run", "--quick", "--samples", "42", "extra"])
            .unwrap();
        assert_eq!(p.positionals, ["run", "extra"]);
        assert!(p.is_set("--quick"));
        assert_eq!(p.value("--samples"), Some("42"));
        assert_eq!(p.value("--out"), None);
        assert!(!p.is_set("--out"));
    }

    #[test]
    fn unknown_flag_is_an_error() {
        assert_eq!(
            demo().parse(["--bogus"]).unwrap_err(),
            FlagError::Unknown("--bogus".into())
        );
    }

    #[test]
    fn missing_value_is_an_error() {
        assert_eq!(
            demo().parse(["--samples"]).unwrap_err(),
            FlagError::MissingValue("--samples")
        );
    }

    #[test]
    fn invalid_value_displays_flag_and_reason() {
        let e = FlagError::Invalid {
            flag: "--dummy-events",
            reason: "must be positive".into(),
        };
        assert_eq!(
            e.to_string(),
            "invalid value for --dummy-events: must be positive"
        );
    }

    #[test]
    fn double_dash_ends_flag_processing() {
        let p = demo().parse(["--", "--samples"]).unwrap();
        assert_eq!(p.positionals, ["--samples"]);
    }

    #[test]
    fn last_value_wins() {
        let p = demo().parse(["--samples", "1", "--samples", "2"]).unwrap();
        assert_eq!(p.value("--samples"), Some("2"));
    }

    #[test]
    fn help_lists_every_flag_with_placeholder() {
        let help = demo().help();
        assert!(help.starts_with("usage: demo <command> [options]"));
        for needle in ["--quick", "--samples <N>", "--out <PATH>", "small models"] {
            assert!(help.contains(needle), "missing {needle:?} in:\n{help}");
        }
    }
}
