//! `extract_lint` — validates extraction-outcome JSON files written by
//! `repro extract --out`.
//!
//! ```text
//! extract_lint extract.json [more.json ...]
//! ```
//!
//! For each file: parses it with the in-tree strict JSON reader and
//! checks the outcome invariants — `truth`/`rows`/`curve` sections
//! present, every row carries an arm name and a complete score block
//! with every ratio inside [0, 1], and the sample curve is strictly
//! increasing in corpus size. Exits nonzero on the first violation,
//! printing which file and which rule failed.

use scnn_core::json::{parse, Value};
use scnn_core::Error;
use std::process::ExitCode;

/// Checks one member list key, returning the array or an error.
fn section<'a>(root: &'a Value, key: &str) -> Result<&'a [Value], String> {
    root.get(key)
        .and_then(Value::as_array)
        .ok_or_else(|| format!("missing or non-array {key:?} section"))
}

fn ratio(v: &Value, key: &str) -> Result<f64, String> {
    let n = v
        .get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("score missing numeric {key:?}"))?;
    if !(0.0..=1.0).contains(&n) {
        return Err(format!("{key:?} = {n} is outside [0, 1]"));
    }
    Ok(n)
}

/// All outcome invariants for one parsed document.
fn lint(root: &Value) -> Result<String, String> {
    let truth = section(root, "truth")?;
    if truth.is_empty() {
        return Err("empty \"truth\" layer stack".into());
    }
    let rows = section(root, "rows")?;
    if rows.is_empty() {
        return Err("empty \"rows\" section".into());
    }
    for row in rows {
        let arm = row
            .get("arm")
            .and_then(Value::as_str)
            .ok_or("row missing string \"arm\"")?;
        let score = row
            .get("score")
            .ok_or_else(|| format!("row {arm:?} missing \"score\""))?;
        for key in [
            "kind_precision",
            "kind_recall",
            "dim_accuracy",
            "activation_accuracy",
            "overall",
        ] {
            ratio(score, key).map_err(|e| format!("row {arm:?}: {e}"))?;
        }
        ratio(row, "holdout_agreement").map_err(|e| format!("row {arm:?}: {e}"))?;
    }
    let curve = section(root, "curve")?;
    let mut last = 0.0;
    for point in curve {
        let samples = point
            .get("samples")
            .and_then(Value::as_f64)
            .ok_or("curve point missing numeric \"samples\"")?;
        if samples <= last {
            return Err(format!(
                "curve samples not strictly increasing at {samples}"
            ));
        }
        last = samples;
        ratio(point, "overall")?;
        ratio(point, "kind_precision")?;
    }
    Ok(format!(
        "{} truth layers, {} arms, {} curve points",
        truth.len(),
        rows.len(),
        curve.len()
    ))
}

fn run() -> Result<(), Error> {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        return Err(Error::msg("usage: extract_lint <extract.json> [...]"));
    }
    for path in &paths {
        let text = std::fs::read_to_string(path).map_err(|e| Error::io(path.clone(), e))?;
        let root = parse(&text).map_err(|e| Error::msg(format!("{path}: {e}")))?;
        let summary = lint(&root).map_err(|e| Error::msg(format!("{path}: {e}")))?;
        println!("{path}: ok ({summary})");
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("extract_lint: {e}");
            ExitCode::FAILURE
        }
    }
}
