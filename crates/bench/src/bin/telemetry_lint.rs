//! `telemetry_lint` — validates telemetry JSON files written by
//! `repro --telemetry`.
//!
//! ```text
//! telemetry_lint out.json [more.json ...]
//! ```
//!
//! For each file: parses it with the in-tree JSON reader and checks the
//! snapshot invariants — known version, spans carry every required key
//! and nest consistently (each `parent` id exists and has a strictly
//! smaller `depth`... by exactly one), counters are non-negative, and
//! histogram bucket counts sum to the histogram's total. Exits nonzero
//! on the first violation, printing which file and which rule failed.

use scnn_core::json::{parse, Value};
use scnn_core::Error;
use std::process::ExitCode;

/// Checks one member list key, returning the array or an error.
fn section<'a>(root: &'a Value, key: &str) -> Result<&'a [Value], String> {
    root.get(key)
        .and_then(Value::as_array)
        .ok_or_else(|| format!("missing or non-array {key:?} section"))
}

fn number(v: &Value, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("span/metric member missing numeric {key:?}"))
}

/// All snapshot invariants for one parsed document.
fn lint(root: &Value) -> Result<String, String> {
    let version = root
        .get("version")
        .and_then(Value::as_f64)
        .ok_or("missing numeric \"version\"")?;
    if version != 1.0 {
        return Err(format!("unknown telemetry version {version}"));
    }

    let spans = section(root, "spans")?;
    let ids: Vec<f64> = spans
        .iter()
        .map(|s| number(s, "id"))
        .collect::<Result<_, _>>()?;
    for span in spans {
        for key in ["id", "thread", "depth", "start_ns", "duration_ns"] {
            number(span, key)?;
        }
        let name = span
            .get("name")
            .and_then(Value::as_str)
            .ok_or("span missing string \"name\"")?;
        let depth = number(span, "depth")?;
        match span.get("parent") {
            Some(Value::Null) => {
                if depth != 0.0 {
                    return Err(format!("root span {name:?} has nonzero depth {depth}"));
                }
            }
            Some(parent) => {
                let parent_id = parent
                    .as_f64()
                    .ok_or_else(|| format!("span {name:?} parent is neither null nor an id"))?;
                let parent_span = spans
                    .iter()
                    .zip(&ids)
                    .find(|(_, id)| **id == parent_id)
                    .map(|(s, _)| s)
                    .ok_or_else(|| format!("span {name:?} parent {parent_id} does not exist"))?;
                let parent_depth = number(parent_span, "depth")?;
                if depth != parent_depth + 1.0 {
                    return Err(format!(
                        "span {name:?} depth {depth} is not its parent's depth {parent_depth} + 1"
                    ));
                }
            }
            None => return Err(format!("span {name:?} missing \"parent\"")),
        }
    }

    let counters = section(root, "counters")?;
    for counter in counters {
        let value = number(counter, "value")?;
        if value < 0.0 {
            return Err(format!("counter with negative value {value}"));
        }
    }

    let histograms = section(root, "histograms")?;
    for histogram in histograms {
        let count = number(histogram, "count")?;
        let buckets = histogram
            .get("buckets")
            .and_then(Value::as_array)
            .ok_or("histogram missing \"buckets\" array")?;
        let bucket_total: f64 = buckets
            .iter()
            .map(|b| {
                b.as_array()
                    .filter(|pair| pair.len() == 2)
                    .and_then(|pair| pair[1].as_f64())
                    .ok_or("histogram bucket is not an [upper_bound, count] pair")
            })
            .sum::<Result<f64, _>>()?;
        if bucket_total != count {
            return Err(format!(
                "histogram bucket counts sum to {bucket_total}, total says {count}"
            ));
        }
    }

    let series = section(root, "series")?;
    for s in series {
        let points = s
            .get("points")
            .and_then(Value::as_array)
            .ok_or("series missing \"points\" array")?;
        if points
            .iter()
            .any(|p| p.as_array().map(<[Value]>::len) != Some(2))
        {
            return Err("series point is not an [x, y] pair".into());
        }
    }

    Ok(format!(
        "{} spans, {} counters, {} histograms, {} series",
        spans.len(),
        counters.len(),
        histograms.len(),
        series.len()
    ))
}

fn run() -> Result<(), Error> {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        return Err(Error::msg("usage: telemetry_lint <file.json> [more ...]"));
    }
    for path in &paths {
        let text = std::fs::read_to_string(path).map_err(|e| Error::io(path.clone(), e))?;
        let root = parse(&text)?;
        let summary = lint(&root).map_err(|rule| Error::msg(format!("{path}: {rule}")))?;
        println!("{path}: OK ({summary})");
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("telemetry_lint: {e}");
            ExitCode::FAILURE
        }
    }
}
