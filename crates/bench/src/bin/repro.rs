//! `repro` — regenerates every table and figure of the paper.
//!
//! One subcommand per artefact:
//!
//! ```text
//! repro fig1            # Fig 1(a,b): average cache-misses per category
//! repro fig2b           # Fig 2(b): all 8 HPC events of one classification
//! repro fig3            # Fig 3(a,b): MNIST distributions (cache-misses, branches)
//! repro fig4            # Fig 4(a,b): CIFAR-10 distributions
//! repro table1          # Table 1: MNIST pairwise t-tests
//! repro table2          # Table 2: CIFAR-10 pairwise t-tests
//! repro attack          # Extension A: HPC template attack accuracy
//! repro extract         # Extension H: architecture extraction from per-layer traces
//! repro ablation        # Extension B: countermeasure ablation
//! repro noise           # Extension C: leakage vs noise level / sample count
//! repro events          # Extension D: which of the 8 events leak, cold vs warm
//! repro uarch           # Extension E: microarchitectural design ablation
//! repro archs           # Extension F: CNN vs MLP victim architectures
//! repro sweep           # Extension G: t-test evaluation across the preset zoo
//! repro frontier        # Extension I: countermeasure leakage-vs-overhead frontier
//! repro all             # everything above
//! ```
//!
//! Options (see `repro --help` for the generated page): `--samples <n>`
//! (measurements per category, default 100), `--quick` (tiny models, for
//! smoke tests), `--csv <dir>` (additionally write the raw figure/table
//! series as CSV files for external plotting), `--threads <n|auto>`
//! (worker threads for collection, evaluation and minibatch training;
//! output is bit-identical at every setting), `--telemetry <path>`
//! (record span/metric telemetry to a JSON file and show live per-phase
//! progress on stderr — stdout stays byte-identical), `--cache-dir <dir>`
//! (persist trained models and per-category observations so reruns skip
//! training and collection — stdout stays byte-identical; cache chatter
//! goes to stderr), `--uarch <name|path>` (simulate a different platform:
//! a preset from the zoo — see `scnn_core::zoo` — or a JSON config file),
//! `--classifier <name>` (for `attack`: run one profiling classifier —
//! `gaussian-template`, `lda`, `knn[:K]` — instead of all three),
//! `--profile-frac <f>` (for `attack`/`extract`/`frontier`: the
//! fraction of measurements spent profiling, strictly inside (0, 1)),
//! `--dummy-events <N>` (noise-injection volume for
//! `ablation`/`extract`/`frontier`, default 20000), `--decoys <N>`
//! (decoy classifications per real inference for `frontier`, default
//! 3), `--target-t <T>` (calibration target for the frontier's
//! calibrated-noise arm: double the noise volume until max |t| falls
//! below T, default 1.5), `--out <path>` (for
//! `sweep`/`extract`/`frontier`: also write the result as JSON; for
//! `serve`: write the service report as JSON).
//!
//! # Service mode
//!
//! ```text
//! repro serve           # job server: newline-delimited JSON jobs on stdin
//! ```
//!
//! `serve` turns `repro` into a long-running evaluation service: job
//! specs (`{"id":"a","command":"table1","quick":true,"samples":8}`)
//! stream in over stdin, a file (`--jobs <path>`) or a Unix socket
//! (`--socket <path>`); a bounded worker fleet (`--workers <n|auto>`)
//! executes them against one shared artifact cache (`--cache-dir`), and
//! one JSON response per job streams back in completion order. Each job
//! runs through the **same** `Runner` code path as the direct CLI, so
//! its captured stdout is byte-identical to the equivalent direct
//! invocation (pinned by `ci/check.sh`). `--job-stdout-dir <dir>`
//! writes each job's stdout to `<dir>/<id>.out`; `--cache-budget
//! <bytes>` garbage-collects the shared cache down to a size budget
//! after the run. See DESIGN.md §14 for the protocol and scheduling
//! semantics.

use scnn_bench::repro_flags;
use scnn_cache::ArtifactCache;
use scnn_core::attack::{AttackClassifier, AttackConfig};
use scnn_core::countermeasure::Countermeasure;
use scnn_core::json::ToJson;
use scnn_core::pipeline::{
    Architecture, DatasetKind, Experiment, ExperimentConfig, ExperimentOutcome,
};
use scnn_core::report::{render_distributions, render_summary};
use scnn_core::service::{self, CacheTraffic, JobOutput, JobSpec, ServiceConfig, ServiceReport};
use scnn_core::Error;
use scnn_hpc::{CounterGroup, HpcEvent, PerfStat, SimulatedPmu, WarmupPolicy};
use scnn_obs::{Recorder, SpanEvent, SpanPhase};
use scnn_par::Threads;
use scnn_stats::ranktest;
use scnn_uarch::UarchConfig;
use std::collections::HashMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

/// Writes one line (or fragment) of artefact output to the runner's
/// sink. Direct CLI runs sink to real stdout; `repro serve` sinks each
/// job to its own buffer **through this same macro and the same Runner
/// methods**, which is what makes service output byte-identical to a
/// direct run by construction. Stdout write failures abort like
/// `println!` would.
macro_rules! o {
    ($r:expr) => { writeln!($r.out).expect("artefact output write failed") };
    ($r:expr, $($arg:tt)*) => { writeln!($r.out, $($arg)*).expect("artefact output write failed") };
}
macro_rules! op {
    ($r:expr, $($arg:tt)*) => { write!($r.out, $($arg)*).expect("artefact output write failed") };
}

#[derive(Clone)]
struct Options {
    samples: usize,
    quick: bool,
    csv: Option<std::path::PathBuf>,
    threads: Threads,
    telemetry: Option<std::path::PathBuf>,
    uarch: Option<UarchConfig>,
    out: Option<std::path::PathBuf>,
    /// `--classifier`: restrict `attack` to one profiling classifier.
    classifier: Option<AttackClassifier>,
    /// `--profile-frac`: profiling split for `attack` and `extract`.
    profile_frac: Option<f64>,
    /// `--dummy-events`: mean dummy events of the noise arms in
    /// `ablation`, `extract` and `frontier` (never 0).
    dummy_events: u64,
    /// `--decoys`: decoy inferences per real one on the frontier's
    /// decoy arm (never 0).
    decoys: u64,
    /// `--target-t`: the calibrated-noise arm's max-|t| target.
    target_t: f64,
}

impl Options {
    fn config(&self, dataset: DatasetKind) -> ExperimentConfig {
        let base = if self.quick {
            ExperimentConfig::quick(dataset)
        } else {
            ExperimentConfig::paper(dataset)
        };
        // The determinism contract (see DESIGN.md § Parallel execution)
        // guarantees every artefact below is byte-identical whatever the
        // thread setting; only the wall-clock changes.
        let mut cfg = base.samples(self.samples).threads(self.threads);
        if let Some(uarch) = &self.uarch {
            cfg.pmu.core = uarch.core;
        }
        cfg
    }
}

/// Runs (and caches) the main experiment per dataset so `repro all` does
/// not retrain and remeasure for every artefact.
///
/// Generic over the output sink: the CLI hands it real stdout, `repro
/// serve` hands each job a private buffer. Everything an artefact
/// command prints goes through `self.out` (the `o!`/`op!` macros);
/// stderr chatter stays on the process stderr in both modes.
struct Runner<W: Write> {
    options: Options,
    cache: HashMap<&'static str, ExperimentOutcome>,
    /// The on-disk artifact cache behind `--cache-dir`, if set. Distinct
    /// from `cache` above: that one deduplicates within a single `repro`
    /// process, this one persists across processes (and is shared by
    /// every job of a `serve` fleet).
    artifact_cache: Option<ArtifactCache>,
    out: W,
    /// Aggregated artifact-cache traffic across every experiment this
    /// runner executed — reported per job in service mode.
    traffic: CacheTraffic,
}

impl<W: Write> Runner<W> {
    /// Runs one experiment, through the persistent artifact cache when
    /// `--cache-dir` is set. Cache chatter goes to stderr only — stdout
    /// is byte-identical with and without a cache.
    fn run_experiment(
        &mut self,
        label: &str,
        cfg: ExperimentConfig,
    ) -> Result<ExperimentOutcome, scnn_core::pipeline::ExperimentError> {
        let Some(cache) = &self.artifact_cache else {
            return Experiment::new(cfg).run();
        };
        let outcome = Experiment::new(cfg).run_cached(cache)?;
        let u = outcome.cache;
        self.traffic.add_usage(&u);
        if u.model_hit {
            eprintln!("[cache] {label}: model hit — training skipped");
        } else {
            eprintln!("[cache] {label}: model miss — trained and stored");
        }
        eprintln!(
            "[cache] {label}: {}/{} categories from cache, {} collected, {} artifacts written",
            u.categories_hit,
            u.categories_hit + u.categories_collected,
            u.categories_collected,
            u.writes
        );
        Ok(outcome)
    }

    /// Ensures the memoised outcome for `dataset` exists and returns its
    /// key into `self.cache`. Callers index the map themselves
    /// (`&self.cache[key]`) so the borrow stays on that one field and
    /// artefact text can keep flowing to `self.out` alongside it.
    fn ensure(&mut self, dataset: DatasetKind) -> &'static str {
        let key = match dataset {
            DatasetKind::Mnist => "mnist",
            DatasetKind::Cifar10 => "cifar",
        };
        #[allow(clippy::map_entry)]
        if !self.cache.contains_key(key) {
            let t0 = Instant::now();
            eprintln!(
                "[repro] running {dataset} experiment (train + {} measurements/category)…",
                self.options.samples
            );
            let outcome = self
                .run_experiment(key, self.options.config(dataset))
                .unwrap_or_else(|e| panic!("{dataset} experiment failed: {e}"));
            eprintln!(
                "[repro] {dataset} done in {:.1?} (CNN test accuracy {:.1}%)",
                t0.elapsed(),
                outcome.test_accuracy * 100.0
            );
            self.cache.insert(key, outcome);
        }
        key
    }

    /// Writes one CSV file into the `--csv` directory, if set.
    fn write_csv(&self, name: &str, header: &str, rows: &[String]) {
        let Some(dir) = &self.options.csv else {
            return;
        };
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("[repro] cannot create {}: {e}", dir.display());
            return;
        }
        let path = dir.join(name);
        let mut content = String::from(header);
        content.push('\n');
        for row in rows {
            content.push_str(row);
            content.push('\n');
        }
        match std::fs::write(&path, content) {
            Ok(()) => eprintln!("[repro] wrote {}", path.display()),
            Err(e) => eprintln!("[repro] cannot write {}: {e}", path.display()),
        }
    }

    /// Raw per-measurement series of one experiment as CSV rows.
    fn csv_observations(&mut self, dataset: DatasetKind, file: &str) {
        if self.options.csv.is_none() {
            return;
        }
        let key = self.ensure(dataset);
        let outcome = &self.cache[key];
        let mut rows = Vec::new();
        for obs in &outcome.observations {
            for (event, series) in &obs.per_event {
                for (i, v) in series.iter().enumerate() {
                    rows.push(format!(
                        "{},{},{},{},{v}",
                        dataset,
                        obs.category + 1,
                        event.perf_name(),
                        i
                    ));
                }
            }
        }
        self.write_csv(file, "dataset,category,event,measurement,value", &rows);
    }

    fn fig1(&mut self) {
        o!(
            self,
            "=============================================================="
        );
        o!(self, "Figure 1: average cache-misses during classification");
        o!(
            self,
            "=============================================================="
        );
        for dataset in [DatasetKind::Mnist, DatasetKind::Cifar10] {
            let panel = match dataset {
                DatasetKind::Mnist => "(a) MNIST",
                DatasetKind::Cifar10 => "(b) CIFAR-10",
            };
            let key = self.ensure(dataset);
            let outcome = &self.cache[key];
            o!(self, "\n--- Figure 1{panel} ---");
            op!(
                self,
                "{}",
                outcome.report.render_means(HpcEvent::CacheMisses, 40)
            );
            let rows: Vec<String> = outcome
                .report
                .event(HpcEvent::CacheMisses)
                .map(|ev| {
                    ev.summaries
                        .iter()
                        .enumerate()
                        .map(|(c, s)| {
                            format!("{dataset},{},{},{}", c + 1, s.mean(), s.sample_std())
                        })
                        .collect()
                })
                .unwrap_or_default();
            let file = match dataset {
                DatasetKind::Mnist => "fig1a_mnist_means.csv",
                DatasetKind::Cifar10 => "fig1b_cifar_means.csv",
            };
            self.write_csv(file, "dataset,category,mean_cache_misses,std", &rows);
        }
        o!(self);
    }

    fn fig2b(&mut self) {
        o!(
            self,
            "=============================================================="
        );
        o!(
            self,
            "Figure 2(b): HPC events of a single MNIST classification"
        );
        o!(
            self,
            "=============================================================="
        );
        let cfg = self.options.config(DatasetKind::Mnist);
        let image = scnn_data::mnist_synth::generate(
            &scnn_data::mnist_synth::MnistSynthConfig {
                per_class: 1,
                side: if self.options.quick { 12 } else { 28 },
                ..Default::default()
            },
            7,
        )
        .expect("generator is infallible for valid configs")
        .get(0)
        .map(|(img, _)| img.clone())
        .expect("per_class = 1 yields an image");
        // One trained model, one classification, all eight events at once.
        let key = self.ensure(DatasetKind::Mnist);
        let outcome = &self.cache[key];
        let pmu = SimulatedPmu::new(cfg.pmu, 0x000F_162B).expect("default geometry is valid");
        let group = CounterGroup::new(HpcEvent::FIG2B.to_vec(), 8).expect("8 distinct events");
        let mut session = PerfStat::new(pmu, group);
        let net = &outcome.network;
        let report = session
            .stat(&mut |probe| {
                let _ = net.classify_traced(&image, probe);
            })
            .expect("simulated measurement cannot fail");
        o!(self, "{report}");
    }

    fn distributions(&mut self, dataset: DatasetKind) {
        let (figure, name) = match dataset {
            DatasetKind::Mnist => ("Figure 3", "MNIST"),
            DatasetKind::Cifar10 => ("Figure 4", "CIFAR-10"),
        };
        o!(
            self,
            "=============================================================="
        );
        o!(self, "{figure}: per-category HPC distributions, {name}");
        o!(
            self,
            "=============================================================="
        );
        {
            let key = self.ensure(dataset);
            let outcome = &self.cache[key];
            for (panel, event) in [("a", HpcEvent::CacheMisses), ("b", HpcEvent::Branches)] {
                o!(self, "\n--- {figure}({panel}): {event} ---");
                op!(self, "{}", render_summary(&outcome.observations, event));
                op!(
                    self,
                    "{}",
                    render_distributions(&outcome.observations, event, 12)
                );
            }
        }
        let file = match dataset {
            DatasetKind::Mnist => "fig3_mnist_observations.csv",
            DatasetKind::Cifar10 => "fig4_cifar_observations.csv",
        };
        self.csv_observations(dataset, file);
        o!(self);
    }

    fn table(&mut self, dataset: DatasetKind) {
        let (table, name) = match dataset {
            DatasetKind::Mnist => ("Table 1", "MNIST"),
            DatasetKind::Cifar10 => ("Table 2", "CIFAR-10"),
        };
        o!(
            self,
            "=============================================================="
        );
        o!(
            self,
            "{table}: pairwise t-tests, {name} (* = distinguishable at 95%)"
        );
        o!(
            self,
            "=============================================================="
        );
        let key = self.ensure(dataset);
        let outcome = &self.cache[key];
        op!(self, "{}", outcome.report.render_table());

        // Rank-test cross-check (robustness extension).
        o!(
            self,
            "rank-test cross-check (Mann-Whitney p-values, cache-misses):"
        );
        let obs = &outcome.observations;
        for i in 0..obs.len() {
            for j in (i + 1)..obs.len() {
                let a = obs[i].series(HpcEvent::CacheMisses).unwrap_or(&[]);
                let b = obs[j].series(HpcEvent::CacheMisses).unwrap_or(&[]);
                if let Ok(r) = ranktest::mann_whitney_u(a, b) {
                    o!(self, "  u{},{}: p = {:.4}", i + 1, j + 1, r.p);
                }
            }
        }
        o!(self);
    }

    fn attack(&mut self) {
        o!(
            self,
            "=============================================================="
        );
        o!(
            self,
            "Extension A: input-category recovery from HPC readings"
        );
        o!(
            self,
            "=============================================================="
        );
        // `--classifier` narrows the panel to one entry; the default
        // three-classifier stdout stays byte-identical when it is absent.
        let arms: Vec<(String, AttackClassifier)> = match self.options.classifier {
            Some(c) => vec![(attack_panel_label(&c), c)],
            None => vec![
                (
                    "gaussian template".into(),
                    AttackClassifier::GaussianTemplate,
                ),
                ("LDA (pooled covariance)".into(), AttackClassifier::Lda),
                ("5-NN".into(), AttackClassifier::Knn { k: 5 }),
            ],
        };
        for dataset in [DatasetKind::Mnist, DatasetKind::Cifar10] {
            let key = self.ensure(dataset);
            let outcome = &self.cache[key];
            o!(self, "\n--- {dataset} ---");
            for (label, classifier) in &arms {
                match outcome.mount_attack(&self.attack_config().classifier(*classifier)) {
                    Ok(out) => {
                        o!(self, "[{label}]");
                        op!(self, "{out}");
                    }
                    Err(e) => o!(self, "[{label}] attack failed: {e}"),
                }
            }
        }
        o!(self);
    }

    /// The attack parameters shared by every classifier panel:
    /// defaults, with `--profile-frac` applied when given.
    fn attack_config(&self) -> AttackConfig {
        match self.options.profile_frac {
            Some(frac) => AttackConfig::default().profile_fraction(frac),
            None => AttackConfig::default(),
        }
    }

    /// Unlike the panicking artefact methods above, extraction returns
    /// its errors: an out-of-range `--profile-frac` is a user mistake
    /// (rejected by [`AttackConfig`]-style builder validation inside
    /// `run_extract`), not a broken experiment.
    fn extract(&mut self) -> Result<(), Error> {
        o!(
            self,
            "=============================================================="
        );
        o!(
            self,
            "Extension H: architecture extraction from per-layer traces"
        );
        o!(
            self,
            "=============================================================="
        );
        o!(self,
            "(the paper's reverse-engineering threat taken to its conclusion:\n per-layer HPC windows reconstruct the victim's architecture;\n see DESIGN.md §15)\n"
        );
        let cfg = self.options.config(DatasetKind::Mnist);
        let frac = self.options.profile_frac.unwrap_or(0.75);
        let outcome = scnn_core::extract::run_extract(
            &cfg,
            frac,
            self.options.dummy_events,
            self.options.threads,
            self.artifact_cache.as_ref(),
        )
        .map_err(|e| Error::msg(format!("extraction campaign failed: {e}")))?;
        for row in &outcome.rows {
            if row.trace_cache_hit {
                eprintln!("[cache] extract/{}: trace corpus from cache", row.arm);
            }
        }
        let truth: Vec<String> = outcome
            .truth
            .iter()
            .map(|t| format!("{}[{}]", t.kind.name(), t.dim))
            .collect();
        o!(self, "victim (ground truth): {}", truth.join(" → "));
        o!(self, "\nrecovered per arm:");
        for row in &outcome.rows {
            o!(self, "  {:<16} {}", row.arm, row.hypothesis.render());
        }
        o!(self);
        op!(self, "{}", outcome.render_table());
        o!(self, "\nrecovery vs profiling traces (unprotected arm):");
        o!(self, "{:<8} {:>8} {:>8}", "traces", "overall", "kind-P");
        for p in &outcome.curve {
            o!(
                self,
                "{:<8} {:>8.2} {:>8.2}",
                p.samples,
                p.overall,
                p.kind_precision
            );
        }
        o!(self,
            "\n(scores in [0,1]; agree = held-out single-trace kind agreement;\n countermeasures blur the per-layer windows and recovery degrades)\n"
        );
        let rows: Vec<String> = outcome
            .rows
            .iter()
            .map(|r| {
                format!(
                    "{},{},{},{},{},{},{},{}",
                    r.arm,
                    r.score.depth_recovered,
                    r.score.depth_truth,
                    r.score.kind_precision,
                    r.score.kind_recall,
                    r.score.dim_accuracy,
                    r.score.activation_accuracy,
                    r.score.overall
                )
            })
            .collect();
        self.write_csv(
            "extract_recovery.csv",
            "arm,depth_recovered,depth_truth,kind_precision,kind_recall,dim_accuracy,activation_accuracy,overall",
            &rows,
        );
        if let Some(path) = &self.options.out {
            std::fs::write(path, outcome.to_json())
                .map_err(|e| Error::io(path.display().to_string(), e))?;
            eprintln!("[extract] wrote {}", path.display());
        }
        Ok(())
    }

    fn ablation(&mut self) {
        o!(
            self,
            "=============================================================="
        );
        o!(self, "Extension B: countermeasure ablation (MNIST)");
        o!(
            self,
            "=============================================================="
        );
        let base = self.options.config(DatasetKind::Mnist);
        let dummy_events = self.options.dummy_events;
        let arms: Vec<(String, Option<Countermeasure>)> = vec![
            ("leaky baseline".to_owned(), None),
            (
                "constant-time kernels".to_owned(),
                Some(Countermeasure::ConstantTime),
            ),
            (
                format!("noise injection ({dummy_events} dummy events)"),
                Some(Countermeasure::NoiseInjection { dummy_events }),
            ),
            (
                "combined".to_owned(),
                Some(Countermeasure::Combined { dummy_events }),
            ),
        ];
        o!(
            self,
            "{:<40} {:>12} {:>12} {:>10}",
            "countermeasure",
            "cm pairs*",
            "br pairs*",
            "attack"
        );
        for (label, cm) in arms {
            let mut cfg = base.clone();
            cfg.countermeasure = cm;
            let outcome = self
                .run_experiment(&format!("ablation/{label}"), cfg)
                .unwrap_or_else(|e| panic!("ablation arm '{label}' failed: {e}"));
            let pairs = |event| {
                outcome
                    .report
                    .event(event)
                    .map(|e| e.pairwise.leak_count())
                    .unwrap_or(0)
            };
            let attack = outcome
                .mount_attack(&AttackConfig::default())
                .map(|a| format!("{:.0}%", a.accuracy * 100.0))
                .unwrap_or_else(|_| "n/a".into());
            o!(
                self,
                "{:<40} {:>10}/6 {:>10}/6 {:>10}",
                label,
                pairs(HpcEvent::CacheMisses),
                pairs(HpcEvent::Branches),
                attack
            );
        }
        o!(
            self,
            "\n(* category pairs distinguishable at 95% confidence)\n"
        );
    }

    fn events(&mut self) {
        o!(
            self,
            "=============================================================="
        );
        o!(
            self,
            "Extension D: leakage per HPC event, cold vs warm measurement"
        );
        o!(
            self,
            "=============================================================="
        );
        o!(self,
            "(the paper's §5.2: \"we observed that some of the events can\n produce different distributions for different categories\")\n"
        );
        o!(
            self,
            "{:<24} {:>16} {:>16}",
            "event",
            "cold-start",
            "warm-attach"
        );
        let mut rows: Vec<(String, usize, usize)> = Vec::new();
        for warmup in [WarmupPolicy::ColdStart, WarmupPolicy::Warm] {
            let mut cfg = self.options.config(DatasetKind::Mnist);
            cfg.collection.events = HpcEvent::FIG2B.to_vec();
            cfg.pmu.warmup = warmup;
            let outcome = self
                .run_experiment(&format!("events/{warmup:?}"), cfg)
                .unwrap_or_else(|e| panic!("events experiment ({warmup:?}) failed: {e}"));
            for ev in &outcome.report.per_event {
                let count = ev.pairwise.leak_count();
                match warmup {
                    WarmupPolicy::ColdStart => {
                        rows.push((ev.event.perf_name().to_owned(), count, 0));
                    }
                    WarmupPolicy::Warm => {
                        if let Some(row) = rows.iter_mut().find(|r| r.0 == ev.event.perf_name()) {
                            row.2 = count;
                        }
                    }
                }
            }
        }
        rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        for (name, cold, warm) in rows {
            o!(self, "{:<24} {:>14}/6 {:>14}/6", name, cold, warm);
        }
        o!(self, "\n(pairs distinguishable at 95%; warm-attach = perf stat -p on a\n long-running service, caches staying warm between classifications)\n");
    }

    fn archs(&mut self) {
        o!(
            self,
            "=============================================================="
        );
        o!(self, "Extension F: victim architecture comparison (MNIST)");
        o!(
            self,
            "=============================================================="
        );
        o!(self,
            "(the paper's future work: \"explore the vulnerabilities in other\n deep learning models\")\n"
        );
        o!(
            self,
            "{:<12} {:>10} {:>12} {:>12} {:>10}",
            "model",
            "accuracy",
            "cm pairs*",
            "br pairs*",
            "attack"
        );
        for (name, arch) in [("CNN", Architecture::Cnn), ("MLP", Architecture::Mlp)] {
            let mut cfg = self.options.config(DatasetKind::Mnist);
            cfg.architecture = arch;
            let outcome = self
                .run_experiment(&format!("archs/{name}"), cfg)
                .unwrap_or_else(|e| panic!("architecture arm '{name}' failed: {e}"));
            let pairs = |event| {
                outcome
                    .report
                    .event(event)
                    .map(|e| e.pairwise.leak_count())
                    .unwrap_or(0)
            };
            let attack = outcome
                .mount_attack(&AttackConfig::default())
                .map(|a| format!("{:.0}%", a.accuracy * 100.0))
                .unwrap_or_else(|_| "n/a".into());
            o!(
                self,
                "{:<12} {:>9.1}% {:>10}/6 {:>10}/6 {:>10}",
                name,
                outcome.test_accuracy * 100.0,
                pairs(HpcEvent::CacheMisses),
                pairs(HpcEvent::Branches),
                attack
            );
        }
        o!(
            self,
            "\n(* category pairs distinguishable at 95% confidence)\n"
        );
    }

    fn uarch(&mut self) {
        use scnn_uarch::{CacheConfig, PredictorKind, PrefetcherKind};

        o!(
            self,
            "=============================================================="
        );
        o!(
            self,
            "Extension E: microarchitectural ablation (MNIST, cache-misses)"
        );
        o!(
            self,
            "=============================================================="
        );
        o!(
            self,
            "does the leak depend on the platform's microarchitecture?\n"
        );
        let base = self.options.config(DatasetKind::Mnist);
        let mut arms: Vec<(String, scnn_core::pipeline::ExperimentConfig)> = Vec::new();

        let mut cfg = base.clone();
        cfg.pmu.core = scnn_uarch::CoreConfig::xeon_e5_2690();
        arms.push(("Xeon E5-2690 (paper platform)".into(), cfg));

        for (name, kind) in [
            ("no prefetcher", PrefetcherKind::None),
            ("next-line prefetcher", PrefetcherKind::NextLine),
        ] {
            let mut cfg = base.clone();
            cfg.pmu.core.hierarchy.prefetcher = kind;
            arms.push((name.into(), cfg));
        }
        for (name, bytes, assoc) in [
            ("small LLC (256 KiB)", 256 * 1024, 8),
            ("large LLC (8 MiB)", 8 * 1024 * 1024, 16),
        ] {
            let mut cfg = base.clone();
            cfg.pmu.core.hierarchy.l3 = CacheConfig::new(bytes, assoc, 64);
            arms.push((name.into(), cfg));
        }
        for (name, kind) in [
            ("bimodal predictor", PredictorKind::Bimodal),
            ("perceptron predictor", PredictorKind::Perceptron),
        ] {
            let mut cfg = base.clone();
            cfg.pmu.core.predictor = kind;
            arms.push((name.into(), cfg));
        }

        o!(
            self,
            "{:<34} {:>12} {:>12}",
            "platform variant",
            "cm pairs*",
            "br pairs*"
        );
        for (name, cfg) in arms {
            let outcome = self
                .run_experiment(&format!("uarch/{name}"), cfg)
                .unwrap_or_else(|e| panic!("uarch arm '{name}' failed: {e}"));
            let pairs = |event| {
                outcome
                    .report
                    .event(event)
                    .map(|e| e.pairwise.leak_count())
                    .unwrap_or(0)
            };
            o!(
                self,
                "{:<34} {:>10}/6 {:>10}/6",
                name,
                pairs(HpcEvent::CacheMisses),
                pairs(HpcEvent::Branches)
            );
        }
        o!(self, "\n(* category pairs distinguishable at 95% confidence; the leak\n   is robust to platform details — it lives in the software)\n");
    }

    fn noise(&mut self) {
        o!(
            self,
            "=============================================================="
        );
        o!(
            self,
            "Extension C: leakage vs noise level and sample count (MNIST)"
        );
        o!(
            self,
            "=============================================================="
        );
        let base = self.options.config(DatasetKind::Mnist);
        let pairs_of = |outcome: &ExperimentOutcome, event| {
            outcome
                .report
                .event(event)
                .map(|e| e.pairwise.leak_count())
                .unwrap_or(0)
        };

        o!(
            self,
            "\nnoise sweep (samples/category = {}):",
            base.collection.samples_per_category
        );
        o!(
            self,
            "{:<14} {:>14} {:>14}",
            "noise level",
            "cm pairs*",
            "br pairs*"
        );
        for level in [0.0, 0.5, 1.0, 2.0, 4.0] {
            let mut cfg = base.clone();
            cfg.pmu.noise = cfg.pmu.noise.scaled(level);
            let outcome = self
                .run_experiment(&format!("noise/noise-{level:.1}x"), cfg)
                .unwrap_or_else(|e| panic!("noise sweep level {level} failed: {e}"));
            o!(
                self,
                "{:<14} {:>12}/6 {:>12}/6",
                format!("{level:.1}x"),
                pairs_of(&outcome, HpcEvent::CacheMisses),
                pairs_of(&outcome, HpcEvent::Branches)
            );
        }

        o!(self, "\nsample-count sweep (default noise):");
        o!(
            self,
            "{:<14} {:>14} {:>14}",
            "samples/cat",
            "cm pairs*",
            "br pairs*"
        );
        for samples in [10, 25, 50, 100] {
            let mut cfg = base.clone();
            cfg.collection.samples_per_category = samples;
            let outcome = self
                .run_experiment(&format!("noise/samples-{samples}"), cfg)
                .unwrap_or_else(|e| panic!("sample sweep n={samples} failed: {e}"));
            o!(
                self,
                "{:<14} {:>12}/6 {:>12}/6",
                samples,
                pairs_of(&outcome, HpcEvent::CacheMisses),
                pairs_of(&outcome, HpcEvent::Branches)
            );
        }
        o!(
            self,
            "\n(* category pairs distinguishable at 95% confidence)\n"
        );
    }

    fn sweep(&mut self) {
        o!(
            self,
            "=============================================================="
        );
        o!(
            self,
            "Extension G: t-test evaluation across the microarchitecture zoo"
        );
        o!(
            self,
            "=============================================================="
        );
        o!(
            self,
            "(MNIST; one row per simulated platform, same model and seeds)\n"
        );
        let base = self.options.config(DatasetKind::Mnist);
        let zoo = scnn_core::zoo::zoo();
        for preset in &zoo {
            eprintln!("[sweep] preset {}: {}", preset.name, preset.description);
        }
        let outcome = scnn_core::sweep::run_sweep(
            &base,
            &zoo,
            self.options.threads,
            self.artifact_cache.as_ref(),
        )
        .unwrap_or_else(|e| panic!("uarch sweep failed: {e}"));
        for row in &outcome.rows {
            let u = row.cache;
            if self.artifact_cache.is_some() {
                self.traffic.add_usage(&u);
            }
            eprintln!(
                "[cache] sweep/{}: model {}, {}/{} categories from cache",
                row.preset,
                if u.model_hit { "hit" } else { "miss" },
                u.categories_hit,
                u.categories_hit + u.categories_collected,
            );
        }
        op!(self, "{}", outcome.render_table());
        o!(self,
            "\n(pairs = distinguishable (event, category-pair) cells at 95%, over\n all 8 HPC events; alarms on {}/{} platforms)\n",
            outcome.alarms(),
            outcome.rows.len()
        );
        let rows: Vec<String> = outcome
            .rows
            .iter()
            .map(|r| {
                format!(
                    "{},{},{},{},{}",
                    r.preset, r.alarm, r.distinguishable_pairs, r.total_pairs, r.max_abs_t
                )
            })
            .collect();
        self.write_csv(
            "sweep_uarch_zoo.csv",
            "preset,alarm,distinguishable_pairs,total_pairs,max_abs_t",
            &rows,
        );
        if let Some(path) = &self.options.out {
            match std::fs::write(path, outcome.to_json()) {
                Ok(()) => eprintln!("[sweep] wrote {}", path.display()),
                Err(e) => panic!("cannot write --out {}: {e}", path.display()),
            }
        }
    }

    fn frontier(&mut self) -> Result<(), Error> {
        o!(
            self,
            "=============================================================="
        );
        o!(
            self,
            "Extension I: countermeasure leakage-vs-overhead frontier"
        );
        o!(
            self,
            "=============================================================="
        );
        o!(self,
            "(MNIST; every countermeasure arm against both adversaries — the\n pairwise-t-test evaluator and architecture extraction — priced in\n simulated cycles relative to the unprotected baseline; see DESIGN.md §16)\n"
        );
        let base = self.options.config(DatasetKind::Mnist);
        let opts = scnn_core::frontier::FrontierOptions {
            dummy_events: self.options.dummy_events,
            decoys: self.options.decoys,
            target_t: self.options.target_t,
            profile_fraction: self.options.profile_frac.unwrap_or(0.6),
        };
        let outcome = scnn_core::run_frontier(
            &base,
            &opts,
            self.options.threads,
            self.artifact_cache.as_ref(),
        )
        .map_err(|e| Error::msg(format!("frontier campaign failed: {e}")))?;
        for row in &outcome.rows {
            let u = row.cache;
            if self.artifact_cache.is_some() {
                self.traffic.add_usage(&u);
            }
            eprintln!(
                "[cache] frontier/{}: model {}, {}/{} categories from cache{}",
                row.arm,
                if u.model_hit { "hit" } else { "miss" },
                u.categories_hit,
                u.categories_hit + u.categories_collected,
                if row.trace_cache_hit {
                    ", trace corpus from cache"
                } else {
                    ""
                },
            );
        }
        o!(
            self,
            "calibrated-noise converged at {} dummy events (max |t| target {})\n",
            outcome.calibrated_dummy_events,
            outcome.target_t
        );
        op!(self, "{}", outcome.render_table());
        let pareto = outcome.pareto_arms();
        o!(
            self,
            "\npareto frontier: {}",
            if pareto.is_empty() {
                "(none)".to_owned()
            } else {
                pareto.join(", ")
            }
        );
        o!(self,
            "\n(leakage = mean of distinguishable-cell ratio and extraction recovery,\n both in [0,1]; overhead = mean traced-inference cycles vs baseline;\n * = Pareto-dominant among arms that beat the baseline's leakage)\n"
        );
        let rows: Vec<String> = outcome
            .rows
            .iter()
            .map(|r| {
                format!(
                    "{},{},{},{},{},{},{},{},{}",
                    r.arm,
                    r.alarm,
                    r.distinguishable_pairs,
                    r.total_pairs,
                    r.max_abs_t,
                    r.extraction_overall,
                    r.leakage,
                    r.overhead,
                    r.pareto
                )
            })
            .collect();
        self.write_csv(
            "frontier_pareto.csv",
            "arm,alarm,distinguishable_pairs,total_pairs,max_abs_t,extraction_overall,leakage,overhead,pareto",
            &rows,
        );
        if let Some(path) = &self.options.out {
            std::fs::write(path, outcome.to_json())
                .map_err(|e| Error::io(path.display().to_string(), e))?;
            eprintln!("[frontier] wrote {}", path.display());
        }
        Ok(())
    }

    /// Dispatches one artefact command. This is the single entry point
    /// shared by the direct CLI and by every `repro serve` job, which is
    /// what makes a job's captured output byte-identical to the
    /// equivalent direct run. `serve` itself is deliberately *not*
    /// dispatchable here, so a job cannot start a nested service.
    fn run_command(&mut self, command: &str) -> Result<(), Error> {
        match command {
            "fig1" => self.fig1(),
            "fig2b" => self.fig2b(),
            "fig3" => self.distributions(DatasetKind::Mnist),
            "fig4" => self.distributions(DatasetKind::Cifar10),
            "table1" => self.table(DatasetKind::Mnist),
            "table2" => self.table(DatasetKind::Cifar10),
            "attack" => self.attack(),
            "extract" => self.extract()?,
            "ablation" => self.ablation(),
            "noise" => self.noise(),
            "events" => self.events(),
            "uarch" => self.uarch(),
            "archs" => self.archs(),
            "sweep" => self.sweep(),
            "frontier" => self.frontier()?,
            "all" => {
                self.fig1();
                self.fig2b();
                self.distributions(DatasetKind::Mnist);
                self.distributions(DatasetKind::Cifar10);
                self.table(DatasetKind::Mnist);
                self.table(DatasetKind::Cifar10);
                self.attack();
                self.extract()?;
                self.ablation();
                self.noise();
                self.events();
                self.uarch();
                self.archs();
                self.sweep();
                self.frontier()?;
            }
            other => return Err(Error::msg(format!("unknown command {other:?}"))),
        }
        Ok(())
    }
}

/// The attack panel heading for one explicitly chosen classifier —
/// matches the default panel's headings so `--classifier lda` prints
/// the same `[LDA (pooled covariance)]` block a full run would.
fn attack_panel_label(classifier: &AttackClassifier) -> String {
    match classifier {
        AttackClassifier::GaussianTemplate => "gaussian template".into(),
        AttackClassifier::Lda => "LDA (pooled covariance)".into(),
        AttackClassifier::Knn { k } => format!("{k}-NN"),
    }
}

/// Live progress on stderr while telemetry is on: one line per
/// phase-level span (depth ≤ 1 — `pipeline.run` and its children).
/// Stderr only; stdout stays byte-identical with telemetry off.
fn phase_progress(event: &SpanEvent) {
    if event.depth > 1 {
        return;
    }
    let indent = if event.depth == 0 { "" } else { "  " };
    match event.phase {
        SpanPhase::Enter => eprintln!("[telemetry] {indent}> {}", event.name),
        SpanPhase::Exit => {
            let elapsed = event.duration.unwrap_or_default();
            eprintln!("[telemetry] {indent}< {} ({elapsed:.1?})", event.name);
        }
    }
}

/// The `serve`-only knobs, parsed from the CLI.
struct ServeOptions {
    workers: Threads,
    jobs: Option<PathBuf>,
    socket: Option<PathBuf>,
    cache_budget: Option<u64>,
    job_stdout_dir: Option<PathBuf>,
    report_out: Option<PathBuf>,
}

impl ServeOptions {
    fn from_flags(parsed: &scnn_bench::flags::Parsed) -> Result<ServeOptions, Error> {
        Ok(ServeOptions {
            workers: match parsed.value("--workers") {
                Some(v) => v.parse().map_err(|_| {
                    Error::msg(format!("--workers needs a count or \"auto\", got {v:?}"))
                })?,
                None => Threads::Auto,
            },
            jobs: parsed.value("--jobs").map(PathBuf::from),
            socket: parsed.value("--socket").map(PathBuf::from),
            cache_budget: match parsed.value("--cache-budget") {
                Some(v) => Some(v.parse().map_err(|_| {
                    Error::msg(format!("--cache-budget needs a byte count, got {v:?}"))
                })?),
                None => None,
            },
            job_stdout_dir: parsed.value("--job-stdout-dir").map(PathBuf::from),
            report_out: parsed.value("--out").map(PathBuf::from),
        })
    }
}

/// Executes one service job: builds per-job options (job parameters
/// override the serve-level defaults), runs the command through the
/// same [`Runner`] the CLI uses with a private output buffer, and
/// optionally mirrors that buffer to `<stdout_dir>/<id>.out`.
fn run_job(
    spec: &JobSpec,
    base: &Options,
    cache: Option<&ArtifactCache>,
    stdout_dir: Option<&Path>,
) -> Result<JobOutput, String> {
    let mut options = base.clone();
    // Side files are per-process concerns; jobs only produce stdout.
    options.csv = None;
    options.telemetry = None;
    options.out = None;
    if let Some(samples) = spec.usize_param("samples")? {
        options.samples = samples;
    }
    if spec.param("quick").is_some() {
        options.quick = spec.bool_param("quick")?;
    }
    if let Some(threads) = spec.usize_param("threads")? {
        if threads == 0 {
            return Err("parameter \"threads\" must be at least 1".into());
        }
        options.threads = Threads::Count(threads);
    }
    if let Some(uarch) = spec.str_param("uarch")? {
        options.uarch = Some(scnn_core::zoo::load_uarch(uarch).map_err(|e| format!("uarch: {e}"))?);
    }
    if let Some(name) = spec.str_param("classifier")? {
        options.classifier = Some(
            AttackClassifier::parse_flag(name)
                .ok_or_else(|| format!("parameter \"classifier\": unknown classifier {name:?}"))?,
        );
    }
    if let Some(frac) = spec.f64_param("profile_frac")? {
        options.profile_frac = Some(frac);
    }
    if let Some(n) = spec.usize_param("dummy_events")? {
        if n == 0 {
            return Err("parameter \"dummy_events\" must be positive".into());
        }
        options.dummy_events = n as u64;
    }
    if let Some(n) = spec.usize_param("decoys")? {
        if n == 0 {
            return Err("parameter \"decoys\" must be positive".into());
        }
        options.decoys = n as u64;
    }
    if let Some(t) = spec.f64_param("target_t")? {
        if !t.is_finite() || t <= 0.0 {
            return Err("parameter \"target_t\" must be finite and positive".into());
        }
        options.target_t = t;
    }
    let mut runner = Runner {
        options,
        cache: HashMap::new(),
        artifact_cache: cache.cloned(),
        out: Vec::new(),
        traffic: CacheTraffic::default(),
    };
    runner
        .run_command(&spec.command)
        .map_err(|e| e.to_string())?;
    let stdout =
        String::from_utf8(runner.out).map_err(|_| "job produced non-UTF-8 output".to_string())?;
    if let Some(dir) = stdout_dir {
        // The id is a validated slug (see `JobSpec::parse_line`), so it
        // is safe as a file stem.
        let path = dir.join(format!("{}.out", spec.id));
        std::fs::write(&path, &stdout)
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }
    Ok(JobOutput {
        stdout,
        cache: cache.is_some().then_some(runner.traffic),
    })
}

/// Folds one connection's report into a whole-service aggregate:
/// counts and cache traffic sum; latency percentiles and queue depth
/// take the worst connection (percentiles do not compose exactly
/// across runs, and worst-case is the operationally useful bound).
fn merge_report(total: &mut ServiceReport, conn: &ServiceReport) {
    total.jobs += conn.jobs;
    total.ok += conn.ok;
    total.errors += conn.errors;
    total.rejected += conn.rejected;
    total.io_errors += conn.io_errors;
    total.shutdown |= conn.shutdown;
    total.max_queue_depth = total.max_queue_depth.max(conn.max_queue_depth);
    // f64::max ignores a NaN operand, so an empty side never clobbers a
    // measured percentile.
    total.p50_ms = total.p50_ms.max(conn.p50_ms);
    total.p99_ms = total.p99_ms.max(conn.p99_ms);
    total.cache.merge(&conn.cache);
}

/// Socket transport: accept connections on a Unix socket one at a time,
/// running the serve loop per connection against the shared executor
/// (and therefore the shared cache), until a connection submits the
/// `shutdown` command.
fn serve_socket<F>(path: &Path, config: &ServiceConfig, executor: F) -> Result<ServiceReport, Error>
where
    F: Fn(&JobSpec) -> Result<JobOutput, String> + Sync,
{
    let io_err = |e: std::io::Error| Error::io(path.display().to_string(), e);
    // A stale socket file from a previous run would make bind fail.
    let _ = std::fs::remove_file(path);
    let listener = std::os::unix::net::UnixListener::bind(path).map_err(io_err)?;
    eprintln!("[serve] listening on {}", path.display());
    let started = Instant::now();
    let mut total = ServiceReport {
        jobs: 0,
        ok: 0,
        errors: 0,
        rejected: 0,
        shutdown: false,
        elapsed_s: 0.0,
        jobs_per_sec: f64::NAN,
        p50_ms: f64::NAN,
        p99_ms: f64::NAN,
        max_queue_depth: 0,
        io_errors: 0,
        cache: CacheTraffic::default(),
    };
    loop {
        let (stream, _) = listener.accept().map_err(io_err)?;
        let reader = std::io::BufReader::new(stream.try_clone().map_err(io_err)?);
        let report = service::serve(reader, stream, config, &executor);
        eprintln!(
            "[serve] connection done: {} jobs ({} ok, {} errors, {} rejected)",
            report.jobs, report.ok, report.errors, report.rejected
        );
        let stop = report.shutdown;
        merge_report(&mut total, &report);
        if stop {
            break;
        }
    }
    let _ = std::fs::remove_file(path);
    total.elapsed_s = started.elapsed().as_secs_f64();
    total.jobs_per_sec = if total.elapsed_s > 0.0 {
        (total.ok + total.errors + total.rejected) as f64 / total.elapsed_s
    } else {
        f64::NAN
    };
    Ok(total)
}

/// The `repro serve` entry point: wires the chosen transport (stdin, a
/// jobs file, or a Unix socket) to [`service::serve`] with [`run_job`]
/// as the executor, then reports, garbage-collects the shared cache
/// against `--cache-budget`, and writes the service report to `--out`.
fn serve_mode(
    serve: &ServeOptions,
    base: &Options,
    artifact_cache: Option<ArtifactCache>,
) -> Result<(), Error> {
    if let Some(dir) = &serve.job_stdout_dir {
        std::fs::create_dir_all(dir).map_err(|e| Error::io(dir.display().to_string(), e))?;
    }
    let config = ServiceConfig {
        workers: serve.workers,
        // With a stdout dir the response stream stays lean; without one
        // the response itself carries the job's output.
        include_stdout: serve.job_stdout_dir.is_none(),
    };
    let executor = |spec: &JobSpec| {
        run_job(
            spec,
            base,
            artifact_cache.as_ref(),
            serve.job_stdout_dir.as_deref(),
        )
    };
    let report = match (&serve.socket, &serve.jobs) {
        (Some(path), _) => serve_socket(path, &config, executor)?,
        (None, Some(path)) => {
            let file =
                std::fs::File::open(path).map_err(|e| Error::io(path.display().to_string(), e))?;
            service::serve(
                std::io::BufReader::new(file),
                std::io::stdout(),
                &config,
                executor,
            )
        }
        (None, None) => service::serve(
            std::io::stdin().lock(),
            std::io::stdout(),
            &config,
            executor,
        ),
    };
    eprintln!(
        "[serve] {} jobs ({} ok, {} errors, {} rejected) in {:.1}s — {:.1} jobs/s, p50 {:.1} ms, p99 {:.1} ms, peak queue {}",
        report.jobs,
        report.ok,
        report.errors,
        report.rejected,
        report.elapsed_s,
        report.jobs_per_sec,
        report.p50_ms,
        report.p99_ms,
        report.max_queue_depth
    );
    if report.cache.lookups() > 0 {
        eprintln!(
            "[serve] cache: {} lookups, hit rate {:.0}%, {} writes",
            report.cache.lookups(),
            report.cache.hit_rate() * 100.0,
            report.cache.writes
        );
    }
    if let (Some(cache), Some(budget)) = (&artifact_cache, serve.cache_budget) {
        match cache.gc(budget) {
            Ok(gc) => eprintln!(
                "[serve] cache gc: {} artifacts scanned, {} evicted, {} -> {} bytes (budget {budget})",
                gc.scanned, gc.evicted, gc.bytes_before, gc.bytes_after
            ),
            Err(e) => eprintln!("[serve] cache gc failed: {e}"),
        }
    }
    if let Some(path) = &serve.report_out {
        std::fs::write(path, report.to_json())
            .map_err(|e| Error::io(path.display().to_string(), e))?;
        eprintln!("[serve] wrote {}", path.display());
    }
    Ok(())
}

fn run() -> Result<(), Error> {
    let flags = repro_flags();
    let parsed = flags
        .parse(std::env::args().skip(1))
        .map_err(|e| Error::msg(format!("{e} (see repro --help)")))?;
    if parsed.is_set("--help") {
        print!("{}", flags.help());
        return Ok(());
    }
    let options = Options {
        samples: match parsed.value("--samples") {
            Some(v) => v
                .parse()
                .map_err(|_| Error::msg(format!("--samples needs an integer, got {v:?}")))?,
            None => 100,
        },
        quick: parsed.is_set("--quick"),
        csv: parsed.value("--csv").map(std::path::PathBuf::from),
        threads: match parsed.value("--threads") {
            Some(v) => v.parse().map_err(|_| {
                Error::msg(format!("--threads needs a count or \"auto\", got {v:?}"))
            })?,
            None => Threads::Auto,
        },
        telemetry: parsed.value("--telemetry").map(std::path::PathBuf::from),
        uarch: match parsed.value("--uarch") {
            Some(spec) => Some(
                scnn_core::zoo::load_uarch(spec)
                    .map_err(|e| Error::msg(format!("--uarch: {e}")))?,
            ),
            None => None,
        },
        out: parsed.value("--out").map(std::path::PathBuf::from),
        classifier: match parsed.value("--classifier") {
            Some(name) => Some(AttackClassifier::parse_flag(name).ok_or_else(|| {
                Error::msg(format!(
                    "--classifier: unknown classifier {name:?} (expected gaussian-template, lda or knn[:K])"
                ))
            })?),
            None => None,
        },
        profile_frac: match parsed.value("--profile-frac") {
            Some(v) => Some(v.parse().map_err(|_| {
                Error::msg(format!("--profile-frac needs a fraction in (0,1), got {v:?}"))
            })?),
            None => None,
        },
        dummy_events: match parsed.value("--dummy-events") {
            Some(v) => scnn_bench::parse_positive_u64("--dummy-events", v)
                .map_err(|e| Error::msg(e.to_string()))?,
            None => 20_000,
        },
        decoys: match parsed.value("--decoys") {
            Some(v) => scnn_bench::parse_positive_u64("--decoys", v)
                .map_err(|e| Error::msg(e.to_string()))?,
            None => 3,
        },
        target_t: match parsed.value("--target-t") {
            Some(v) => scnn_bench::parse_positive_f64("--target-t", v)
                .map_err(|e| Error::msg(e.to_string()))?,
            None => 1.5,
        },
    };
    let artifact_cache = match parsed.value("--cache-dir") {
        Some(dir) => Some(
            ArtifactCache::open(dir).map_err(|e| Error::msg(format!("--cache-dir {dir}: {e}")))?,
        ),
        None => None,
    };
    let command = match parsed.positionals.as_slice() {
        [one] => one.clone(),
        [] => return Err(Error::msg(format!("missing command\n{}", flags.help()))),
        more => {
            return Err(Error::msg(format!(
                "expected one command, got {}",
                more.join(" ")
            )))
        }
    };

    // Telemetry is observation-only: install the recorder around the
    // whole command, write the snapshot after it finishes.
    let recorder = options.telemetry.is_some().then(|| {
        let recorder = Arc::new(Recorder::with_observer(Box::new(phase_progress)));
        scnn_obs::install(recorder.clone());
        recorder
    });
    let telemetry_path = options.telemetry.clone();

    if command == "serve" {
        let serve_options = ServeOptions::from_flags(&parsed)?;
        serve_mode(&serve_options, &options, artifact_cache)?;
    } else {
        let mut runner = Runner {
            options,
            cache: HashMap::new(),
            artifact_cache,
            out: std::io::stdout(),
            traffic: CacheTraffic::default(),
        };
        runner
            .run_command(&command)
            .map_err(|e| Error::msg(format!("{e}\n{}", flags.help())))?;
    }

    if let (Some(path), Some(recorder)) = (telemetry_path, recorder) {
        scnn_obs::uninstall();
        let snapshot = recorder.snapshot();
        std::fs::write(&path, snapshot.to_json())
            .map_err(|e| Error::io(path.display().to_string(), e))?;
        eprintln!(
            "[telemetry] wrote {} ({} spans, {} counters, {} histograms, {} series)",
            path.display(),
            snapshot.spans.len(),
            snapshot.counters.len(),
            snapshot.histograms.len(),
            snapshot.series.len()
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("repro: {e}");
            ExitCode::FAILURE
        }
    }
}
