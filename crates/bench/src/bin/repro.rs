//! `repro` — regenerates every table and figure of the paper.
//!
//! One subcommand per artefact:
//!
//! ```text
//! repro fig1            # Fig 1(a,b): average cache-misses per category
//! repro fig2b           # Fig 2(b): all 8 HPC events of one classification
//! repro fig3            # Fig 3(a,b): MNIST distributions (cache-misses, branches)
//! repro fig4            # Fig 4(a,b): CIFAR-10 distributions
//! repro table1          # Table 1: MNIST pairwise t-tests
//! repro table2          # Table 2: CIFAR-10 pairwise t-tests
//! repro attack          # Extension A: HPC template attack accuracy
//! repro ablation        # Extension B: countermeasure ablation
//! repro noise           # Extension C: leakage vs noise level / sample count
//! repro events          # Extension D: which of the 8 events leak, cold vs warm
//! repro uarch           # Extension E: microarchitectural design ablation
//! repro archs           # Extension F: CNN vs MLP victim architectures
//! repro sweep           # Extension G: t-test evaluation across the preset zoo
//! repro all             # everything above
//! ```
//!
//! Options (see `repro --help` for the generated page): `--samples <n>`
//! (measurements per category, default 100), `--quick` (tiny models, for
//! smoke tests), `--csv <dir>` (additionally write the raw figure/table
//! series as CSV files for external plotting), `--threads <n|auto>`
//! (worker threads for collection, evaluation and minibatch training;
//! output is bit-identical at every setting), `--telemetry <path>`
//! (record span/metric telemetry to a JSON file and show live per-phase
//! progress on stderr — stdout stays byte-identical), `--cache-dir <dir>`
//! (persist trained models and per-category observations so reruns skip
//! training and collection — stdout stays byte-identical; cache chatter
//! goes to stderr), `--uarch <name|path>` (simulate a different platform:
//! a preset from the zoo — see `scnn_core::zoo` — or a JSON config file),
//! `--out <path>` (for `sweep`: also write the leak table as JSON).

use scnn_bench::repro_flags;
use scnn_cache::ArtifactCache;
use scnn_core::attack::{AttackClassifier, AttackConfig};
use scnn_core::countermeasure::Countermeasure;
use scnn_core::json::ToJson;
use scnn_core::pipeline::{
    Architecture, DatasetKind, Experiment, ExperimentConfig, ExperimentOutcome,
};
use scnn_core::report::{render_distributions, render_summary};
use scnn_core::Error;
use scnn_hpc::{CounterGroup, HpcEvent, PerfStat, SimulatedPmu, WarmupPolicy};
use scnn_obs::{Recorder, SpanEvent, SpanPhase};
use scnn_par::Threads;
use scnn_stats::ranktest;
use scnn_uarch::UarchConfig;
use std::collections::HashMap;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

struct Options {
    samples: usize,
    quick: bool,
    csv: Option<std::path::PathBuf>,
    threads: Threads,
    telemetry: Option<std::path::PathBuf>,
    uarch: Option<UarchConfig>,
    out: Option<std::path::PathBuf>,
}

impl Options {
    fn config(&self, dataset: DatasetKind) -> ExperimentConfig {
        let base = if self.quick {
            ExperimentConfig::quick(dataset)
        } else {
            ExperimentConfig::paper(dataset)
        };
        // The determinism contract (see DESIGN.md § Parallel execution)
        // guarantees every artefact below is byte-identical whatever the
        // thread setting; only the wall-clock changes.
        let mut cfg = base.samples(self.samples).threads(self.threads);
        if let Some(uarch) = &self.uarch {
            cfg.pmu.core = uarch.core;
        }
        cfg
    }
}

/// Runs (and caches) the main experiment per dataset so `repro all` does
/// not retrain and remeasure for every artefact.
struct Runner {
    options: Options,
    cache: HashMap<&'static str, ExperimentOutcome>,
    /// The on-disk artifact cache behind `--cache-dir`, if set. Distinct
    /// from `cache` above: that one deduplicates within a single `repro`
    /// process, this one persists across processes.
    artifact_cache: Option<ArtifactCache>,
}

impl Runner {
    /// Runs one experiment, through the persistent artifact cache when
    /// `--cache-dir` is set. Cache chatter goes to stderr only — stdout
    /// is byte-identical with and without a cache.
    fn run_experiment(
        &self,
        label: &str,
        cfg: ExperimentConfig,
    ) -> Result<ExperimentOutcome, scnn_core::pipeline::ExperimentError> {
        let Some(cache) = &self.artifact_cache else {
            return Experiment::new(cfg).run();
        };
        let outcome = Experiment::new(cfg).run_cached(cache)?;
        let u = outcome.cache;
        if u.model_hit {
            eprintln!("[cache] {label}: model hit — training skipped");
        } else {
            eprintln!("[cache] {label}: model miss — trained and stored");
        }
        eprintln!(
            "[cache] {label}: {}/{} categories from cache, {} collected, {} artifacts written",
            u.categories_hit,
            u.categories_hit + u.categories_collected,
            u.categories_collected,
            u.writes
        );
        Ok(outcome)
    }

    fn outcome(&mut self, dataset: DatasetKind) -> &ExperimentOutcome {
        let key = match dataset {
            DatasetKind::Mnist => "mnist",
            DatasetKind::Cifar10 => "cifar",
        };
        #[allow(clippy::map_entry)]
        if !self.cache.contains_key(key) {
            let t0 = Instant::now();
            eprintln!(
                "[repro] running {dataset} experiment (train + {} measurements/category)…",
                self.options.samples
            );
            let outcome = self
                .run_experiment(key, self.options.config(dataset))
                .unwrap_or_else(|e| panic!("{dataset} experiment failed: {e}"));
            eprintln!(
                "[repro] {dataset} done in {:.1?} (CNN test accuracy {:.1}%)",
                t0.elapsed(),
                outcome.test_accuracy * 100.0
            );
            self.cache.insert(key, outcome);
        }
        &self.cache[key]
    }

    /// Writes one CSV file into the `--csv` directory, if set.
    fn write_csv(&self, name: &str, header: &str, rows: &[String]) {
        let Some(dir) = &self.options.csv else {
            return;
        };
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("[repro] cannot create {}: {e}", dir.display());
            return;
        }
        let path = dir.join(name);
        let mut content = String::from(header);
        content.push('\n');
        for row in rows {
            content.push_str(row);
            content.push('\n');
        }
        match std::fs::write(&path, content) {
            Ok(()) => eprintln!("[repro] wrote {}", path.display()),
            Err(e) => eprintln!("[repro] cannot write {}: {e}", path.display()),
        }
    }

    /// Raw per-measurement series of one experiment as CSV rows.
    fn csv_observations(&mut self, dataset: DatasetKind, file: &str) {
        if self.options.csv.is_none() {
            return;
        }
        let outcome = self.outcome(dataset);
        let mut rows = Vec::new();
        for obs in &outcome.observations {
            for (event, series) in &obs.per_event {
                for (i, v) in series.iter().enumerate() {
                    rows.push(format!(
                        "{},{},{},{},{v}",
                        dataset,
                        obs.category + 1,
                        event.perf_name(),
                        i
                    ));
                }
            }
        }
        self.write_csv(file, "dataset,category,event,measurement,value", &rows);
    }

    fn fig1(&mut self) {
        println!("==============================================================");
        println!("Figure 1: average cache-misses during classification");
        println!("==============================================================");
        for dataset in [DatasetKind::Mnist, DatasetKind::Cifar10] {
            let panel = match dataset {
                DatasetKind::Mnist => "(a) MNIST",
                DatasetKind::Cifar10 => "(b) CIFAR-10",
            };
            let outcome = self.outcome(dataset);
            println!("\n--- Figure 1{panel} ---");
            print!("{}", outcome.report.render_means(HpcEvent::CacheMisses, 40));
            let rows: Vec<String> = outcome
                .report
                .event(HpcEvent::CacheMisses)
                .map(|ev| {
                    ev.summaries
                        .iter()
                        .enumerate()
                        .map(|(c, s)| {
                            format!("{dataset},{},{},{}", c + 1, s.mean(), s.sample_std())
                        })
                        .collect()
                })
                .unwrap_or_default();
            let file = match dataset {
                DatasetKind::Mnist => "fig1a_mnist_means.csv",
                DatasetKind::Cifar10 => "fig1b_cifar_means.csv",
            };
            self.write_csv(file, "dataset,category,mean_cache_misses,std", &rows);
        }
        println!();
    }

    fn fig2b(&mut self) {
        println!("==============================================================");
        println!("Figure 2(b): HPC events of a single MNIST classification");
        println!("==============================================================");
        let cfg = self.options.config(DatasetKind::Mnist);
        let image = scnn_data::mnist_synth::generate(
            &scnn_data::mnist_synth::MnistSynthConfig {
                per_class: 1,
                side: if self.options.quick { 12 } else { 28 },
                ..Default::default()
            },
            7,
        )
        .expect("generator is infallible for valid configs")
        .get(0)
        .map(|(img, _)| img.clone())
        .expect("per_class = 1 yields an image");
        // One trained model, one classification, all eight events at once.
        let outcome = self.outcome(DatasetKind::Mnist);
        let pmu = SimulatedPmu::new(cfg.pmu, 0x000F_162B).expect("default geometry is valid");
        let group = CounterGroup::new(HpcEvent::FIG2B.to_vec(), 8).expect("8 distinct events");
        let mut session = PerfStat::new(pmu, group);
        let net = &outcome.network;
        let report = session
            .stat(&mut |probe| {
                let _ = net.classify_traced(&image, probe);
            })
            .expect("simulated measurement cannot fail");
        println!("{report}");
    }

    fn distributions(&mut self, dataset: DatasetKind) {
        let (figure, name) = match dataset {
            DatasetKind::Mnist => ("Figure 3", "MNIST"),
            DatasetKind::Cifar10 => ("Figure 4", "CIFAR-10"),
        };
        println!("==============================================================");
        println!("{figure}: per-category HPC distributions, {name}");
        println!("==============================================================");
        {
            let outcome = self.outcome(dataset);
            for (panel, event) in [("a", HpcEvent::CacheMisses), ("b", HpcEvent::Branches)] {
                println!("\n--- {figure}({panel}): {event} ---");
                print!("{}", render_summary(&outcome.observations, event));
                print!("{}", render_distributions(&outcome.observations, event, 12));
            }
        }
        let file = match dataset {
            DatasetKind::Mnist => "fig3_mnist_observations.csv",
            DatasetKind::Cifar10 => "fig4_cifar_observations.csv",
        };
        self.csv_observations(dataset, file);
        println!();
    }

    fn table(&mut self, dataset: DatasetKind) {
        let (table, name) = match dataset {
            DatasetKind::Mnist => ("Table 1", "MNIST"),
            DatasetKind::Cifar10 => ("Table 2", "CIFAR-10"),
        };
        println!("==============================================================");
        println!("{table}: pairwise t-tests, {name} (* = distinguishable at 95%)");
        println!("==============================================================");
        let outcome = self.outcome(dataset);
        print!("{}", outcome.report.render_table());

        // Rank-test cross-check (robustness extension).
        println!("rank-test cross-check (Mann-Whitney p-values, cache-misses):");
        let obs = &outcome.observations;
        for i in 0..obs.len() {
            for j in (i + 1)..obs.len() {
                let a = obs[i].series(HpcEvent::CacheMisses).unwrap_or(&[]);
                let b = obs[j].series(HpcEvent::CacheMisses).unwrap_or(&[]);
                if let Ok(r) = ranktest::mann_whitney_u(a, b) {
                    println!("  u{},{}: p = {:.4}", i + 1, j + 1, r.p);
                }
            }
        }
        println!();
    }

    fn attack(&mut self) {
        println!("==============================================================");
        println!("Extension A: input-category recovery from HPC readings");
        println!("==============================================================");
        for dataset in [DatasetKind::Mnist, DatasetKind::Cifar10] {
            let outcome = self.outcome(dataset);
            println!("\n--- {dataset} ---");
            for (label, classifier) in [
                ("gaussian template", AttackClassifier::GaussianTemplate),
                ("LDA (pooled covariance)", AttackClassifier::Lda),
                ("5-NN", AttackClassifier::Knn { k: 5 }),
            ] {
                match outcome.mount_attack(&AttackConfig {
                    classifier,
                    ..AttackConfig::default()
                }) {
                    Ok(out) => {
                        println!("[{label}]");
                        print!("{out}");
                    }
                    Err(e) => println!("[{label}] attack failed: {e}"),
                }
            }
        }
        println!();
    }

    fn ablation(&mut self) {
        println!("==============================================================");
        println!("Extension B: countermeasure ablation (MNIST)");
        println!("==============================================================");
        let base = self.options.config(DatasetKind::Mnist);
        let arms: Vec<(&str, Option<Countermeasure>)> = vec![
            ("leaky baseline", None),
            ("constant-time kernels", Some(Countermeasure::ConstantTime)),
            (
                "noise injection (20k dummy events)",
                Some(Countermeasure::NoiseInjection {
                    dummy_events: 20_000,
                }),
            ),
            (
                "combined",
                Some(Countermeasure::Combined {
                    dummy_events: 20_000,
                }),
            ),
        ];
        println!(
            "{:<40} {:>12} {:>12} {:>10}",
            "countermeasure", "cm pairs*", "br pairs*", "attack"
        );
        for (label, cm) in arms {
            let mut cfg = base.clone();
            cfg.countermeasure = cm;
            let outcome = self
                .run_experiment(&format!("ablation/{label}"), cfg)
                .unwrap_or_else(|e| panic!("ablation arm '{label}' failed: {e}"));
            let pairs = |event| {
                outcome
                    .report
                    .event(event)
                    .map(|e| e.pairwise.leak_count())
                    .unwrap_or(0)
            };
            let attack = outcome
                .mount_attack(&AttackConfig::default())
                .map(|a| format!("{:.0}%", a.accuracy * 100.0))
                .unwrap_or_else(|_| "n/a".into());
            println!(
                "{:<40} {:>10}/6 {:>10}/6 {:>10}",
                label,
                pairs(HpcEvent::CacheMisses),
                pairs(HpcEvent::Branches),
                attack
            );
        }
        println!("\n(* category pairs distinguishable at 95% confidence)\n");
    }

    fn events(&mut self) {
        println!("==============================================================");
        println!("Extension D: leakage per HPC event, cold vs warm measurement");
        println!("==============================================================");
        println!(
            "(the paper's §5.2: \"we observed that some of the events can\n produce different distributions for different categories\")\n"
        );
        println!("{:<24} {:>16} {:>16}", "event", "cold-start", "warm-attach");
        let mut rows: Vec<(String, usize, usize)> = Vec::new();
        for warmup in [WarmupPolicy::ColdStart, WarmupPolicy::Warm] {
            let mut cfg = self.options.config(DatasetKind::Mnist);
            cfg.collection.events = HpcEvent::FIG2B.to_vec();
            cfg.pmu.warmup = warmup;
            let outcome = self
                .run_experiment(&format!("events/{warmup:?}"), cfg)
                .unwrap_or_else(|e| panic!("events experiment ({warmup:?}) failed: {e}"));
            for ev in &outcome.report.per_event {
                let count = ev.pairwise.leak_count();
                match warmup {
                    WarmupPolicy::ColdStart => {
                        rows.push((ev.event.perf_name().to_owned(), count, 0));
                    }
                    WarmupPolicy::Warm => {
                        if let Some(row) = rows.iter_mut().find(|r| r.0 == ev.event.perf_name()) {
                            row.2 = count;
                        }
                    }
                }
            }
        }
        rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        for (name, cold, warm) in rows {
            println!("{:<24} {:>14}/6 {:>14}/6", name, cold, warm);
        }
        println!("\n(pairs distinguishable at 95%; warm-attach = perf stat -p on a\n long-running service, caches staying warm between classifications)\n");
    }

    fn archs(&mut self) {
        println!("==============================================================");
        println!("Extension F: victim architecture comparison (MNIST)");
        println!("==============================================================");
        println!(
            "(the paper's future work: \"explore the vulnerabilities in other\n deep learning models\")\n"
        );
        println!(
            "{:<12} {:>10} {:>12} {:>12} {:>10}",
            "model", "accuracy", "cm pairs*", "br pairs*", "attack"
        );
        for (name, arch) in [("CNN", Architecture::Cnn), ("MLP", Architecture::Mlp)] {
            let mut cfg = self.options.config(DatasetKind::Mnist);
            cfg.architecture = arch;
            let outcome = self
                .run_experiment(&format!("archs/{name}"), cfg)
                .unwrap_or_else(|e| panic!("architecture arm '{name}' failed: {e}"));
            let pairs = |event| {
                outcome
                    .report
                    .event(event)
                    .map(|e| e.pairwise.leak_count())
                    .unwrap_or(0)
            };
            let attack = outcome
                .mount_attack(&AttackConfig::default())
                .map(|a| format!("{:.0}%", a.accuracy * 100.0))
                .unwrap_or_else(|_| "n/a".into());
            println!(
                "{:<12} {:>9.1}% {:>10}/6 {:>10}/6 {:>10}",
                name,
                outcome.test_accuracy * 100.0,
                pairs(HpcEvent::CacheMisses),
                pairs(HpcEvent::Branches),
                attack
            );
        }
        println!("\n(* category pairs distinguishable at 95% confidence)\n");
    }

    fn uarch(&mut self) {
        use scnn_uarch::{CacheConfig, PredictorKind, PrefetcherKind};

        println!("==============================================================");
        println!("Extension E: microarchitectural ablation (MNIST, cache-misses)");
        println!("==============================================================");
        println!("does the leak depend on the platform's microarchitecture?\n");
        let base = self.options.config(DatasetKind::Mnist);
        let mut arms: Vec<(String, scnn_core::pipeline::ExperimentConfig)> = Vec::new();

        let mut cfg = base.clone();
        cfg.pmu.core = scnn_uarch::CoreConfig::xeon_e5_2690();
        arms.push(("Xeon E5-2690 (paper platform)".into(), cfg));

        for (name, kind) in [
            ("no prefetcher", PrefetcherKind::None),
            ("next-line prefetcher", PrefetcherKind::NextLine),
        ] {
            let mut cfg = base.clone();
            cfg.pmu.core.hierarchy.prefetcher = kind;
            arms.push((name.into(), cfg));
        }
        for (name, bytes, assoc) in [
            ("small LLC (256 KiB)", 256 * 1024, 8),
            ("large LLC (8 MiB)", 8 * 1024 * 1024, 16),
        ] {
            let mut cfg = base.clone();
            cfg.pmu.core.hierarchy.l3 = CacheConfig::new(bytes, assoc, 64);
            arms.push((name.into(), cfg));
        }
        for (name, kind) in [
            ("bimodal predictor", PredictorKind::Bimodal),
            ("perceptron predictor", PredictorKind::Perceptron),
        ] {
            let mut cfg = base.clone();
            cfg.pmu.core.predictor = kind;
            arms.push((name.into(), cfg));
        }

        println!(
            "{:<34} {:>12} {:>12}",
            "platform variant", "cm pairs*", "br pairs*"
        );
        for (name, cfg) in arms {
            let outcome = self
                .run_experiment(&format!("uarch/{name}"), cfg)
                .unwrap_or_else(|e| panic!("uarch arm '{name}' failed: {e}"));
            let pairs = |event| {
                outcome
                    .report
                    .event(event)
                    .map(|e| e.pairwise.leak_count())
                    .unwrap_or(0)
            };
            println!(
                "{:<34} {:>10}/6 {:>10}/6",
                name,
                pairs(HpcEvent::CacheMisses),
                pairs(HpcEvent::Branches)
            );
        }
        println!("\n(* category pairs distinguishable at 95% confidence; the leak\n   is robust to platform details — it lives in the software)\n");
    }

    fn noise(&mut self) {
        println!("==============================================================");
        println!("Extension C: leakage vs noise level and sample count (MNIST)");
        println!("==============================================================");
        let base = self.options.config(DatasetKind::Mnist);
        let pairs_of = |outcome: &ExperimentOutcome, event| {
            outcome
                .report
                .event(event)
                .map(|e| e.pairwise.leak_count())
                .unwrap_or(0)
        };

        println!(
            "\nnoise sweep (samples/category = {}):",
            base.collection.samples_per_category
        );
        println!(
            "{:<14} {:>14} {:>14}",
            "noise level", "cm pairs*", "br pairs*"
        );
        for level in [0.0, 0.5, 1.0, 2.0, 4.0] {
            let mut cfg = base.clone();
            cfg.pmu.noise = cfg.pmu.noise.scaled(level);
            let outcome = self
                .run_experiment(&format!("noise/noise-{level:.1}x"), cfg)
                .unwrap_or_else(|e| panic!("noise sweep level {level} failed: {e}"));
            println!(
                "{:<14} {:>12}/6 {:>12}/6",
                format!("{level:.1}x"),
                pairs_of(&outcome, HpcEvent::CacheMisses),
                pairs_of(&outcome, HpcEvent::Branches)
            );
        }

        println!("\nsample-count sweep (default noise):");
        println!(
            "{:<14} {:>14} {:>14}",
            "samples/cat", "cm pairs*", "br pairs*"
        );
        for samples in [10, 25, 50, 100] {
            let mut cfg = base.clone();
            cfg.collection.samples_per_category = samples;
            let outcome = self
                .run_experiment(&format!("noise/samples-{samples}"), cfg)
                .unwrap_or_else(|e| panic!("sample sweep n={samples} failed: {e}"));
            println!(
                "{:<14} {:>12}/6 {:>12}/6",
                samples,
                pairs_of(&outcome, HpcEvent::CacheMisses),
                pairs_of(&outcome, HpcEvent::Branches)
            );
        }
        println!("\n(* category pairs distinguishable at 95% confidence)\n");
    }

    fn sweep(&mut self) {
        println!("==============================================================");
        println!("Extension G: t-test evaluation across the microarchitecture zoo");
        println!("==============================================================");
        println!("(MNIST; one row per simulated platform, same model and seeds)\n");
        let base = self.options.config(DatasetKind::Mnist);
        let zoo = scnn_core::zoo::zoo();
        for preset in &zoo {
            eprintln!("[sweep] preset {}: {}", preset.name, preset.description);
        }
        let outcome = scnn_core::sweep::run_sweep(
            &base,
            &zoo,
            self.options.threads,
            self.artifact_cache.as_ref(),
        )
        .unwrap_or_else(|e| panic!("uarch sweep failed: {e}"));
        for row in &outcome.rows {
            let u = row.cache;
            eprintln!(
                "[cache] sweep/{}: model {}, {}/{} categories from cache",
                row.preset,
                if u.model_hit { "hit" } else { "miss" },
                u.categories_hit,
                u.categories_hit + u.categories_collected,
            );
        }
        print!("{}", outcome.render_table());
        println!(
            "\n(pairs = distinguishable (event, category-pair) cells at 95%, over\n all 8 HPC events; alarms on {}/{} platforms)\n",
            outcome.alarms(),
            outcome.rows.len()
        );
        let rows: Vec<String> = outcome
            .rows
            .iter()
            .map(|r| {
                format!(
                    "{},{},{},{},{}",
                    r.preset, r.alarm, r.distinguishable_pairs, r.total_pairs, r.max_abs_t
                )
            })
            .collect();
        self.write_csv(
            "sweep_uarch_zoo.csv",
            "preset,alarm,distinguishable_pairs,total_pairs,max_abs_t",
            &rows,
        );
        if let Some(path) = &self.options.out {
            match std::fs::write(path, outcome.to_json()) {
                Ok(()) => eprintln!("[sweep] wrote {}", path.display()),
                Err(e) => panic!("cannot write --out {}: {e}", path.display()),
            }
        }
    }
}

/// Live progress on stderr while telemetry is on: one line per
/// phase-level span (depth ≤ 1 — `pipeline.run` and its children).
/// Stderr only; stdout stays byte-identical with telemetry off.
fn phase_progress(event: &SpanEvent) {
    if event.depth > 1 {
        return;
    }
    let indent = if event.depth == 0 { "" } else { "  " };
    match event.phase {
        SpanPhase::Enter => eprintln!("[telemetry] {indent}> {}", event.name),
        SpanPhase::Exit => {
            let elapsed = event.duration.unwrap_or_default();
            eprintln!("[telemetry] {indent}< {} ({elapsed:.1?})", event.name);
        }
    }
}

fn run() -> Result<(), Error> {
    let flags = repro_flags();
    let parsed = flags
        .parse(std::env::args().skip(1))
        .map_err(|e| Error::msg(format!("{e} (see repro --help)")))?;
    if parsed.is_set("--help") {
        print!("{}", flags.help());
        return Ok(());
    }
    let options = Options {
        samples: match parsed.value("--samples") {
            Some(v) => v
                .parse()
                .map_err(|_| Error::msg(format!("--samples needs an integer, got {v:?}")))?,
            None => 100,
        },
        quick: parsed.is_set("--quick"),
        csv: parsed.value("--csv").map(std::path::PathBuf::from),
        threads: match parsed.value("--threads") {
            Some(v) => v.parse().map_err(|_| {
                Error::msg(format!("--threads needs a count or \"auto\", got {v:?}"))
            })?,
            None => Threads::Auto,
        },
        telemetry: parsed.value("--telemetry").map(std::path::PathBuf::from),
        uarch: match parsed.value("--uarch") {
            Some(spec) => Some(
                scnn_core::zoo::load_uarch(spec)
                    .map_err(|e| Error::msg(format!("--uarch: {e}")))?,
            ),
            None => None,
        },
        out: parsed.value("--out").map(std::path::PathBuf::from),
    };
    let artifact_cache = match parsed.value("--cache-dir") {
        Some(dir) => Some(
            ArtifactCache::open(dir).map_err(|e| Error::msg(format!("--cache-dir {dir}: {e}")))?,
        ),
        None => None,
    };
    let command = match parsed.positionals.as_slice() {
        [one] => one.clone(),
        [] => return Err(Error::msg(format!("missing command\n{}", flags.help()))),
        more => {
            return Err(Error::msg(format!(
                "expected one command, got {}",
                more.join(" ")
            )))
        }
    };

    // Telemetry is observation-only: install the recorder around the
    // whole command, write the snapshot after it finishes.
    let recorder = options.telemetry.is_some().then(|| {
        let recorder = Arc::new(Recorder::with_observer(Box::new(phase_progress)));
        scnn_obs::install(recorder.clone());
        recorder
    });
    let telemetry_path = options.telemetry.clone();

    let mut runner = Runner {
        options,
        cache: HashMap::new(),
        artifact_cache,
    };
    match command.as_str() {
        "fig1" => runner.fig1(),
        "fig2b" => runner.fig2b(),
        "fig3" => runner.distributions(DatasetKind::Mnist),
        "fig4" => runner.distributions(DatasetKind::Cifar10),
        "table1" => runner.table(DatasetKind::Mnist),
        "table2" => runner.table(DatasetKind::Cifar10),
        "attack" => runner.attack(),
        "ablation" => runner.ablation(),
        "noise" => runner.noise(),
        "events" => runner.events(),
        "uarch" => runner.uarch(),
        "archs" => runner.archs(),
        "sweep" => runner.sweep(),
        "all" => {
            runner.fig1();
            runner.fig2b();
            runner.distributions(DatasetKind::Mnist);
            runner.distributions(DatasetKind::Cifar10);
            runner.table(DatasetKind::Mnist);
            runner.table(DatasetKind::Cifar10);
            runner.attack();
            runner.ablation();
            runner.noise();
            runner.events();
            runner.uarch();
            runner.archs();
            runner.sweep();
        }
        other => {
            return Err(Error::msg(format!(
                "unknown command {other:?}\n{}",
                flags.help()
            )))
        }
    }

    if let (Some(path), Some(recorder)) = (telemetry_path, recorder) {
        scnn_obs::uninstall();
        let snapshot = recorder.snapshot();
        std::fs::write(&path, snapshot.to_json())
            .map_err(|e| Error::io(path.display().to_string(), e))?;
        eprintln!(
            "[telemetry] wrote {} ({} spans, {} counters, {} histograms, {} series)",
            path.display(),
            snapshot.spans.len(),
            snapshot.counters.len(),
            snapshot.histograms.len(),
            snapshot.series.len()
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("repro: {e}");
            ExitCode::FAILURE
        }
    }
}
