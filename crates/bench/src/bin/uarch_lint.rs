//! `uarch_lint` — validates microarchitecture config files (the
//! `--uarch` schema, see `scnn_core::zoo`).
//!
//! ```text
//! uarch_lint                       # lint the presets embedded in the binary
//! uarch_lint platform.json [...]   # lint config files on disk
//! ```
//!
//! For each document: parses it with the strict in-tree reader (unknown
//! fields are errors, missing fields are reported by dotted name), runs
//! [`UarchConfig::validate`] so the described platform is actually
//! instantiable, and round-trips it through the canonical writer —
//! `parse(write(parse(x)))` must reproduce the identical config, which
//! pins the writer to the schema and therefore pins the artifact-cache
//! key encoding. Exits nonzero on the first violation, naming the file
//! and rule that failed.

use scnn_core::zoo::{parse_uarch, PRESETS};
use scnn_core::{Error, ToJson};
use scnn_uarch::UarchConfig;
use std::process::ExitCode;

/// Parse + validate + round-trip one document.
fn lint(src: &str) -> Result<UarchConfig, String> {
    let cfg = parse_uarch(src).map_err(|e| e.to_string())?;
    let rewritten = cfg.to_json();
    let back = parse_uarch(&rewritten)
        .map_err(|e| format!("canonical writer emitted an invalid document: {e}"))?;
    if back != cfg {
        return Err("config does not round-trip through the canonical writer".into());
    }
    Ok(cfg)
}

fn run() -> Result<(), Error> {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        // No arguments: lint the shipped zoo itself, and check that each
        // preset is loadable by the name it declares.
        for (name, src) in PRESETS {
            let cfg = lint(src).map_err(|rule| Error::msg(format!("preset {name}: {rule}")))?;
            if cfg.name != name {
                return Err(Error::msg(format!(
                    "preset {name}: declares mismatching name {:?}",
                    cfg.name
                )));
            }
            println!("preset {name}: OK ({})", cfg.description);
        }
        return Ok(());
    }
    for path in &paths {
        let text = std::fs::read_to_string(path).map_err(|e| Error::io(path.clone(), e))?;
        let cfg = lint(&text).map_err(|rule| Error::msg(format!("{path}: {rule}")))?;
        println!("{path}: OK ({})", cfg.name);
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("uarch_lint: {e}");
            ExitCode::FAILURE
        }
    }
}
