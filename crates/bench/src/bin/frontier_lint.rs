//! `frontier_lint` — validates frontier-outcome JSON files written by
//! `repro frontier --out`.
//!
//! ```text
//! frontier_lint frontier.json [more.json ...]
//! ```
//!
//! For each file: parses it with the in-tree strict JSON reader and
//! checks the outcome invariants — at least six arms, every row
//! carrying an arm name, leakage statistics and a positive overhead,
//! a baseline row with overhead exactly 1 and its alarm raised, at
//! least two protected arms that suppress the alarm, and a non-empty
//! Pareto set whose members all leak strictly less than the baseline
//! and never dominate one another. Exits nonzero on the first
//! violation, printing which file and which rule failed.

use scnn_core::json::{parse, Value};
use scnn_core::Error;
use std::process::ExitCode;

/// Checks one member list key, returning the array or an error.
fn section<'a>(root: &'a Value, key: &str) -> Result<&'a [Value], String> {
    root.get(key)
        .and_then(Value::as_array)
        .ok_or_else(|| format!("missing or non-array {key:?} section"))
}

fn number(v: &Value, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("missing numeric {key:?}"))
}

fn ratio(v: &Value, key: &str) -> Result<f64, String> {
    let n = number(v, key)?;
    if !(0.0..=1.0).contains(&n) {
        return Err(format!("{key:?} = {n} is outside [0, 1]"));
    }
    Ok(n)
}

fn flag(v: &Value, key: &str) -> Result<bool, String> {
    v.get(key)
        .and_then(Value::as_bool)
        .ok_or_else(|| format!("missing boolean {key:?}"))
}

/// One row's lint-relevant facts, extracted and range-checked.
struct Arm {
    name: String,
    alarm: bool,
    leakage: f64,
    overhead: f64,
    pareto: bool,
}

fn arm(row: &Value) -> Result<Arm, String> {
    let name = row
        .get("arm")
        .and_then(Value::as_str)
        .ok_or("row missing string \"arm\"")?
        .to_owned();
    let inner = |e: String| format!("row {name:?}: {e}");
    let alarm = flag(row, "alarm").map_err(inner)?;
    let leakage = ratio(row, "leakage").map_err(inner)?;
    ratio(row, "extraction_overall").map_err(inner)?;
    let cycles = number(row, "mean_cycles").map_err(inner)?;
    if cycles <= 0.0 {
        return Err(format!(
            "row {name:?}: \"mean_cycles\" = {cycles} is not positive"
        ));
    }
    let overhead = number(row, "overhead").map_err(inner)?;
    if overhead <= 0.0 {
        return Err(format!(
            "row {name:?}: \"overhead\" = {overhead} is not positive"
        ));
    }
    let pareto = flag(row, "pareto").map_err(inner)?;
    Ok(Arm {
        name,
        alarm,
        leakage,
        overhead,
        pareto,
    })
}

/// All outcome invariants for one parsed document.
fn lint(root: &Value) -> Result<String, String> {
    let rows = section(root, "rows")?;
    if rows.len() < 6 {
        return Err(format!(
            "only {} arms; a full frontier has at least 6",
            rows.len()
        ));
    }
    let arms: Vec<Arm> = rows.iter().map(arm).collect::<Result<_, _>>()?;
    let baseline = arms
        .iter()
        .find(|a| a.name == "baseline")
        .ok_or("no \"baseline\" row")?;
    if baseline.overhead != 1.0 {
        return Err(format!(
            "baseline overhead is {}, expected exactly 1",
            baseline.overhead
        ));
    }
    if !baseline.alarm {
        return Err("the baseline must raise the leakage alarm".into());
    }
    let quiet = arms
        .iter()
        .filter(|a| a.name != "baseline" && !a.alarm)
        .count();
    if quiet < 2 {
        return Err(format!(
            "only {quiet} protected arms suppress the alarm; expected at least 2"
        ));
    }
    let pareto: Vec<&Arm> = arms.iter().filter(|a| a.pareto).collect();
    if pareto.is_empty() {
        return Err("empty Pareto set".into());
    }
    for a in &pareto {
        if a.name == "baseline" {
            return Err("the baseline can never be on the frontier".into());
        }
        if a.leakage >= baseline.leakage {
            return Err(format!(
                "Pareto arm {:?} leaks {} >= baseline {}",
                a.name, a.leakage, baseline.leakage
            ));
        }
    }
    for a in &pareto {
        for b in &pareto {
            let dominates = a.name != b.name
                && a.leakage <= b.leakage
                && a.overhead <= b.overhead
                && (a.leakage < b.leakage || a.overhead < b.overhead);
            if dominates {
                return Err(format!(
                    "Pareto arm {:?} is dominated by {:?}",
                    b.name, a.name
                ));
            }
        }
    }
    let names = section(root, "pareto")?;
    if names.len() != pareto.len() {
        return Err(format!(
            "\"pareto\" name list has {} entries but {} rows are marked",
            names.len(),
            pareto.len()
        ));
    }
    number(root, "calibrated_dummy_events")?;
    number(root, "target_t")?;
    Ok(format!(
        "{} arms, {} on the frontier, {} alarm-quiet",
        arms.len(),
        pareto.len(),
        quiet
    ))
}

fn run() -> Result<(), Error> {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        return Err(Error::msg("usage: frontier_lint <frontier.json> [...]"));
    }
    for path in &paths {
        let text = std::fs::read_to_string(path).map_err(|e| Error::io(path.clone(), e))?;
        let root = parse(&text).map_err(|e| Error::msg(format!("{path}: {e}")))?;
        let summary = lint(&root).map_err(|e| Error::msg(format!("{path}: {e}")))?;
        println!("{path}: ok ({summary})");
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("frontier_lint: {e}");
            ExitCode::FAILURE
        }
    }
}
