//! End-to-end evaluator cost: the collect → t-test pipeline that produces
//! the paper's Tables 1 and 2 (small inputs, paper-shaped stages).

use scnn_bench::bench_config;
use scnn_bench::harness::{black_box, Harness};
use scnn_core::collect::{collect, CollectionConfig};
use scnn_core::evaluator::Evaluator;
use scnn_core::pipeline::{DatasetKind, Experiment};
use scnn_data::mnist_synth::{generate, MnistSynthConfig};
use scnn_hpc::{SimPmuConfig, SimulatedPmu};
use scnn_nn::models;

fn bench_collect_and_evaluate(h: &mut Harness) {
    // A small trained-enough model and dataset, sized so one iteration is
    // a handful of traced inferences.
    let ds = generate(
        &MnistSynthConfig {
            per_class: 4,
            side: 12,
            ..MnistSynthConfig::default()
        },
        11,
    )
    .unwrap()
    .select_classes(&[0, 1, 2, 3]);
    let config = CollectionConfig {
        samples_per_category: 4,
        ..CollectionConfig::default()
    };

    h.bench("evaluator/collect_4x4", || {
        let mut net = models::small_cnn(1, 12, 4, 3);
        let mut pmu = SimulatedPmu::new(SimPmuConfig::default(), 5).unwrap();
        black_box(collect(&mut net, &ds, &mut pmu, &config).unwrap());
    });
    let mut net2 = models::small_cnn(1, 12, 4, 3);
    let mut pmu = SimulatedPmu::new(SimPmuConfig::default(), 5).unwrap();
    let obs = collect(&mut net2, &ds, &mut pmu, &config).unwrap();
    h.bench("evaluator/evaluate_only", || {
        black_box(Evaluator::default().evaluate(&obs).unwrap());
    });
}

fn bench_full_experiment(h: &mut Harness) {
    h.bench("experiment/paper_shaped_tiny_mnist", || {
        black_box(
            Experiment::new(bench_config(DatasetKind::Mnist))
                .run()
                .unwrap(),
        );
    });
}

fn main() {
    let mut h = Harness::from_args();
    bench_collect_and_evaluate(&mut h);
    bench_full_experiment(&mut h);
    h.finish();
}
