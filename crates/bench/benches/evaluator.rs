//! End-to-end evaluator cost: the collect → t-test pipeline that produces
//! the paper's Tables 1 and 2 (small inputs, paper-shaped stages).

use criterion::{criterion_group, criterion_main, Criterion};
use scnn_bench::bench_config;
use scnn_core::collect::{collect, CollectionConfig};
use scnn_core::evaluator::Evaluator;
use scnn_core::pipeline::{DatasetKind, Experiment};
use scnn_data::mnist_synth::{generate, MnistSynthConfig};
use scnn_hpc::{SimPmuConfig, SimulatedPmu};
use scnn_nn::models;

fn bench_collect_and_evaluate(c: &mut Criterion) {
    // A small trained-enough model and dataset, sized so one iteration is
    // a handful of traced inferences.
    let net = models::small_cnn(1, 12, 4, 3);
    let ds = generate(
        &MnistSynthConfig {
            per_class: 4,
            side: 12,
            ..MnistSynthConfig::default()
        },
        11,
    )
    .unwrap()
    .select_classes(&[0, 1, 2, 3]);
    let config = CollectionConfig {
        samples_per_category: 4,
        ..CollectionConfig::default()
    };

    let mut group = c.benchmark_group("evaluator");
    group.sample_size(20);
    group.bench_function("collect_4x4", |b| {
        b.iter(|| {
            let mut net = models::small_cnn(1, 12, 4, 3);
            let _ = &net; // rebuilt to keep borrows simple; cost is tiny
            let mut pmu = SimulatedPmu::new(SimPmuConfig::default(), 5).unwrap();
            collect(&mut net, &ds, &mut pmu, &config).unwrap()
        })
    });
    let mut net2 = models::small_cnn(1, 12, 4, 3);
    let mut pmu = SimulatedPmu::new(SimPmuConfig::default(), 5).unwrap();
    let obs = collect(&mut net2, &ds, &mut pmu, &config).unwrap();
    group.bench_function("evaluate_only", |b| {
        b.iter(|| Evaluator::default().evaluate(&obs).unwrap())
    });
    group.finish();
    let _ = net;
}

fn bench_full_experiment(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiment");
    group.sample_size(10);
    group.bench_function("paper_shaped_tiny_mnist", |b| {
        b.iter(|| Experiment::new(bench_config(DatasetKind::Mnist)).run().unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_collect_and_evaluate, bench_full_experiment);
criterion_main!(benches);
