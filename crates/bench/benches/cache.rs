//! Throughput of the microarchitectural substrate: single-cache accesses,
//! the three-level hierarchy, branch predictors and the whole CoreSim.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use scnn_uarch::branch::{BranchPredictor, GsharePredictor, TournamentPredictor};
use scnn_uarch::cache::{Cache, CacheConfig};
use scnn_uarch::hierarchy::{HierarchyConfig, MemoryHierarchy};
use scnn_uarch::{CoreConfig, CoreSim, Probe};

const ACCESSES: u64 = 10_000;

fn bench_single_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache");
    group.throughput(Throughput::Elements(ACCESSES));
    for (name, stride) in [("sequential", 64u64), ("strided_4k", 4096), ("random_ish", 7919 * 64)] {
        group.bench_with_input(BenchmarkId::new("l1_access", name), &stride, |b, &stride| {
            let mut cache = Cache::new(CacheConfig::new(32 * 1024, 8, 64)).unwrap();
            b.iter(|| {
                for i in 0..ACCESSES {
                    cache.access(black_box(i * stride), false);
                }
            })
        });
    }
    group.finish();
}

fn bench_hierarchy(c: &mut Criterion) {
    let mut group = c.benchmark_group("hierarchy");
    group.throughput(Throughput::Elements(ACCESSES));
    group.bench_function("three_level_walk", |b| {
        let mut mem = MemoryHierarchy::new(HierarchyConfig::default()).unwrap();
        b.iter(|| {
            for i in 0..ACCESSES {
                mem.access(black_box((i * 2654435761) % (8 << 20)), i % 5 == 0, 0x40);
            }
        })
    });
    group.finish();
}

fn bench_predictors(c: &mut Criterion) {
    let mut group = c.benchmark_group("branch_predictor");
    group.throughput(Throughput::Elements(ACCESSES));
    group.bench_function("gshare", |b| {
        let mut p = GsharePredictor::new(12, 12);
        b.iter(|| {
            for i in 0..ACCESSES {
                p.observe(black_box(0x40 + (i % 17) * 4), i % 3 != 0);
            }
        })
    });
    group.bench_function("tournament", |b| {
        let mut p = TournamentPredictor::new(12);
        b.iter(|| {
            for i in 0..ACCESSES {
                p.observe(black_box(0x40 + (i % 17) * 4), i % 3 != 0);
            }
        })
    });
    group.finish();
}

fn bench_core(c: &mut Criterion) {
    let mut group = c.benchmark_group("core_sim");
    group.throughput(Throughput::Elements(ACCESSES));
    group.bench_function("full_event_stream", |b| {
        let mut core = CoreSim::new(CoreConfig::xeon_e5_2690()).unwrap();
        b.iter(|| {
            for i in 0..ACCESSES {
                core.load(black_box(i * 64 % (4 << 20)), 0x40);
                core.branch(0x80, i % 2 == 0);
                core.alu(2);
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_single_cache, bench_hierarchy, bench_predictors, bench_core);
criterion_main!(benches);
