//! Cold-vs-warm wall-clock for the persistent artifact cache, emitting
//! `BENCH_cache.json` at the repo root.
//!
//! One smoke-sized experiment runs three ways: cold through an empty
//! cache (training and collection paid, artifacts stored), warm through
//! the now-populated cache (both phases served from disk), and uncached
//! as ground truth. The warm run must hit every artifact and reproduce
//! the uncached report byte-for-byte — asserted, not just reported.

use std::time::Instant;

use scnn_bench::harness::black_box;
use scnn_cache::ArtifactCache;
use scnn_core::pipeline::{DatasetKind, Experiment, ExperimentConfig};

/// Timed warm repetitions; the best run is reported, matching the
/// least-noise convention of the in-tree harness.
const REPS: usize = 3;

fn main() {
    let dir = std::env::temp_dir().join(format!("scnn-bench-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cache = ArtifactCache::open(&dir).expect("create cache dir");
    let experiment = Experiment::new(ExperimentConfig::quick(DatasetKind::Mnist).samples(8));

    let t0 = Instant::now();
    let cold = black_box(experiment.run_cached(&cache).expect("cold run"));
    let cold_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert!(
        !cold.cache.model_hit,
        "first run through an empty cache is cold"
    );

    let mut warm_ms = f64::INFINITY;
    let mut last = None;
    for _ in 0..REPS {
        let t0 = Instant::now();
        let outcome = black_box(experiment.run_cached(&cache).expect("warm run"));
        warm_ms = warm_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        last = Some(outcome);
    }
    let warm = last.expect("REPS > 0");
    assert!(warm.cache.model_hit, "warm run must restore the model");
    assert_eq!(
        warm.cache.categories_collected, 0,
        "warm run must skip collection entirely"
    );

    let uncached = experiment.run().expect("uncached run");
    assert_eq!(warm.observations, cold.observations);
    assert_eq!(warm.observations, uncached.observations);
    let byte_identical = warm.report.render_table() == uncached.report.render_table();
    assert!(
        byte_identical,
        "warm-cache report must be byte-identical to an uncached run"
    );

    let speedup = cold_ms / warm_ms;
    assert!(
        speedup >= 2.0,
        "warm run skips training and collection; expected ≥2× over cold, got {speedup:.2}×"
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"cache\",\n",
            "  \"cold_ms\": {cold:.3},\n",
            "  \"warm_ms\": {warm:.3},\n",
            "  \"speedup\": {speedup:.3},\n",
            "  \"model_hit\": true,\n",
            "  \"byte_identical\": true\n",
            "}}\n"
        ),
        cold = cold_ms,
        warm = warm_ms,
        speedup = speedup,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_cache.json");
    std::fs::write(path, &json).expect("write BENCH_cache.json");
    print!("{json}");
    println!("wrote {path}");
    let _ = std::fs::remove_dir_all(&dir);
}
