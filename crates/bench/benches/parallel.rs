//! Threads=1 vs threads=N comparison for the parallel collection and
//! evaluation layer, emitting `BENCH_parallel.json` at the repo root.
//!
//! Two properties are measured on a paper-shaped campaign:
//!
//! - **Determinism** (the headline): the observations and the leakage
//!   report must be bit-identical at every thread count. This is asserted,
//!   not just reported — a violation aborts the bench.
//! - **Wall-clock**: per-run times at 1 and `N` workers. The JSON records
//!   the host's available parallelism alongside the speedup, because on a
//!   single-core runner the honest speedup is ~1×.
//!
//! Evaluation is timed twice: on the campaign's own tiny t-test matrix
//! (`evaluate_ms`) where the evaluator's sequential bypass now avoids
//! paying pool spin-up for microseconds of work (historically a 6×
//! parallel *slowdown*), and on a big synthetic matrix
//! (`evaluate_big_ms`) past the bypass cutoff, where the pool actually
//! engages.
//!
//! Two single-thread arms round out the picture: `gemm` reports the
//! blocked matmul kernel's throughput (MFLOP/s), and `batch_infer_ms`
//! measures batched inference against the per-sample loop on one thread
//! — the speedup that batching must deliver *before* any parallelism,
//! with the row-wise bitwise-equality contract asserted in passing.

use std::collections::BTreeMap;
use std::time::Instant;

use scnn_bench::harness::black_box;
use scnn_core::collect::{category_seed, collect_campaign, CategoryObservations, CollectionConfig};
use scnn_core::evaluator::{Evaluator, EvaluatorConfig};
use scnn_data::mnist_synth::{generate, MnistSynthConfig};
use scnn_hpc::{HpcEvent, SimPmuConfig, SimulatedPmu};
use scnn_nn::models;
use scnn_par::Threads;
use scnn_tensor::ops::{self, GemmScratch};
use scnn_tensor::Tensor;

/// Worker count for the "parallel" arm of the comparison.
const PAR_WORKERS: usize = 4;
/// Timed repetitions per arm; the best run is reported, matching the
/// least-noise convention of the in-tree harness.
const REPS: usize = 5;

fn best_of<T>(mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..REPS {
        let t0 = Instant::now();
        let value = black_box(f());
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        out = Some(value);
    }
    (best, out.expect("REPS > 0"))
}

fn main() {
    let ds = generate(
        &MnistSynthConfig {
            per_class: 8,
            side: 16,
            ..MnistSynthConfig::default()
        },
        23,
    )
    .unwrap()
    .select_classes(&[0, 1, 2, 3]);
    let net = models::small_cnn(1, 16, 4, 3);
    let samples = 24;

    let campaign = |threads: Threads| {
        let config = CollectionConfig {
            samples_per_category: samples,
            threads,
            ..CollectionConfig::default()
        };
        collect_campaign(
            |_| net.clone(),
            &ds,
            |c| SimulatedPmu::new(SimPmuConfig::default(), category_seed(0x9019, c)),
            &config,
        )
        .unwrap()
    };

    let (seq_collect_ms, obs_seq) = best_of(|| campaign(Threads::Count(1)));
    let (par_collect_ms, obs_par) = best_of(|| campaign(Threads::Count(PAR_WORKERS)));
    assert_eq!(
        obs_seq, obs_par,
        "collection must be bit-identical at any thread count"
    );

    // Tiny matrix: 2 events × C(4,2) pairs × 2 orders = 24 cells, far
    // below the evaluator's sequential-bypass cutoff. Both arms take the
    // sequential path, so the honest speedup here is ~1× — this arm
    // exists to show the bypass removed the historical 6× parallel
    // slowdown on small matrices.
    let evaluate_tiny = |threads: Threads| {
        let config = EvaluatorConfig {
            second_order: true,
            threads,
            ..EvaluatorConfig::default()
        };
        Evaluator::new(config).evaluate(&obs_seq).unwrap()
    };
    let (seq_tiny_ms, report_seq) = best_of(|| evaluate_tiny(Threads::Count(1)));
    let (par_tiny_ms, report_par) = best_of(|| evaluate_tiny(Threads::Count(PAR_WORKERS)));
    assert_eq!(
        report_seq.per_event, report_par.per_event,
        "evaluation must be bit-identical at any thread count"
    );

    // Big matrix: 8 events × C(16,2) pairs × 2 orders = 1920 cells, well
    // past the cutoff — this is the matrix shape where the pool earns its
    // spin-up cost. The observations are synthetic (deterministic hash
    // noise with a per-category shift); only the t-test matrix is timed.
    let eval_categories = 16usize;
    let eval_samples = 64usize;
    let big_obs: Vec<CategoryObservations> = (0..eval_categories)
        .map(|c| {
            let per_event: BTreeMap<HpcEvent, Vec<f64>> = HpcEvent::ALL
                .iter()
                .enumerate()
                .map(|(e, &event)| {
                    let series = (0..eval_samples)
                        .map(|i| {
                            let mut x = ((c as u64) << 40) ^ ((e as u64) << 20) ^ i as u64;
                            x = x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                            x ^= x >> 33;
                            (x % 10_000) as f64 / 10.0 + c as f64 * 5.0
                        })
                        .collect();
                    (event, series)
                })
                .collect();
            CategoryObservations {
                category: c,
                per_event,
                predictions: vec![0; eval_samples],
            }
        })
        .collect();
    let evaluate_big = |threads: Threads| {
        let config = EvaluatorConfig {
            second_order: true,
            threads,
            ..EvaluatorConfig::default()
        };
        Evaluator::new(config).evaluate(&big_obs).unwrap()
    };
    let (seq_eval_ms, big_seq) = best_of(|| evaluate_big(Threads::Count(1)));
    let (par_eval_ms, big_par) = best_of(|| evaluate_big(Threads::Count(PAR_WORKERS)));
    assert_eq!(
        big_seq.per_event, big_par.per_event,
        "evaluation must be bit-identical at any thread count"
    );

    // Blocked GEMM throughput, single thread. The dims straddle the
    // kernel's block boundaries (BLOCK_K = 128, BLOCK_N = 256) so the
    // packed multi-block path is what gets timed.
    let gemm_dim = 192usize;
    let fill = |salt: usize| -> Tensor {
        let data: Vec<f32> = (0..gemm_dim * gemm_dim)
            .map(|i| ((i * 37 + salt) % 101) as f32 / 101.0 - 0.5)
            .collect();
        Tensor::from_vec(data, [gemm_dim, gemm_dim]).unwrap()
    };
    let (a, b) = (fill(0), fill(55));
    let mut c = Tensor::zeros([gemm_dim, gemm_dim]);
    let mut gemm_scratch = GemmScratch::new();
    let (gemm_ms, _) = best_of(|| {
        ops::matmul_into(&a, &b, &mut c, &mut gemm_scratch).unwrap();
        c.as_slice()[0]
    });
    let gemm_mflops = 2.0 * (gemm_dim as f64).powi(3) / (gemm_ms * 1e-3) / 1e6;

    // Batched vs per-sample inference, single thread: the win batching
    // must deliver before any parallelism. The bitwise contract —
    // batched row `s` equals per-sample inference on sample `s` — is
    // asserted on the timed outputs.
    let batch_n = 32usize;
    let images: Vec<Tensor> = (0..batch_n)
        .map(|s| {
            let data: Vec<f32> = (0..256)
                .map(|i| {
                    let v = (i * 2654435761usize + s * 97) % 11;
                    if v < 5 {
                        0.0
                    } else {
                        v as f32 / 10.0
                    }
                })
                .collect();
            Tensor::from_vec(data, [1, 16, 16]).unwrap()
        })
        .collect();
    let mlp = models::mnist_mlp(1, 16, 3);
    let mut scalar_net = mlp.clone();
    let (scalar_infer_ms, scalar_out) = best_of(|| {
        images
            .iter()
            .map(|x| scalar_net.infer(x).unwrap())
            .collect::<Vec<_>>()
    });
    let mut batch_net = mlp.clone();
    let stacked = scnn_nn::batch::stack(&images.iter().collect::<Vec<_>>()).unwrap();
    let (batch_infer_ms, batch_out) = best_of(|| batch_net.infer_batch(&stacked).unwrap());
    let want = scnn_nn::batch::stack(&scalar_out.iter().collect::<Vec<_>>()).unwrap();
    assert_eq!(
        batch_out, want,
        "batched inference must match per-sample inference row for row"
    );

    // `available_parallelism` honours affinity pinning and cgroup caps,
    // so it under-reports on constrained CI shards; `host_parallelism`
    // counts the CPUs the machine physically has. Both are recorded so a
    // reader can tell "the host is small" apart from "the process was
    // pinned" when judging the speedup columns.
    let host = scnn_bench::harness::host_parallelism();
    let available = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    // On an effectively single-core host every "parallel" arm time-slices
    // one CPU, so the speedup columns measure scheduler overhead, not
    // parallelism. The flag lets consumers (ci/bench_gate.sh) skip
    // speedup judgements loudly instead of reading noise as regression.
    let degraded = host.min(available) == 1;
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"parallel\",\n",
            "  \"host_parallelism\": {host},\n",
            "  \"available_parallelism\": {available},\n",
            "  \"degraded_host\": {degraded},\n",
            "  \"par_workers\": {workers},\n",
            "  \"campaign\": {{ \"categories\": 4, \"samples_per_category\": {samples} }},\n",
            "  \"evaluator_matrix\": {{ \"categories\": {ecats}, \"events\": {eevents}, \"samples\": {esamples} }},\n",
            "  \"collect_ms\": {{ \"threads_1\": {sc:.3}, \"threads_n\": {pc:.3}, \"speedup\": {cs:.3} }},\n",
            "  \"evaluate_ms\": {{ \"threads_1\": {st:.3}, \"threads_n\": {pt:.3}, \"speedup\": {ts:.3} }},\n",
            "  \"evaluate_big_ms\": {{ \"threads_1\": {se:.3}, \"threads_n\": {pe:.3}, \"speedup\": {es:.3} }},\n",
            "  \"gemm\": {{ \"dims\": [{gd}, {gd}, {gd}], \"ms\": {gms:.3}, \"mflops\": {gmf:.1} }},\n",
            "  \"batch_infer_ms\": {{ \"model\": \"mnist_mlp\", \"batch_size\": {bn}, \"scalar\": {sim:.3}, \"batch\": {bim:.3}, \"speedup\": {bis:.3} }},\n",
            "  \"bit_identical\": true\n",
            "}}\n"
        ),
        host = host,
        available = available,
        degraded = degraded,
        workers = PAR_WORKERS,
        samples = samples,
        ecats = eval_categories,
        eevents = HpcEvent::ALL.len(),
        esamples = eval_samples,
        sc = seq_collect_ms,
        pc = par_collect_ms,
        cs = seq_collect_ms / par_collect_ms,
        se = seq_eval_ms,
        pe = par_eval_ms,
        es = seq_eval_ms / par_eval_ms,
        st = seq_tiny_ms,
        pt = par_tiny_ms,
        ts = seq_tiny_ms / par_tiny_ms,
        gd = gemm_dim,
        gms = gemm_ms,
        gmf = gemm_mflops,
        bn = batch_n,
        sim = scalar_infer_ms,
        bim = batch_infer_ms,
        bis = scalar_infer_ms / batch_infer_ms,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_parallel.json");
    std::fs::write(path, &json).expect("write BENCH_parallel.json");
    print!("{json}");
    println!("wrote {path}");
}
