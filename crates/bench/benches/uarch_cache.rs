//! Throughput of the microarchitectural substrate: single-cache accesses,
//! the three-level hierarchy, branch predictors and the whole CoreSim.

use scnn_bench::harness::{black_box, Harness};
use scnn_uarch::branch::{BranchPredictor, GsharePredictor, TournamentPredictor};
use scnn_uarch::cache::{Cache, CacheConfig};
use scnn_uarch::hierarchy::{HierarchyConfig, MemoryHierarchy};
use scnn_uarch::{CoreConfig, CoreSim, Probe};

const ACCESSES: u64 = 10_000;

fn bench_single_cache(h: &mut Harness) {
    for (name, stride) in [
        ("sequential", 64u64),
        ("strided_4k", 4096),
        ("random_ish", 7919 * 64),
    ] {
        let mut cache = Cache::new(CacheConfig::new(32 * 1024, 8, 64)).unwrap();
        h.bench_elements(&format!("cache/l1_access/{name}"), ACCESSES, || {
            for i in 0..ACCESSES {
                cache.access(black_box(i * stride), false);
            }
        });
    }
}

fn bench_hierarchy(h: &mut Harness) {
    let mut mem = MemoryHierarchy::new(HierarchyConfig::default()).unwrap();
    h.bench_elements("hierarchy/three_level_walk", ACCESSES, || {
        for i in 0..ACCESSES {
            mem.access(black_box((i * 2654435761) % (8 << 20)), i % 5 == 0, 0x40);
        }
    });
}

fn bench_predictors(h: &mut Harness) {
    let mut gshare = GsharePredictor::new(12, 12);
    h.bench_elements("branch_predictor/gshare", ACCESSES, || {
        for i in 0..ACCESSES {
            gshare.observe(black_box(0x40 + (i % 17) * 4), i % 3 != 0);
        }
    });
    let mut tournament = TournamentPredictor::new(12);
    h.bench_elements("branch_predictor/tournament", ACCESSES, || {
        for i in 0..ACCESSES {
            tournament.observe(black_box(0x40 + (i % 17) * 4), i % 3 != 0);
        }
    });
}

fn bench_core(h: &mut Harness) {
    let mut core = CoreSim::new(CoreConfig::xeon_e5_2690()).unwrap();
    h.bench_elements("core_sim/full_event_stream", ACCESSES, || {
        for i in 0..ACCESSES {
            core.load(black_box(i * 64 % (4 << 20)), 0x40);
            core.branch(0x80, i % 2 == 0);
            core.alu(2);
        }
    });
}

fn main() {
    let mut h = Harness::from_args();
    bench_single_cache(&mut h);
    bench_hierarchy(&mut h);
    bench_predictors(&mut h);
    bench_core(&mut h);
    h.finish();
}
