//! Synthetic heavy-load bench for the evaluation service, emitting
//! `BENCH_service.json` at the repo root.
//!
//! Drives [`scnn_core::service::serve`] the way `repro serve` does —
//! real experiments through [`Experiment::run_cached`] against one
//! shared [`ArtifactCache`] — but at fleet scale: **200 queued jobs**
//! (8 distinct experiment shapes × 25 submissions each) on a bounded
//! worker pool. The first submission of each shape is cold (trains and
//! collects), the other 24 are warm (artifact-cache hits), so the run
//! exercises exactly the mixed traffic a long-running service sees.
//!
//! Three contracts are asserted, not just reported — a violation aborts
//! the bench:
//!
//! - **zero lost or duplicated jobs**: every submitted id gets exactly
//!   one response, and the report's accounting matches;
//! - **warm equals cold, byte for byte**: all 25 responses of one shape
//!   carry identical rendered output, whether the artifacts came from
//!   the cache or from a fresh run;
//! - **a clean cache directory**: no `.tmp-*` orphans and no
//!   quarantined artifacts after hundreds of concurrent lookups and
//!   racing writes against shared keys.
//!
//! The JSON records jobs/sec, p50/p99 submission-to-completion latency
//! and the cache hit-rate, alongside `host_parallelism` and the same
//! `degraded_host` flag as `BENCH_parallel.json` (on a one-core host,
//! worker concurrency time-slices a single CPU).

use scnn_cache::ArtifactCache;
use scnn_core::pipeline::{DatasetKind, Experiment, ExperimentConfig};
use scnn_core::service::{serve, CacheTraffic, JobOutput, JobSpec, ServiceConfig};
use scnn_par::Threads;
use std::collections::BTreeMap;
use std::io::Cursor;

/// Distinct experiment shapes (each its own set of cache keys).
const ARMS: usize = 8;
/// Submissions per shape; the first is cold, the rest hit the cache.
const ROUNDS: usize = 25;
/// Job-executing workers.
const WORKERS: usize = 4;

fn arm_config(arm: usize) -> ExperimentConfig {
    // Vary the sample count so each arm derives different cache keys
    // while staying tiny enough that 8 cold runs finish in seconds.
    ExperimentConfig::quick(DatasetKind::Mnist)
        .samples(4 + arm)
        .threads(Threads::Count(1))
}

fn main() {
    let dir = std::env::temp_dir().join(format!("scnn-bench-service-{}", std::process::id()));
    let cache = ArtifactCache::open(&dir).expect("open bench cache dir");

    // 200 submissions, arms interleaved so cold and warm traffic mix on
    // the queue instead of arriving in cold-then-warm phases.
    let total_jobs = ARMS * ROUNDS;
    let input: String = (0..total_jobs)
        .map(|i| {
            format!(
                "{{\"id\":\"job-{i}\",\"command\":\"run\",\"arm\":{}}}\n",
                i % ARMS
            )
        })
        .collect();

    let executor = |spec: &JobSpec| -> Result<JobOutput, String> {
        let arm = spec
            .usize_param("arm")?
            .ok_or_else(|| "missing arm".to_string())?;
        let outcome = Experiment::new(arm_config(arm))
            .run_cached(&cache)
            .map_err(|e| e.to_string())?;
        let mut traffic = CacheTraffic::default();
        traffic.add_usage(&outcome.cache);
        Ok(JobOutput {
            stdout: outcome.report.render_table(),
            cache: Some(traffic),
        })
    };

    let mut responses = Vec::new();
    let report = serve(
        Cursor::new(input),
        &mut responses,
        &ServiceConfig {
            workers: Threads::Count(WORKERS),
            include_stdout: true,
        },
        executor,
    );

    // Exactly-once delivery: one ok response per submitted id.
    assert_eq!(report.jobs, total_jobs as u64, "every line accepted");
    assert_eq!(report.ok, total_jobs as u64, "every job succeeded");
    assert_eq!(report.errors + report.rejected, 0);
    let responses = String::from_utf8(responses).expect("responses are UTF-8");
    let mut by_arm: BTreeMap<usize, Vec<String>> = BTreeMap::new();
    let mut seen = std::collections::BTreeSet::new();
    for line in responses.lines() {
        let value = scnn_core::json::parse(line).expect("response line parses");
        let id = value
            .get("id")
            .and_then(|v| v.as_str())
            .expect("id")
            .to_owned();
        assert_eq!(value.get("status").and_then(|v| v.as_str()), Some("ok"));
        assert!(seen.insert(id.clone()), "duplicated response for {id}");
        let index: usize = id.strip_prefix("job-").unwrap().parse().unwrap();
        let stdout = value
            .get("stdout")
            .and_then(|v| v.as_str())
            .expect("stdout")
            .to_owned();
        by_arm.entry(index % ARMS).or_default().push(stdout);
    }
    assert_eq!(seen.len(), total_jobs, "no lost responses");
    for (arm, outputs) in &by_arm {
        assert_eq!(outputs.len(), ROUNDS);
        assert!(
            outputs.iter().all(|o| o == &outputs[0]),
            "arm {arm}: warm output must be byte-identical to cold"
        );
    }

    // Concurrency hygiene: the shared cache directory holds committed
    // artifacts only.
    let leftovers: Vec<String> = std::fs::read_dir(&dir)
        .expect("bench cache dir readable")
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .filter(|n| n.starts_with(".tmp-"))
        .collect();
    assert!(leftovers.is_empty(), "orphaned tmp files: {leftovers:?}");
    let quarantined = std::fs::read_dir(cache.quarantine_dir())
        .map(|d| d.count())
        .unwrap_or(0);
    assert_eq!(quarantined, 0, "no artifact may be quarantined");
    std::fs::remove_dir_all(&dir).ok();

    let host = scnn_bench::harness::host_parallelism();
    let available = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let degraded = host.min(available) == 1;
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"service\",\n",
            "  \"host_parallelism\": {host},\n",
            "  \"available_parallelism\": {available},\n",
            "  \"degraded_host\": {degraded},\n",
            "  \"workers\": {workers},\n",
            "  \"jobs\": {{ \"total\": {total}, \"arms\": {arms}, \"rounds\": {rounds}, \"ok\": {ok}, \"lost\": 0, \"duplicated\": 0 }},\n",
            "  \"elapsed_s\": {elapsed:.3},\n",
            "  \"jobs_per_sec\": {jps:.2},\n",
            "  \"latency_ms\": {{ \"p50\": {p50:.3}, \"p99\": {p99:.3} }},\n",
            "  \"max_queue_depth\": {depth},\n",
            "  \"cache\": {{ \"lookups\": {lookups}, \"hit_rate\": {hit:.4}, \"writes\": {writes} }},\n",
            "  \"warm_equals_cold\": true\n",
            "}}\n"
        ),
        host = host,
        available = available,
        degraded = degraded,
        workers = WORKERS,
        total = total_jobs,
        arms = ARMS,
        rounds = ROUNDS,
        ok = report.ok,
        elapsed = report.elapsed_s,
        jps = report.jobs_per_sec,
        p50 = report.p50_ms,
        p99 = report.p99_ms,
        depth = report.max_queue_depth,
        lookups = report.cache.lookups(),
        hit = report.cache.hit_rate(),
        writes = report.cache.writes,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_service.json");
    std::fs::write(path, &json).expect("write BENCH_service.json");
    print!("{json}");
    println!("wrote {path}");
}
