//! Throughput of the statistics substrate: Welch t-tests, p-values and
//! the full pairwise leakage matrix — the evaluator's hot loop.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use scnn_stats::{DecisionRule, PairwiseLeakage, StudentT, Summary, TTestKind};

fn sample(n: usize, offset: f64) -> Vec<f64> {
    (0..n).map(|i| offset + ((i * 37) % 101) as f64).collect()
}

fn bench_ttest(c: &mut Criterion) {
    let mut group = c.benchmark_group("ttest");
    for &n in &[100usize, 1_000, 10_000] {
        let a = sample(n, 0.0);
        let b = sample(n, 13.0);
        group.bench_with_input(BenchmarkId::new("welch_raw", n), &n, |bencher, _| {
            bencher.iter(|| scnn_stats::t_test(black_box(&a), black_box(&b), TTestKind::Welch))
        });
        let sa: Summary = a.iter().copied().collect();
        let sb: Summary = b.iter().copied().collect();
        group.bench_with_input(BenchmarkId::new("welch_summaries", n), &n, |bencher, _| {
            bencher.iter(|| {
                scnn_stats::t_test_from_summaries(black_box(&sa), black_box(&sb), TTestKind::Welch)
            })
        });
    }
    group.finish();
}

fn bench_student_p(c: &mut Criterion) {
    let dist = StudentT::new(99.0);
    c.bench_function("student_t_two_tailed_p", |bencher| {
        bencher.iter(|| dist.two_tailed_p(black_box(3.17)))
    });
}

fn bench_pairwise(c: &mut Criterion) {
    // The paper's workload: 4 categories, 100 samples each, 6 pairs.
    let samples: Vec<Vec<f64>> = (0..4).map(|c| sample(100, c as f64 * 40.0)).collect();
    c.bench_function("pairwise_leakage_4x100", |bencher| {
        bencher.iter(|| {
            PairwiseLeakage::assess_samples(
                black_box(&samples),
                TTestKind::Welch,
                DecisionRule::PValue { alpha: 0.05 },
            )
        })
    });
}

criterion_group!(benches, bench_ttest, bench_student_p, bench_pairwise);
criterion_main!(benches);
