//! Throughput of the statistics substrate: Welch t-tests, p-values and
//! the full pairwise leakage matrix — the evaluator's hot loop.

use scnn_bench::harness::{black_box, Harness};
use scnn_stats::{DecisionRule, PairwiseLeakage, StudentT, Summary, TTestKind};

fn sample(n: usize, offset: f64) -> Vec<f64> {
    (0..n).map(|i| offset + ((i * 37) % 101) as f64).collect()
}

fn bench_ttest(h: &mut Harness) {
    for &n in &[100usize, 1_000, 10_000] {
        let a = sample(n, 0.0);
        let b = sample(n, 13.0);
        h.bench(&format!("ttest/welch_raw/{n}"), || {
            let _ = black_box(scnn_stats::t_test(
                black_box(&a),
                black_box(&b),
                TTestKind::Welch,
            ));
        });
        let sa: Summary = a.iter().copied().collect();
        let sb: Summary = b.iter().copied().collect();
        h.bench(&format!("ttest/welch_summaries/{n}"), || {
            let _ = black_box(scnn_stats::t_test_from_summaries(
                black_box(&sa),
                black_box(&sb),
                TTestKind::Welch,
            ));
        });
    }
}

fn bench_student_p(h: &mut Harness) {
    let dist = StudentT::new(99.0);
    h.bench("student_t_two_tailed_p", || {
        black_box(dist.two_tailed_p(black_box(3.17)));
    });
}

fn bench_pairwise(h: &mut Harness) {
    // The paper's workload: 4 categories, 100 samples each, 6 pairs.
    let samples: Vec<Vec<f64>> = (0..4).map(|c| sample(100, c as f64 * 40.0)).collect();
    h.bench("pairwise_leakage_4x100", || {
        let _ = black_box(PairwiseLeakage::assess_samples(
            black_box(&samples),
            TTestKind::Welch,
            DecisionRule::PValue { alpha: 0.05 },
        ));
    });
}

fn main() {
    let mut h = Harness::from_args();
    bench_ttest(&mut h);
    bench_student_p(&mut h);
    bench_pairwise(&mut h);
    h.finish();
}
