//! Template-attack throughput: profiling and classifying HPC feature
//! vectors.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scnn_core::attack::{mount_attack, AttackClassifier, AttackConfig};
use scnn_core::collect::CategoryObservations;
use scnn_hpc::HpcEvent;
use std::collections::BTreeMap;

fn observations(categories: usize, n: usize) -> Vec<CategoryObservations> {
    (0..categories)
        .map(|c| {
            let mut per_event = BTreeMap::new();
            for (k, event) in [HpcEvent::CacheMisses, HpcEvent::Branches, HpcEvent::Cycles]
                .into_iter()
                .enumerate()
            {
                per_event.insert(
                    event,
                    (0..n)
                        .map(|i| (c * 50 + k * 7) as f64 + ((i * 13) % 29) as f64)
                        .collect(),
                );
            }
            CategoryObservations {
                category: c,
                per_event,
                predictions: vec![c; n],
            }
        })
        .collect()
}

fn bench_attack(c: &mut Criterion) {
    let mut group = c.benchmark_group("attack");
    for &n in &[50usize, 200] {
        let obs = observations(4, n);
        group.bench_with_input(BenchmarkId::new("gaussian_template", n), &n, |b, _| {
            b.iter(|| mount_attack(&obs, &AttackConfig::default()).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("lda", n), &n, |b, _| {
            b.iter(|| {
                mount_attack(
                    &obs,
                    &AttackConfig {
                        classifier: AttackClassifier::Lda,
                        ..AttackConfig::default()
                    },
                )
                .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("knn5", n), &n, |b, _| {
            b.iter(|| {
                mount_attack(
                    &obs,
                    &AttackConfig {
                        classifier: AttackClassifier::Knn { k: 5 },
                        ..AttackConfig::default()
                    },
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_attack);
criterion_main!(benches);
