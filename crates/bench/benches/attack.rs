//! Template-attack throughput: profiling and classifying HPC feature
//! vectors.

use scnn_bench::harness::{black_box, Harness};
use scnn_core::attack::{mount_attack, AttackClassifier, AttackConfig};
use scnn_core::collect::CategoryObservations;
use scnn_hpc::HpcEvent;
use std::collections::BTreeMap;

fn observations(categories: usize, n: usize) -> Vec<CategoryObservations> {
    (0..categories)
        .map(|c| {
            let mut per_event = BTreeMap::new();
            for (k, event) in [HpcEvent::CacheMisses, HpcEvent::Branches, HpcEvent::Cycles]
                .into_iter()
                .enumerate()
            {
                per_event.insert(
                    event,
                    (0..n)
                        .map(|i| (c * 50 + k * 7) as f64 + ((i * 13) % 29) as f64)
                        .collect(),
                );
            }
            CategoryObservations {
                category: c,
                per_event,
                predictions: vec![c; n],
            }
        })
        .collect()
}

fn bench_attack(h: &mut Harness) {
    for &n in &[50usize, 200] {
        let obs = observations(4, n);
        h.bench(&format!("attack/gaussian_template/{n}"), || {
            black_box(mount_attack(&obs, &AttackConfig::default()).unwrap());
        });
        h.bench(&format!("attack/lda/{n}"), || {
            black_box(
                mount_attack(
                    &obs,
                    &AttackConfig {
                        classifier: AttackClassifier::Lda,
                        ..AttackConfig::default()
                    },
                )
                .unwrap(),
            );
        });
        h.bench(&format!("attack/knn5/{n}"), || {
            black_box(
                mount_attack(
                    &obs,
                    &AttackConfig {
                        classifier: AttackClassifier::Knn { k: 5 },
                        ..AttackConfig::default()
                    },
                )
                .unwrap(),
            );
        });
    }
}

fn main() {
    let mut h = Harness::from_args();
    bench_attack(&mut h);
    h.finish();
}
