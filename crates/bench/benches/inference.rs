//! CNN inference throughput: reference (fast) path vs instrumented path
//! against the full Xeon-class simulator — the cost of observation.

use scnn_bench::harness::{black_box, Harness};
use scnn_data::mnist_synth::{generate, MnistSynthConfig};
use scnn_nn::models;
use scnn_uarch::{CoreConfig, CoreSim, CountingProbe, NullProbe};

fn bench_inference(h: &mut Harness) {
    let mut net = models::mnist_cnn(42);
    let ds = generate(
        &MnistSynthConfig {
            per_class: 1,
            ..MnistSynthConfig::default()
        },
        7,
    )
    .unwrap();
    let (image, _) = ds.get(3).unwrap();
    let image = image.clone();

    h.bench("mnist_inference/reference", || {
        black_box(net.infer(black_box(&image)).unwrap());
    });
    let net_ref = models::mnist_cnn(42);
    h.bench("mnist_inference/traced_null_probe", || {
        let mut probe = NullProbe;
        black_box(net_ref.infer_traced(black_box(&image), &mut probe).unwrap());
    });
    h.bench("mnist_inference/traced_counting_probe", || {
        let mut probe = CountingProbe::new();
        black_box(net_ref.infer_traced(black_box(&image), &mut probe).unwrap());
    });
    let mut core = CoreSim::new(CoreConfig::xeon_e5_2690()).unwrap();
    h.bench("mnist_inference/traced_core_sim", || {
        core.cold_start();
        core.reset_counters();
        black_box(net_ref.infer_traced(black_box(&image), &mut core).unwrap());
    });
}

fn main() {
    let mut h = Harness::from_args();
    bench_inference(&mut h);
    h.finish();
}
