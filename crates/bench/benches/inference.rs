//! CNN inference throughput: reference (fast) path vs instrumented path
//! against the full Xeon-class simulator — the cost of observation.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use scnn_data::mnist_synth::{generate, MnistSynthConfig};
use scnn_nn::models;
use scnn_uarch::{CoreConfig, CoreSim, CountingProbe, NullProbe};

fn bench_inference(c: &mut Criterion) {
    let mut net = models::mnist_cnn(42);
    let ds = generate(
        &MnistSynthConfig {
            per_class: 1,
            ..MnistSynthConfig::default()
        },
        7,
    )
    .unwrap();
    let (image, _) = ds.get(3).unwrap();
    let image = image.clone();

    let mut group = c.benchmark_group("mnist_inference");
    group.bench_function("reference", |b| {
        b.iter(|| net.infer(black_box(&image)).unwrap())
    });
    let net_ref = models::mnist_cnn(42);
    group.bench_function("traced_null_probe", |b| {
        b.iter(|| {
            let mut probe = NullProbe;
            net_ref.infer_traced(black_box(&image), &mut probe).unwrap()
        })
    });
    group.bench_function("traced_counting_probe", |b| {
        b.iter(|| {
            let mut probe = CountingProbe::new();
            net_ref.infer_traced(black_box(&image), &mut probe).unwrap()
        })
    });
    group.bench_function("traced_core_sim", |b| {
        let mut core = CoreSim::new(CoreConfig::xeon_e5_2690()).unwrap();
        b.iter(|| {
            core.cold_start();
            core.reset_counters();
            net_ref.infer_traced(black_box(&image), &mut core).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);
