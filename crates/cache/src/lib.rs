//! # scnn-cache
//!
//! A zero-dependency, content-addressed on-disk artifact cache.
//!
//! The experiment pipeline's expensive phases — CNN training and
//! per-category HPC collection — are pure functions of the experiment
//! configuration (see DESIGN.md § Parallel execution for the determinism
//! contract). That makes their outputs cacheable by construction: derive
//! a [`CacheKey`] from the canonical JSON of the relevant config fields,
//! and any later run with the same key can reuse the stored bytes
//! instead of recomputing.
//!
//! Design points, in the spirit of the rest of the workspace:
//!
//! - **Hermetic.** The digest is an in-tree FNV-1a/SplitMix construction,
//!   the file format is hand-rolled, and the only dependencies are other
//!   workspace crates.
//! - **Corruption is a miss, never a crash.** Every load verifies a
//!   magic/version header, the payload length and an FNV-1a checksum;
//!   any mismatch (truncated file, flipped bit, future format version)
//!   makes [`ArtifactCache::load`] return `None` so the caller simply
//!   recomputes.
//! - **Writes are atomic.** [`ArtifactCache::store`] writes to a
//!   temporary file in the cache directory and renames it into place, so
//!   a concurrent reader sees either the old artifact or the new one,
//!   never a torn file — and an interrupted run never poisons the cache.
//! - **Observation-only telemetry.** `cache.hits` / `cache.misses` /
//!   `cache.writes` counters and a `cache.lookup` span flow to an
//!   installed [`scnn_obs`] recorder; nothing the cache records feeds
//!   back into results.
//!
//! The digest is *not* cryptographic: it defends against accidental key
//! collisions and on-disk corruption, not against an adversary who can
//! write to the cache directory.
//!
//! # Examples
//!
//! ```
//! use scnn_cache::{ArtifactCache, CacheKey};
//!
//! # fn main() -> std::io::Result<()> {
//! let dir = std::env::temp_dir().join(format!("scnn-cache-doc-{}", std::process::id()));
//! let cache = ArtifactCache::open(&dir)?;
//! let key = CacheKey::from_canonical("{\"dataset\":\"mnist\",\"seed\":7}");
//! assert!(cache.load("model", key).is_none());
//! cache.store("model", key, b"weights")?;
//! assert_eq!(cache.load("model", key).as_deref(), Some(&b"weights"[..]));
//! # std::fs::remove_dir_all(&dir)?;
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

use scnn_rng::SplitMix64;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Artifact file magic: `"SCAC"` (SCnn Artifact Cache).
const MAGIC: u32 = 0x5343_4143;
/// Artifact format version; bump on any layout change so older binaries
/// treat newer files as misses instead of misreading them.
const VERSION: u16 = 1;
/// Header bytes preceding the payload: magic(4) + version(2) +
/// payload_len(8) + checksum(8).
const HEADER_LEN: usize = 22;

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// 64-bit FNV-1a over `bytes`, starting from `seed` (use [`FNV_OFFSET`]
/// for the standard hash).
fn fnv1a64_seeded(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = seed;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// The standard 64-bit FNV-1a hash — used as the payload checksum.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    fnv1a64_seeded(FNV_OFFSET, bytes)
}

/// Finalizes a raw FNV state through one SplitMix64 step, which mixes
/// high and low bits much better than FNV alone (FNV-1a barely diffuses
/// into the top bits for short inputs).
fn mix(x: u64) -> u64 {
    SplitMix64::new(x).next_value()
}

/// A 128-bit content digest identifying one artifact.
///
/// Derived from a *canonical* string (the cache contract is that equal
/// configurations serialize to byte-equal strings — see
/// `scnn_core::artifact`) by two independently-seeded FNV-1a passes,
/// each finalized through SplitMix64.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CacheKey {
    /// High 64 bits of the digest.
    pub hi: u64,
    /// Low 64 bits of the digest.
    pub lo: u64,
}

impl CacheKey {
    /// Digests a canonical description of the artifact's inputs.
    pub fn from_canonical(text: &str) -> Self {
        let bytes = text.as_bytes();
        CacheKey {
            hi: mix(fnv1a64_seeded(FNV_OFFSET, bytes)),
            lo: mix(fnv1a64_seeded(FNV_OFFSET ^ 0x5C44_AC1F_AC7C_4A5E, bytes)),
        }
    }

    /// The digest as 32 lowercase hex characters (the on-disk file stem).
    pub fn hex(&self) -> String {
        format!("{:016x}{:016x}", self.hi, self.lo)
    }
}

impl fmt::Display for CacheKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.hex())
    }
}

/// Disambiguates concurrent writers within one process; the process id
/// disambiguates across processes.
static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// A content-addressed artifact store rooted at one directory.
///
/// Artifacts live directly under the root as `<kind>-<digest>.art`,
/// where `kind` is a short slug (`model`, `obs`, …) that keeps the
/// directory listable by humans and lets different artifact types share
/// one cache directory without key-space tricks.
#[derive(Debug, Clone)]
pub struct ArtifactCache {
    root: PathBuf,
}

impl ArtifactCache {
    /// Opens (creating if needed) a cache rooted at `root`.
    ///
    /// # Errors
    ///
    /// Returns the [`io::Error`] of `create_dir_all` when the directory
    /// cannot be created.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<Self> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(ArtifactCache { root })
    }

    /// The cache directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The on-disk path of one artifact.
    ///
    /// # Panics
    ///
    /// Panics when `kind` is not a lowercase-alphanumeric/`-`/`_` slug —
    /// kinds are compile-time constants, so a bad one is a programming
    /// error, not bad input.
    pub fn path_for(&self, kind: &str, key: CacheKey) -> PathBuf {
        assert!(
            !kind.is_empty()
                && kind.bytes().all(|b| b.is_ascii_lowercase()
                    || b.is_ascii_digit()
                    || b == b'-'
                    || b == b'_'),
            "artifact kind must be a short slug, got {kind:?}"
        );
        self.root.join(format!("{kind}-{}.art", key.hex()))
    }

    /// Loads an artifact's payload, or `None` on a miss.
    ///
    /// A miss is *any* failure: no file, unreadable file, wrong magic or
    /// version, length mismatch, checksum mismatch. Corruption therefore
    /// degrades to recomputation, never to a crash or to wrong data.
    pub fn load(&self, kind: &str, key: CacheKey) -> Option<Vec<u8>> {
        let _span = scnn_obs::Span::enter("cache.lookup");
        let payload = fs::read(self.path_for(kind, key))
            .ok()
            .and_then(|bytes| decode_artifact(&bytes));
        if payload.is_some() {
            scnn_obs::counter_add("cache.hits", 1);
        } else {
            scnn_obs::counter_add("cache.misses", 1);
        }
        payload
    }

    /// True when a valid artifact is present (same validation as
    /// [`ArtifactCache::load`], counted the same way).
    pub fn contains(&self, kind: &str, key: CacheKey) -> bool {
        self.load(kind, key).is_some()
    }

    /// Stores an artifact atomically: the framed payload is written to a
    /// temporary file in the cache directory and renamed over the final
    /// path, so readers never observe a partial write.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`io::Error`]; callers treat the cache as
    /// best-effort and may ignore it.
    pub fn store(&self, kind: &str, key: CacheKey, payload: &[u8]) -> io::Result<()> {
        let path = self.path_for(kind, key);
        let tmp = self.root.join(format!(
            ".tmp-{}-{}-{kind}-{}",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed),
            key.hex()
        ));
        let framed = encode_artifact(payload);
        fs::write(&tmp, framed)?;
        match fs::rename(&tmp, &path) {
            Ok(()) => {
                scnn_obs::counter_add("cache.writes", 1);
                Ok(())
            }
            Err(e) => {
                let _ = fs::remove_file(&tmp);
                Err(e)
            }
        }
    }
}

/// Frames a payload with the magic/version/length/checksum header.
fn encode_artifact(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC.to_be_bytes());
    out.extend_from_slice(&VERSION.to_be_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_be_bytes());
    out.extend_from_slice(&fnv1a64(payload).to_be_bytes());
    out.extend_from_slice(payload);
    out
}

/// Unframes an artifact, returning `None` on any inconsistency.
fn decode_artifact(bytes: &[u8]) -> Option<Vec<u8>> {
    if bytes.len() < HEADER_LEN {
        return None;
    }
    let magic = u32::from_be_bytes(bytes[0..4].try_into().ok()?);
    let version = u16::from_be_bytes(bytes[4..6].try_into().ok()?);
    let len = u64::from_be_bytes(bytes[6..14].try_into().ok()?);
    let checksum = u64::from_be_bytes(bytes[14..22].try_into().ok()?);
    if magic != MAGIC || version != VERSION {
        return None;
    }
    let payload = &bytes[HEADER_LEN..];
    if payload.len() as u64 != len || fnv1a64(payload) != checksum {
        return None;
    }
    Some(payload.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("scnn-cache-test-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn roundtrip_hits_after_store() {
        let dir = scratch("roundtrip");
        let cache = ArtifactCache::open(&dir).unwrap();
        let key = CacheKey::from_canonical("config-a");
        assert!(cache.load("model", key).is_none(), "empty cache misses");
        cache.store("model", key, b"payload bytes").unwrap();
        assert_eq!(
            cache.load("model", key).as_deref(),
            Some(&b"payload bytes"[..])
        );
        assert!(cache.contains("model", key));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn keys_are_stable_and_spread() {
        let a = CacheKey::from_canonical("{\"seed\":1}");
        assert_eq!(a, CacheKey::from_canonical("{\"seed\":1}"), "pure function");
        assert_ne!(a, CacheKey::from_canonical("{\"seed\":2}"));
        // A one-character change must not leave either word unchanged.
        let b = CacheKey::from_canonical("{\"seed\":1} ");
        assert_ne!(a.hi, b.hi);
        assert_ne!(a.lo, b.lo);
        assert_eq!(a.hex().len(), 32);
    }

    #[test]
    fn kinds_partition_the_key_space() {
        let dir = scratch("kinds");
        let cache = ArtifactCache::open(&dir).unwrap();
        let key = CacheKey::from_canonical("shared");
        cache.store("model", key, b"m").unwrap();
        assert!(cache.load("obs", key).is_none(), "other kind is a miss");
        assert_eq!(cache.load("model", key).as_deref(), Some(&b"m"[..]));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_payload_roundtrips() {
        let dir = scratch("empty");
        let cache = ArtifactCache::open(&dir).unwrap();
        let key = CacheKey::from_canonical("empty");
        cache.store("obs", key, b"").unwrap();
        assert_eq!(cache.load("obs", key).as_deref(), Some(&b""[..]));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_single_byte_flip_is_a_miss() {
        let dir = scratch("flip");
        let cache = ArtifactCache::open(&dir).unwrap();
        let key = CacheKey::from_canonical("flip");
        cache
            .store("model", key, b"sensitive artifact data")
            .unwrap();
        let path = cache.path_for("model", key);
        let good = fs::read(&path).unwrap();
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0x40;
            fs::write(&path, &bad).unwrap();
            assert!(
                cache.load("model", key).is_none(),
                "flipping byte {i} must invalidate the artifact"
            );
        }
        fs::write(&path, &good).unwrap();
        assert!(cache.load("model", key).is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncation_is_a_miss_at_every_cut() {
        let dir = scratch("trunc");
        let cache = ArtifactCache::open(&dir).unwrap();
        let key = CacheKey::from_canonical("trunc");
        cache.store("model", key, b"0123456789").unwrap();
        let path = cache.path_for("model", key);
        let good = fs::read(&path).unwrap();
        for cut in 0..good.len() {
            fs::write(&path, &good[..cut]).unwrap();
            assert!(cache.load("model", key).is_none(), "cut at {cut}");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn future_version_is_a_miss() {
        let dir = scratch("version");
        let cache = ArtifactCache::open(&dir).unwrap();
        let key = CacheKey::from_canonical("version");
        cache.store("model", key, b"abc").unwrap();
        let path = cache.path_for("model", key);
        let mut bytes = fs::read(&path).unwrap();
        bytes[4..6].copy_from_slice(&(VERSION + 1).to_be_bytes());
        // Recompute nothing: the version is outside the checksum on
        // purpose, so this isolates the version check.
        fs::write(&path, &bytes).unwrap();
        assert!(cache.load("model", key).is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_overwrites_atomically() {
        let dir = scratch("overwrite");
        let cache = ArtifactCache::open(&dir).unwrap();
        let key = CacheKey::from_canonical("overwrite");
        cache.store("model", key, b"old").unwrap();
        cache.store("model", key, b"new").unwrap();
        assert_eq!(cache.load("model", key).as_deref(), Some(&b"new"[..]));
        // No temp files left behind.
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().starts_with(".tmp-"))
            .collect();
        assert!(leftovers.is_empty(), "temp files must be renamed away");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn counters_flow_to_an_installed_recorder() {
        let dir = scratch("counters");
        let cache = ArtifactCache::open(&dir).unwrap();
        let key = CacheKey::from_canonical("counters");
        let recorder = std::sync::Arc::new(scnn_obs::Recorder::new());
        scnn_obs::install(recorder.clone());
        let _ = cache.load("model", key); // miss
        cache.store("model", key, b"x").unwrap(); // write
        let _ = cache.load("model", key); // hit
        scnn_obs::uninstall();
        let snap = recorder.snapshot();
        assert!(snap.counter("cache.misses").unwrap_or(0) >= 1);
        assert!(snap.counter("cache.writes").unwrap_or(0) >= 1);
        assert!(snap.counter("cache.hits").unwrap_or(0) >= 1);
        assert!(
            snap.spans.iter().any(|s| s.name == "cache.lookup"),
            "lookup span recorded"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    #[should_panic(expected = "artifact kind must be a short slug")]
    fn bad_kind_is_rejected() {
        let dir = scratch("badkind");
        let cache = ArtifactCache::open(&dir).unwrap();
        let _ = cache.path_for("../escape", CacheKey::from_canonical("x"));
    }
}
