//! # scnn-cache
//!
//! A zero-dependency, content-addressed on-disk artifact cache.
//!
//! The experiment pipeline's expensive phases — CNN training and
//! per-category HPC collection — are pure functions of the experiment
//! configuration (see DESIGN.md § Parallel execution for the determinism
//! contract). That makes their outputs cacheable by construction: derive
//! a [`CacheKey`] from the canonical JSON of the relevant config fields,
//! and any later run with the same key can reuse the stored bytes
//! instead of recomputing.
//!
//! Design points, in the spirit of the rest of the workspace:
//!
//! - **Hermetic.** The digest is an in-tree FNV-1a/SplitMix construction,
//!   the file format is hand-rolled, and the only dependencies are other
//!   workspace crates.
//! - **Corruption is a miss, never a crash.** Every load verifies a
//!   magic/version header, the payload length and an FNV-1a checksum;
//!   any mismatch (truncated file, flipped bit, future format version)
//!   makes [`ArtifactCache::load`] return `None` so the caller simply
//!   recomputes.
//! - **Writes are atomic.** [`ArtifactCache::store`] writes to a
//!   temporary file in the cache directory and renames it into place, so
//!   a concurrent reader sees either the old artifact or the new one,
//!   never a torn file — and an interrupted run never poisons the cache.
//! - **Concurrent writers: single-writer-wins.** Keys are content
//!   addresses, so two writers racing on one key are by contract writing
//!   the *same* payload; whichever rename lands last simply replaces an
//!   identical file. The rename is the only commit point — there is no
//!   lock to leak and no torn state for a reader to observe. This is an
//!   explicit contract (pinned by the `concurrent_*` stress tests), not
//!   an accident of the implementation.
//! - **Crash recovery at open.** A process killed between the temp-file
//!   write and the rename leaves a `.tmp-…` orphan behind;
//!   [`ArtifactCache::open`] sweeps those (counted under
//!   `cache.tmp_swept`) so a cache directory never accumulates garbage
//!   across crashes. Corrupt artifacts are quarantined on first
//!   detection (counted under `cache.corrupt`) instead of being re-read
//!   and re-rejected forever.
//! - **Bounded.** [`ArtifactCache::gc`] evicts least-recently-modified
//!   artifacts down to a byte budget (counted under `cache.evicted`),
//!   so a long-running service can share one cache directory without it
//!   growing without bound.
//! - **Observation-only telemetry.** `cache.hits` / `cache.misses` /
//!   `cache.writes` / `cache.corrupt` / `cache.tmp_swept` /
//!   `cache.evicted` counters and a `cache.lookup` span flow to an
//!   installed [`scnn_obs`] recorder; nothing the cache records feeds
//!   back into results.
//!
//! The digest is *not* cryptographic: it defends against accidental key
//! collisions and on-disk corruption, not against an adversary who can
//! write to the cache directory.
//!
//! # Examples
//!
//! ```
//! use scnn_cache::{ArtifactCache, CacheKey};
//!
//! # fn main() -> std::io::Result<()> {
//! let dir = std::env::temp_dir().join(format!("scnn-cache-doc-{}", std::process::id()));
//! let cache = ArtifactCache::open(&dir)?;
//! let key = CacheKey::from_canonical("{\"dataset\":\"mnist\",\"seed\":7}");
//! assert!(cache.load("model", key).is_none());
//! cache.store("model", key, b"weights")?;
//! assert_eq!(cache.load("model", key).as_deref(), Some(&b"weights"[..]));
//! # std::fs::remove_dir_all(&dir)?;
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

use scnn_rng::SplitMix64;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Artifact file magic: `"SCAC"` (SCnn Artifact Cache).
const MAGIC: u32 = 0x5343_4143;
/// Artifact format version; bump on any layout change so older binaries
/// treat newer files as misses instead of misreading them.
const VERSION: u16 = 1;
/// Header bytes preceding the payload: magic(4) + version(2) +
/// payload_len(8) + checksum(8).
const HEADER_LEN: usize = 22;

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// 64-bit FNV-1a over `bytes`, starting from `seed` (use [`FNV_OFFSET`]
/// for the standard hash).
fn fnv1a64_seeded(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = seed;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// The standard 64-bit FNV-1a hash — used as the payload checksum.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    fnv1a64_seeded(FNV_OFFSET, bytes)
}

/// Finalizes a raw FNV state through one SplitMix64 step, which mixes
/// high and low bits much better than FNV alone (FNV-1a barely diffuses
/// into the top bits for short inputs).
fn mix(x: u64) -> u64 {
    SplitMix64::new(x).next_value()
}

/// A 128-bit content digest identifying one artifact.
///
/// Derived from a *canonical* string (the cache contract is that equal
/// configurations serialize to byte-equal strings — see
/// `scnn_core::artifact`) by two independently-seeded FNV-1a passes,
/// each finalized through SplitMix64.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CacheKey {
    /// High 64 bits of the digest.
    pub hi: u64,
    /// Low 64 bits of the digest.
    pub lo: u64,
}

impl CacheKey {
    /// Digests a canonical description of the artifact's inputs.
    pub fn from_canonical(text: &str) -> Self {
        let bytes = text.as_bytes();
        CacheKey {
            hi: mix(fnv1a64_seeded(FNV_OFFSET, bytes)),
            lo: mix(fnv1a64_seeded(FNV_OFFSET ^ 0x5C44_AC1F_AC7C_4A5E, bytes)),
        }
    }

    /// The digest as 32 lowercase hex characters (the on-disk file stem).
    pub fn hex(&self) -> String {
        format!("{:016x}{:016x}", self.hi, self.lo)
    }
}

impl fmt::Display for CacheKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.hex())
    }
}

/// Disambiguates concurrent writers within one process; the process id
/// disambiguates across processes.
static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Subdirectory corrupt artifacts are moved into by
/// [`ArtifactCache::load`]'s quarantine pass.
const QUARANTINE_DIR: &str = "quarantine";

/// What one [`ArtifactCache::gc`] pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Artifacts present before the pass.
    pub scanned: usize,
    /// Artifacts deleted to get under budget.
    pub evicted: usize,
    /// Total artifact bytes before the pass.
    pub bytes_before: u64,
    /// Total artifact bytes after the pass.
    pub bytes_after: u64,
}

/// A content-addressed artifact store rooted at one directory.
///
/// Artifacts live directly under the root as `<kind>-<digest>.art`,
/// where `kind` is a short slug (`model`, `obs`, …) that keeps the
/// directory listable by humans and lets different artifact types share
/// one cache directory without key-space tricks.
#[derive(Debug, Clone)]
pub struct ArtifactCache {
    root: PathBuf,
}

impl ArtifactCache {
    /// Opens (creating if needed) a cache rooted at `root`.
    ///
    /// Startup recovery runs as part of opening: stale `.tmp-*` files
    /// left by processes that were killed between the temp-file write
    /// and the rename are swept (see [`ArtifactCache::sweep_stale`]).
    /// The sweep is best-effort — a file that cannot be removed is left
    /// in place rather than failing the open.
    ///
    /// # Errors
    ///
    /// Returns the [`io::Error`] of `create_dir_all` when the directory
    /// cannot be created.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<Self> {
        let root = root.into();
        // Eager, so "is anything quarantined?" checks (tests, CI gates)
        // can list the directory without racing its first use.
        fs::create_dir_all(root.join(QUARANTINE_DIR))?;
        let cache = ArtifactCache { root };
        let _ = cache.sweep_stale();
        Ok(cache)
    }

    /// Removes orphaned `.tmp-*` files left behind by crashed writers,
    /// returning how many were swept (also counted under
    /// `cache.tmp_swept`).
    ///
    /// Temp names embed the writer's process id
    /// (`.tmp-{pid}-{counter}-…`), so the sweep only touches files whose
    /// pid differs from the current process — an in-flight store by
    /// another thread of *this* process is never yanked out from under
    /// its rename. A dead writer's pid could in principle have been
    /// recycled by a live unrelated process; in that worst case the live
    /// writer's `store` observes a failed rename and reports it as an
    /// ordinary best-effort cache error, never corruption.
    pub fn sweep_stale(&self) -> io::Result<usize> {
        let own_pid = std::process::id();
        let mut swept = 0usize;
        for entry in fs::read_dir(&self.root)? {
            let Ok(entry) = entry else { continue };
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(rest) = name.strip_prefix(".tmp-") else {
                continue;
            };
            let pid: Option<u32> = rest.split('-').next().and_then(|p| p.parse().ok());
            if pid == Some(own_pid) {
                continue;
            }
            if fs::remove_file(entry.path()).is_ok() {
                swept += 1;
            }
        }
        if swept > 0 {
            scnn_obs::counter_add("cache.tmp_swept", swept as u64);
        }
        Ok(swept)
    }

    /// The cache directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The on-disk path of one artifact.
    ///
    /// # Panics
    ///
    /// Panics when `kind` is not a lowercase-alphanumeric/`-`/`_` slug —
    /// kinds are compile-time constants, so a bad one is a programming
    /// error, not bad input.
    pub fn path_for(&self, kind: &str, key: CacheKey) -> PathBuf {
        assert!(
            !kind.is_empty()
                && kind.bytes().all(|b| b.is_ascii_lowercase()
                    || b.is_ascii_digit()
                    || b == b'-'
                    || b == b'_'),
            "artifact kind must be a short slug, got {kind:?}"
        );
        self.root.join(format!("{kind}-{}.art", key.hex()))
    }

    /// Loads an artifact's payload, or `None` on a miss.
    ///
    /// A miss is *any* failure: no file, unreadable file, wrong magic or
    /// version, length mismatch, checksum mismatch. Corruption therefore
    /// degrades to recomputation, never to a crash or to wrong data.
    ///
    /// A file that *was* readable but failed validation is quarantined
    /// on the spot (moved under `quarantine/`, counted under
    /// `cache.corrupt`), so every later lookup of that key is a plain
    /// fast miss instead of re-reading and re-rejecting the same bytes
    /// forever.
    pub fn load(&self, kind: &str, key: CacheKey) -> Option<Vec<u8>> {
        let _span = scnn_obs::Span::enter("cache.lookup");
        let path = self.path_for(kind, key);
        let payload = match fs::read(&path) {
            Err(_) => None,
            Ok(bytes) => {
                let decoded = decode_artifact(&bytes);
                if decoded.is_none() {
                    self.quarantine(&path);
                }
                decoded
            }
        };
        if payload.is_some() {
            scnn_obs::counter_add("cache.hits", 1);
        } else {
            scnn_obs::counter_add("cache.misses", 1);
        }
        payload
    }

    /// The directory corrupt artifacts are moved into.
    pub fn quarantine_dir(&self) -> PathBuf {
        self.root.join(QUARANTINE_DIR)
    }

    /// Moves a failed-validation artifact out of the addressable key
    /// space (best-effort; falls back to deletion when the rename
    /// fails). Keeping the bytes around lets an operator inspect what
    /// went wrong, while the lookup path stops paying for them.
    fn quarantine(&self, path: &Path) {
        scnn_obs::counter_add("cache.corrupt", 1);
        let dir = self.quarantine_dir();
        let quarantined = path
            .file_name()
            .map(|name| dir.join(name))
            .filter(|target| fs::create_dir_all(&dir).is_ok() && fs::rename(path, target).is_ok());
        if quarantined.is_none() {
            let _ = fs::remove_file(path);
        }
    }

    /// Evicts least-recently-modified artifacts until the cache's total
    /// artifact bytes fit `budget_bytes`.
    ///
    /// Eviction order is (mtime, file name) ascending — deterministic
    /// even when a filesystem's timestamp granularity makes mtimes
    /// collide. Only committed `*.art` files count against the budget
    /// and only they are evicted; in-flight `.tmp-*` files and the
    /// quarantine directory are untouched. Evicting an artifact a
    /// concurrent reader is mid-`load` on is safe: the reader either won
    /// the race (it already read the bytes) or sees an ordinary miss.
    ///
    /// # Errors
    ///
    /// Returns the [`io::Error`] of listing the cache directory; failure
    /// to remove an individual file is skipped (the next pass retries).
    pub fn gc(&self, budget_bytes: u64) -> io::Result<GcReport> {
        let mut artifacts: Vec<(PathBuf, u64, std::time::SystemTime)> = Vec::new();
        for entry in fs::read_dir(&self.root)? {
            let Ok(entry) = entry else { continue };
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if !name.ends_with(".art") {
                continue;
            }
            let Ok(meta) = entry.metadata() else { continue };
            if !meta.is_file() {
                continue;
            }
            let mtime = meta.modified().unwrap_or(std::time::UNIX_EPOCH);
            artifacts.push((entry.path(), meta.len(), mtime));
        }
        let mut report = GcReport {
            scanned: artifacts.len(),
            evicted: 0,
            bytes_before: artifacts.iter().map(|(_, len, _)| len).sum(),
            bytes_after: 0,
        };
        report.bytes_after = report.bytes_before;
        if report.bytes_before <= budget_bytes {
            return Ok(report);
        }
        artifacts.sort_by(|a, b| a.2.cmp(&b.2).then_with(|| a.0.cmp(&b.0)));
        for (path, len, _) in &artifacts {
            if report.bytes_after <= budget_bytes {
                break;
            }
            if fs::remove_file(path).is_ok() {
                report.evicted += 1;
                report.bytes_after -= len;
            }
        }
        if report.evicted > 0 {
            scnn_obs::counter_add("cache.evicted", report.evicted as u64);
        }
        Ok(report)
    }

    /// True when a valid artifact is present (same validation as
    /// [`ArtifactCache::load`], counted the same way).
    pub fn contains(&self, kind: &str, key: CacheKey) -> bool {
        self.load(kind, key).is_some()
    }

    /// Stores an artifact atomically: the framed payload is written to a
    /// temporary file in the cache directory and renamed over the final
    /// path, so readers never observe a partial write.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`io::Error`]; callers treat the cache as
    /// best-effort and may ignore it.
    pub fn store(&self, kind: &str, key: CacheKey, payload: &[u8]) -> io::Result<()> {
        let path = self.path_for(kind, key);
        let tmp = self.root.join(format!(
            ".tmp-{}-{}-{kind}-{}",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed),
            key.hex()
        ));
        let framed = encode_artifact(payload);
        fs::write(&tmp, framed)?;
        match fs::rename(&tmp, &path) {
            Ok(()) => {
                scnn_obs::counter_add("cache.writes", 1);
                Ok(())
            }
            Err(e) => {
                let _ = fs::remove_file(&tmp);
                Err(e)
            }
        }
    }
}

/// Frames a payload with the magic/version/length/checksum header.
fn encode_artifact(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC.to_be_bytes());
    out.extend_from_slice(&VERSION.to_be_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_be_bytes());
    out.extend_from_slice(&fnv1a64(payload).to_be_bytes());
    out.extend_from_slice(payload);
    out
}

/// Unframes an artifact, returning `None` on any inconsistency.
fn decode_artifact(bytes: &[u8]) -> Option<Vec<u8>> {
    if bytes.len() < HEADER_LEN {
        return None;
    }
    let magic = u32::from_be_bytes(bytes[0..4].try_into().ok()?);
    let version = u16::from_be_bytes(bytes[4..6].try_into().ok()?);
    let len = u64::from_be_bytes(bytes[6..14].try_into().ok()?);
    let checksum = u64::from_be_bytes(bytes[14..22].try_into().ok()?);
    if magic != MAGIC || version != VERSION {
        return None;
    }
    let payload = &bytes[HEADER_LEN..];
    if payload.len() as u64 != len || fnv1a64(payload) != checksum {
        return None;
    }
    Some(payload.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("scnn-cache-test-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn roundtrip_hits_after_store() {
        let dir = scratch("roundtrip");
        let cache = ArtifactCache::open(&dir).unwrap();
        let key = CacheKey::from_canonical("config-a");
        assert!(cache.load("model", key).is_none(), "empty cache misses");
        cache.store("model", key, b"payload bytes").unwrap();
        assert_eq!(
            cache.load("model", key).as_deref(),
            Some(&b"payload bytes"[..])
        );
        assert!(cache.contains("model", key));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn keys_are_stable_and_spread() {
        let a = CacheKey::from_canonical("{\"seed\":1}");
        assert_eq!(a, CacheKey::from_canonical("{\"seed\":1}"), "pure function");
        assert_ne!(a, CacheKey::from_canonical("{\"seed\":2}"));
        // A one-character change must not leave either word unchanged.
        let b = CacheKey::from_canonical("{\"seed\":1} ");
        assert_ne!(a.hi, b.hi);
        assert_ne!(a.lo, b.lo);
        assert_eq!(a.hex().len(), 32);
    }

    #[test]
    fn kinds_partition_the_key_space() {
        let dir = scratch("kinds");
        let cache = ArtifactCache::open(&dir).unwrap();
        let key = CacheKey::from_canonical("shared");
        cache.store("model", key, b"m").unwrap();
        assert!(cache.load("obs", key).is_none(), "other kind is a miss");
        assert_eq!(cache.load("model", key).as_deref(), Some(&b"m"[..]));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_payload_roundtrips() {
        let dir = scratch("empty");
        let cache = ArtifactCache::open(&dir).unwrap();
        let key = CacheKey::from_canonical("empty");
        cache.store("obs", key, b"").unwrap();
        assert_eq!(cache.load("obs", key).as_deref(), Some(&b""[..]));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_single_byte_flip_is_a_miss() {
        let dir = scratch("flip");
        let cache = ArtifactCache::open(&dir).unwrap();
        let key = CacheKey::from_canonical("flip");
        cache
            .store("model", key, b"sensitive artifact data")
            .unwrap();
        let path = cache.path_for("model", key);
        let good = fs::read(&path).unwrap();
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0x40;
            fs::write(&path, &bad).unwrap();
            assert!(
                cache.load("model", key).is_none(),
                "flipping byte {i} must invalidate the artifact"
            );
        }
        fs::write(&path, &good).unwrap();
        assert!(cache.load("model", key).is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncation_is_a_miss_at_every_cut() {
        let dir = scratch("trunc");
        let cache = ArtifactCache::open(&dir).unwrap();
        let key = CacheKey::from_canonical("trunc");
        cache.store("model", key, b"0123456789").unwrap();
        let path = cache.path_for("model", key);
        let good = fs::read(&path).unwrap();
        for cut in 0..good.len() {
            fs::write(&path, &good[..cut]).unwrap();
            assert!(cache.load("model", key).is_none(), "cut at {cut}");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn future_version_is_a_miss() {
        let dir = scratch("version");
        let cache = ArtifactCache::open(&dir).unwrap();
        let key = CacheKey::from_canonical("version");
        cache.store("model", key, b"abc").unwrap();
        let path = cache.path_for("model", key);
        let mut bytes = fs::read(&path).unwrap();
        bytes[4..6].copy_from_slice(&(VERSION + 1).to_be_bytes());
        // Recompute nothing: the version is outside the checksum on
        // purpose, so this isolates the version check.
        fs::write(&path, &bytes).unwrap();
        assert!(cache.load("model", key).is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_overwrites_atomically() {
        let dir = scratch("overwrite");
        let cache = ArtifactCache::open(&dir).unwrap();
        let key = CacheKey::from_canonical("overwrite");
        cache.store("model", key, b"old").unwrap();
        cache.store("model", key, b"new").unwrap();
        assert_eq!(cache.load("model", key).as_deref(), Some(&b"new"[..]));
        // No temp files left behind.
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().starts_with(".tmp-"))
            .collect();
        assert!(leftovers.is_empty(), "temp files must be renamed away");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn counters_flow_to_an_installed_recorder() {
        let dir = scratch("counters");
        let cache = ArtifactCache::open(&dir).unwrap();
        let key = CacheKey::from_canonical("counters");
        let recorder = std::sync::Arc::new(scnn_obs::Recorder::new());
        scnn_obs::install(recorder.clone());
        let _ = cache.load("model", key); // miss
        cache.store("model", key, b"x").unwrap(); // write
        let _ = cache.load("model", key); // hit
        scnn_obs::uninstall();
        let snap = recorder.snapshot();
        assert!(snap.counter("cache.misses").unwrap_or(0) >= 1);
        assert!(snap.counter("cache.writes").unwrap_or(0) >= 1);
        assert!(snap.counter("cache.hits").unwrap_or(0) >= 1);
        assert!(
            snap.spans.iter().any(|s| s.name == "cache.lookup"),
            "lookup span recorded"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    #[should_panic(expected = "artifact kind must be a short slug")]
    fn bad_kind_is_rejected() {
        let dir = scratch("badkind");
        let cache = ArtifactCache::open(&dir).unwrap();
        let _ = cache.path_for("../escape", CacheKey::from_canonical("x"));
    }

    /// Regression: a process killed between `fs::write` and `fs::rename`
    /// leaves a `.tmp-{pid}-…` orphan. That exact on-disk state —
    /// simulated here by writing the temp file a dead pid would have
    /// left — must be swept by the next `open`, not kept forever.
    #[test]
    fn kill_between_write_and_rename_is_swept_on_open() {
        let dir = scratch("orphan");
        let cache = ArtifactCache::open(&dir).unwrap();
        let key = CacheKey::from_canonical("orphan");
        // A writer that died mid-store: framed payload sitting in a temp
        // file under a pid that is not ours (u32::MAX is never a real
        // Linux pid; pid_max caps well below it).
        let orphan = dir.join(format!(".tmp-{}-0-model-{}", u32::MAX, key.hex()));
        fs::write(&orphan, encode_artifact(b"half-committed")).unwrap();
        // Our own in-flight temp file must survive the sweep.
        let own = dir.join(format!(".tmp-{}-7-model-{}", std::process::id(), key.hex()));
        fs::write(&own, encode_artifact(b"in flight")).unwrap();

        let reopened = ArtifactCache::open(&dir).unwrap();
        assert!(!orphan.exists(), "dead writer's temp file must be swept");
        assert!(own.exists(), "own in-flight temp file must be kept");
        assert!(
            reopened.load("model", key).is_none(),
            "the orphan never became an artifact"
        );
        let _ = fs::remove_dir_all(&dir);
        drop(cache);
    }

    #[test]
    fn corrupt_artifact_is_quarantined_on_first_detection() {
        let dir = scratch("quarantine");
        let cache = ArtifactCache::open(&dir).unwrap();
        let key = CacheKey::from_canonical("quarantine");
        cache.store("model", key, b"good bytes").unwrap();
        let path = cache.path_for("model", key);
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();

        let recorder = std::sync::Arc::new(scnn_obs::Recorder::new());
        scnn_obs::install(recorder.clone());
        assert!(cache.load("model", key).is_none(), "corruption is a miss");
        scnn_obs::uninstall();
        assert!(
            !path.exists(),
            "first detection must move the entry out of the key space"
        );
        let quarantined = cache.quarantine_dir().join(path.file_name().unwrap());
        assert_eq!(
            fs::read(&quarantined).unwrap(),
            bytes,
            "the corrupt bytes are preserved for inspection"
        );
        assert!(
            recorder.snapshot().counter("cache.corrupt").unwrap_or(0) >= 1,
            "corruption is counted"
        );
        // Later lookups are plain misses; a fresh store revives the key.
        assert!(cache.load("model", key).is_none());
        cache.store("model", key, b"good bytes").unwrap();
        assert_eq!(
            cache.load("model", key).as_deref(),
            Some(&b"good bytes"[..])
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_evicts_oldest_first_down_to_budget() {
        let dir = scratch("gc");
        let cache = ArtifactCache::open(&dir).unwrap();
        let keys: Vec<CacheKey> = (0..4)
            .map(|i| CacheKey::from_canonical(&format!("gc-{i}")))
            .collect();
        for key in &keys {
            cache.store("model", *key, &[0u8; 100]).unwrap();
        }
        // Deterministic ages regardless of filesystem timestamp
        // granularity: key 0 oldest … key 3 newest.
        let base = std::time::SystemTime::now() - std::time::Duration::from_secs(1000);
        for (i, key) in keys.iter().enumerate() {
            let file = fs::File::options()
                .write(true)
                .open(cache.path_for("model", *key))
                .unwrap();
            let when = base + std::time::Duration::from_secs(i as u64 * 60);
            file.set_times(fs::FileTimes::new().set_modified(when))
                .unwrap();
        }
        let per_artifact = (HEADER_LEN + 100) as u64;
        let report = cache.gc(2 * per_artifact).unwrap();
        assert_eq!(report.scanned, 4);
        assert_eq!(report.evicted, 2, "evict just enough to fit the budget");
        assert_eq!(report.bytes_before, 4 * per_artifact);
        assert_eq!(report.bytes_after, 2 * per_artifact);
        assert!(cache.load("model", keys[0]).is_none(), "oldest evicted");
        assert!(
            cache.load("model", keys[1]).is_none(),
            "second-oldest evicted"
        );
        assert!(cache.load("model", keys[2]).is_some(), "newer kept");
        assert!(cache.load("model", keys[3]).is_some(), "newest kept");
        // Already under budget: a second pass is a no-op.
        let idle = cache.gc(2 * per_artifact).unwrap();
        assert_eq!(idle.evicted, 0);
        assert_eq!(idle.bytes_before, idle.bytes_after);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_ignores_tmp_and_quarantine_files() {
        let dir = scratch("gc-scope");
        let cache = ArtifactCache::open(&dir).unwrap();
        let key = CacheKey::from_canonical("gc-scope");
        cache.store("model", key, &[1u8; 64]).unwrap();
        let own_tmp = dir.join(format!(".tmp-{}-0-model-deadbeef", std::process::id()));
        fs::write(&own_tmp, b"in flight").unwrap();
        fs::create_dir_all(cache.quarantine_dir()).unwrap();
        fs::write(cache.quarantine_dir().join("model-old.art"), b"bad").unwrap();

        let report = cache.gc(0).unwrap();
        assert_eq!(report.scanned, 1, "only committed artifacts are scanned");
        assert_eq!(report.evicted, 1);
        assert!(own_tmp.exists(), "gc must not touch in-flight temp files");
        assert!(
            cache.quarantine_dir().join("model-old.art").exists(),
            "gc must not touch quarantined files"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    /// The single-writer-wins contract under real contention: many
    /// threads hammering one shared key (plus private keys) must never
    /// produce a torn read, a wrong payload, or a leftover temp file.
    #[test]
    fn concurrent_writers_and_readers_never_corrupt() {
        let dir = scratch("stress");
        let cache = ArtifactCache::open(&dir).unwrap();
        let shared = CacheKey::from_canonical("stress-shared");
        // Content addressing means every writer of `shared` writes the
        // same payload — that is the contract being stress-tested.
        let payload: Vec<u8> = (0..4096u32).map(|i| (i % 251) as u8).collect();
        let workers = 8;
        let rounds = 40;
        std::thread::scope(|scope| {
            for w in 0..workers {
                let cache = &cache;
                let payload = &payload;
                scope.spawn(move || {
                    let private = CacheKey::from_canonical(&format!("stress-private-{w}"));
                    for r in 0..rounds {
                        cache.store("model", shared, payload).unwrap();
                        match cache.load("model", shared) {
                            Some(got) => assert_eq!(&got, payload, "worker {w} round {r}"),
                            None => panic!("shared key vanished after store (worker {w})"),
                        }
                        cache.store("obs", private, &[w as u8; 33]).unwrap();
                        assert_eq!(
                            cache.load("obs", private).as_deref(),
                            Some(&[w as u8; 33][..])
                        );
                        if r % 16 == 0 {
                            // GC under contention: eviction may race the
                            // stores, but never corrupts what survives.
                            cache.gc(u64::MAX).unwrap();
                        }
                    }
                });
            }
        });
        let leftovers: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.starts_with(".tmp-"))
            .collect();
        assert!(leftovers.is_empty(), "stray temp files: {leftovers:?}");
        assert_eq!(
            fs::read_dir(cache.quarantine_dir()).unwrap().count(),
            0,
            "healthy concurrent traffic must never quarantine anything"
        );
        assert_eq!(cache.load("model", shared).unwrap(), payload);
        let _ = fs::remove_dir_all(&dir);
    }
}
