//! Hardware prefetcher models.
//!
//! A prefetcher watches the demand-miss stream and proposes line addresses
//! to pull into the cache ahead of use. The hierarchy decides where the
//! prefetched lines land (L2 in this model, matching Intel's MLC
//! prefetchers).

/// Prefetcher selection for the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PrefetcherKind {
    /// No prefetching.
    None,
    /// Fetch line N+1 on a miss to line N.
    NextLine,
    /// Per-PC stride detection (IP-stride prefetcher), degree 2.
    #[default]
    Stride,
}

impl PrefetcherKind {
    /// Every prefetcher kind, in config-file order.
    pub const ALL: [PrefetcherKind; 3] = [
        PrefetcherKind::None,
        PrefetcherKind::NextLine,
        PrefetcherKind::Stride,
    ];

    /// The stable config-file name of this prefetcher kind.
    pub fn name(self) -> &'static str {
        match self {
            PrefetcherKind::None => "none",
            PrefetcherKind::NextLine => "next-line",
            PrefetcherKind::Stride => "stride",
        }
    }

    /// Looks a prefetcher kind up by its [`name`](Self::name).
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|k| k.name() == name)
    }
}

/// A prefetcher that proposes addresses to preload.
pub trait Prefetcher {
    /// Observes a demand access (`pc` identifies the load site) and
    /// returns the byte addresses the hierarchy should prefetch.
    fn observe(&mut self, pc: u64, addr: u64, miss: bool) -> Vec<u64>;

    /// Number of prefetches issued so far.
    fn issued(&self) -> u64;
}

/// Trivial next-line prefetcher.
#[derive(Debug, Clone, Copy, Default)]
pub struct NextLinePrefetcher {
    line_bytes: u64,
    issued: u64,
}

impl NextLinePrefetcher {
    /// Creates the prefetcher for a given line size.
    pub fn new(line_bytes: usize) -> Self {
        NextLinePrefetcher {
            line_bytes: line_bytes as u64,
            issued: 0,
        }
    }
}

impl Prefetcher for NextLinePrefetcher {
    fn observe(&mut self, _pc: u64, addr: u64, miss: bool) -> Vec<u64> {
        if miss {
            self.issued += 1;
            vec![(addr & !(self.line_bytes - 1)) + self.line_bytes]
        } else {
            Vec::new()
        }
    }

    fn issued(&self) -> u64 {
        self.issued
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct StrideEntry {
    pc: u64,
    last_addr: u64,
    stride: i64,
    confidence: u8,
    valid: bool,
}

/// IP-stride prefetcher: learns a per-load-site stride and, once confident,
/// prefetches `degree` strides ahead.
#[derive(Debug, Clone)]
pub struct StridePrefetcher {
    table: Vec<StrideEntry>,
    mask: u64,
    degree: usize,
    issued: u64,
}

impl StridePrefetcher {
    /// Creates a stride prefetcher with `2^index_bits` tracking entries and
    /// the given prefetch degree.
    ///
    /// # Panics
    ///
    /// Panics when `index_bits` is 0 or `degree` is 0.
    pub fn new(index_bits: u32, degree: usize) -> Self {
        assert!(index_bits > 0 && degree > 0);
        let size = 1usize << index_bits;
        StridePrefetcher {
            table: vec![StrideEntry::default(); size],
            mask: (size - 1) as u64,
            degree,
            issued: 0,
        }
    }
}

impl Prefetcher for StridePrefetcher {
    fn observe(&mut self, pc: u64, addr: u64, _miss: bool) -> Vec<u64> {
        let idx = (pc & self.mask) as usize;
        let e = &mut self.table[idx];
        if !e.valid || e.pc != pc {
            *e = StrideEntry {
                pc,
                last_addr: addr,
                stride: 0,
                confidence: 0,
                valid: true,
            };
            return Vec::new();
        }
        let stride = addr as i64 - e.last_addr as i64;
        if stride == e.stride && stride != 0 {
            e.confidence = (e.confidence + 1).min(3);
        } else {
            e.stride = stride;
            e.confidence = 0;
        }
        e.last_addr = addr;
        if e.confidence >= 2 {
            let mut out = Vec::with_capacity(self.degree);
            for d in 1..=self.degree {
                let target = addr as i64 + e.stride * d as i64;
                if target >= 0 {
                    out.push(target as u64);
                }
            }
            self.issued += out.len() as u64;
            out
        } else {
            Vec::new()
        }
    }

    fn issued(&self) -> u64 {
        self.issued
    }
}

impl PrefetcherKind {
    /// Builds the prefetcher for a cache with the given line size.
    pub fn build(self, line_bytes: usize) -> Option<Box<dyn Prefetcher + Send>> {
        match self {
            PrefetcherKind::None => None,
            PrefetcherKind::NextLine => Some(Box::new(NextLinePrefetcher::new(line_bytes))),
            PrefetcherKind::Stride => Some(Box::new(StridePrefetcher::new(8, 2))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_line_on_miss_only() {
        let mut p = NextLinePrefetcher::new(64);
        assert_eq!(p.observe(0, 100, false), Vec::<u64>::new());
        assert_eq!(p.observe(0, 100, true), vec![128]);
        assert_eq!(p.issued(), 1);
    }

    #[test]
    fn stride_learns_sequential() {
        let mut p = StridePrefetcher::new(4, 2);
        let pc = 0x40;
        // Accesses with stride 64: needs 3 observations to gain confidence.
        assert!(p.observe(pc, 0, true).is_empty());
        assert!(p.observe(pc, 64, true).is_empty());
        assert!(p.observe(pc, 128, true).is_empty());
        let out = p.observe(pc, 192, true);
        assert_eq!(out, vec![256, 320]);
        assert_eq!(p.issued(), 2);
    }

    #[test]
    fn stride_resets_on_pattern_change() {
        let mut p = StridePrefetcher::new(4, 1);
        let pc = 0x40;
        for i in 0..5u64 {
            p.observe(pc, i * 64, true);
        }
        assert!(p.issued() > 0);
        let before = p.issued();
        // Random jumps: confidence collapses, no more prefetches.
        assert!(p.observe(pc, 10_000, true).is_empty());
        assert!(p.observe(pc, 3, true).is_empty());
        assert_eq!(p.issued(), before);
    }

    #[test]
    fn stride_zero_never_prefetches() {
        let mut p = StridePrefetcher::new(4, 2);
        for _ in 0..10 {
            assert!(p.observe(0x40, 512, true).is_empty());
        }
    }

    #[test]
    fn distinct_pcs_tracked_separately() {
        let mut p = StridePrefetcher::new(4, 1);
        for i in 0..4u64 {
            p.observe(0x40, i * 64, true);
            p.observe(0x41, i * 128, true);
        }
        let a = p.observe(0x40, 4 * 64, true);
        let b = p.observe(0x41, 4 * 128, true);
        assert_eq!(a, vec![5 * 64]);
        assert_eq!(b, vec![5 * 128]);
    }

    #[test]
    fn kind_builders() {
        assert!(PrefetcherKind::None.build(64).is_none());
        assert!(PrefetcherKind::NextLine.build(64).is_some());
        assert!(PrefetcherKind::Stride.build(64).is_some());
    }
}
