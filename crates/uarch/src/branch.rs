//! Branch prediction models: static, bimodal (two-bit), gshare and a
//! tournament chooser.
//!
//! The `branches` and `branch-misses` HPC events of the paper are derived
//! from these models: every conditional branch emitted by the instrumented
//! CNN retires one `branches` event, and a wrong prediction retires one
//! `branch-misses` event.

/// Statistics kept by every predictor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BranchStats {
    /// Conditional branches observed.
    pub branches: u64,
    /// Mispredicted branches.
    pub mispredictions: u64,
}

impl BranchStats {
    /// Misprediction ratio in `[0, 1]`; `0.0` with no branches.
    pub fn miss_ratio(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.branches as f64
        }
    }
}

/// A conditional-branch predictor.
///
/// `observe` performs predict-then-update in one step and returns whether
/// the prediction was correct, which is the only thing the counter model
/// needs.
pub trait BranchPredictor {
    /// Predicts the branch at `pc`, updates internal state with the true
    /// outcome `taken`, and returns `true` when the prediction was correct.
    fn observe(&mut self, pc: u64, taken: bool) -> bool;

    /// Accumulated statistics.
    fn stats(&self) -> BranchStats;

    /// Clears statistics (prediction state is kept, matching how real PMUs
    /// reset counters without flushing predictor state).
    fn reset_stats(&mut self);
}

/// Predicts every branch taken (or not) — the baseline predictor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaticPredictor {
    predict_taken: bool,
    stats: BranchStats,
}

impl StaticPredictor {
    /// Creates the predictor; `predict_taken` chooses its fixed guess.
    pub fn new(predict_taken: bool) -> Self {
        StaticPredictor {
            predict_taken,
            stats: BranchStats::default(),
        }
    }
}

impl BranchPredictor for StaticPredictor {
    fn observe(&mut self, _pc: u64, taken: bool) -> bool {
        self.stats.branches += 1;
        let correct = taken == self.predict_taken;
        if !correct {
            self.stats.mispredictions += 1;
        }
        correct
    }

    fn stats(&self) -> BranchStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = BranchStats::default();
    }
}

/// Saturating two-bit counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct TwoBit(u8);

impl TwoBit {
    const WEAK_TAKEN: TwoBit = TwoBit(2);

    fn predict(self) -> bool {
        self.0 >= 2
    }

    fn update(&mut self, taken: bool) {
        if taken {
            self.0 = (self.0 + 1).min(3);
        } else {
            self.0 = self.0.saturating_sub(1);
        }
    }
}

/// Bimodal predictor: a table of two-bit counters indexed by low PC bits.
#[derive(Debug, Clone)]
pub struct BimodalPredictor {
    table: Vec<TwoBit>,
    mask: u64,
    stats: BranchStats,
}

impl BimodalPredictor {
    /// Creates a predictor with `2^index_bits` counters.
    ///
    /// # Panics
    ///
    /// Panics if `index_bits` is 0 or greater than 24.
    pub fn new(index_bits: u32) -> Self {
        assert!((1..=24).contains(&index_bits), "index_bits must be 1..=24");
        let size = 1usize << index_bits;
        BimodalPredictor {
            table: vec![TwoBit::WEAK_TAKEN; size],
            mask: (size - 1) as u64,
            stats: BranchStats::default(),
        }
    }
}

impl BranchPredictor for BimodalPredictor {
    fn observe(&mut self, pc: u64, taken: bool) -> bool {
        self.stats.branches += 1;
        let idx = (pc & self.mask) as usize;
        let correct = self.table[idx].predict() == taken;
        if !correct {
            self.stats.mispredictions += 1;
        }
        self.table[idx].update(taken);
        correct
    }

    fn stats(&self) -> BranchStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = BranchStats::default();
    }
}

/// GShare predictor: two-bit counters indexed by `pc ⊕ global history`.
#[derive(Debug, Clone)]
pub struct GsharePredictor {
    table: Vec<TwoBit>,
    mask: u64,
    history: u64,
    history_bits: u32,
    stats: BranchStats,
}

impl GsharePredictor {
    /// Creates a predictor with `2^index_bits` counters and `history_bits`
    /// of global history (`history_bits <= index_bits`).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range parameters.
    pub fn new(index_bits: u32, history_bits: u32) -> Self {
        assert!((1..=24).contains(&index_bits), "index_bits must be 1..=24");
        assert!(history_bits <= index_bits, "history must fit in index");
        let size = 1usize << index_bits;
        GsharePredictor {
            table: vec![TwoBit::WEAK_TAKEN; size],
            mask: (size - 1) as u64,
            history: 0,
            history_bits,
            stats: BranchStats::default(),
        }
    }

    fn index(&self, pc: u64) -> usize {
        ((pc ^ self.history) & self.mask) as usize
    }
}

impl BranchPredictor for GsharePredictor {
    fn observe(&mut self, pc: u64, taken: bool) -> bool {
        self.stats.branches += 1;
        let idx = self.index(pc);
        let correct = self.table[idx].predict() == taken;
        if !correct {
            self.stats.mispredictions += 1;
        }
        self.table[idx].update(taken);
        self.history = ((self.history << 1) | taken as u64) & ((1 << self.history_bits) - 1);
        correct
    }

    fn stats(&self) -> BranchStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = BranchStats::default();
    }
}

/// Tournament predictor: bimodal and gshare components with a two-bit
/// chooser per PC that learns which component predicts better.
#[derive(Debug, Clone)]
pub struct TournamentPredictor {
    bimodal: BimodalPredictor,
    gshare: GsharePredictor,
    chooser: Vec<TwoBit>,
    mask: u64,
    stats: BranchStats,
}

impl TournamentPredictor {
    /// Creates a tournament predictor with `2^index_bits` entries in every
    /// component table.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range `index_bits` (see [`BimodalPredictor::new`]).
    pub fn new(index_bits: u32) -> Self {
        let size = 1usize << index_bits;
        TournamentPredictor {
            bimodal: BimodalPredictor::new(index_bits),
            gshare: GsharePredictor::new(index_bits, index_bits.min(12)),
            chooser: vec![TwoBit::WEAK_TAKEN; size],
            mask: (size - 1) as u64,
            stats: BranchStats::default(),
        }
    }
}

impl BranchPredictor for TournamentPredictor {
    fn observe(&mut self, pc: u64, taken: bool) -> bool {
        self.stats.branches += 1;
        let idx = (pc & self.mask) as usize;

        // Component predictions (peek before their internal updates).
        let bim_pred = self.bimodal.table[(pc & self.bimodal.mask) as usize].predict();
        let gsh_pred = self.gshare.table[self.gshare.index(pc)].predict();
        // Chooser: counter >= 2 selects gshare.
        let use_gshare = self.chooser[idx].predict();
        let chosen = if use_gshare { gsh_pred } else { bim_pred };
        let correct = chosen == taken;
        if !correct {
            self.stats.mispredictions += 1;
        }

        // Train the chooser toward the component that was right (only when
        // they disagree).
        let bim_right = bim_pred == taken;
        let gsh_right = gsh_pred == taken;
        if bim_right != gsh_right {
            self.chooser[idx].update(gsh_right);
        }

        // Train both components (their own stats are bookkeeping only).
        self.bimodal.observe(pc, taken);
        self.gshare.observe(pc, taken);
        correct
    }

    fn stats(&self) -> BranchStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = BranchStats::default();
    }
}

/// Perceptron predictor (Jiménez & Lin): per-PC weight vectors dotted
/// with the global history; trained only on mispredictions or weak
/// outputs. Captures linearly-separable correlations that two-bit tables
/// cannot.
#[derive(Debug, Clone)]
pub struct PerceptronPredictor {
    /// One weight vector (bias + history weights) per table entry.
    weights: Vec<Vec<i32>>,
    mask: u64,
    /// Global history as ±1 values (true = taken).
    history: Vec<bool>,
    /// Training threshold θ ≈ 1.93·h + 14 (the published optimum).
    threshold: i32,
    stats: BranchStats,
}

impl PerceptronPredictor {
    /// Creates a predictor with `2^index_bits` perceptrons over
    /// `history_bits` of global history.
    ///
    /// # Panics
    ///
    /// Panics when `index_bits` is outside `1..=24` or `history_bits` is 0.
    pub fn new(index_bits: u32, history_bits: usize) -> Self {
        assert!((1..=24).contains(&index_bits), "index_bits must be 1..=24");
        assert!(history_bits > 0, "history must be non-empty");
        let size = 1usize << index_bits;
        PerceptronPredictor {
            weights: vec![vec![0; history_bits + 1]; size],
            mask: (size - 1) as u64,
            history: vec![false; history_bits],
            threshold: (1.93 * history_bits as f64 + 14.0) as i32,
            stats: BranchStats::default(),
        }
    }

    fn output(&self, idx: usize) -> i32 {
        let w = &self.weights[idx];
        let mut y = w[0]; // bias
        for (i, &h) in self.history.iter().enumerate() {
            y += if h { w[i + 1] } else { -w[i + 1] };
        }
        y
    }
}

impl BranchPredictor for PerceptronPredictor {
    fn observe(&mut self, pc: u64, taken: bool) -> bool {
        self.stats.branches += 1;
        let idx = (pc & self.mask) as usize;
        let y = self.output(idx);
        let predicted = y >= 0;
        let correct = predicted == taken;
        if !correct {
            self.stats.mispredictions += 1;
        }
        // Train on mispredicts or low-confidence outputs.
        if !correct || y.abs() <= self.threshold {
            const CLAMP: i32 = 127;
            let t = if taken { 1 } else { -1 };
            let w = &mut self.weights[idx];
            w[0] = (w[0] + t).clamp(-CLAMP, CLAMP);
            for (i, &h) in self.history.iter().enumerate() {
                let x = if h { 1 } else { -1 };
                w[i + 1] = (w[i + 1] + t * x).clamp(-CLAMP, CLAMP);
            }
        }
        self.history.rotate_left(1);
        if let Some(last) = self.history.last_mut() {
            *last = taken;
        }
        correct
    }

    fn stats(&self) -> BranchStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = BranchStats::default();
    }
}

/// Predictor selection for [`crate::config::CoreConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PredictorKind {
    /// Always-taken static predictor.
    StaticTaken,
    /// Bimodal two-bit table.
    Bimodal,
    /// GShare with global history.
    Gshare,
    /// Tournament of bimodal + gshare (the default; closest to a modern
    /// core).
    #[default]
    Tournament,
    /// Perceptron predictor over global history.
    Perceptron,
}

impl PredictorKind {
    /// Every predictor kind, in config-file order.
    pub const ALL: [PredictorKind; 5] = [
        PredictorKind::StaticTaken,
        PredictorKind::Bimodal,
        PredictorKind::Gshare,
        PredictorKind::Tournament,
        PredictorKind::Perceptron,
    ];

    /// The stable config-file name of this predictor kind.
    pub fn name(self) -> &'static str {
        match self {
            PredictorKind::StaticTaken => "static-taken",
            PredictorKind::Bimodal => "bimodal",
            PredictorKind::Gshare => "gshare",
            PredictorKind::Tournament => "tournament",
            PredictorKind::Perceptron => "perceptron",
        }
    }

    /// Looks a predictor kind up by its [`name`](Self::name).
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|k| k.name() == name)
    }

    /// Builds the predictor with `2^index_bits` table entries.
    pub fn build(self, index_bits: u32) -> Box<dyn BranchPredictor + Send> {
        match self {
            PredictorKind::StaticTaken => Box::new(StaticPredictor::new(true)),
            PredictorKind::Bimodal => Box::new(BimodalPredictor::new(index_bits)),
            PredictorKind::Gshare => Box::new(GsharePredictor::new(index_bits, index_bits.min(12))),
            PredictorKind::Tournament => Box::new(TournamentPredictor::new(index_bits)),
            PredictorKind::Perceptron => Box::new(PerceptronPredictor::new(
                index_bits,
                (index_bits as usize).min(24),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive<P: BranchPredictor>(p: &mut P, pattern: &[bool], reps: usize, pc: u64) {
        for _ in 0..reps {
            for &t in pattern {
                p.observe(pc, t);
            }
        }
    }

    #[test]
    fn static_predictor_counts() {
        let mut p = StaticPredictor::new(true);
        drive(&mut p, &[true, true, false], 10, 0x40);
        assert_eq!(p.stats().branches, 30);
        assert_eq!(p.stats().mispredictions, 10);
        assert!((p.stats().miss_ratio() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn bimodal_learns_bias() {
        let mut p = BimodalPredictor::new(10);
        drive(&mut p, &[true], 100, 0x40);
        p.reset_stats();
        drive(&mut p, &[true], 100, 0x40);
        assert_eq!(p.stats().mispredictions, 0, "steady taken loop is free");
    }

    #[test]
    fn bimodal_loop_exit_costs_one() {
        // A counted loop: N-1 taken, then 1 not-taken, repeated. Warmed-up
        // two-bit counters mispredict only the exit.
        let mut p = BimodalPredictor::new(10);
        let mut pattern = vec![true; 9];
        pattern.push(false);
        drive(&mut p, &pattern, 3, 0x40); // warm up
        p.reset_stats();
        drive(&mut p, &pattern, 10, 0x40);
        assert_eq!(p.stats().branches, 100);
        assert_eq!(p.stats().mispredictions, 10, "one miss per loop exit");
    }

    #[test]
    fn gshare_learns_alternating_pattern() {
        // Bimodal cannot predict strict alternation (stuck counters);
        // gshare learns it via history.
        let mut b = BimodalPredictor::new(10);
        let mut g = GsharePredictor::new(10, 8);
        let pattern = [true, false];
        drive(&mut b, &pattern, 200, 0x40);
        drive(&mut g, &pattern, 200, 0x40);
        let g_tail = {
            g.reset_stats();
            drive(&mut g, &pattern, 100, 0x40);
            g.stats().miss_ratio()
        };
        let b_tail = {
            b.reset_stats();
            drive(&mut b, &pattern, 100, 0x40);
            b.stats().miss_ratio()
        };
        assert!(g_tail < 0.05, "gshare tail miss ratio {g_tail}");
        assert!(b_tail > 0.4, "bimodal tail miss ratio {b_tail}");
    }

    #[test]
    fn tournament_at_least_tracks_better_component() {
        let mut t = TournamentPredictor::new(10);
        let pattern = [true, false];
        drive(&mut t, &pattern, 300, 0x40);
        t.reset_stats();
        drive(&mut t, &pattern, 100, 0x40);
        assert!(
            t.stats().miss_ratio() < 0.05,
            "tournament should adopt gshare on alternation, got {}",
            t.stats().miss_ratio()
        );
    }

    #[test]
    fn distinct_pcs_do_not_alias_much() {
        let mut p = BimodalPredictor::new(12);
        // Two branches with opposite bias at different PCs.
        for _ in 0..100 {
            p.observe(0x40, true);
            p.observe(0x80, false);
        }
        p.reset_stats();
        for _ in 0..100 {
            p.observe(0x40, true);
            p.observe(0x80, false);
        }
        assert_eq!(p.stats().mispredictions, 0);
    }

    #[test]
    fn perceptron_learns_biased_branch() {
        let mut p = PerceptronPredictor::new(8, 12);
        drive(&mut p, &[true], 100, 0x40);
        p.reset_stats();
        drive(&mut p, &[true], 100, 0x40);
        assert_eq!(p.stats().mispredictions, 0);
    }

    #[test]
    fn perceptron_learns_history_correlation() {
        // Branch B is taken exactly when the previous branch A was taken:
        // a linear correlation a perceptron represents exactly.
        let mut p = PerceptronPredictor::new(8, 8);
        let pattern = [true, true, false, false, true, false];
        for round in 0..120 {
            for (i, &a) in pattern.iter().enumerate() {
                p.observe(0x40, a);
                p.observe(0x80, a); // perfectly correlated with A
                let _ = (round, i);
            }
        }
        p.reset_stats();
        for _ in 0..30 {
            for &a in &pattern {
                p.observe(0x40, a);
                p.observe(0x80, a);
            }
        }
        let ratio = p.stats().miss_ratio();
        assert!(
            ratio < 0.25,
            "correlated stream should be mostly predicted: {ratio}"
        );
    }

    #[test]
    fn perceptron_weights_stay_clamped() {
        let mut p = PerceptronPredictor::new(4, 4);
        // Hammer one branch far beyond the clamp.
        drive(&mut p, &[true], 10_000, 0x40);
        for w in &p.weights {
            assert!(w.iter().all(|&x| x.abs() <= 127));
        }
    }

    #[test]
    fn kind_builds_all() {
        for kind in [
            PredictorKind::StaticTaken,
            PredictorKind::Bimodal,
            PredictorKind::Gshare,
            PredictorKind::Tournament,
            PredictorKind::Perceptron,
        ] {
            let mut p = kind.build(8);
            p.observe(0x40, true);
            assert_eq!(p.stats().branches, 1);
        }
    }

    #[test]
    #[should_panic]
    fn bimodal_rejects_zero_bits() {
        BimodalPredictor::new(0);
    }

    #[test]
    fn reset_keeps_learning() {
        let mut p = BimodalPredictor::new(8);
        drive(&mut p, &[true], 10, 0x40);
        p.reset_stats();
        assert_eq!(p.stats().branches, 0);
        // Still predicts taken immediately: state survived the reset.
        p.observe(0x40, true);
        assert_eq!(p.stats().mispredictions, 0);
    }
}
