//! # scnn-uarch
//!
//! A from-scratch microarchitectural simulator: set-associative cache
//! hierarchy, branch predictors, TLB, hardware prefetchers, a cycle cost
//! model and an OS-noise model.
//!
//! This crate is the substitute for the physical Intel Xeon E5-2690 on
//! which *"How Secure are Deep Learning Algorithms from Side-Channel based
//! Reverse Engineering?"* (Alam & Mukhopadhyay, DAC 2019) ran its
//! measurements. The paper's hardware-performance-counter readings are
//! deterministic functions of a workload's memory/branch event stream plus
//! system noise; this crate reproduces exactly that mechanism:
//!
//! 1. Instrumented workloads (the CNN kernels in `scnn-nn`) emit their
//!    architectural event stream through the [`Probe`] trait.
//! 2. [`CoreSim`] updates cache/TLB/predictor state per event and derives
//!    cycle counts from a cost model.
//! 3. `scnn-hpc` reads [`CoreSim::snapshot`] and layers perf-style event
//!    selection, counter multiplexing and [`noise`] on top.
//!
//! # Examples
//!
//! ```
//! use scnn_uarch::{CoreConfig, CoreSim, Probe};
//!
//! # fn main() -> Result<(), scnn_uarch::cache::CacheConfigError> {
//! // Model the paper's Xeon E5-2690 and stream a strided scan through it.
//! let mut core = CoreSim::new(CoreConfig::xeon_e5_2690())?;
//! for i in 0..10_000u64 {
//!     core.load(i * 64, 0x40);
//! }
//! let snap = core.snapshot();
//! assert!(snap.llc_misses > 0);
//! assert!(snap.cycles > snap.instructions / 4);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod branch;
pub mod cache;
pub mod config;
pub mod core;
pub mod cycles;
pub mod hierarchy;
pub mod noise;
pub mod prefetch;
pub mod probe;
pub mod tlb;

pub use branch::{BranchPredictor, BranchStats, PredictorKind};
pub use cache::{Cache, CacheConfig, CacheStats, ReplacementPolicy, WritePolicy};
pub use config::{CoreConfig, UarchConfig, UarchConfigError};
pub use core::{CoreSim, CounterSnapshot};
pub use cycles::CycleModel;
pub use hierarchy::{HierarchyConfig, LatencyModel, MemoryHierarchy, ServedBy};
pub use noise::{NoiseConfig, NoiseModel, NoiseSample};
pub use prefetch::PrefetcherKind;
pub use probe::{CountingProbe, NullProbe, Probe};
pub use tlb::{Tlb, TlbConfig};
