//! A three-level data-cache hierarchy with DRAM backing and an optional
//! mid-level prefetcher.
//!
//! The perf events of the paper map onto this structure the way Intel maps
//! them: `cache-references` counts accesses that reach the last-level
//! cache, `cache-misses` counts LLC misses (DRAM fills).

use crate::cache::{Cache, CacheConfig, CacheConfigError, CacheStats};
use crate::prefetch::{Prefetcher, PrefetcherKind};

/// Which level ultimately served a demand access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServedBy {
    /// Level-1 data cache.
    L1,
    /// Unified level-2 cache.
    L2,
    /// Last-level cache.
    L3,
    /// Main memory.
    Dram,
}

/// Access latencies per level, in core cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyModel {
    /// L1 hit latency.
    pub l1: u64,
    /// L2 hit latency.
    pub l2: u64,
    /// LLC hit latency.
    pub l3: u64,
    /// DRAM access latency.
    pub dram: u64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        // Representative Sandy-Bridge-EP numbers.
        LatencyModel {
            l1: 4,
            l2: 12,
            l3: 36,
            dram: 200,
        }
    }
}

impl LatencyModel {
    /// Latency of an access served by `level`.
    pub fn for_level(&self, level: ServedBy) -> u64 {
        match level {
            ServedBy::L1 => self.l1,
            ServedBy::L2 => self.l2,
            ServedBy::L3 => self.l3,
            ServedBy::Dram => self.dram,
        }
    }
}

/// Geometry of the whole hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// L1 data cache geometry.
    pub l1d: CacheConfig,
    /// L2 geometry.
    pub l2: CacheConfig,
    /// LLC geometry.
    pub l3: CacheConfig,
    /// Latency model.
    pub latency: LatencyModel,
    /// Mid-level prefetcher.
    pub prefetcher: PrefetcherKind,
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        // Scaled-down Xeon-class hierarchy (see `CoreConfig` presets for
        // the full-size E5-2690 geometry).
        HierarchyConfig {
            l1d: CacheConfig::new(32 * 1024, 8, 64),
            l2: CacheConfig::new(256 * 1024, 8, 64),
            l3: CacheConfig::new(2 * 1024 * 1024, 16, 64),
            latency: LatencyModel::default(),
            prefetcher: PrefetcherKind::Stride,
        }
    }
}

/// Aggregated statistics of the hierarchy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HierarchyStats {
    /// L1 data cache statistics.
    pub l1d: CacheStats,
    /// L2 statistics (demand + prefetch fills).
    pub l2: CacheStats,
    /// LLC statistics.
    pub l3: CacheStats,
    /// Demand accesses that reached the LLC (`cache-references` in perf
    /// terms).
    pub llc_references: u64,
    /// Demand accesses that missed the LLC (`cache-misses`).
    pub llc_misses: u64,
    /// Prefetch requests issued.
    pub prefetches: u64,
    /// Total memory latency accumulated by demand accesses, in cycles.
    pub demand_cycles: u64,
}

/// The three-level memory hierarchy.
///
/// # Examples
///
/// ```
/// use scnn_uarch::hierarchy::{HierarchyConfig, MemoryHierarchy, ServedBy};
///
/// # fn main() -> Result<(), scnn_uarch::cache::CacheConfigError> {
/// let mut mem = MemoryHierarchy::new(HierarchyConfig::default())?;
/// assert_eq!(mem.access(0x1000, false, 0), ServedBy::Dram); // cold
/// assert_eq!(mem.access(0x1000, false, 0), ServedBy::L1);   // warm
/// # Ok(())
/// # }
/// ```
pub struct MemoryHierarchy {
    l1d: Cache,
    l2: Cache,
    l3: Cache,
    latency: LatencyModel,
    prefetcher: Option<Box<dyn Prefetcher + Send>>,
    stats_llc_references: u64,
    stats_llc_misses: u64,
    stats_prefetches: u64,
    stats_demand_cycles: u64,
}

impl std::fmt::Debug for MemoryHierarchy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoryHierarchy")
            .field("l1d", self.l1d.stats())
            .field("l2", self.l2.stats())
            .field("l3", self.l3.stats())
            .field("llc_references", &self.stats_llc_references)
            .field("llc_misses", &self.stats_llc_misses)
            .finish_non_exhaustive()
    }
}

impl MemoryHierarchy {
    /// Builds the hierarchy.
    ///
    /// # Errors
    ///
    /// Returns [`CacheConfigError`] when any level's geometry is invalid.
    pub fn new(config: HierarchyConfig) -> Result<Self, CacheConfigError> {
        Ok(MemoryHierarchy {
            l1d: Cache::new(config.l1d)?,
            l2: Cache::new(config.l2)?,
            l3: Cache::new(config.l3)?,
            latency: config.latency,
            prefetcher: config.prefetcher.build(config.l2.line_bytes),
            stats_llc_references: 0,
            stats_llc_misses: 0,
            stats_prefetches: 0,
            stats_demand_cycles: 0,
        })
    }

    /// A demand access from the core. `pc` identifies the load/store site
    /// for the prefetcher. Returns the level that served the access.
    pub fn access(&mut self, addr: u64, write: bool, pc: u64) -> ServedBy {
        let l1 = self.l1d.access(addr, write);
        let mut served = ServedBy::L1;
        if !l1.hit {
            let l2 = self.l2.access(addr, false);
            if l2.hit {
                served = ServedBy::L2;
            } else {
                self.stats_llc_references += 1;
                let l3 = self.l3.access(addr, false);
                if l3.hit {
                    served = ServedBy::L3;
                } else {
                    self.stats_llc_misses += 1;
                    served = ServedBy::Dram;
                }
            }
            // Writebacks of dirty L1 victims land in L2 (write-back,
            // write-allocate); model as an L2 store.
            if let Some(wb) = l1.writeback {
                self.l2.access(wb, true);
            }
        }
        self.stats_demand_cycles += self.latency.for_level(served);

        // Prefetcher observes the demand stream and fills L2/L3. A
        // prefetch that misses the LLC still fetches the line from DRAM,
        // so it counts toward `cache-misses` exactly as on real PMUs —
        // prefetching hides *latency*, not *traffic*.
        if let Some(pf) = self.prefetcher.as_mut() {
            let targets = pf.observe(pc, addr, !l1.hit);
            for t in targets {
                self.stats_prefetches += 1;
                self.stats_llc_references += 1;
                let l3 = self.l3.access(t, false);
                if !l3.hit {
                    self.stats_llc_misses += 1;
                }
                self.l2.access(t, false);
            }
        }
        served
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> HierarchyStats {
        HierarchyStats {
            l1d: *self.l1d.stats(),
            l2: *self.l2.stats(),
            l3: *self.l3.stats(),
            llc_references: self.stats_llc_references,
            llc_misses: self.stats_llc_misses,
            prefetches: self.stats_prefetches,
            demand_cycles: self.stats_demand_cycles,
        }
    }

    /// Flushes every level (cold start).
    pub fn flush(&mut self) {
        self.l1d.flush();
        self.l2.flush();
        self.l3.flush();
    }

    /// Pollutes all levels as a co-runner / context switch would:
    /// `fraction` of L1 and L2 lines and `fraction / 4` of LLC lines are
    /// invalidated (the LLC is bigger and loses proportionally less).
    pub fn pollute(&mut self, fraction: f64, seed: u64) {
        self.l1d.pollute(fraction, seed ^ 0x1111);
        self.l2.pollute(fraction, seed ^ 0x2222);
        self.l3.pollute(fraction / 4.0, seed ^ 0x3333);
    }

    /// Resets statistics without touching cache contents.
    pub fn reset_stats(&mut self) {
        self.l1d.reset_stats();
        self.l2.reset_stats();
        self.l3.reset_stats();
        self.stats_llc_references = 0;
        self.stats_llc_misses = 0;
        self.stats_prefetches = 0;
        self.stats_demand_cycles = 0;
    }

    /// Immutable access to the L1 data cache (for tests and inspection).
    pub fn l1d(&self) -> &Cache {
        &self.l1d
    }

    /// Immutable access to the LLC.
    pub fn l3(&self) -> &Cache {
        &self.l3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hierarchy(prefetcher: PrefetcherKind) -> MemoryHierarchy {
        MemoryHierarchy::new(HierarchyConfig {
            prefetcher,
            ..HierarchyConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn cold_access_walks_all_levels() {
        let mut m = hierarchy(PrefetcherKind::None);
        assert_eq!(m.access(0, false, 0), ServedBy::Dram);
        let s = m.stats();
        assert_eq!(s.l1d.misses, 1);
        assert_eq!(s.l2.misses, 1);
        assert_eq!(s.l3.misses, 1);
        assert_eq!(s.llc_references, 1);
        assert_eq!(s.llc_misses, 1);
        assert_eq!(s.demand_cycles, LatencyModel::default().dram);
    }

    #[test]
    fn warm_access_hits_l1() {
        let mut m = hierarchy(PrefetcherKind::None);
        m.access(0, false, 0);
        assert_eq!(m.access(0, false, 0), ServedBy::L1);
        assert_eq!(m.stats().llc_references, 1, "second access never left L1");
    }

    #[test]
    fn l1_eviction_then_l2_hit() {
        let mut m = hierarchy(PrefetcherKind::None);
        // Fill far more than L1 (32 KiB = 512 lines), then revisit: lines
        // fall out of L1 but stay in L2 (256 KiB = 4096 lines).
        for i in 0..2048u64 {
            m.access(i * 64, false, 0);
        }
        let served = m.access(0, false, 0);
        assert_eq!(served, ServedBy::L2);
    }

    #[test]
    fn llc_miss_count_tracks_unique_lines_cold() {
        let mut m = hierarchy(PrefetcherKind::None);
        for i in 0..100u64 {
            m.access(i * 64, false, 0);
            m.access(i * 64 + 8, false, 0); // same line, L1 hit
        }
        let s = m.stats();
        assert_eq!(s.llc_misses, 100, "one DRAM fill per unique line");
        assert_eq!(s.l1d.hits, 100);
    }

    #[test]
    fn prefetcher_reduces_dram_hits_on_streaming() {
        let run = |kind: PrefetcherKind| {
            let mut m = hierarchy(kind);
            let mut dram = 0;
            for i in 0..4000u64 {
                if m.access(i * 64, false, 0x40) == ServedBy::Dram {
                    dram += 1;
                }
            }
            (dram, m.stats().prefetches)
        };
        let (dram_none, pf_none) = run(PrefetcherKind::None);
        let (dram_stride, pf_stride) = run(PrefetcherKind::Stride);
        assert_eq!(pf_none, 0);
        assert!(pf_stride > 0);
        assert!(
            dram_stride < dram_none / 2,
            "stride prefetcher should absorb most of a streaming scan: {dram_stride} vs {dram_none}"
        );
    }

    #[test]
    fn dirty_writeback_reaches_l2() {
        let mut m = hierarchy(PrefetcherKind::None);
        // Dirty a line, then push it out of L1 with conflicting fills.
        m.access(0, true, 0);
        // L1: 64 sets, 8 ways. Lines mapping to set 0 are 64*64 bytes apart.
        let set_stride = 64 * 64;
        for i in 1..=8u64 {
            m.access(i * set_stride, false, 0);
        }
        let s = m.stats();
        assert!(s.l2.accesses > s.l1d.misses, "writeback added an L2 access");
    }

    #[test]
    fn flush_makes_cold_again() {
        let mut m = hierarchy(PrefetcherKind::None);
        m.access(0, false, 0);
        m.flush();
        assert_eq!(m.access(0, false, 0), ServedBy::Dram);
    }

    #[test]
    fn pollute_is_milder_on_llc() {
        let mut m = hierarchy(PrefetcherKind::None);
        for i in 0..512u64 {
            m.access(i * 64, false, 0);
        }
        let l1_before = m.l1d().occupancy();
        let l3_before = m.l3().occupancy();
        m.pollute(0.8, 99);
        let l1_lost = l1_before - m.l1d().occupancy();
        let l3_lost = l3_before - m.l3().occupancy();
        assert!(l1_lost > 0);
        assert!(
            (l3_lost as f64) < (l3_before as f64) * 0.4,
            "LLC should lose ≲20%: lost {l3_lost} of {l3_before}"
        );
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut m = hierarchy(PrefetcherKind::None);
        m.access(0, false, 0);
        m.reset_stats();
        assert_eq!(m.stats().llc_references, 0);
        assert_eq!(m.access(0, false, 0), ServedBy::L1, "still warm");
    }
}
