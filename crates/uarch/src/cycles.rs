//! Cycle cost model: turns retired-event counts and memory latencies into
//! `cycles`, `ref-cycles` and `bus-cycles` figures.
//!
//! The model is deliberately simple — a superscalar base CPI plus
//! serialisation penalties — because the paper's evaluator consumes
//! *distributions* of these events, not absolute accuracy.

/// Parameters of the cycle model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CycleModel {
    /// Sustained instructions per cycle when nothing stalls (issue width
    /// discounted by dependency stalls).
    pub base_ipc: f64,
    /// Pipeline-flush penalty of a branch misprediction, in cycles.
    pub branch_miss_penalty: u64,
    /// Page-walk penalty of a TLB miss, in cycles.
    pub tlb_miss_penalty: u64,
    /// Fraction of demand memory latency hidden by out-of-order overlap,
    /// in `[0, 1)`. `0.6` means only 40% of raw memory latency shows up as
    /// stall cycles.
    pub memory_overlap: f64,
    /// Core-to-bus clock divider (`bus-cycles = cycles / bus_divider`).
    pub bus_divider: f64,
    /// Reference-clock ratio (`ref-cycles = cycles × ref_ratio`); models
    /// the TSC running slightly below the turbo core clock, as in the
    /// paper's Figure 2(b) where ref-cycles ≈ 0.986 × cycles.
    pub ref_ratio: f64,
}

impl Default for CycleModel {
    fn default() -> Self {
        CycleModel {
            base_ipc: 2.0,
            branch_miss_penalty: 15,
            tlb_miss_penalty: 30,
            memory_overlap: 0.6,
            bus_divider: 26.0,
            ref_ratio: 0.986,
        }
    }
}

/// The retired-event counts the model consumes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetiredCounts {
    /// Retired instructions of any kind.
    pub instructions: u64,
    /// Mispredicted branches.
    pub branch_misses: u64,
    /// TLB misses (page walks).
    pub tlb_misses: u64,
    /// Total demand memory latency from the hierarchy, in cycles.
    pub demand_memory_cycles: u64,
}

impl CycleModel {
    /// Core cycles implied by the retired counts.
    pub fn cycles(&self, c: &RetiredCounts) -> u64 {
        let base = c.instructions as f64 / self.base_ipc.max(0.1);
        let branch = (c.branch_misses * self.branch_miss_penalty) as f64;
        let tlb = (c.tlb_misses * self.tlb_miss_penalty) as f64;
        let mem = c.demand_memory_cycles as f64 * (1.0 - self.memory_overlap.clamp(0.0, 0.99));
        (base + branch + tlb + mem).round() as u64
    }

    /// `ref-cycles` derived from core cycles.
    pub fn ref_cycles(&self, cycles: u64) -> u64 {
        (cycles as f64 * self.ref_ratio).round() as u64
    }

    /// `bus-cycles` derived from core cycles.
    pub fn bus_cycles(&self, cycles: u64) -> u64 {
        (cycles as f64 / self.bus_divider.max(1.0)).round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_compute_is_ipc_bound() {
        let m = CycleModel::default();
        let c = RetiredCounts {
            instructions: 1000,
            ..RetiredCounts::default()
        };
        assert_eq!(m.cycles(&c), 500, "1000 instructions at IPC 2");
    }

    #[test]
    fn penalties_accumulate() {
        let m = CycleModel::default();
        let base = m.cycles(&RetiredCounts {
            instructions: 1000,
            ..RetiredCounts::default()
        });
        let with_misses = m.cycles(&RetiredCounts {
            instructions: 1000,
            branch_misses: 10,
            tlb_misses: 2,
            demand_memory_cycles: 100,
        });
        assert_eq!(with_misses, base + 150 + 60 + 40);
    }

    #[test]
    fn derived_clocks_match_paper_ordering() {
        // The paper's Fig 2(b): cycles > ref-cycles ≫ bus-cycles.
        let m = CycleModel::default();
        let cycles = 16_221_280_350u64;
        let refc = m.ref_cycles(cycles);
        let bus = m.bus_cycles(cycles);
        assert!(cycles > refc);
        assert!(refc > bus * 10);
        // Ratio shape check: ref/cycles ≈ 0.986, bus/cycles ≈ 1/26.
        assert!((refc as f64 / cycles as f64 - 0.986).abs() < 1e-6);
        assert!((bus as f64 / cycles as f64 - 1.0 / 26.0).abs() < 1e-6);
    }

    #[test]
    fn overlap_discounts_memory() {
        let full = CycleModel {
            memory_overlap: 0.0,
            ..CycleModel::default()
        }
        .cycles(&RetiredCounts {
            demand_memory_cycles: 1000,
            ..RetiredCounts::default()
        });
        let overlapped = CycleModel {
            memory_overlap: 0.9,
            ..CycleModel::default()
        }
        .cycles(&RetiredCounts {
            demand_memory_cycles: 1000,
            ..RetiredCounts::default()
        });
        assert_eq!(full, 1000);
        assert_eq!(overlapped, 100);
    }

    #[test]
    fn degenerate_ipc_clamped() {
        let m = CycleModel {
            base_ipc: 0.0,
            ..CycleModel::default()
        };
        // Must not divide by zero.
        let c = m.cycles(&RetiredCounts {
            instructions: 100,
            ..RetiredCounts::default()
        });
        assert!(c > 0);
    }
}
