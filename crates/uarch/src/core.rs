//! [`CoreSim`]: the full simulated core, tying hierarchy, predictor, TLB
//! and cycle model together behind the [`Probe`] interface.

use crate::branch::BranchPredictor;
use crate::cache::CacheConfigError;
use crate::config::CoreConfig;
use crate::cycles::RetiredCounts;
use crate::hierarchy::MemoryHierarchy;
use crate::probe::Probe;
use crate::tlb::Tlb;

/// A raw snapshot of every architectural/microarchitectural count the
/// simulated PMU can expose. This is the ground truth that `scnn-hpc`
/// turns into perf-style event readings (with noise and multiplexing on
/// top).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Retired instructions.
    pub instructions: u64,
    /// Retired data loads.
    pub loads: u64,
    /// Retired data stores.
    pub stores: u64,
    /// Retired conditional branches.
    pub branches: u64,
    /// Mispredicted branches.
    pub branch_misses: u64,
    /// L1D accesses.
    pub l1d_accesses: u64,
    /// L1D misses.
    pub l1d_misses: u64,
    /// L2 accesses.
    pub l2_accesses: u64,
    /// L2 misses.
    pub l2_misses: u64,
    /// Accesses that reached the LLC (`cache-references`).
    pub llc_references: u64,
    /// LLC misses (`cache-misses`).
    pub llc_misses: u64,
    /// Data-TLB misses.
    pub dtlb_misses: u64,
    /// Hardware prefetches issued.
    pub prefetches: u64,
    /// Core cycles (from the cycle model).
    pub cycles: u64,
    /// Reference cycles.
    pub ref_cycles: u64,
    /// Bus cycles.
    pub bus_cycles: u64,
}

impl CounterSnapshot {
    /// Per-event difference `self - earlier`, saturating at zero. Used to
    /// turn two absolute snapshots into a measurement-window delta.
    pub fn delta(&self, earlier: &CounterSnapshot) -> CounterSnapshot {
        CounterSnapshot {
            instructions: self.instructions.saturating_sub(earlier.instructions),
            loads: self.loads.saturating_sub(earlier.loads),
            stores: self.stores.saturating_sub(earlier.stores),
            branches: self.branches.saturating_sub(earlier.branches),
            branch_misses: self.branch_misses.saturating_sub(earlier.branch_misses),
            l1d_accesses: self.l1d_accesses.saturating_sub(earlier.l1d_accesses),
            l1d_misses: self.l1d_misses.saturating_sub(earlier.l1d_misses),
            l2_accesses: self.l2_accesses.saturating_sub(earlier.l2_accesses),
            l2_misses: self.l2_misses.saturating_sub(earlier.l2_misses),
            llc_references: self.llc_references.saturating_sub(earlier.llc_references),
            llc_misses: self.llc_misses.saturating_sub(earlier.llc_misses),
            dtlb_misses: self.dtlb_misses.saturating_sub(earlier.dtlb_misses),
            prefetches: self.prefetches.saturating_sub(earlier.prefetches),
            cycles: self.cycles.saturating_sub(earlier.cycles),
            ref_cycles: self.ref_cycles.saturating_sub(earlier.ref_cycles),
            bus_cycles: self.bus_cycles.saturating_sub(earlier.bus_cycles),
        }
    }
}

/// The simulated core.
///
/// Drive it through the [`Probe`] trait from instrumented code, then call
/// [`CoreSim::snapshot`] to read the counters.
///
/// # Examples
///
/// ```
/// use scnn_uarch::{CoreConfig, CoreSim, Probe};
///
/// # fn main() -> Result<(), scnn_uarch::cache::CacheConfigError> {
/// let mut core = CoreSim::new(CoreConfig::default())?;
/// for i in 0..64 {
///     core.load(i * 64, 0x40);
///     core.branch(0x400, i % 2 == 0);
/// }
/// core.alu(1000);
/// let snap = core.snapshot();
/// assert_eq!(snap.loads, 64);
/// assert_eq!(snap.branches, 64);
/// assert!(snap.cycles > 0);
/// # Ok(())
/// # }
/// ```
pub struct CoreSim {
    config: CoreConfig,
    hierarchy: MemoryHierarchy,
    predictor: Box<dyn BranchPredictor + Send>,
    tlb: Tlb,
    loads: u64,
    stores: u64,
    alu_ops: u64,
}

impl std::fmt::Debug for CoreSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CoreSim")
            .field("snapshot", &self.snapshot())
            .finish_non_exhaustive()
    }
}

impl CoreSim {
    /// Builds a core from a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CacheConfigError`] when the cache geometry is invalid.
    pub fn new(config: CoreConfig) -> Result<Self, CacheConfigError> {
        Ok(CoreSim {
            config,
            hierarchy: MemoryHierarchy::new(config.hierarchy)?,
            predictor: config.predictor.build(config.predictor_bits),
            tlb: Tlb::new(config.tlb),
            loads: 0,
            stores: 0,
            alu_ops: 0,
        })
    }

    /// The core's configuration.
    pub fn config(&self) -> &CoreConfig {
        &self.config
    }

    /// Reads all counters. Cycles are derived on the fly from the cycle
    /// model.
    pub fn snapshot(&self) -> CounterSnapshot {
        let h = self.hierarchy.stats();
        let b = self.predictor.stats();
        let t = self.tlb.stats();
        let instructions = self.loads + self.stores + self.alu_ops + b.branches;
        let retired = RetiredCounts {
            instructions,
            branch_misses: b.mispredictions,
            tlb_misses: t.misses,
            demand_memory_cycles: h.demand_cycles,
        };
        let cycles = self.config.cycles.cycles(&retired);
        CounterSnapshot {
            instructions,
            loads: self.loads,
            stores: self.stores,
            branches: b.branches,
            branch_misses: b.mispredictions,
            l1d_accesses: h.l1d.accesses,
            l1d_misses: h.l1d.misses,
            l2_accesses: h.l2.accesses,
            l2_misses: h.l2.misses,
            llc_references: h.llc_references,
            llc_misses: h.llc_misses,
            dtlb_misses: t.misses,
            prefetches: h.prefetches,
            cycles,
            ref_cycles: self.config.cycles.ref_cycles(cycles),
            bus_cycles: self.config.cycles.bus_cycles(cycles),
        }
    }

    /// Resets every counter to zero, keeping cache/predictor/TLB state
    /// warm (what `perf stat` attach/detach does).
    pub fn reset_counters(&mut self) {
        self.hierarchy.reset_stats();
        self.predictor.reset_stats();
        self.tlb.reset_stats();
        self.loads = 0;
        self.stores = 0;
        self.alu_ops = 0;
    }

    /// Flushes all cache and TLB contents — a cold start, as when the
    /// measured process is freshly exec'd.
    pub fn cold_start(&mut self) {
        self.hierarchy.flush();
        self.tlb.flush();
    }

    /// Applies co-runner / context-switch cache pollution (see
    /// [`MemoryHierarchy::pollute`]).
    pub fn pollute(&mut self, fraction: f64, seed: u64) {
        self.hierarchy.pollute(fraction, seed);
        self.tlb.flush();
    }

    /// Immutable access to the memory hierarchy.
    pub fn hierarchy(&self) -> &MemoryHierarchy {
        &self.hierarchy
    }
}

impl Probe for CoreSim {
    fn load(&mut self, addr: u64, pc: u64) {
        self.loads += 1;
        self.tlb.translate(addr);
        self.hierarchy.access(addr, false, pc);
    }

    fn store(&mut self, addr: u64, pc: u64) {
        self.stores += 1;
        self.tlb.translate(addr);
        self.hierarchy.access(addr, true, pc);
    }

    fn branch(&mut self, pc: u64, taken: bool) {
        self.predictor.observe(pc, taken);
    }

    fn alu(&mut self, n: u64) {
        self.alu_ops += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::ServedBy;

    fn core() -> CoreSim {
        CoreSim::new(CoreConfig::tiny()).unwrap()
    }

    #[test]
    fn instruction_accounting() {
        let mut c = core();
        c.load(0, 0x40);
        c.store(64, 0x40);
        c.branch(0x40, true);
        c.alu(7);
        let s = c.snapshot();
        assert_eq!(s.instructions, 10);
        assert_eq!(s.loads, 1);
        assert_eq!(s.stores, 1);
        assert_eq!(s.branches, 1);
    }

    #[test]
    fn memory_side_counters_flow() {
        let mut c = core();
        for i in 0..100u64 {
            c.load(i * 64, 0x40);
        }
        let s = c.snapshot();
        assert_eq!(s.l1d_accesses, 100);
        assert!(s.l1d_misses > 0);
        assert!(s.llc_references > 0);
        assert!(s.llc_misses > 0);
        assert!(s.dtlb_misses > 0);
        assert!(s.cycles > 0);
        assert!(s.ref_cycles < s.cycles);
        assert!(s.bus_cycles < s.ref_cycles);
    }

    #[test]
    fn reset_counters_keeps_warm_state() {
        let mut c = core();
        c.load(0, 0x40);
        c.reset_counters();
        let s0 = c.snapshot();
        assert_eq!(s0.instructions, 0);
        assert_eq!(s0.llc_misses, 0);
        // Line is still warm: next access hits L1, no LLC traffic.
        c.load(0, 0x40);
        let s1 = c.snapshot();
        assert_eq!(s1.l1d_misses, 0);
    }

    #[test]
    fn cold_start_recreates_misses() {
        let mut c = core();
        c.load(0, 0x40);
        c.cold_start();
        c.reset_counters();
        c.load(0, 0x40);
        assert_eq!(c.snapshot().llc_misses, 1);
    }

    #[test]
    fn snapshot_delta() {
        let mut c = core();
        c.load(0, 0x40);
        let a = c.snapshot();
        c.load(64, 0x40);
        c.alu(10);
        let b = c.snapshot();
        let d = b.delta(&a);
        assert_eq!(d.loads, 1);
        assert_eq!(d.instructions, 11);
        assert!(d.cycles > 0);
    }

    #[test]
    fn pollution_causes_re_misses() {
        let mut c = core();
        for i in 0..8u64 {
            c.load(i * 64, 0x40);
        }
        c.reset_counters();
        c.pollute(1.0, 42);
        for i in 0..8u64 {
            c.load(i * 64, 0x40);
        }
        assert!(c.snapshot().l1d_misses > 0, "polluted lines must re-miss");
    }

    #[test]
    fn served_by_visible_through_hierarchy() {
        let mut c = core();
        c.load(0, 0x40);
        // Direct hierarchy access used by tests elsewhere — keep the
        // accessor functional.
        assert_eq!(c.hierarchy().stats().llc_misses, 1);
        let _ = ServedBy::L1;
    }

    #[test]
    fn send_bound() {
        fn assert_send<T: Send>() {}
        assert_send::<CoreSim>();
    }
}
