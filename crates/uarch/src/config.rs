//! Whole-core configuration: presets, and the named, validated
//! [`UarchConfig`] wrapper that config files describe.

use crate::branch::PredictorKind;
use crate::cache::{CacheConfig, CacheConfigError};
use crate::core::CoreSim;
use crate::cycles::CycleModel;
use crate::hierarchy::{HierarchyConfig, LatencyModel};
use crate::prefetch::PrefetcherKind;
use crate::tlb::TlbConfig;
use std::error::Error;
use std::fmt;

/// Configuration of a simulated core: memory hierarchy, branch predictor,
/// TLB and cycle model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreConfig {
    /// Cache hierarchy geometry.
    pub hierarchy: HierarchyConfig,
    /// Branch predictor family.
    pub predictor: PredictorKind,
    /// log2 of the predictor table size.
    pub predictor_bits: u32,
    /// Data TLB geometry.
    pub tlb: TlbConfig,
    /// Cycle cost model.
    pub cycles: CycleModel,
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig {
            hierarchy: HierarchyConfig::default(),
            predictor: PredictorKind::Tournament,
            predictor_bits: 12,
            tlb: TlbConfig::default(),
            cycles: CycleModel::default(),
        }
    }
}

impl CoreConfig {
    /// Full-geometry model of the paper's evaluation platform, an Intel
    /// Xeon E5-2690 (Sandy Bridge EP): 32 KiB 8-way L1D, 256 KiB 8-way L2,
    /// 20 MiB 20-way shared LLC, 64 B lines.
    pub fn xeon_e5_2690() -> Self {
        CoreConfig {
            hierarchy: HierarchyConfig {
                l1d: CacheConfig::new(32 * 1024, 8, 64),
                l2: CacheConfig::new(256 * 1024, 8, 64),
                l3: CacheConfig::new(20 * 1024 * 1024, 20, 64),
                latency: LatencyModel {
                    l1: 4,
                    l2: 12,
                    l3: 31,
                    dram: 190,
                },
                prefetcher: PrefetcherKind::Stride,
            },
            predictor: PredictorKind::Tournament,
            predictor_bits: 14,
            tlb: TlbConfig {
                entries: 64,
                associativity: 4,
                page_bytes: 4096,
            },
            cycles: CycleModel::default(),
        }
    }

    /// A deliberately small core used by fast unit tests: tiny caches so
    /// eviction behaviour is exercised with small workloads.
    pub fn tiny() -> Self {
        CoreConfig {
            hierarchy: HierarchyConfig {
                l1d: CacheConfig::new(1024, 2, 64),
                l2: CacheConfig::new(4 * 1024, 4, 64),
                l3: CacheConfig::new(16 * 1024, 4, 64),
                latency: LatencyModel::default(),
                prefetcher: PrefetcherKind::None,
            },
            predictor: PredictorKind::Bimodal,
            predictor_bits: 8,
            tlb: TlbConfig {
                entries: 8,
                associativity: 2,
                page_bytes: 4096,
            },
            cycles: CycleModel::default(),
        }
    }
}

/// A named description of one full simulated CPU — the unit the preset
/// zoo and `--uarch` config files deal in.
///
/// This is [`CoreConfig`] plus an identity: the name labels sweep rows,
/// telemetry and cache chatter, and the description documents what the
/// platform models. [`validate`](Self::validate) checks every field the
/// constructors would otherwise panic on, so a config parsed from an
/// untrusted file fails with a named-field error instead of aborting.
#[derive(Debug, Clone, PartialEq)]
pub struct UarchConfig {
    /// Preset or file-supplied platform name (non-empty).
    pub name: String,
    /// One-line description of what the platform models.
    pub description: String,
    /// The simulated core itself.
    pub core: CoreConfig,
}

/// Why a [`UarchConfig`] is not instantiable.
#[derive(Debug, Clone, PartialEq)]
pub enum UarchConfigError {
    /// The platform name is empty.
    EmptyName,
    /// A cache level's geometry is invalid.
    Cache {
        /// Which level (`"l1d"`, `"l2"`, `"l3"`).
        level: &'static str,
        /// The underlying geometry error.
        source: CacheConfigError,
    },
    /// `predictor_bits` outside the range the predictor tables accept.
    PredictorBits(u32),
    /// The TLB geometry is invalid.
    Tlb {
        /// Which constraint failed, in field terms.
        detail: String,
    },
    /// A cycle-model field is outside its documented domain.
    Cycles {
        /// Which field.
        field: &'static str,
        /// What the domain is.
        detail: String,
    },
}

impl fmt::Display for UarchConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UarchConfigError::EmptyName => write!(f, "field \"name\" must be non-empty"),
            UarchConfigError::Cache { level, source } => {
                write!(f, "field \"{level}\": {source}")
            }
            UarchConfigError::PredictorBits(bits) => write!(
                f,
                "field \"predictor.bits\": {bits} is outside 1..=24 (table sizes are 2^bits)"
            ),
            UarchConfigError::Tlb { detail } => write!(f, "field \"tlb\": {detail}"),
            UarchConfigError::Cycles { field, detail } => {
                write!(f, "field \"cycles.{field}\": {detail}")
            }
        }
    }
}

impl Error for UarchConfigError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            UarchConfigError::Cache { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl UarchConfig {
    /// The default platform: the paper's Xeon E5-2690 under its zoo name.
    pub fn xeon_like() -> Self {
        UarchConfig {
            name: "xeon-like".to_owned(),
            description: "Intel Xeon E5-2690 (Sandy Bridge EP), the paper's platform".to_owned(),
            core: CoreConfig::xeon_e5_2690(),
        }
    }

    /// Checks every constraint the component constructors would panic
    /// on, reporting the first violation in config-file field terms.
    ///
    /// # Errors
    ///
    /// Returns [`UarchConfigError`] naming the offending field.
    pub fn validate(&self) -> Result<(), UarchConfigError> {
        if self.name.is_empty() {
            return Err(UarchConfigError::EmptyName);
        }
        for (level, cache) in [
            ("l1d", &self.core.hierarchy.l1d),
            ("l2", &self.core.hierarchy.l2),
            ("l3", &self.core.hierarchy.l3),
        ] {
            cache
                .validate()
                .map_err(|source| UarchConfigError::Cache { level, source })?;
        }
        if !(1..=24).contains(&self.core.predictor_bits) {
            return Err(UarchConfigError::PredictorBits(self.core.predictor_bits));
        }
        let tlb = &self.core.tlb;
        let tlb_err = |detail: String| UarchConfigError::Tlb { detail };
        if tlb.entries == 0 || tlb.associativity == 0 {
            return Err(tlb_err("entries and assoc must be non-zero".into()));
        }
        if !tlb.entries.is_multiple_of(tlb.associativity) {
            return Err(tlb_err(format!(
                "entries ({}) must be divisible by assoc ({})",
                tlb.entries, tlb.associativity
            )));
        }
        if !(tlb.entries / tlb.associativity).is_power_of_two() {
            return Err(tlb_err(format!(
                "set count ({}) must be a power of two",
                tlb.entries / tlb.associativity
            )));
        }
        if !tlb.page_bytes.is_power_of_two() {
            return Err(tlb_err(format!(
                "page_bytes ({}) must be a power of two",
                tlb.page_bytes
            )));
        }
        let cycles = &self.core.cycles;
        let finite_pos = |field: &'static str, v: f64| {
            if v.is_finite() && v > 0.0 {
                Ok(())
            } else {
                Err(UarchConfigError::Cycles {
                    field,
                    detail: format!("{v} is not a finite positive number"),
                })
            }
        };
        finite_pos("base_ipc", cycles.base_ipc)?;
        finite_pos("bus_divider", cycles.bus_divider)?;
        finite_pos("ref_ratio", cycles.ref_ratio)?;
        if !(0.0..1.0).contains(&cycles.memory_overlap) {
            return Err(UarchConfigError::Cycles {
                field: "memory_overlap",
                detail: format!("{} is outside [0, 1)", cycles.memory_overlap),
            });
        }
        Ok(())
    }

    /// Instantiates the simulated core this config describes — the
    /// factory behind the preset zoo and `--uarch`.
    ///
    /// # Errors
    ///
    /// Returns [`UarchConfigError`] when [`validate`](Self::validate)
    /// rejects the config.
    pub fn build(&self) -> Result<CoreSim, UarchConfigError> {
        self.validate()?;
        // Post-validation the component constructors cannot fail: the
        // hierarchy re-checks the same geometry, Tlb/predictor panics are
        // ruled out above.
        CoreSim::new(self.core).map_err(|source| UarchConfigError::Cache {
            level: "l1d",
            source,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::ReplacementPolicy;

    #[test]
    fn presets_are_valid_geometries() {
        for cfg in [
            CoreConfig::default(),
            CoreConfig::xeon_e5_2690(),
            CoreConfig::tiny(),
        ] {
            assert!(cfg.hierarchy.l1d.validate().is_ok());
            assert!(cfg.hierarchy.l2.validate().is_ok());
            assert!(cfg.hierarchy.l3.validate().is_ok());
        }
    }

    #[test]
    fn xeon_llc_is_20mib_20way() {
        let cfg = CoreConfig::xeon_e5_2690();
        assert_eq!(cfg.hierarchy.l3.size_bytes, 20 * 1024 * 1024);
        assert_eq!(cfg.hierarchy.l3.associativity, 20);
        assert_eq!(cfg.hierarchy.l3.num_sets(), 16384);
    }

    #[test]
    fn uarch_default_preset_is_the_paper_platform() {
        let u = UarchConfig::xeon_like();
        assert_eq!(u.name, "xeon-like");
        assert_eq!(u.core, CoreConfig::xeon_e5_2690());
        assert!(u.validate().is_ok());
        let sim = u.build().unwrap();
        assert_eq!(sim.config(), &u.core);
    }

    #[test]
    fn validate_names_the_offending_field() {
        let mut u = UarchConfig::xeon_like();
        u.name.clear();
        assert_eq!(u.validate(), Err(UarchConfigError::EmptyName));

        let mut u = UarchConfig::xeon_like();
        u.core.hierarchy.l2.associativity = 0;
        let err = u.validate().unwrap_err();
        assert!(matches!(err, UarchConfigError::Cache { level: "l2", .. }));
        assert!(err.to_string().contains("\"l2\""), "{err}");

        let mut u = UarchConfig::xeon_like();
        u.core.predictor_bits = 30;
        assert_eq!(u.validate(), Err(UarchConfigError::PredictorBits(30)));

        let mut u = UarchConfig::xeon_like();
        u.core.tlb.associativity = 0;
        assert!(u.validate().unwrap_err().to_string().contains("\"tlb\""));

        let mut u = UarchConfig::xeon_like();
        u.core.tlb.entries = 48; // 12 sets: not a power of two
        assert!(u
            .validate()
            .unwrap_err()
            .to_string()
            .contains("power of two"));

        let mut u = UarchConfig::xeon_like();
        u.core.cycles.memory_overlap = 1.5;
        let err = u.validate().unwrap_err();
        assert!(err.to_string().contains("memory_overlap"), "{err}");

        // `build` refuses the same configs instead of panicking deeper in.
        let mut u = UarchConfig::xeon_like();
        u.core.tlb.entries = 0;
        assert!(u.build().is_err());
    }

    #[test]
    fn enum_names_round_trip() {
        for p in ReplacementPolicy::ALL {
            assert_eq!(ReplacementPolicy::from_name(p.name()), Some(p));
        }
        for w in crate::cache::WritePolicy::ALL {
            assert_eq!(crate::cache::WritePolicy::from_name(w.name()), Some(w));
        }
        for k in PrefetcherKind::ALL {
            assert_eq!(PrefetcherKind::from_name(k.name()), Some(k));
        }
        for k in PredictorKind::ALL {
            assert_eq!(PredictorKind::from_name(k.name()), Some(k));
        }
        assert_eq!(ReplacementPolicy::from_name("plru"), None);
    }
}
