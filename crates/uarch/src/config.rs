//! Whole-core configuration presets.

use crate::branch::PredictorKind;
use crate::cache::CacheConfig;
use crate::cycles::CycleModel;
use crate::hierarchy::{HierarchyConfig, LatencyModel};
use crate::prefetch::PrefetcherKind;
use crate::tlb::TlbConfig;

/// Configuration of a simulated core: memory hierarchy, branch predictor,
/// TLB and cycle model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreConfig {
    /// Cache hierarchy geometry.
    pub hierarchy: HierarchyConfig,
    /// Branch predictor family.
    pub predictor: PredictorKind,
    /// log2 of the predictor table size.
    pub predictor_bits: u32,
    /// Data TLB geometry.
    pub tlb: TlbConfig,
    /// Cycle cost model.
    pub cycles: CycleModel,
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig {
            hierarchy: HierarchyConfig::default(),
            predictor: PredictorKind::Tournament,
            predictor_bits: 12,
            tlb: TlbConfig::default(),
            cycles: CycleModel::default(),
        }
    }
}

impl CoreConfig {
    /// Full-geometry model of the paper's evaluation platform, an Intel
    /// Xeon E5-2690 (Sandy Bridge EP): 32 KiB 8-way L1D, 256 KiB 8-way L2,
    /// 20 MiB 20-way shared LLC, 64 B lines.
    pub fn xeon_e5_2690() -> Self {
        CoreConfig {
            hierarchy: HierarchyConfig {
                l1d: CacheConfig::new(32 * 1024, 8, 64),
                l2: CacheConfig::new(256 * 1024, 8, 64),
                l3: CacheConfig::new(20 * 1024 * 1024, 20, 64),
                latency: LatencyModel {
                    l1: 4,
                    l2: 12,
                    l3: 31,
                    dram: 190,
                },
                prefetcher: PrefetcherKind::Stride,
            },
            predictor: PredictorKind::Tournament,
            predictor_bits: 14,
            tlb: TlbConfig {
                entries: 64,
                associativity: 4,
                page_bytes: 4096,
            },
            cycles: CycleModel::default(),
        }
    }

    /// A deliberately small core used by fast unit tests: tiny caches so
    /// eviction behaviour is exercised with small workloads.
    pub fn tiny() -> Self {
        CoreConfig {
            hierarchy: HierarchyConfig {
                l1d: CacheConfig::new(1024, 2, 64),
                l2: CacheConfig::new(4 * 1024, 4, 64),
                l3: CacheConfig::new(16 * 1024, 4, 64),
                latency: LatencyModel::default(),
                prefetcher: PrefetcherKind::None,
            },
            predictor: PredictorKind::Bimodal,
            predictor_bits: 8,
            tlb: TlbConfig {
                entries: 8,
                associativity: 2,
                page_bytes: 4096,
            },
            cycles: CycleModel::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid_geometries() {
        for cfg in [
            CoreConfig::default(),
            CoreConfig::xeon_e5_2690(),
            CoreConfig::tiny(),
        ] {
            assert!(cfg.hierarchy.l1d.validate().is_ok());
            assert!(cfg.hierarchy.l2.validate().is_ok());
            assert!(cfg.hierarchy.l3.validate().is_ok());
        }
    }

    #[test]
    fn xeon_llc_is_20mib_20way() {
        let cfg = CoreConfig::xeon_e5_2690();
        assert_eq!(cfg.hierarchy.l3.size_bytes, 20 * 1024 * 1024);
        assert_eq!(cfg.hierarchy.l3.associativity, 20);
        assert_eq!(cfg.hierarchy.l3.num_sets(), 16384);
    }
}
