//! A single set-associative cache with pluggable replacement policy.

use std::error::Error;
use std::fmt;

/// Replacement policy for a cache set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReplacementPolicy {
    /// Evict the least recently used line (true LRU).
    #[default]
    Lru,
    /// Evict the oldest-filled line regardless of use.
    Fifo,
    /// Tree pseudo-LRU (as implemented by most real L1s).
    TreePlru,
    /// Evict a deterministic pseudo-random line (xorshift over an internal
    /// seed, so simulations stay reproducible).
    Random,
}

impl ReplacementPolicy {
    /// Every policy, in the order used by config files and error
    /// messages.
    pub const ALL: [ReplacementPolicy; 4] = [
        ReplacementPolicy::Lru,
        ReplacementPolicy::Fifo,
        ReplacementPolicy::TreePlru,
        ReplacementPolicy::Random,
    ];

    /// The stable config-file name of this policy.
    pub fn name(self) -> &'static str {
        match self {
            ReplacementPolicy::Lru => "lru",
            ReplacementPolicy::Fifo => "fifo",
            ReplacementPolicy::TreePlru => "tree-plru",
            ReplacementPolicy::Random => "random",
        }
    }

    /// Looks a policy up by its [`name`](Self::name).
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|p| p.name() == name)
    }
}

/// How stores interact with the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WritePolicy {
    /// Write-back with write-allocate: stores fill the line and dirty it;
    /// dirty victims are written back on eviction (the policy of every
    /// level of a modern x86 data hierarchy).
    #[default]
    WriteBackAllocate,
    /// Write-through with no-write-allocate: stores that miss go straight
    /// to the next level without filling; hits update in place and
    /// propagate. Simpler embedded caches use this.
    WriteThroughNoAllocate,
}

impl WritePolicy {
    /// Every write policy, in config-file order.
    pub const ALL: [WritePolicy; 2] = [
        WritePolicy::WriteBackAllocate,
        WritePolicy::WriteThroughNoAllocate,
    ];

    /// The stable config-file name of this write policy.
    pub fn name(self) -> &'static str {
        match self {
            WritePolicy::WriteBackAllocate => "write-back-allocate",
            WritePolicy::WriteThroughNoAllocate => "write-through-no-allocate",
        }
    }

    /// Looks a write policy up by its [`name`](Self::name).
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|p| p.name() == name)
    }
}

/// Geometry and behaviour of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity (ways per set).
    pub associativity: usize,
    /// Line size in bytes (power of two).
    pub line_bytes: usize,
    /// Replacement policy.
    pub policy: ReplacementPolicy,
    /// Store handling.
    pub write_policy: WritePolicy,
}

impl CacheConfig {
    /// Creates a config with LRU replacement.
    pub fn new(size_bytes: usize, associativity: usize, line_bytes: usize) -> Self {
        CacheConfig {
            size_bytes,
            associativity,
            line_bytes,
            policy: ReplacementPolicy::Lru,
            write_policy: WritePolicy::WriteBackAllocate,
        }
    }

    /// Returns the same config with a different replacement policy.
    pub fn with_policy(mut self, policy: ReplacementPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Returns the same config with a different write policy.
    pub fn with_write_policy(mut self, write_policy: WritePolicy) -> Self {
        self.write_policy = write_policy;
        self
    }

    /// Number of sets implied by the geometry.
    pub fn num_sets(&self) -> usize {
        self.size_bytes / (self.associativity * self.line_bytes)
    }

    /// Validates the geometry.
    ///
    /// # Errors
    ///
    /// Returns [`CacheConfigError`] when sizes are zero, not powers of two
    /// where required, or inconsistent.
    pub fn validate(&self) -> Result<(), CacheConfigError> {
        if self.size_bytes == 0 || self.associativity == 0 || self.line_bytes == 0 {
            return Err(CacheConfigError::Zero);
        }
        if !self.line_bytes.is_power_of_two() {
            return Err(CacheConfigError::LineNotPowerOfTwo(self.line_bytes));
        }
        if !self
            .size_bytes
            .is_multiple_of(self.associativity * self.line_bytes)
        {
            return Err(CacheConfigError::Indivisible {
                size: self.size_bytes,
                assoc: self.associativity,
                line: self.line_bytes,
            });
        }
        if !self.num_sets().is_power_of_two() {
            return Err(CacheConfigError::SetsNotPowerOfTwo(self.num_sets()));
        }
        Ok(())
    }
}

/// Error describing an invalid [`CacheConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheConfigError {
    /// Some field is zero.
    Zero,
    /// Line size is not a power of two.
    LineNotPowerOfTwo(usize),
    /// Capacity is not divisible by way size.
    Indivisible {
        /// Total capacity.
        size: usize,
        /// Associativity.
        assoc: usize,
        /// Line size.
        line: usize,
    },
    /// The derived set count is not a power of two (index bits undefined).
    SetsNotPowerOfTwo(usize),
}

impl fmt::Display for CacheConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheConfigError::Zero => write!(f, "cache geometry fields must be non-zero"),
            CacheConfigError::LineNotPowerOfTwo(l) => {
                write!(f, "line size {l} is not a power of two")
            }
            CacheConfigError::Indivisible { size, assoc, line } => write!(
                f,
                "capacity {size} not divisible by associativity {assoc} × line {line}"
            ),
            CacheConfigError::SetsNotPowerOfTwo(s) => {
                write!(f, "derived set count {s} is not a power of two")
            }
        }
    }
}

impl Error for CacheConfigError {}

/// Outcome of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Whether the line was already present.
    pub hit: bool,
    /// Address of a dirty line that was evicted to make room, if any
    /// (aligned to the line base).
    pub writeback: Option<u64>,
}

/// Running statistics for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total accesses (loads + stores + fills routed through `access`).
    pub accesses: u64,
    /// Hits.
    pub hits: u64,
    /// Misses.
    pub misses: u64,
    /// Lines evicted (clean or dirty).
    pub evictions: u64,
    /// Dirty evictions (writebacks).
    pub writebacks: u64,
}

impl CacheStats {
    /// Miss ratio in `[0, 1]`; `0.0` when no accesses happened.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// LRU timestamp or FIFO fill order, depending on policy.
    stamp: u64,
}

/// One set-associative cache level.
///
/// Addresses are byte-granular; the cache derives line/set/tag with shifts
/// from the configured geometry.
///
/// # Examples
///
/// ```
/// use scnn_uarch::cache::{Cache, CacheConfig};
///
/// # fn main() -> Result<(), scnn_uarch::cache::CacheConfigError> {
/// let mut c = Cache::new(CacheConfig::new(32 * 1024, 8, 64))?;
/// assert!(!c.access(0x1000, false).hit); // cold miss
/// assert!(c.access(0x1000, false).hit);  // now resident
/// assert_eq!(c.stats().misses, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<Vec<Line>>,
    stats: CacheStats,
    clock: u64,
    line_shift: u32,
    set_mask: u64,
    rng_state: u64,
    /// PLRU tree bits, one word per set (supports associativity ≤ 64).
    plru: Vec<u64>,
}

impl Cache {
    /// Builds a cache from a validated config.
    ///
    /// # Errors
    ///
    /// Returns [`CacheConfigError`] when the geometry is invalid.
    pub fn new(config: CacheConfig) -> Result<Self, CacheConfigError> {
        config.validate()?;
        let sets = config.num_sets();
        Ok(Cache {
            config,
            sets: vec![vec![Line::default(); config.associativity]; sets],
            stats: CacheStats::default(),
            clock: 0,
            line_shift: config.line_bytes.trailing_zeros(),
            set_mask: (sets - 1) as u64,
            rng_state: 0x9E37_79B9_7F4A_7C15,
            plru: vec![0; sets],
        })
    }

    /// The cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Running statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Accesses `addr`; `write` marks the line dirty under write-back.
    /// Fills on miss, except for write misses under
    /// [`WritePolicy::WriteThroughNoAllocate`].
    pub fn access(&mut self, addr: u64, write: bool) -> AccessOutcome {
        self.clock += 1;
        self.stats.accesses += 1;
        let line_addr = addr >> self.line_shift;
        let set_idx = (line_addr & self.set_mask) as usize;
        let tag = line_addr >> self.set_mask.count_ones();
        let write_through = self.config.write_policy == WritePolicy::WriteThroughNoAllocate;

        // Hit path.
        let hit_way = self.sets[set_idx]
            .iter()
            .position(|l| l.valid && l.tag == tag);
        if let Some(way) = hit_way {
            // FIFO must not refresh recency on hit; LRU must.
            let refresh_on_hit = self.config.policy != ReplacementPolicy::Fifo;
            let clock_now = self.clock;
            let line = &mut self.sets[set_idx][way];
            if refresh_on_hit {
                line.stamp = clock_now;
            }
            // Write-through lines are never dirty: the store is forwarded
            // to the next level immediately.
            line.dirty |= write && !write_through;
            self.stats.hits += 1;
            self.touch_plru(set_idx, way);
            return AccessOutcome {
                hit: true,
                writeback: if write && write_through {
                    Some(line_addr << self.line_shift)
                } else {
                    None
                },
            };
        }

        // Miss.
        self.stats.misses += 1;

        // No-write-allocate: a write miss bypasses the cache entirely and
        // the store goes straight down (reported via `writeback`).
        if write && write_through {
            return AccessOutcome {
                hit: false,
                writeback: Some(line_addr << self.line_shift),
            };
        }

        // Choose a victim and fill.
        let victim_way = self.choose_victim(set_idx);
        let clock = self.clock;
        let line_shift = self.line_shift;
        let set_bits = self.set_mask.count_ones();
        let victim = &mut self.sets[set_idx][victim_way];
        let mut writeback = None;
        if victim.valid {
            self.stats.evictions += 1;
            if victim.dirty {
                self.stats.writebacks += 1;
                let victim_line = (victim.tag << set_bits) | set_idx as u64;
                writeback = Some(victim_line << line_shift);
            }
        }
        *victim = Line {
            tag,
            valid: true,
            dirty: write && !write_through,
            stamp: clock,
        };
        self.touch_plru(set_idx, victim_way);
        AccessOutcome {
            hit: false,
            writeback,
        }
    }

    /// True when `addr`'s line is currently resident (does not perturb
    /// statistics or replacement state — an observer, used by tests and by
    /// the noise model).
    pub fn probe_resident(&self, addr: u64) -> bool {
        let line_addr = addr >> self.line_shift;
        let set_idx = (line_addr & self.set_mask) as usize;
        let tag = line_addr >> self.set_mask.count_ones();
        self.sets[set_idx].iter().any(|l| l.valid && l.tag == tag)
    }

    /// Invalidates every line (models a flush; dirty data is dropped).
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            for line in set {
                *line = Line::default();
            }
        }
        for bits in &mut self.plru {
            *bits = 0;
        }
    }

    /// Invalidates a deterministic pseudo-random selection of roughly
    /// `fraction` of all lines — models cache pollution by a co-running
    /// process or a context switch.
    pub fn pollute(&mut self, fraction: f64, seed: u64) {
        let fraction = fraction.clamp(0.0, 1.0);
        let threshold = (fraction * u32::MAX as f64) as u32;
        let mut state = seed | 1;
        for set in &mut self.sets {
            for line in set {
                // xorshift64*
                state ^= state >> 12;
                state ^= state << 25;
                state ^= state >> 27;
                let draw = (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 32) as u32;
                if line.valid && draw < threshold {
                    *line = Line::default();
                }
            }
        }
    }

    /// Number of valid lines currently resident.
    pub fn occupancy(&self) -> usize {
        self.sets
            .iter()
            .map(|s| s.iter().filter(|l| l.valid).count())
            .sum()
    }

    /// Resets statistics without touching cache contents.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    fn choose_victim(&mut self, set_idx: usize) -> usize {
        // Invalid way first, regardless of policy.
        if let Some(way) = self.sets[set_idx].iter().position(|l| !l.valid) {
            return way;
        }
        match self.config.policy {
            ReplacementPolicy::Lru | ReplacementPolicy::Fifo => {
                // For LRU the stamp is updated on every touch; for FIFO
                // only on fill — victim selection is identical.
                self.sets[set_idx]
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, l)| l.stamp)
                    .map(|(w, _)| w)
                    .expect("associativity > 0 by validation")
            }
            ReplacementPolicy::Random => {
                self.rng_state ^= self.rng_state >> 12;
                self.rng_state ^= self.rng_state << 25;
                self.rng_state ^= self.rng_state >> 27;
                (self.rng_state.wrapping_mul(0x2545_F491_4F6C_DD1D) as usize)
                    % self.config.associativity
            }
            ReplacementPolicy::TreePlru => {
                // Walk the PLRU tree away from recently used halves.
                let ways = self.config.associativity;
                let bits = self.plru[set_idx];
                let mut node = 0usize; // root at index 0 of implicit tree
                let mut lo = 0usize;
                let mut hi = ways;
                while hi - lo > 1 {
                    let bit = (bits >> node) & 1;
                    let mid = (lo + hi) / 2;
                    if bit == 0 {
                        // 0 means left half was recently used → go right.
                        node = 2 * node + 2;
                        lo = mid;
                    } else {
                        node = 2 * node + 1;
                        hi = mid;
                    }
                }
                lo
            }
        }
    }

    fn touch_plru(&mut self, set_idx: usize, way: usize) {
        if self.config.policy != ReplacementPolicy::TreePlru {
            // FIFO must not refresh stamps on hit; LRU stamps are handled
            // at the access site.
            if self.config.policy == ReplacementPolicy::Fifo {
                // Restore fill-order semantics: nothing to do on touch.
            }
            return;
        }
        let ways = self.config.associativity;
        let mut node = 0usize;
        let mut lo = 0usize;
        let mut hi = ways;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if way < mid {
                // Used left half: set bit to 0 (left recently used).
                self.plru[set_idx] &= !(1 << node);
                node = 2 * node + 1;
                hi = mid;
            } else {
                self.plru[set_idx] |= 1 << node;
                node = 2 * node + 2;
                lo = mid;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_lru() -> Cache {
        // 4 sets × 2 ways × 64 B = 512 B.
        Cache::new(CacheConfig::new(512, 2, 64)).unwrap()
    }

    #[test]
    fn config_validation() {
        assert!(CacheConfig::new(32 * 1024, 8, 64).validate().is_ok());
        assert!(matches!(
            CacheConfig::new(0, 8, 64).validate(),
            Err(CacheConfigError::Zero)
        ));
        assert!(matches!(
            CacheConfig::new(1024, 8, 48).validate(),
            Err(CacheConfigError::LineNotPowerOfTwo(48))
        ));
        assert!(matches!(
            CacheConfig::new(1000, 8, 64).validate(),
            Err(CacheConfigError::Indivisible { .. })
        ));
        // 3 sets → not a power of two.
        assert!(matches!(
            CacheConfig::new(3 * 2 * 64, 2, 64).validate(),
            Err(CacheConfigError::SetsNotPowerOfTwo(3))
        ));
    }

    #[test]
    fn cold_then_warm() {
        let mut c = small_lru();
        assert!(!c.access(0, false).hit);
        assert!(c.access(0, false).hit);
        assert!(c.access(63, false).hit, "same line");
        assert!(!c.access(64, false).hit, "next line");
        assert_eq!(c.stats().accesses, 4);
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = small_lru();
        // Set 0 holds lines whose line-address ≡ 0 (mod 4): 0, 1024, 2048…
        c.access(0, false);
        c.access(1024, false);
        c.access(0, false); // refresh line 0 → LRU victim is 1024
        c.access(2048, false); // evicts 1024
        assert!(c.probe_resident(0));
        assert!(!c.probe_resident(1024));
        assert!(c.probe_resident(2048));
    }

    #[test]
    fn fifo_ignores_touches() {
        let mut c =
            Cache::new(CacheConfig::new(512, 2, 64).with_policy(ReplacementPolicy::Fifo)).unwrap();
        c.access(0, false);
        c.access(1024, false);
        c.access(0, false); // touch must NOT refresh under FIFO
        c.access(2048, false); // evicts the oldest fill: line 0
        assert!(!c.probe_resident(0));
        assert!(c.probe_resident(1024));
    }

    #[test]
    fn writeback_on_dirty_eviction() {
        let mut c = small_lru();
        c.access(0, true); // dirty
        c.access(1024, false);
        let out = c.access(2048, false); // evicts dirty line 0
        assert_eq!(out.writeback, Some(0));
        assert_eq!(c.stats().writebacks, 1);
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn clean_eviction_no_writeback() {
        let mut c = small_lru();
        c.access(0, false);
        c.access(1024, false);
        let out = c.access(2048, false);
        assert_eq!(out.writeback, None);
        assert_eq!(c.stats().writebacks, 0);
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn write_through_no_allocate() {
        let mut c = Cache::new(
            CacheConfig::new(512, 2, 64).with_write_policy(WritePolicy::WriteThroughNoAllocate),
        )
        .unwrap();
        // Write miss: bypasses the cache, store forwarded downstream.
        let out = c.access(0, true);
        assert!(!out.hit);
        assert_eq!(out.writeback, Some(0), "store forwarded");
        assert!(!c.probe_resident(0), "no-write-allocate must not fill");
        // Read miss still fills.
        c.access(0, false);
        assert!(c.probe_resident(0));
        // Write hit: updates in place and forwards; never dirties.
        let out = c.access(0, true);
        assert!(out.hit);
        assert_eq!(out.writeback, Some(0));
        // Evicting the line must not produce a (second) writeback.
        c.access(1024, false);
        let out = c.access(2048, false);
        assert_eq!(out.writeback, None, "write-through lines are clean");
        assert_eq!(c.stats().writebacks, 0);
    }

    #[test]
    fn hits_plus_misses_equals_accesses() {
        let mut c = small_lru();
        for i in 0..1000u64 {
            c.access((i * 37) % 4096, i % 3 == 0);
        }
        let s = *c.stats();
        assert_eq!(s.hits + s.misses, s.accesses);
    }

    #[test]
    fn occupancy_bounded_by_capacity() {
        let mut c = small_lru();
        for i in 0..100u64 {
            c.access(i * 64, false);
        }
        assert!(c.occupancy() <= 8, "4 sets × 2 ways");
        assert_eq!(c.occupancy(), 8);
    }

    #[test]
    fn flush_empties() {
        let mut c = small_lru();
        c.access(0, true);
        c.flush();
        assert_eq!(c.occupancy(), 0);
        assert!(!c.probe_resident(0));
    }

    #[test]
    fn pollute_removes_roughly_fraction() {
        let mut c = Cache::new(CacheConfig::new(64 * 1024, 8, 64)).unwrap();
        for i in 0..1024u64 {
            c.access(i * 64, false);
        }
        assert_eq!(c.occupancy(), 1024);
        c.pollute(0.5, 12345);
        let occ = c.occupancy();
        assert!(
            (300..=724).contains(&occ),
            "expected roughly half remaining, got {occ}"
        );
        // Deterministic per seed.
        let mut c2 = Cache::new(CacheConfig::new(64 * 1024, 8, 64)).unwrap();
        for i in 0..1024u64 {
            c2.access(i * 64, false);
        }
        c2.pollute(0.5, 12345);
        assert_eq!(occ, c2.occupancy());
    }

    #[test]
    fn plru_covers_all_ways() {
        let mut c =
            Cache::new(CacheConfig::new(8 * 64, 8, 64).with_policy(ReplacementPolicy::TreePlru))
                .unwrap();
        // Single set, 8 ways: fill 8 distinct lines then 8 more; every
        // access must stay functional and occupancy must stay at 8.
        for i in 0..16u64 {
            c.access(i * 64, false);
        }
        assert_eq!(c.occupancy(), 8);
        let s = *c.stats();
        assert_eq!(s.misses, 16);
    }

    #[test]
    fn random_policy_deterministic() {
        let mk = || {
            let mut c =
                Cache::new(CacheConfig::new(512, 2, 64).with_policy(ReplacementPolicy::Random))
                    .unwrap();
            for i in 0..64u64 {
                c.access((i * 7919) % 8192, false);
            }
            *c.stats()
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn working_set_larger_than_capacity_thrashes() {
        let mut c = small_lru();
        // 16 lines mapped into 8-line cache, cyclic: mostly misses.
        for round in 0..10 {
            for i in 0..16u64 {
                c.access(i * 64, false);
            }
            let _ = round;
        }
        assert!(c.stats().miss_ratio() > 0.9);
    }

    #[test]
    fn miss_ratio_empty() {
        let c = small_lru();
        assert_eq!(c.stats().miss_ratio(), 0.0);
    }
}
