//! System-noise model: what the OS and co-running processes add to a
//! counter reading.
//!
//! A real `perf stat` measurement of one classification includes timer
//! interrupts, scheduler ticks, occasional context switches and cache
//! pollution from other cores, plus small DVFS-induced cycle jitter. This
//! module samples those contributions deterministically from a seeded RNG
//! so that the reproduced distributions (paper Figs. 3–4) have realistic
//! dispersion — without it every t-test would saturate and the paper's
//! "branches mostly do NOT distinguish categories" shape would be lost.

use scnn_rng::{ChaCha8Rng, Rng, SeedableRng};

/// Configuration of the noise model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseConfig {
    /// Mean number of timer interrupts per million core cycles (Poisson).
    pub interrupts_per_mcycle: f64,
    /// Instructions retired by one interrupt handler (mean; ±50% uniform).
    pub interrupt_instructions: u64,
    /// Fraction of interrupt-handler instructions that are branches.
    pub interrupt_branch_fraction: f64,
    /// Branch misprediction ratio inside handler code.
    pub interrupt_branch_miss_ratio: f64,
    /// LLC misses added per interrupt (handler working set; mean; ±50%).
    pub interrupt_llc_misses: u64,
    /// Mean context switches per million core cycles (Poisson) — longer
    /// measurement windows see proportionally more scheduler activity.
    pub context_switches_per_mcycle: f64,
    /// LLC misses added by re-warming after one context switch (mean).
    pub context_switch_llc_misses: u64,
    /// Multiplicative cycle jitter: one reading's cycles are scaled by
    /// `1 + U(-jitter, +jitter)` (DVFS wobble, SMIs).
    pub cycle_jitter: f64,
    /// Relative jitter applied to every counter independently (measurement
    /// and multiplexing error).
    pub counter_jitter: f64,
}

impl Default for NoiseConfig {
    fn default() -> Self {
        NoiseConfig {
            interrupts_per_mcycle: 0.22,
            interrupt_instructions: 9_000,
            interrupt_branch_fraction: 0.22,
            interrupt_branch_miss_ratio: 0.04,
            interrupt_llc_misses: 60,
            context_switches_per_mcycle: 0.02,
            context_switch_llc_misses: 500,
            cycle_jitter: 0.012,
            counter_jitter: 0.004,
        }
    }
}

impl NoiseConfig {
    /// A noiseless configuration (for deterministic tests and the
    /// countermeasure ablation's "quiet system" arm).
    pub fn quiet() -> Self {
        NoiseConfig {
            interrupts_per_mcycle: 0.0,
            interrupt_instructions: 0,
            interrupt_branch_fraction: 0.0,
            interrupt_branch_miss_ratio: 0.0,
            interrupt_llc_misses: 0,
            context_switches_per_mcycle: 0.0,
            context_switch_llc_misses: 0,
            cycle_jitter: 0.0,
            counter_jitter: 0.0,
        }
    }

    /// A deliberately loud configuration (busy multi-tenant host), used by
    /// the noise-sweep experiment.
    pub fn noisy() -> Self {
        NoiseConfig {
            interrupts_per_mcycle: 2.5,
            interrupt_instructions: 14_000,
            interrupt_llc_misses: 400,
            context_switches_per_mcycle: 0.10,
            context_switch_llc_misses: 9_000,
            cycle_jitter: 0.03,
            counter_jitter: 0.01,
            ..NoiseConfig::default()
        }
    }

    /// Linear interpolation between [`NoiseConfig::quiet`] and this
    /// configuration, scaled by `level` (`0.0` = quiet, `1.0` = self).
    pub fn scaled(&self, level: f64) -> Self {
        let level = level.max(0.0);
        NoiseConfig {
            interrupts_per_mcycle: self.interrupts_per_mcycle * level,
            interrupt_instructions: (self.interrupt_instructions as f64 * level) as u64,
            interrupt_branch_fraction: self.interrupt_branch_fraction,
            interrupt_branch_miss_ratio: self.interrupt_branch_miss_ratio,
            interrupt_llc_misses: (self.interrupt_llc_misses as f64 * level) as u64,
            context_switches_per_mcycle: self.context_switches_per_mcycle * level,
            context_switch_llc_misses: (self.context_switch_llc_misses as f64 * level) as u64,
            cycle_jitter: self.cycle_jitter * level,
            counter_jitter: self.counter_jitter * level,
        }
    }
}

/// Additive/multiplicative noise drawn for one measurement window.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct NoiseSample {
    /// Extra retired instructions.
    pub instructions: u64,
    /// Extra retired branches.
    pub branches: u64,
    /// Extra branch misses.
    pub branch_misses: u64,
    /// Extra LLC references.
    pub llc_references: u64,
    /// Extra LLC misses.
    pub llc_misses: u64,
    /// Multiplier applied to the cycle count.
    pub cycle_multiplier: f64,
    /// Multiplier applied independently to each counter.
    pub counter_multiplier: f64,
    /// Number of context switches in the window.
    pub context_switches: u64,
    /// Number of interrupts in the window.
    pub interrupts: u64,
}

/// Deterministic noise generator. One [`NoiseModel`] per measurement
/// campaign; each call to [`NoiseModel::sample`] draws the noise for one
/// measurement window.
#[derive(Debug, Clone)]
pub struct NoiseModel {
    config: NoiseConfig,
    rng: ChaCha8Rng,
}

impl NoiseModel {
    /// Creates the model with an explicit seed.
    pub fn new(config: NoiseConfig, seed: u64) -> Self {
        NoiseModel {
            config,
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// The model's configuration.
    pub fn config(&self) -> &NoiseConfig {
        &self.config
    }

    /// Draws the noise for one measurement window of `cycles` core cycles.
    pub fn sample(&mut self, cycles: u64) -> NoiseSample {
        let cfg = &self.config;
        let mut out = NoiseSample {
            cycle_multiplier: 1.0,
            counter_multiplier: 1.0,
            ..NoiseSample::default()
        };

        // Timer interrupts: Poisson with mean proportional to window size.
        let mean = cfg.interrupts_per_mcycle * cycles as f64 / 1.0e6;
        let interrupts = poisson(&mut self.rng, mean);
        out.interrupts = interrupts;
        for _ in 0..interrupts {
            let insns = jittered(&mut self.rng, cfg.interrupt_instructions);
            let branches = (insns as f64 * cfg.interrupt_branch_fraction) as u64;
            out.instructions += insns;
            out.branches += branches;
            out.branch_misses += (branches as f64 * cfg.interrupt_branch_miss_ratio) as u64;
            let misses = jittered(&mut self.rng, cfg.interrupt_llc_misses);
            out.llc_misses += misses;
            out.llc_references += misses * 3;
        }

        // Context switches: bigger cache damage, rate proportional to the
        // window length.
        let cs_mean = cfg.context_switches_per_mcycle * cycles as f64 / 1.0e6;
        let switches = poisson(&mut self.rng, cs_mean);
        out.context_switches = switches;
        for _ in 0..switches {
            let misses = jittered(&mut self.rng, cfg.context_switch_llc_misses);
            out.llc_misses += misses;
            out.llc_references += misses * 2;
            out.instructions += misses * 6; // scheduler + re-warm work
            out.branches += misses;
        }

        if cfg.cycle_jitter > 0.0 {
            out.cycle_multiplier = 1.0 + self.rng.gen_range(-cfg.cycle_jitter..=cfg.cycle_jitter);
        }
        if cfg.counter_jitter > 0.0 {
            out.counter_multiplier =
                1.0 + self.rng.gen_range(-cfg.counter_jitter..=cfg.counter_jitter);
        }
        out
    }
}

/// Mean ± 50% uniform jitter, at least zero.
fn jittered(rng: &mut ChaCha8Rng, mean: u64) -> u64 {
    if mean == 0 {
        return 0;
    }
    let lo = mean / 2;
    let hi = mean + mean / 2;
    rng.gen_range(lo..=hi)
}

/// Knuth-style Poisson sampler (inversion for small mean, normal
/// approximation for large).
fn poisson(rng: &mut ChaCha8Rng, mean: f64) -> u64 {
    if mean <= 0.0 {
        return 0;
    }
    if mean > 30.0 {
        // Normal approximation with continuity correction.
        let u1: f64 = 1.0 - rng.gen::<f64>();
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        return (mean + z * mean.sqrt()).round().max(0.0) as u64;
    }
    let limit = (-mean).exp();
    let mut product: f64 = rng.gen();
    let mut count = 0u64;
    while product > limit {
        count += 1;
        product *= rng.gen::<f64>();
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_config_adds_nothing() {
        let mut m = NoiseModel::new(NoiseConfig::quiet(), 1);
        for _ in 0..10 {
            let s = m.sample(10_000_000);
            assert_eq!(s.instructions, 0);
            assert_eq!(s.llc_misses, 0);
            assert_eq!(s.cycle_multiplier, 1.0);
            assert_eq!(s.counter_multiplier, 1.0);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut m = NoiseModel::new(NoiseConfig::default(), seed);
            (0..5).map(|_| m.sample(5_000_000)).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn interrupt_rate_scales_with_window() {
        let mut m = NoiseModel::new(NoiseConfig::default(), 3);
        let short: u64 = (0..200).map(|_| m.sample(1_000_000).interrupts).sum();
        let mut m = NoiseModel::new(NoiseConfig::default(), 3);
        let long: u64 = (0..200).map(|_| m.sample(20_000_000).interrupts).sum();
        assert!(
            long > short * 8,
            "20× window should see ≈20× interrupts: {long} vs {short}"
        );
    }

    #[test]
    fn poisson_mean_roughly_correct() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let n = 3000;
        for &mean in &[0.5, 4.0, 50.0] {
            let total: u64 = (0..n).map(|_| poisson(&mut rng, mean)).sum();
            let got = total as f64 / n as f64;
            assert!(
                (got - mean).abs() < mean * 0.15 + 0.1,
                "mean {mean}: got {got}"
            );
        }
    }

    #[test]
    fn multipliers_bounded() {
        let mut m = NoiseModel::new(NoiseConfig::default(), 9);
        for _ in 0..100 {
            let s = m.sample(8_000_000);
            assert!((s.cycle_multiplier - 1.0).abs() <= NoiseConfig::default().cycle_jitter);
            assert!((s.counter_multiplier - 1.0).abs() <= NoiseConfig::default().counter_jitter);
        }
    }

    #[test]
    fn scaled_interpolates() {
        let base = NoiseConfig::default();
        let zero = base.scaled(0.0);
        assert_eq!(zero.interrupts_per_mcycle, 0.0);
        assert_eq!(zero.context_switches_per_mcycle, 0.0);
        let half = base.scaled(0.5);
        assert!((half.interrupts_per_mcycle - base.interrupts_per_mcycle * 0.5).abs() < 1e-12);
        let over = base.scaled(10.0);
        assert!(
            (over.context_switches_per_mcycle - base.context_switches_per_mcycle * 10.0).abs()
                < 1e-12
        );
    }

    #[test]
    fn noisy_louder_than_default() {
        let window = 10_000_000;
        let total = |cfg: NoiseConfig, seed| {
            let mut m = NoiseModel::new(cfg, seed);
            (0..100).map(|_| m.sample(window).llc_misses).sum::<u64>()
        };
        assert!(total(NoiseConfig::noisy(), 5) > total(NoiseConfig::default(), 5));
    }
}
