//! The [`Probe`] trait: the contract between instrumented workloads (the
//! CNN kernels in `scnn-nn`) and the microarchitectural simulator.
//!
//! Instrumented code calls the probe for every architectural event it
//! would cause on real hardware: data loads/stores, conditional branches
//! and retired ALU work. A [`NullProbe`] implementation compiles to
//! nothing, so un-instrumented ("fast path") inference pays no cost.

/// Receiver of the architectural event stream produced by an instrumented
/// workload.
///
/// Implementors translate the stream into microarchitectural state updates
/// (cache fills, predictor updates, …). All methods have empty defaults so
/// lightweight probes only override what they observe.
pub trait Probe {
    /// A data load at virtual address `addr`, issued by the load
    /// instruction at program counter `pc` (the PC lets PC-indexed
    /// structures like stride prefetchers separate access streams).
    fn load(&mut self, addr: u64, pc: u64) {
        let _ = (addr, pc);
    }

    /// A data store at virtual address `addr` issued from `pc`.
    fn store(&mut self, addr: u64, pc: u64) {
        let _ = (addr, pc);
    }

    /// A conditional branch at program location `pc` whose outcome was
    /// `taken`.
    fn branch(&mut self, pc: u64, taken: bool) {
        let _ = (pc, taken);
    }

    /// `n` retired arithmetic/logic instructions that touch neither memory
    /// nor control flow.
    fn alu(&mut self, n: u64) {
        let _ = n;
    }

    /// The instrumented workload is about to enter layer `index` of a
    /// multi-layer computation. Purely a marker — it retires nothing and
    /// changes no microarchitectural state — so probes that do not segment
    /// their observations can ignore it (the default does).
    fn layer_boundary(&mut self, index: usize) {
        let _ = index;
    }
}

/// A probe that ignores everything — the zero-cost fast path.
///
/// # Examples
///
/// ```
/// use scnn_uarch::{NullProbe, Probe};
///
/// let mut p = NullProbe;
/// p.load(0x1000, 0x400);
/// p.branch(0x2000, true);
/// // No state, no cost.
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullProbe;

impl Probe for NullProbe {}

/// A probe that simply counts events — useful in tests and as the cheapest
/// possible "instruction counter" backend.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountingProbe {
    /// Number of loads observed.
    pub loads: u64,
    /// Number of stores observed.
    pub stores: u64,
    /// Number of branches observed.
    pub branches: u64,
    /// Number of taken branches observed.
    pub taken_branches: u64,
    /// Number of ALU instructions observed.
    pub alu_ops: u64,
}

impl CountingProbe {
    /// Creates a zeroed counter probe.
    pub fn new() -> Self {
        CountingProbe::default()
    }

    /// Total retired instructions implied by the event stream.
    pub fn instructions(&self) -> u64 {
        self.loads + self.stores + self.branches + self.alu_ops
    }
}

impl Probe for CountingProbe {
    fn load(&mut self, _addr: u64, _pc: u64) {
        self.loads += 1;
    }

    fn store(&mut self, _addr: u64, _pc: u64) {
        self.stores += 1;
    }

    fn branch(&mut self, _pc: u64, taken: bool) {
        self.branches += 1;
        if taken {
            self.taken_branches += 1;
        }
    }

    fn alu(&mut self, n: u64) {
        self.alu_ops += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_probe_is_inert() {
        let mut p = NullProbe;
        p.load(1, 0x40);
        p.store(2, 0x40);
        p.branch(3, false);
        p.alu(100);
        assert_eq!(p, NullProbe);
    }

    #[test]
    fn counting_probe_counts() {
        let mut p = CountingProbe::new();
        p.load(0, 0x40);
        p.load(64, 0x40);
        p.store(0, 0x40);
        p.branch(1, true);
        p.branch(1, false);
        p.branch(1, true);
        p.alu(10);
        assert_eq!(p.loads, 2);
        assert_eq!(p.stores, 1);
        assert_eq!(p.branches, 3);
        assert_eq!(p.taken_branches, 2);
        assert_eq!(p.alu_ops, 10);
        assert_eq!(p.instructions(), 16);
    }

    #[test]
    fn trait_object_usable() {
        let mut p = CountingProbe::new();
        {
            let dynp: &mut dyn Probe = &mut p;
            dynp.load(0, 0x40);
            dynp.alu(2);
        }
        assert_eq!(p.instructions(), 3);
    }
}
