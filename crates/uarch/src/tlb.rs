//! A simple set-associative translation lookaside buffer.

/// TLB geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbConfig {
    /// Number of entries.
    pub entries: usize,
    /// Associativity (entries per set). `entries` must be divisible by it
    /// and the set count must be a power of two.
    pub associativity: usize,
    /// Page size in bytes (power of two; 4 KiB on the paper's platform).
    pub page_bytes: usize,
}

impl Default for TlbConfig {
    fn default() -> Self {
        // Sandy-Bridge-era DTLB: 64 entries, 4-way, 4 KiB pages.
        TlbConfig {
            entries: 64,
            associativity: 4,
            page_bytes: 4096,
        }
    }
}

/// TLB statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// Translations requested.
    pub accesses: u64,
    /// Translations served from the TLB.
    pub hits: u64,
    /// Page-walks (misses).
    pub misses: u64,
}

impl TlbStats {
    /// Miss ratio in `[0, 1]`.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Entry {
    vpn: u64,
    valid: bool,
    stamp: u64,
}

/// A set-associative, LRU TLB.
///
/// # Examples
///
/// ```
/// use scnn_uarch::tlb::{Tlb, TlbConfig};
///
/// let mut tlb = Tlb::new(TlbConfig::default());
/// assert!(!tlb.translate(0x1234));        // cold miss
/// assert!(tlb.translate(0x1234 + 100));   // same page
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    config: TlbConfig,
    sets: Vec<Vec<Entry>>,
    stats: TlbStats,
    clock: u64,
    page_shift: u32,
    set_mask: u64,
}

impl Tlb {
    /// Builds the TLB.
    ///
    /// # Panics
    ///
    /// Panics when the geometry is inconsistent (zero fields, entry count
    /// not divisible by associativity, non-power-of-two sets or page size).
    pub fn new(config: TlbConfig) -> Self {
        assert!(
            config.entries > 0 && config.associativity > 0 && config.page_bytes > 0,
            "TLB geometry fields must be non-zero"
        );
        assert!(
            config.entries.is_multiple_of(config.associativity),
            "entries must divide evenly into ways"
        );
        assert!(
            config.page_bytes.is_power_of_two(),
            "page size must be a power of two"
        );
        let sets = config.entries / config.associativity;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        Tlb {
            config,
            sets: vec![vec![Entry::default(); config.associativity]; sets],
            stats: TlbStats::default(),
            clock: 0,
            page_shift: config.page_bytes.trailing_zeros(),
            set_mask: (sets - 1) as u64,
        }
    }

    /// Translates `addr`, returning `true` on a TLB hit. Misses install the
    /// page with LRU replacement.
    pub fn translate(&mut self, addr: u64) -> bool {
        self.clock += 1;
        self.stats.accesses += 1;
        let vpn = addr >> self.page_shift;
        let set_idx = (vpn & self.set_mask) as usize;
        let clock = self.clock;

        if let Some(e) = self.sets[set_idx]
            .iter_mut()
            .find(|e| e.valid && e.vpn == vpn)
        {
            e.stamp = clock;
            self.stats.hits += 1;
            return true;
        }

        self.stats.misses += 1;
        let victim = self.sets[set_idx]
            .iter_mut()
            .min_by_key(|e| if e.valid { e.stamp } else { 0 })
            .expect("associativity > 0");
        *victim = Entry {
            vpn,
            valid: true,
            stamp: clock,
        };
        false
    }

    /// Invalidates every entry (context switch without PCID).
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            for e in set {
                *e = Entry::default();
            }
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> &TlbStats {
        &self.stats
    }

    /// Resets statistics, keeping translations.
    pub fn reset_stats(&mut self) {
        self.stats = TlbStats::default();
    }

    /// The configured geometry.
    pub fn config(&self) -> &TlbConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_page_hits() {
        let mut tlb = Tlb::new(TlbConfig::default());
        assert!(!tlb.translate(0));
        assert!(tlb.translate(4095));
        assert!(!tlb.translate(4096));
        assert_eq!(tlb.stats().accesses, 3);
        assert_eq!(tlb.stats().hits, 1);
    }

    #[test]
    fn capacity_eviction() {
        let cfg = TlbConfig {
            entries: 4,
            associativity: 2,
            page_bytes: 4096,
        };
        let mut tlb = Tlb::new(cfg);
        // Pages 0, 2, 4 all map to set 0 (2 sets). Third fill evicts LRU.
        tlb.translate(0);
        tlb.translate(2 * 4096);
        tlb.translate(0); // refresh page 0
        tlb.translate(4 * 4096); // evicts page 2
        assert!(tlb.translate(0), "page 0 kept");
        assert!(!tlb.translate(2 * 4096), "page 2 evicted");
    }

    #[test]
    fn flush_forgets_everything() {
        let mut tlb = Tlb::new(TlbConfig::default());
        tlb.translate(0);
        tlb.flush();
        assert!(!tlb.translate(0));
    }

    #[test]
    fn stats_consistency() {
        let mut tlb = Tlb::new(TlbConfig::default());
        for i in 0..500u64 {
            tlb.translate(i * 512);
        }
        let s = *tlb.stats();
        assert_eq!(s.hits + s.misses, s.accesses);
        assert!(s.miss_ratio() > 0.0);
    }

    #[test]
    #[should_panic]
    fn rejects_bad_geometry() {
        Tlb::new(TlbConfig {
            entries: 5,
            associativity: 2,
            page_bytes: 4096,
        });
    }
}
