//! Property-based tests for the microarchitectural simulator: structural
//! invariants that must hold for every access pattern.

use proptest::prelude::*;
use scnn_uarch::cache::{Cache, CacheConfig, ReplacementPolicy};
use scnn_uarch::{CoreConfig, CoreSim, Probe, Tlb, TlbConfig};

fn accesses() -> impl Strategy<Value = Vec<(u64, bool)>> {
    prop::collection::vec((0u64..1u64 << 20, any::<bool>()), 1..500)
}

fn any_policy() -> impl Strategy<Value = ReplacementPolicy> {
    prop_oneof![
        Just(ReplacementPolicy::Lru),
        Just(ReplacementPolicy::Fifo),
        Just(ReplacementPolicy::TreePlru),
        Just(ReplacementPolicy::Random),
    ]
}

proptest! {
    #[test]
    fn cache_bookkeeping_identities(ops in accesses(), policy in any_policy()) {
        let mut cache = Cache::new(CacheConfig::new(4 * 1024, 4, 64).with_policy(policy)).unwrap();
        for &(addr, write) in &ops {
            cache.access(addr, write);
        }
        let s = *cache.stats();
        prop_assert_eq!(s.hits + s.misses, s.accesses);
        prop_assert_eq!(s.accesses, ops.len() as u64);
        prop_assert!(s.writebacks <= s.evictions);
        prop_assert!(s.evictions <= s.misses);
        // Occupancy never exceeds capacity and equals fills minus evictions.
        let capacity = 4 * 1024 / 64;
        prop_assert!(cache.occupancy() <= capacity);
        prop_assert_eq!(cache.occupancy() as u64, s.misses - s.evictions);
    }

    #[test]
    fn just_accessed_line_is_resident(ops in accesses(), policy in any_policy()) {
        let mut cache = Cache::new(CacheConfig::new(2 * 1024, 2, 64).with_policy(policy)).unwrap();
        for &(addr, write) in &ops {
            cache.access(addr, write);
            prop_assert!(cache.probe_resident(addr), "line must be resident right after access");
        }
    }

    #[test]
    fn repeat_access_always_hits(addr in 0u64..1u64 << 30, policy in any_policy()) {
        let mut cache = Cache::new(CacheConfig::new(1024, 2, 64).with_policy(policy)).unwrap();
        cache.access(addr, false);
        let out = cache.access(addr, false);
        prop_assert!(out.hit);
    }

    #[test]
    fn working_set_within_capacity_never_misses_after_warmup(
        base in 0u64..1u64 << 20,
        policy in any_policy(),
    ) {
        // 8 distinct lines in a 16-line, fully-covering pattern.
        let mut cache = Cache::new(CacheConfig::new(4 * 64 * 4, 4, 64).with_policy(policy)).unwrap();
        let lines: Vec<u64> = (0..8).map(|i| (base & !63) + i * 64).collect();
        for &l in &lines {
            cache.access(l, false);
        }
        cache.reset_stats();
        for _ in 0..3 {
            for &l in &lines {
                cache.access(l, false);
            }
        }
        prop_assert_eq!(cache.stats().misses, 0, "policy {:?}", policy);
    }

    #[test]
    fn flush_leaves_everything_cold(ops in accesses()) {
        let mut cache = Cache::new(CacheConfig::new(4 * 1024, 4, 64)).unwrap();
        for &(addr, write) in &ops {
            cache.access(addr, write);
        }
        cache.flush();
        prop_assert_eq!(cache.occupancy(), 0);
        for &(addr, _) in ops.iter().take(16) {
            prop_assert!(!cache.probe_resident(addr));
        }
    }

    #[test]
    fn tlb_identities(addrs in prop::collection::vec(0u64..1u64 << 30, 1..300)) {
        let mut tlb = Tlb::new(TlbConfig::default());
        for &a in &addrs {
            tlb.translate(a);
        }
        let s = *tlb.stats();
        prop_assert_eq!(s.hits + s.misses, s.accesses);
        prop_assert_eq!(s.accesses, addrs.len() as u64);
        // Unique pages bound the misses from below is not guaranteed with
        // eviction, but misses can never be fewer than unique pages seen
        // minus capacity... keep the simple bound: at least one miss per
        // distinct page beyond what fits — weaker: misses ≥ 1 when any
        // address was seen.
        prop_assert!(s.misses >= 1);
    }

    #[test]
    fn core_snapshot_identities(ops in accesses(), branches in prop::collection::vec((0u64..4096, any::<bool>()), 0..200)) {
        let mut core = CoreSim::new(CoreConfig::tiny()).unwrap();
        for &(addr, write) in &ops {
            if write {
                core.store(addr, 0x40);
            } else {
                core.load(addr, 0x40);
            }
        }
        for &(pc, taken) in &branches {
            core.branch(0x400 + pc, taken);
        }
        core.alu(17);
        let s = core.snapshot();
        prop_assert_eq!(s.loads + s.stores, ops.len() as u64);
        prop_assert_eq!(s.branches, branches.len() as u64);
        prop_assert_eq!(s.instructions, s.loads + s.stores + s.branches + 17);
        prop_assert!(s.branch_misses <= s.branches);
        prop_assert!(s.llc_misses <= s.llc_references + s.prefetches);
        prop_assert!(s.l1d_misses <= s.l1d_accesses);
        prop_assert!(s.ref_cycles <= s.cycles);
        prop_assert!(s.bus_cycles < s.cycles.max(1));
        // Delta of a snapshot with itself is zero everywhere.
        let zero = s.delta(&s);
        prop_assert_eq!(zero.instructions, 0);
        prop_assert_eq!(zero.cycles, 0);
    }

    #[test]
    fn reset_counters_zeroes_snapshot(ops in accesses()) {
        let mut core = CoreSim::new(CoreConfig::tiny()).unwrap();
        for &(addr, _) in &ops {
            core.load(addr, 0x40);
        }
        core.reset_counters();
        let s = core.snapshot();
        prop_assert_eq!(s.instructions, 0);
        prop_assert_eq!(s.llc_misses, 0);
        prop_assert_eq!(s.cycles, 0);
    }
}
