//! Property-based tests for the microarchitectural simulator: structural
//! invariants that must hold for every access pattern.
//!
//! Each property runs over `CASES` deterministically generated inputs
//! from a per-test seeded [`ChaCha8Rng`]; a failing case prints its index
//! and reproduces exactly.

use scnn_rng::{ChaCha8Rng, Rng, SeedableRng};
use scnn_uarch::cache::{Cache, CacheConfig, ReplacementPolicy};
use scnn_uarch::{CoreConfig, CoreSim, Probe, Tlb, TlbConfig};

const CASES: usize = 256;

fn accesses(rng: &mut ChaCha8Rng) -> Vec<(u64, bool)> {
    let len = rng.gen_range(1usize..500);
    (0..len)
        .map(|_| (rng.gen_range(0u64..1 << 20), rng.gen::<bool>()))
        .collect()
}

fn any_policy(rng: &mut ChaCha8Rng) -> ReplacementPolicy {
    match rng.gen_range(0u32..4) {
        0 => ReplacementPolicy::Lru,
        1 => ReplacementPolicy::Fifo,
        2 => ReplacementPolicy::TreePlru,
        _ => ReplacementPolicy::Random,
    }
}

#[test]
fn cache_bookkeeping_identities() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x0a4c01);
    for case in 0..CASES {
        let ops = accesses(&mut rng);
        let policy = any_policy(&mut rng);
        let mut cache = Cache::new(CacheConfig::new(4 * 1024, 4, 64).with_policy(policy)).unwrap();
        for &(addr, write) in &ops {
            cache.access(addr, write);
        }
        let s = *cache.stats();
        assert_eq!(s.hits + s.misses, s.accesses, "case {case}");
        assert_eq!(s.accesses, ops.len() as u64, "case {case}");
        assert!(s.writebacks <= s.evictions, "case {case}");
        assert!(s.evictions <= s.misses, "case {case}");
        // Occupancy never exceeds capacity and equals fills minus evictions.
        let capacity = 4 * 1024 / 64;
        assert!(cache.occupancy() <= capacity, "case {case}");
        assert_eq!(
            cache.occupancy() as u64,
            s.misses - s.evictions,
            "case {case}"
        );
    }
}

#[test]
fn just_accessed_line_is_resident() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x0a4c02);
    for case in 0..CASES {
        let ops = accesses(&mut rng);
        let policy = any_policy(&mut rng);
        let mut cache = Cache::new(CacheConfig::new(2 * 1024, 2, 64).with_policy(policy)).unwrap();
        for &(addr, write) in &ops {
            cache.access(addr, write);
            assert!(
                cache.probe_resident(addr),
                "case {case}: line must be resident right after access"
            );
        }
    }
}

#[test]
fn repeat_access_always_hits() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x0a4c03);
    for case in 0..CASES {
        let addr = rng.gen_range(0u64..1 << 30);
        let policy = any_policy(&mut rng);
        let mut cache = Cache::new(CacheConfig::new(1024, 2, 64).with_policy(policy)).unwrap();
        cache.access(addr, false);
        let out = cache.access(addr, false);
        assert!(out.hit, "case {case}");
    }
}

#[test]
fn working_set_within_capacity_never_misses_after_warmup() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x0a4c04);
    for case in 0..CASES {
        let base = rng.gen_range(0u64..1 << 20);
        let policy = any_policy(&mut rng);
        // 8 distinct lines in a 16-line, fully-covering pattern.
        let mut cache =
            Cache::new(CacheConfig::new(4 * 64 * 4, 4, 64).with_policy(policy)).unwrap();
        let lines: Vec<u64> = (0..8).map(|i| (base & !63) + i * 64).collect();
        for &l in &lines {
            cache.access(l, false);
        }
        cache.reset_stats();
        for _ in 0..3 {
            for &l in &lines {
                cache.access(l, false);
            }
        }
        assert_eq!(cache.stats().misses, 0, "case {case}: policy {policy:?}");
    }
}

#[test]
fn flush_leaves_everything_cold() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x0a4c05);
    for case in 0..CASES {
        let ops = accesses(&mut rng);
        let mut cache = Cache::new(CacheConfig::new(4 * 1024, 4, 64)).unwrap();
        for &(addr, write) in &ops {
            cache.access(addr, write);
        }
        cache.flush();
        assert_eq!(cache.occupancy(), 0, "case {case}");
        for &(addr, _) in ops.iter().take(16) {
            assert!(!cache.probe_resident(addr), "case {case}");
        }
    }
}

#[test]
fn tlb_identities() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x0a4c06);
    for case in 0..CASES {
        let len = rng.gen_range(1usize..300);
        let addrs: Vec<u64> = (0..len).map(|_| rng.gen_range(0u64..1 << 30)).collect();
        let mut tlb = Tlb::new(TlbConfig::default());
        for &a in &addrs {
            tlb.translate(a);
        }
        let s = *tlb.stats();
        assert_eq!(s.hits + s.misses, s.accesses, "case {case}");
        assert_eq!(s.accesses, addrs.len() as u64, "case {case}");
        // The first translation of a fresh TLB can never hit.
        assert!(s.misses >= 1, "case {case}");
    }
}

#[test]
fn core_snapshot_identities() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x0a4c07);
    for case in 0..CASES {
        let ops = accesses(&mut rng);
        let blen = rng.gen_range(0usize..200);
        let branches: Vec<(u64, bool)> = (0..blen)
            .map(|_| (rng.gen_range(0u64..4096), rng.gen::<bool>()))
            .collect();
        let mut core = CoreSim::new(CoreConfig::tiny()).unwrap();
        for &(addr, write) in &ops {
            if write {
                core.store(addr, 0x40);
            } else {
                core.load(addr, 0x40);
            }
        }
        for &(pc, taken) in &branches {
            core.branch(0x400 + pc, taken);
        }
        core.alu(17);
        let s = core.snapshot();
        assert_eq!(s.loads + s.stores, ops.len() as u64, "case {case}");
        assert_eq!(s.branches, branches.len() as u64, "case {case}");
        assert_eq!(
            s.instructions,
            s.loads + s.stores + s.branches + 17,
            "case {case}"
        );
        assert!(s.branch_misses <= s.branches, "case {case}");
        assert!(
            s.llc_misses <= s.llc_references + s.prefetches,
            "case {case}"
        );
        assert!(s.l1d_misses <= s.l1d_accesses, "case {case}");
        assert!(s.ref_cycles <= s.cycles, "case {case}");
        assert!(s.bus_cycles < s.cycles.max(1), "case {case}");
        // Delta of a snapshot with itself is zero everywhere.
        let zero = s.delta(&s);
        assert_eq!(zero.instructions, 0, "case {case}");
        assert_eq!(zero.cycles, 0, "case {case}");
    }
}

#[test]
fn reset_counters_zeroes_snapshot() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x0a4c08);
    for case in 0..CASES {
        let ops = accesses(&mut rng);
        let mut core = CoreSim::new(CoreConfig::tiny()).unwrap();
        for &(addr, _) in &ops {
            core.load(addr, 0x40);
        }
        core.reset_counters();
        let s = core.snapshot();
        assert_eq!(s.instructions, 0, "case {case}");
        assert_eq!(s.llc_misses, 0, "case {case}");
        assert_eq!(s.cycles, 0, "case {case}");
    }
}
