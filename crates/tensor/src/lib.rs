//! # scnn-tensor
//!
//! Dense `f32` tensors and the numeric kernels used across the `scnn`
//! workspace, which reproduces *"How Secure are Deep Learning Algorithms
//! from Side-Channel based Reverse Engineering?"* (Alam & Mukhopadhyay,
//! DAC 2019).
//!
//! The crate deliberately stays small and dependency-light: a row-major
//! [`Tensor`] type, [`Shape`] algebra, reference linear-algebra /
//! convolution kernels in [`ops`], and deterministic weight initialisation
//! in [`init`]. The *instrumented* (side-channel-emitting) kernels live in
//! `scnn-nn` and are cross-validated against the reference kernels here.
//!
//! # Examples
//!
//! ```
//! use scnn_tensor::{ops, Tensor};
//!
//! # fn main() -> Result<(), scnn_tensor::ShapeError> {
//! let image = Tensor::full([1, 8, 8], 1.0);
//! let filters = Tensor::full([4, 1, 3, 3], 0.1);
//! let bias = Tensor::zeros([4]);
//! let fmap = ops::conv2d(&image, &filters, &bias, ops::Window2d::simple(3))?;
//! assert_eq!(fmap.dims(), &[4, 6, 6]);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod error;
pub mod gemm;
pub mod init;
pub mod ops;
mod shape;
mod tensor;
pub mod wire;

pub use error::{Result, ShapeError};
pub use init::Init;
pub use shape::Shape;
pub use tensor::Tensor;
pub use wire::{ByteReader, ByteWriter};
