//! Error types for tensor construction and shape algebra.

use std::error::Error;
use std::fmt;

/// Error raised when tensor shapes are inconsistent with an operation.
///
/// Carried by every fallible operation in this crate; the variants keep
/// enough context that a failed shape check can be reported to the user
/// without re-deriving the offending dimensions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShapeError {
    /// The number of elements implied by a shape does not match the data
    /// length supplied.
    LengthMismatch {
        /// Elements implied by the shape.
        expected: usize,
        /// Elements actually supplied.
        actual: usize,
    },
    /// Two shapes that must be identical differ.
    Mismatch {
        /// Left-hand shape, as a dimension list.
        left: Vec<usize>,
        /// Right-hand shape, as a dimension list.
        right: Vec<usize>,
    },
    /// An operation required a tensor of a particular rank.
    RankMismatch {
        /// Rank required by the operation.
        expected: usize,
        /// Rank of the tensor supplied.
        actual: usize,
    },
    /// Inner dimensions of a matrix product do not agree.
    MatmulMismatch {
        /// Columns of the left operand.
        left_cols: usize,
        /// Rows of the right operand.
        right_rows: usize,
    },
    /// A convolution/pooling window does not fit the input geometry.
    WindowMismatch {
        /// Human-readable description of the failed constraint.
        detail: String,
    },
    /// An index was out of bounds for the tensor shape.
    IndexOutOfBounds {
        /// The offending index, one entry per axis.
        index: Vec<usize>,
        /// The tensor shape, one entry per axis.
        shape: Vec<usize>,
    },
    /// A dimension of size zero was supplied where a non-empty axis is
    /// required.
    ZeroDim,
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShapeError::LengthMismatch { expected, actual } => write!(
                f,
                "shape implies {expected} elements but {actual} were supplied"
            ),
            ShapeError::Mismatch { left, right } => {
                write!(f, "shape mismatch: {left:?} vs {right:?}")
            }
            ShapeError::RankMismatch { expected, actual } => {
                write!(f, "expected rank {expected}, got rank {actual}")
            }
            ShapeError::MatmulMismatch {
                left_cols,
                right_rows,
            } => write!(
                f,
                "matmul inner dimensions disagree: {left_cols} vs {right_rows}"
            ),
            ShapeError::WindowMismatch { detail } => {
                write!(f, "window does not fit input: {detail}")
            }
            ShapeError::IndexOutOfBounds { index, shape } => {
                write!(f, "index {index:?} out of bounds for shape {shape:?}")
            }
            ShapeError::ZeroDim => write!(f, "zero-sized dimension is not allowed here"),
        }
    }
}

impl Error for ShapeError {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, ShapeError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = ShapeError::LengthMismatch {
            expected: 4,
            actual: 3,
        };
        assert!(err.to_string().contains('4'));
        assert!(err.to_string().contains('3'));
    }

    #[test]
    fn error_trait_object() {
        let err: Box<dyn Error + Send + Sync> = Box::new(ShapeError::ZeroDim);
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn equality() {
        assert_eq!(
            ShapeError::MatmulMismatch {
                left_cols: 2,
                right_rows: 3
            },
            ShapeError::MatmulMismatch {
                left_cols: 2,
                right_rows: 3
            }
        );
        assert_ne!(
            ShapeError::ZeroDim,
            ShapeError::RankMismatch {
                expected: 1,
                actual: 2
            }
        );
    }
}
