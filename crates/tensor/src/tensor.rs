//! Dense, owned, row-major `f32` tensors.

use crate::error::{Result, ShapeError};
use crate::shape::Shape;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Sub};

/// A dense, owned, row-major tensor of `f32` values.
///
/// This is the single numeric container used by the whole workspace: images,
/// weights, activations and gradients are all `Tensor`s. The representation
/// is a flat `Vec<f32>` plus a [`Shape`]; views are expressed with explicit
/// offsets rather than borrowed slices to keep ownership simple across the
/// instrumented-execution machinery in `scnn-nn`.
///
/// # Examples
///
/// ```
/// use scnn_tensor::Tensor;
///
/// # fn main() -> Result<(), scnn_tensor::ShapeError> {
/// let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2])?;
/// assert_eq!(t.get(&[1, 0])?, 3.0);
/// assert_eq!(t.sum(), 10.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a zero-filled tensor with the given shape.
    pub fn zeros<S: Into<Shape>>(shape: S) -> Self {
        let shape = shape.into();
        let len = shape.len();
        Tensor {
            shape,
            data: vec![0.0; len],
        }
    }

    /// Creates a tensor filled with `value`.
    pub fn full<S: Into<Shape>>(shape: S, value: f32) -> Self {
        let shape = shape.into();
        let len = shape.len();
        Tensor {
            shape,
            data: vec![value; len],
        }
    }

    /// Creates a tensor from existing data.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError::LengthMismatch`] when `data.len()` does not
    /// equal the element count implied by `shape`.
    pub fn from_vec<S: Into<Shape>>(data: Vec<f32>, shape: S) -> Result<Self> {
        let shape = shape.into();
        if data.len() != shape.len() {
            return Err(ShapeError::LengthMismatch {
                expected: shape.len(),
                actual: data.len(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// Creates a rank-1 tensor from a slice.
    pub fn from_slice(data: &[f32]) -> Self {
        Tensor {
            shape: Shape::from(vec![data.len()]),
            data: data.to_vec(),
        }
    }

    /// Creates a rank-0 (scalar) tensor.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            shape: Shape::scalar(),
            data: vec![value],
        }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Axis lengths as a slice (shorthand for `shape().dims()`).
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major storage.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major storage.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reads the element at a multi-axis index.
    ///
    /// # Errors
    ///
    /// Propagates index errors from [`Shape::offset`].
    pub fn get(&self, index: &[usize]) -> Result<f32> {
        Ok(self.data[self.shape.offset(index)?])
    }

    /// Writes the element at a multi-axis index.
    ///
    /// # Errors
    ///
    /// Propagates index errors from [`Shape::offset`].
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<()> {
        let off = self.shape.offset(index)?;
        self.data[off] = value;
        Ok(())
    }

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError::LengthMismatch`] when element counts differ.
    pub fn reshape<S: Into<Shape>>(&self, shape: S) -> Result<Tensor> {
        let shape = shape.into();
        if shape.len() != self.len() {
            return Err(ShapeError::LengthMismatch {
                expected: shape.len(),
                actual: self.len(),
            });
        }
        Ok(Tensor {
            shape,
            data: self.data.clone(),
        })
    }

    /// In-place variant of [`Tensor::reshape`]; avoids copying the storage.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError::LengthMismatch`] when element counts differ.
    pub fn reshape_in_place<S: Into<Shape>>(&mut self, shape: S) -> Result<()> {
        let shape = shape.into();
        if shape.len() != self.len() {
            return Err(ShapeError::LengthMismatch {
                expected: shape.len(),
                actual: self.len(),
            });
        }
        self.shape = shape;
        Ok(())
    }

    /// Applies `f` to every element, returning a new tensor.
    pub fn map<F: FnMut(f32) -> f32>(&self, mut f: F) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_in_place<F: FnMut(f32) -> f32>(&mut self, mut f: F) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Element-wise combination of two same-shaped tensors.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError::Mismatch`] when shapes differ.
    pub fn zip_with<F: FnMut(f32, f32) -> f32>(&self, other: &Tensor, mut f: F) -> Result<Tensor> {
        self.shape.expect_same(&other.shape)?;
        Ok(Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Arithmetic mean of all elements; `0.0` for empty tensors.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Largest element; `f32::NEG_INFINITY` for empty tensors.
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Smallest element; `f32::INFINITY` for empty tensors.
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Index of the largest element in flat row-major order.
    ///
    /// Ties resolve to the first occurrence; `None` for empty tensors.
    pub fn argmax(&self) -> Option<usize> {
        if self.data.is_empty() {
            return None;
        }
        let mut best = 0;
        for (i, &v) in self.data.iter().enumerate() {
            if v > self.data[best] {
                best = i;
            }
        }
        Some(best)
    }

    /// Multiplies every element by `k` in place.
    pub fn scale_in_place(&mut self, k: f32) {
        for x in &mut self.data {
            *x *= k;
        }
    }

    /// `self += alpha * other`, the BLAS `axpy` primitive.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError::Mismatch`] when shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) -> Result<()> {
        self.shape.expect_same(&other.shape)?;
        for (x, &y) in self.data.iter_mut().zip(other.data.iter()) {
            *x += alpha * y;
        }
        Ok(())
    }

    /// Fraction of elements equal to zero — the activation-sparsity metric
    /// that drives the side-channel mechanism modelled in `scnn-nn`.
    pub fn sparsity(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        let zeros = self.data.iter().filter(|&&x| x == 0.0).count();
        zeros as f64 / self.data.len() as f64
    }

    /// Squared L2 norm of all elements.
    pub fn norm_sq(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum()
    }

    /// True when every element is finite (no NaN/inf) — used as a training
    /// sanity check.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} [", self.shape)?;
        const PREVIEW: usize = 8;
        for (i, v) in self.data.iter().take(PREVIEW).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:.4}")?;
        }
        if self.data.len() > PREVIEW {
            write!(f, ", …")?;
        }
        write!(f, "]")
    }
}

impl Add<&Tensor> for &Tensor {
    type Output = Tensor;

    /// Element-wise addition.
    ///
    /// # Panics
    ///
    /// Panics when shapes differ; use [`Tensor::zip_with`] for a fallible
    /// variant.
    fn add(self, rhs: &Tensor) -> Tensor {
        self.zip_with(rhs, |a, b| a + b)
            .expect("tensor addition requires identical shapes")
    }
}

impl Sub<&Tensor> for &Tensor {
    type Output = Tensor;

    /// Element-wise subtraction.
    ///
    /// # Panics
    ///
    /// Panics when shapes differ; use [`Tensor::zip_with`] for a fallible
    /// variant.
    fn sub(self, rhs: &Tensor) -> Tensor {
        self.zip_with(rhs, |a, b| a - b)
            .expect("tensor subtraction requires identical shapes")
    }
}

impl Mul<f32> for &Tensor {
    type Output = Tensor;

    fn mul(self, k: f32) -> Tensor {
        self.map(|x| x * k)
    }
}

impl AddAssign<&Tensor> for Tensor {
    /// Element-wise accumulate.
    ///
    /// # Panics
    ///
    /// Panics when shapes differ; use [`Tensor::axpy`] for a fallible
    /// variant.
    fn add_assign(&mut self, rhs: &Tensor) {
        self.axpy(1.0, rhs)
            .expect("tensor accumulation requires identical shapes");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let z = Tensor::zeros([2, 3]);
        assert_eq!(z.len(), 6);
        assert_eq!(z.sum(), 0.0);
        let f = Tensor::full([2], 1.5);
        assert_eq!(f.as_slice(), &[1.5, 1.5]);
        let s = Tensor::scalar(3.0);
        assert_eq!(s.shape().rank(), 0);
        assert_eq!(s.get(&[]).unwrap(), 3.0);
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Tensor::from_vec(vec![1.0; 5], [2, 3]).is_err());
        assert!(Tensor::from_vec(vec![1.0; 6], [2, 3]).is_ok());
    }

    #[test]
    fn get_set_roundtrip() {
        let mut t = Tensor::zeros([3, 3]);
        t.set(&[2, 1], 7.0).unwrap();
        assert_eq!(t.get(&[2, 1]).unwrap(), 7.0);
        assert_eq!(t.as_slice()[7], 7.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec((0..6).map(|i| i as f32).collect(), [2, 3]).unwrap();
        let r = t.reshape([3, 2]).unwrap();
        assert_eq!(r.as_slice(), t.as_slice());
        assert!(t.reshape([4, 2]).is_err());
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_slice(&[1.0, -2.0, 5.0, 0.0]);
        assert_eq!(t.sum(), 4.0);
        assert_eq!(t.mean(), 1.0);
        assert_eq!(t.max(), 5.0);
        assert_eq!(t.min(), -2.0);
        assert_eq!(t.argmax(), Some(2));
        assert_eq!(t.sparsity(), 0.25);
    }

    #[test]
    fn argmax_ties_first() {
        let t = Tensor::from_slice(&[2.0, 2.0, 1.0]);
        assert_eq!(t.argmax(), Some(0));
        assert_eq!(Tensor::from_slice(&[]).argmax(), None);
    }

    #[test]
    fn arithmetic_ops() {
        let a = Tensor::from_slice(&[1.0, 2.0]);
        let b = Tensor::from_slice(&[10.0, 20.0]);
        assert_eq!((&a + &b).as_slice(), &[11.0, 22.0]);
        assert_eq!((&b - &a).as_slice(), &[9.0, 18.0]);
        assert_eq!((&a * 3.0).as_slice(), &[3.0, 6.0]);
        let mut c = a.clone();
        c += &b;
        assert_eq!(c.as_slice(), &[11.0, 22.0]);
    }

    #[test]
    fn axpy_checks_shape() {
        let mut a = Tensor::zeros([2]);
        let b = Tensor::zeros([3]);
        assert!(a.axpy(1.0, &b).is_err());
    }

    #[test]
    fn finite_check() {
        let mut t = Tensor::from_slice(&[1.0, 2.0]);
        assert!(t.all_finite());
        t.set(&[0], f32::NAN).unwrap();
        assert!(!t.all_finite());
    }

    #[test]
    fn display_truncates() {
        let t = Tensor::zeros([100]);
        let s = t.to_string();
        assert!(s.contains('…'));
        assert!(s.len() < 200);
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Tensor>();
    }
}
