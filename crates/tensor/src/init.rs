//! Deterministic random weight initialisation.

use crate::shape::Shape;
use crate::tensor::Tensor;
use scnn_rng::{ChaCha8Rng, Distribution, Rng, SeedableRng};

/// Weight-initialisation schemes.
///
/// All schemes draw from a seeded [`ChaCha8Rng`] so every experiment in the
/// workspace is reproducible bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Init {
    /// Uniform in `[-limit, limit]` with `limit = sqrt(6 / (fan_in + fan_out))`
    /// (Glorot/Xavier), appropriate for tanh/linear layers.
    XavierUniform,
    /// Gaussian with `std = sqrt(2 / fan_in)` (He/Kaiming), appropriate for
    /// ReLU layers.
    HeNormal,
    /// Uniform in `[-0.5, 0.5]` scaled by `1/sqrt(fan_in)`.
    LecunUniform,
    /// All zeros (biases).
    Zeros,
}

impl Init {
    /// Samples a tensor of the given shape.
    ///
    /// `fan_in`/`fan_out` follow the convention of the layer that owns the
    /// weights (e.g. `fan_in = c * kh * kw` for a convolution).
    pub fn sample<S: Into<Shape>>(
        self,
        shape: S,
        fan_in: usize,
        fan_out: usize,
        seed: u64,
    ) -> Tensor {
        let shape = shape.into();
        let n = shape.len();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let data: Vec<f32> = match self {
            Init::Zeros => vec![0.0; n],
            Init::XavierUniform => {
                let limit = (6.0 / (fan_in + fan_out).max(1) as f64).sqrt() as f32;
                (0..n).map(|_| rng.gen_range(-limit..=limit)).collect()
            }
            Init::HeNormal => {
                let std = (2.0 / fan_in.max(1) as f64).sqrt();
                let normal = GaussianSampler::new(0.0, std);
                (0..n).map(|_| normal.sample(&mut rng) as f32).collect()
            }
            Init::LecunUniform => {
                let limit = 0.5 / (fan_in.max(1) as f64).sqrt() as f32;
                (0..n).map(|_| rng.gen_range(-limit..=limit)).collect()
            }
        };
        Tensor::from_vec(data, shape).expect("shape length matches generated data by construction")
    }
}

/// Box–Muller Gaussian sampler (avoids depending on `rand_distr`).
#[derive(Debug, Clone, Copy)]
struct GaussianSampler {
    mean: f64,
    std: f64,
}

impl GaussianSampler {
    fn new(mean: f64, std: f64) -> Self {
        GaussianSampler { mean, std }
    }
}

impl Distribution<f64> for GaussianSampler {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller transform; u1 in (0,1] so ln is finite.
        let u1: f64 = 1.0 - rng.gen::<f64>();
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        self.mean + self.std * z
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = Init::XavierUniform.sample([4, 4], 16, 16, 42);
        let b = Init::XavierUniform.sample([4, 4], 16, 16, 42);
        let c = Init::XavierUniform.sample([4, 4], 16, 16, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn xavier_within_limit() {
        let limit = (6.0f64 / 64.0).sqrt() as f32;
        let t = Init::XavierUniform.sample([256], 32, 32, 7);
        assert!(t.as_slice().iter().all(|v| v.abs() <= limit + 1e-6));
    }

    #[test]
    fn he_normal_moments() {
        let t = Init::HeNormal.sample([10_000], 50, 50, 1);
        let mean = t.mean();
        let var =
            t.as_slice().iter().map(|v| (v - mean).powi(2)).sum::<f32>() / (t.len() as f32 - 1.0);
        let expect_var = 2.0 / 50.0;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!(
            (var - expect_var).abs() < expect_var * 0.15,
            "var {var} vs {expect_var}"
        );
    }

    #[test]
    fn zeros_are_zero() {
        let t = Init::Zeros.sample([3, 3], 9, 9, 0);
        assert_eq!(t.sum(), 0.0);
    }

    #[test]
    fn lecun_bounded() {
        let limit = 0.5 / (100.0f64).sqrt() as f32;
        let t = Init::LecunUniform.sample([1000], 100, 10, 3);
        assert!(t.as_slice().iter().all(|v| v.abs() <= limit + 1e-6));
    }
}
