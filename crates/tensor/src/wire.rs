//! Byte-cursor helpers for the workspace's hand-rolled binary formats.
//!
//! `scnn-data`'s IDX loader and `scnn-nn`'s model serializer both need a
//! small cursor over raw bytes: big-endian header fields (the IDX
//! convention, kept for the model header too) and little-endian `f32`
//! payloads. These two types cover that surface with plain `std` slice
//! reads — no external buffer crate.
//!
//! Like the formats they serve, the getters are meant to be guarded by
//! [`ByteReader::remaining`]; reading past the end panics, which in the
//! callers indicates a missing bounds check rather than bad input.

/// A reading cursor over a byte slice.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Starts a cursor at the beginning of `data`.
    pub fn new(data: &'a [u8]) -> Self {
        ByteReader { data, pos: 0 }
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn take(&mut self, n: usize) -> &'a [u8] {
        let slice = &self.data[self.pos..self.pos + n];
        self.pos += n;
        slice
    }

    /// Reads one byte.
    ///
    /// # Panics
    ///
    /// Panics when the cursor is at the end; check [`Self::remaining`].
    pub fn get_u8(&mut self) -> u8 {
        self.take(1)[0]
    }

    /// Reads a big-endian `u16`.
    ///
    /// # Panics
    ///
    /// Panics on fewer than 2 remaining bytes.
    pub fn get_u16(&mut self) -> u16 {
        u16::from_be_bytes(self.take(2).try_into().expect("2 bytes"))
    }

    /// Reads a big-endian `u32`.
    ///
    /// # Panics
    ///
    /// Panics on fewer than 4 remaining bytes.
    pub fn get_u32(&mut self) -> u32 {
        u32::from_be_bytes(self.take(4).try_into().expect("4 bytes"))
    }

    /// Reads a big-endian `u64`.
    ///
    /// # Panics
    ///
    /// Panics on fewer than 8 remaining bytes.
    pub fn get_u64(&mut self) -> u64 {
        u64::from_be_bytes(self.take(8).try_into().expect("8 bytes"))
    }

    /// Reads a little-endian `f32`.
    ///
    /// # Panics
    ///
    /// Panics on fewer than 4 remaining bytes.
    pub fn get_f32_le(&mut self) -> f32 {
        f32::from_le_bytes(self.take(4).try_into().expect("4 bytes"))
    }

    /// Reads a little-endian `f64`.
    ///
    /// # Panics
    ///
    /// Panics on fewer than 8 remaining bytes.
    pub fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.take(8).try_into().expect("8 bytes"))
    }
}

/// A growing byte buffer with the matching put-side API.
#[derive(Debug, Clone, Default)]
pub struct ByteWriter {
    data: Vec<u8>,
}

impl ByteWriter {
    /// An empty buffer.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// An empty buffer with `capacity` bytes pre-allocated.
    pub fn with_capacity(capacity: usize) -> Self {
        ByteWriter {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    /// Appends a big-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a little-endian `f32`.
    pub fn put_f32_le(&mut self, v: f32) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    pub fn put_f64_le(&mut self, v: f64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    /// The bytes written so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }

    /// Consumes the writer, returning the buffer.
    pub fn into_vec(self) -> Vec<u8> {
        self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_then_reads_back() {
        let mut w = ByteWriter::with_capacity(16);
        w.put_u32(0x0000_0803);
        w.put_u16(0xBEEF);
        w.put_u8(7);
        w.put_f32_le(-1.5);
        let bytes = w.into_vec();
        assert_eq!(&bytes[..4], &[0, 0, 8, 3], "u32 is big-endian");
        assert_eq!(&bytes[4..6], &[0xBE, 0xEF], "u16 is big-endian");

        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.remaining(), 11);
        assert_eq!(r.get_u32(), 0x0000_0803);
        assert_eq!(r.get_u16(), 0xBEEF);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_f32_le(), -1.5);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn f32_payloads_are_little_endian() {
        let mut w = ByteWriter::new();
        w.put_f32_le(1.0);
        assert_eq!(w.as_slice(), &1.0f32.to_le_bytes());
    }

    #[test]
    fn wide_fields_roundtrip() {
        let mut w = ByteWriter::new();
        w.put_u64(0xDEAD_BEEF_0BAD_F00D);
        w.put_f64_le(-2.75);
        w.put_f64_le(f64::NAN);
        let bytes = w.into_vec();
        assert_eq!(
            &bytes[..8],
            &0xDEAD_BEEF_0BAD_F00Du64.to_be_bytes(),
            "u64 follows the big-endian header convention"
        );
        assert_eq!(
            &bytes[8..16],
            &(-2.75f64).to_le_bytes(),
            "f64 payloads are little-endian"
        );

        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u64(), 0xDEAD_BEEF_0BAD_F00D);
        assert_eq!(r.get_f64_le(), -2.75);
        assert!(
            r.get_f64_le().is_nan(),
            "NaN payload bits survive the roundtrip"
        );
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic]
    fn reading_past_end_panics() {
        let mut r = ByteReader::new(&[1, 2]);
        let _ = r.get_u32();
    }

    #[test]
    fn remaining_tracks_position() {
        let data = [0u8; 10];
        let mut r = ByteReader::new(&data);
        r.get_u32();
        assert_eq!(r.remaining(), 6);
        r.get_u16();
        assert_eq!(r.remaining(), 4);
    }
}
