//! Linear-algebra and convolution-lowering primitives.
//!
//! These are the *pure* numeric kernels. The data-dependent, instrumented
//! variants that feed the microarchitectural simulator live in `scnn-nn`;
//! keeping the reference kernels here lets the test suite cross-check the
//! instrumented implementations against an independent ground truth.

use crate::error::{Result, ShapeError};
use crate::tensor::Tensor;

pub use crate::gemm::{GemmInit, GemmScratch};

/// Checks that `a` and `b` are matrices with agreeing inner dimensions and
/// returns `(m, k, n)`.
fn matmul_dims(a: &Tensor, b: &Tensor) -> Result<(usize, usize, usize)> {
    a.shape().expect_rank(2)?;
    b.shape().expect_rank(2)?;
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    if k != k2 {
        return Err(ShapeError::MatmulMismatch {
            left_cols: k,
            right_rows: k2,
        });
    }
    Ok((m, k, n))
}

/// Matrix product `C = A · B` for rank-2 tensors, computed by the
/// cache-blocked kernel in this crate. The per-element reduction order is
/// a `k`-increasing left fold, independent of blocking (see DESIGN.md §12),
/// and the inner loops are branch-free: sparsity skipping is a property of
/// the *traced* kernels in `scnn-nn`, never of the numeric GEMM.
///
/// # Errors
///
/// Returns [`ShapeError::RankMismatch`] for non-matrices and
/// [`ShapeError::MatmulMismatch`] when inner dimensions disagree.
///
/// # Examples
///
/// ```
/// use scnn_tensor::{ops, Tensor};
///
/// # fn main() -> Result<(), scnn_tensor::ShapeError> {
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2])?;
/// let b = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], [2, 2])?;
/// assert_eq!(ops::matmul(&a, &b)?, a);
/// # Ok(())
/// # }
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, _, n) = matmul_dims(a, b)?;
    let mut out = Tensor::zeros([m, n]);
    let mut scratch = GemmScratch::new();
    matmul_into(a, b, &mut out, &mut scratch)?;
    Ok(out)
}

/// Allocation-free matrix product: `out = A · B` written into a
/// caller-owned tensor, with panel packing reusing `scratch`.
///
/// # Errors
///
/// Returns shape errors when `out` is not `[m, n]` or the operands are not
/// conforming matrices.
pub fn matmul_into(
    a: &Tensor,
    b: &Tensor,
    out: &mut Tensor,
    scratch: &mut GemmScratch,
) -> Result<()> {
    gemm_into(a, b, GemmInit::Zeros, None, out, scratch)
}

/// Fused GEMM with bias initialisation and optional thresholded-ReLU
/// epilogue: `out = act(init + A · B)` (see [`GemmInit`]). Seeding the
/// output with the bias reproduces the per-sample `y ← b; y += xᵢ·Wᵢ`
/// fold bit for bit, and the activation sweep runs while `out` is still
/// cache-hot.
///
/// # Errors
///
/// Returns shape errors when operands, bias, or `out` disagree with the
/// GEMM dimensions.
pub fn gemm_into(
    a: &Tensor,
    b: &Tensor,
    init: GemmInit<'_>,
    relu_threshold: Option<f32>,
    out: &mut Tensor,
    scratch: &mut GemmScratch,
) -> Result<()> {
    let (m, k, n) = matmul_dims(a, b)?;
    if out.dims() != [m, n] {
        return Err(ShapeError::Mismatch {
            left: out.dims().to_vec(),
            right: vec![m, n],
        });
    }
    crate::gemm::gemm(
        a.as_slice(),
        b.as_slice(),
        m,
        k,
        n,
        init,
        relu_threshold,
        out.as_mut_slice(),
        scratch,
    )
}

/// `C = A · Bᵀ` without materialising the transpose: `a` is `[m, k]`,
/// `b` is `[n, k]`. Bit-identical to `matmul(a, &transpose(b)?)` — each
/// output is the same `k`-increasing dot-product fold.
///
/// # Errors
///
/// Returns shape errors for non-matrices or disagreeing `k` dimensions.
pub fn matmul_abt(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    a.shape().expect_rank(2)?;
    b.shape().expect_rank(2)?;
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (n, k2) = (b.dims()[0], b.dims()[1]);
    if k != k2 {
        return Err(ShapeError::MatmulMismatch {
            left_cols: k,
            right_rows: k2,
        });
    }
    let mut out = Tensor::zeros([m, n]);
    crate::gemm::gemm_abt(
        a.as_slice(),
        b.as_slice(),
        m,
        k,
        n,
        false,
        out.as_mut_slice(),
    )?;
    Ok(out)
}

/// `out += A · Bᵀ` — the accumulating form of [`matmul_abt`], used for
/// in-place gradient accumulation.
///
/// # Errors
///
/// Returns shape errors when operands or `out` disagree.
pub fn matmul_abt_acc(a: &Tensor, b: &Tensor, out: &mut Tensor) -> Result<()> {
    a.shape().expect_rank(2)?;
    b.shape().expect_rank(2)?;
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (n, k2) = (b.dims()[0], b.dims()[1]);
    if k != k2 {
        return Err(ShapeError::MatmulMismatch {
            left_cols: k,
            right_rows: k2,
        });
    }
    if out.len() != m * n {
        return Err(ShapeError::Mismatch {
            left: out.dims().to_vec(),
            right: vec![m, n],
        });
    }
    crate::gemm::gemm_abt(
        a.as_slice(),
        b.as_slice(),
        m,
        k,
        n,
        true,
        out.as_mut_slice(),
    )
}

/// `C = Aᵀ · B` without materialising the transpose: `a` is `[r, m]`,
/// `b` is `[r, n]`. The reduction streams `r` in increasing order, so it
/// is bit-identical both to `matmul(&transpose(a)?, b)` and to the
/// per-row outer-product sequence `C += aᵣ ⊗ bᵣ`.
///
/// # Errors
///
/// Returns shape errors for non-matrices or disagreeing `r` dimensions.
pub fn matmul_atb(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    a.shape().expect_rank(2)?;
    b.shape().expect_rank(2)?;
    let (r, m) = (a.dims()[0], a.dims()[1]);
    let (r2, n) = (b.dims()[0], b.dims()[1]);
    if r != r2 {
        return Err(ShapeError::MatmulMismatch {
            left_cols: r,
            right_rows: r2,
        });
    }
    let mut out = Tensor::zeros([m, n]);
    crate::gemm::gemm_atb(
        a.as_slice(),
        b.as_slice(),
        r,
        m,
        n,
        false,
        out.as_mut_slice(),
    )?;
    Ok(out)
}

/// `out += Aᵀ · B` — the accumulating form of [`matmul_atb`], used for
/// batch-major weight-gradient accumulation (`dW += Xᵀ·G`).
///
/// # Errors
///
/// Returns shape errors when operands or `out` disagree.
pub fn matmul_atb_acc(a: &Tensor, b: &Tensor, out: &mut Tensor) -> Result<()> {
    a.shape().expect_rank(2)?;
    b.shape().expect_rank(2)?;
    let (r, m) = (a.dims()[0], a.dims()[1]);
    let (r2, n) = (b.dims()[0], b.dims()[1]);
    if r != r2 {
        return Err(ShapeError::MatmulMismatch {
            left_cols: r,
            right_rows: r2,
        });
    }
    if out.len() != m * n {
        return Err(ShapeError::Mismatch {
            left: out.dims().to_vec(),
            right: vec![m, n],
        });
    }
    crate::gemm::gemm_atb(
        a.as_slice(),
        b.as_slice(),
        r,
        m,
        n,
        true,
        out.as_mut_slice(),
    )
}

/// Matrix–vector product `y = A · x`.
///
/// # Errors
///
/// Returns shape errors when `a` is not a matrix, `x` is not a vector, or
/// the inner dimensions disagree.
pub fn matvec(a: &Tensor, x: &Tensor) -> Result<Tensor> {
    a.shape().expect_rank(2)?;
    x.shape().expect_rank(1)?;
    let (m, k) = (a.dims()[0], a.dims()[1]);
    if x.dims()[0] != k {
        return Err(ShapeError::MatmulMismatch {
            left_cols: k,
            right_rows: x.dims()[0],
        });
    }
    let ad = a.as_slice();
    let xd = x.as_slice();
    let mut out = vec![0.0f32; m];
    for i in 0..m {
        let row = &ad[i * k..(i + 1) * k];
        out[i] = row.iter().zip(xd.iter()).map(|(&w, &v)| w * v).sum();
    }
    Tensor::from_vec(out, [m])
}

/// Transpose of a rank-2 tensor, computed tile-by-tile so the
/// column-strided writes stay within a few cache lines per tile instead
/// of sweeping the whole output column-wise.
///
/// # Errors
///
/// Returns [`ShapeError::RankMismatch`] for non-matrices.
pub fn transpose(a: &Tensor) -> Result<Tensor> {
    a.shape().expect_rank(2)?;
    let (m, n) = (a.dims()[0], a.dims()[1]);
    let mut out = vec![0.0f32; m * n];
    crate::gemm::transpose_into(a.as_slice(), m, n, &mut out)?;
    Tensor::from_vec(out, [n, m])
}

/// Outer product of two vectors: `out[i][j] = x[i] * y[j]`.
///
/// # Errors
///
/// Returns [`ShapeError::RankMismatch`] for non-vectors.
pub fn outer(x: &Tensor, y: &Tensor) -> Result<Tensor> {
    x.shape().expect_rank(1)?;
    y.shape().expect_rank(1)?;
    let (m, n) = (x.dims()[0], y.dims()[0]);
    let mut out = vec![0.0f32; m * n];
    for (i, &xv) in x.as_slice().iter().enumerate() {
        for (j, &yv) in y.as_slice().iter().enumerate() {
            out[i * n + j] = xv * yv;
        }
    }
    Tensor::from_vec(out, [m, n])
}

/// Geometry of a 2-D sliding-window operation (convolution or pooling).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Window2d {
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Vertical stride.
    pub sh: usize,
    /// Horizontal stride.
    pub sw: usize,
    /// Zero padding applied symmetrically to the height axis.
    pub ph: usize,
    /// Zero padding applied symmetrically to the width axis.
    pub pw: usize,
}

impl Window2d {
    /// Square kernel with unit stride and no padding.
    pub fn simple(k: usize) -> Self {
        Window2d {
            kh: k,
            kw: k,
            sh: 1,
            sw: 1,
            ph: 0,
            pw: 0,
        }
    }

    /// Square kernel with stride `s` and no padding (pooling-style).
    pub fn strided(k: usize, s: usize) -> Self {
        Window2d {
            kh: k,
            kw: k,
            sh: s,
            sw: s,
            ph: 0,
            pw: 0,
        }
    }

    /// Square kernel with "same" padding for unit stride.
    pub fn same(k: usize) -> Self {
        Window2d {
            kh: k,
            kw: k,
            sh: 1,
            sw: 1,
            ph: k / 2,
            pw: k / 2,
        }
    }

    /// Output spatial size for an input of `h × w`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError::WindowMismatch`] when the window does not fit
    /// or a stride is zero.
    pub fn output_size(&self, h: usize, w: usize) -> Result<(usize, usize)> {
        if self.sh == 0 || self.sw == 0 {
            return Err(ShapeError::WindowMismatch {
                detail: "stride must be non-zero".into(),
            });
        }
        if self.kh == 0 || self.kw == 0 {
            return Err(ShapeError::WindowMismatch {
                detail: "kernel must be non-empty".into(),
            });
        }
        let ih = h + 2 * self.ph;
        let iw = w + 2 * self.pw;
        if ih < self.kh || iw < self.kw {
            return Err(ShapeError::WindowMismatch {
                detail: format!(
                    "kernel {}x{} larger than padded input {}x{}",
                    self.kh, self.kw, ih, iw
                ),
            });
        }
        Ok(((ih - self.kh) / self.sh + 1, (iw - self.kw) / self.sw + 1))
    }
}

/// Geometry of one im2col lowering: `[rows, cols]` for a single sample.
fn im2col_geometry(c: usize, h: usize, w: usize, win: Window2d) -> Result<(usize, usize)> {
    let (oh, ow) = win.output_size(h, w)?;
    Ok((c * win.kh * win.kw, oh * ow))
}

/// Scatters one `[C, H, W]` sample into im2col form. The destination row
/// `r` lives at `dst[r * col_stride + col_off ..]`, which lets a batched
/// lowering place sample `s` at column offset `s * cols` of a shared
/// `[rows, N*cols]` matrix. `dst` must already be zeroed: padding
/// positions are represented by the zeros left untouched.
#[allow(clippy::too_many_arguments)] // private kernel; args mirror the geometry
fn im2col_fill(
    src: &[f32],
    c: usize,
    h: usize,
    w: usize,
    win: Window2d,
    dst: &mut [f32],
    col_off: usize,
    col_stride: usize,
) {
    let (oh, ow) = win
        .output_size(h, w)
        .expect("caller validated window geometry");
    for ch in 0..c {
        for ky in 0..win.kh {
            for kx in 0..win.kw {
                let row = (ch * win.kh + ky) * win.kw + kx;
                for oy in 0..oh {
                    let iy = (oy * win.sh + ky) as isize - win.ph as isize;
                    if iy < 0 || iy as usize >= h {
                        continue;
                    }
                    for ox in 0..ow {
                        let ix = (ox * win.sw + kx) as isize - win.pw as isize;
                        if ix < 0 || ix as usize >= w {
                            continue;
                        }
                        dst[row * col_stride + col_off + oy * ow + ox] =
                            src[(ch * h + iy as usize) * w + ix as usize];
                    }
                }
            }
        }
    }
}

/// Lowers a `[C, H, W]` image into the im2col matrix of shape
/// `[C*kh*kw, oh*ow]`, the standard convolution-as-matmul transform.
///
/// Out-of-bounds (padding) positions contribute zeros.
///
/// # Errors
///
/// Returns [`ShapeError::RankMismatch`] for non-3-D input and window-fit
/// errors from [`Window2d::output_size`].
pub fn im2col(input: &Tensor, win: Window2d) -> Result<Tensor> {
    let mut out = Vec::new();
    let (rows, cols) = im2col_into(input, win, &mut out)?;
    Tensor::from_vec(out, [rows, cols])
}

/// Allocation-free [`im2col`]: lowers into a caller-owned buffer (cleared,
/// then resized to `rows * cols`) and returns `(rows, cols)`. Steady-state
/// callers reuse the buffer's capacity across calls.
///
/// # Errors
///
/// Same as [`im2col`].
pub fn im2col_into(input: &Tensor, win: Window2d, out: &mut Vec<f32>) -> Result<(usize, usize)> {
    input.shape().expect_rank(3)?;
    let (c, h, w) = (input.dims()[0], input.dims()[1], input.dims()[2]);
    im2col_slice_into(input.as_slice(), c, h, w, win, out)
}

/// Slice-level [`im2col_into`] for callers whose sample lives inside a
/// larger buffer (one sample of a batch tensor): lowers a `[C, H, W]`
/// slice into `out` and returns `(rows, cols)`.
///
/// # Errors
///
/// Returns shape errors when `src` disagrees with the geometry.
pub fn im2col_slice_into(
    src: &[f32],
    c: usize,
    h: usize,
    w: usize,
    win: Window2d,
    out: &mut Vec<f32>,
) -> Result<(usize, usize)> {
    if src.len() != c * h * w {
        return Err(ShapeError::Mismatch {
            left: vec![src.len()],
            right: vec![c, h, w],
        });
    }
    let (rows, cols) = im2col_geometry(c, h, w, win)?;
    out.clear();
    out.resize(rows * cols, 0.0);
    im2col_fill(src, c, h, w, win, out, 0, cols);
    Ok((rows, cols))
}

/// Batched im2col: lowers a `[N, C, H, W]` batch into one shared
/// `[rows, N*cols]` matrix where sample `s` occupies the contiguous column
/// block `s*cols .. (s+1)*cols`. A single `[F, rows] × [rows, N*cols]`
/// GEMM then convolves the whole batch; because each sample's columns are
/// disjoint, per-output reduction order is identical to lowering samples
/// one at a time. Returns `(rows, cols)` — the *per-sample* column count.
///
/// # Errors
///
/// Returns [`ShapeError::RankMismatch`] for non-4-D input and window-fit
/// errors from [`Window2d::output_size`].
pub fn im2col_batch_into(
    batch: &Tensor,
    win: Window2d,
    out: &mut Vec<f32>,
) -> Result<(usize, usize)> {
    batch.shape().expect_rank(4)?;
    let (n, c, h, w) = (
        batch.dims()[0],
        batch.dims()[1],
        batch.dims()[2],
        batch.dims()[3],
    );
    let (rows, cols) = im2col_geometry(c, h, w, win)?;
    out.clear();
    out.resize(rows * n * cols, 0.0);
    let src = batch.as_slice();
    let sample_len = c * h * w;
    for s in 0..n {
        im2col_fill(
            &src[s * sample_len..(s + 1) * sample_len],
            c,
            h,
            w,
            win,
            out,
            s * cols,
            n * cols,
        );
    }
    Ok((rows, cols))
}

/// Inverse of [`im2col`]: scatters a `[C*kh*kw, oh*ow]` matrix back into a
/// `[C, H, W]` image, *accumulating* overlapping contributions. Used by the
/// convolution backward pass.
///
/// # Errors
///
/// Returns shape errors when the column matrix does not correspond to the
/// given geometry.
pub fn col2im(cols_mat: &Tensor, c: usize, h: usize, w: usize, win: Window2d) -> Result<Tensor> {
    cols_mat.shape().expect_rank(2)?;
    let (rows, cols) = im2col_geometry(c, h, w, win)?;
    if cols_mat.dims() != [rows, cols] {
        return Err(ShapeError::Mismatch {
            left: cols_mat.dims().to_vec(),
            right: vec![rows, cols],
        });
    }
    let mut out = vec![0.0f32; c * h * w];
    col2im_into(cols_mat.as_slice(), c, h, w, win, &mut out)?;
    Tensor::from_vec(out, [c, h, w])
}

/// Slice-level [`col2im`]: scatters a `[C*kh*kw, oh*ow]` column matrix
/// back into a `[C, H, W]` image slice, *accumulating* into `out`. The
/// caller owns zeroing (or pre-seeding) the destination, which lets the
/// batched conv backward scatter each sample into its slice of a shared
/// gradient tensor without intermediate allocations.
///
/// # Errors
///
/// Returns shape errors when slice lengths disagree with the geometry.
pub fn col2im_into(
    src: &[f32],
    c: usize,
    h: usize,
    w: usize,
    win: Window2d,
    out: &mut [f32],
) -> Result<()> {
    let (rows, cols) = im2col_geometry(c, h, w, win)?;
    if src.len() != rows * cols {
        return Err(ShapeError::Mismatch {
            left: vec![src.len()],
            right: vec![rows, cols],
        });
    }
    if out.len() != c * h * w {
        return Err(ShapeError::Mismatch {
            left: vec![out.len()],
            right: vec![c, h, w],
        });
    }
    let (oh, ow) = win.output_size(h, w)?;
    for ch in 0..c {
        for ky in 0..win.kh {
            for kx in 0..win.kw {
                let row = (ch * win.kh + ky) * win.kw + kx;
                for oy in 0..oh {
                    let iy = (oy * win.sh + ky) as isize - win.ph as isize;
                    if iy < 0 || iy as usize >= h {
                        continue;
                    }
                    for ox in 0..ow {
                        let ix = (ox * win.sw + kx) as isize - win.pw as isize;
                        if ix < 0 || ix as usize >= w {
                            continue;
                        }
                        out[(ch * h + iy as usize) * w + ix as usize] +=
                            src[row * cols + oy * ow + ox];
                    }
                }
            }
        }
    }
    Ok(())
}

/// Direct (nested-loop) 2-D convolution of a `[C, H, W]` input with
/// `[F, C, kh, kw]` filters plus per-filter bias, producing `[F, oh, ow]`.
///
/// This is the reference kernel; `scnn-nn` cross-validates its instrumented
/// convolution against it.
///
/// # Errors
///
/// Returns shape errors when ranks, channel counts or window geometry are
/// inconsistent.
pub fn conv2d(input: &Tensor, filters: &Tensor, bias: &Tensor, win: Window2d) -> Result<Tensor> {
    input.shape().expect_rank(3)?;
    filters.shape().expect_rank(4)?;
    bias.shape().expect_rank(1)?;
    let (c, h, w) = (input.dims()[0], input.dims()[1], input.dims()[2]);
    let (f, fc, kh, kw) = (
        filters.dims()[0],
        filters.dims()[1],
        filters.dims()[2],
        filters.dims()[3],
    );
    if fc != c {
        return Err(ShapeError::Mismatch {
            left: vec![fc],
            right: vec![c],
        });
    }
    if kh != win.kh || kw != win.kw {
        return Err(ShapeError::WindowMismatch {
            detail: format!(
                "filter kernel {kh}x{kw} disagrees with window {}x{}",
                win.kh, win.kw
            ),
        });
    }
    if bias.dims()[0] != f {
        return Err(ShapeError::Mismatch {
            left: vec![bias.dims()[0]],
            right: vec![f],
        });
    }
    let (oh, ow) = win.output_size(h, w)?;
    let src = input.as_slice();
    let wts = filters.as_slice();
    let bs = bias.as_slice();
    let mut out = vec![0.0f32; f * oh * ow];
    for fi in 0..f {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = bs[fi];
                for ch in 0..c {
                    for ky in 0..kh {
                        let iy = (oy * win.sh + ky) as isize - win.ph as isize;
                        if iy < 0 || iy as usize >= h {
                            continue;
                        }
                        for kx in 0..kw {
                            let ix = (ox * win.sw + kx) as isize - win.pw as isize;
                            if ix < 0 || ix as usize >= w {
                                continue;
                            }
                            acc += wts[((fi * c + ch) * kh + ky) * kw + kx]
                                * src[(ch * h + iy as usize) * w + ix as usize];
                        }
                    }
                }
                out[(fi * oh + oy) * ow + ox] = acc;
            }
        }
    }
    Tensor::from_vec(out, [f, oh, ow])
}

/// Numerically stable softmax of a vector.
///
/// # Errors
///
/// Returns [`ShapeError::RankMismatch`] for non-vectors and
/// [`ShapeError::ZeroDim`] for empty input.
pub fn softmax(x: &Tensor) -> Result<Tensor> {
    x.shape().expect_rank(1)?;
    if x.is_empty() {
        return Err(ShapeError::ZeroDim);
    }
    let m = x.max();
    let exps: Vec<f32> = x.as_slice().iter().map(|&v| (v - m).exp()).collect();
    let z: f32 = exps.iter().sum();
    Tensor::from_vec(exps.into_iter().map(|e| e / z).collect(), [x.len()])
}

/// Numerically stable `log(sum(exp(x)))` of a vector.
///
/// # Errors
///
/// Returns [`ShapeError::RankMismatch`] for non-vectors and
/// [`ShapeError::ZeroDim`] for empty input.
pub fn log_sum_exp(x: &Tensor) -> Result<f32> {
    x.shape().expect_rank(1)?;
    if x.is_empty() {
        return Err(ShapeError::ZeroDim);
    }
    let m = x.max();
    let s: f32 = x.as_slice().iter().map(|&v| (v - m).exp()).sum();
    Ok(m + s.ln())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t2(rows: usize, cols: usize, data: &[f32]) -> Tensor {
        Tensor::from_vec(data.to_vec(), [rows, cols]).unwrap()
    }

    #[test]
    fn matmul_identity() {
        let a = t2(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let i = t2(2, 2, &[1.0, 0.0, 0.0, 1.0]);
        assert_eq!(matmul(&a, &i).unwrap(), a);
        assert_eq!(matmul(&i, &a).unwrap(), a);
    }

    #[test]
    fn matmul_known() {
        let a = t2(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t2(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_rejects_mismatch() {
        let a = t2(2, 3, &[0.0; 6]);
        let b = t2(2, 2, &[0.0; 4]);
        assert!(matches!(
            matmul(&a, &b),
            Err(ShapeError::MatmulMismatch { .. })
        ));
    }

    fn filled(rows: usize, cols: usize, seed: usize) -> Tensor {
        Tensor::from_vec(
            (0..rows * cols)
                .map(|i| ((i * 7 + seed * 13) % 23) as f32 - 11.0)
                .collect(),
            [rows, cols],
        )
        .unwrap()
    }

    #[test]
    fn matmul_into_reuses_output_and_scratch() {
        let a = filled(5, 150, 1);
        let b = filled(150, 33, 2);
        let want = matmul(&a, &b).unwrap();
        let mut out = Tensor::full([5, 33], 7.0); // stale values must be overwritten
        let mut scratch = GemmScratch::new();
        matmul_into(&a, &b, &mut out, &mut scratch).unwrap();
        assert_eq!(out, want);
        matmul_into(&a, &b, &mut out, &mut scratch).unwrap();
        assert_eq!(out, want);
        let mut wrong = Tensor::zeros([5, 32]);
        assert!(matmul_into(&a, &b, &mut wrong, &mut scratch).is_err());
    }

    #[test]
    fn gemm_into_bias_and_relu_match_manual_fold() {
        let a = filled(3, 40, 3);
        let b = filled(40, 6, 4);
        let bias = Tensor::from_slice(&[0.5, -0.5, 1.0, 0.0, 2.0, -2.0]);
        let mut out = Tensor::zeros([3, 6]);
        let mut scratch = GemmScratch::new();
        gemm_into(
            &a,
            &b,
            GemmInit::BiasPerCol(bias.as_slice()),
            Some(0.1),
            &mut out,
            &mut scratch,
        )
        .unwrap();
        // Reference: seed with bias, stream k ascending, then threshold.
        for i in 0..3 {
            let mut row = bias.as_slice().to_vec();
            for p in 0..40 {
                let av = a.as_slice()[i * 40 + p];
                for (j, r) in row.iter_mut().enumerate() {
                    *r += av * b.as_slice()[p * 6 + j];
                }
            }
            for r in row.iter_mut() {
                *r = if *r > 0.1 { *r } else { 0.0 };
            }
            assert_eq!(&out.as_slice()[i * 6..(i + 1) * 6], &row[..], "row {i}");
        }
    }

    #[test]
    fn matmul_abt_matches_materialised_transpose_bitwise() {
        let a = filled(4, 37, 5);
        let b = filled(9, 37, 6); // [n, k]
        let want = matmul(&a, &transpose(&b).unwrap()).unwrap();
        assert_eq!(matmul_abt(&a, &b).unwrap(), want);
        let mut acc = want.clone();
        matmul_abt_acc(&a, &b, &mut acc).unwrap();
        let doubled = Tensor::from_vec(
            want.as_slice().iter().map(|&v| v + v).collect(),
            [4usize, 9],
        )
        .unwrap();
        assert_eq!(acc, doubled);
    }

    #[test]
    fn matmul_atb_matches_materialised_transpose_bitwise() {
        let a = filled(11, 4, 7); // [r, m]
        let b = filled(11, 5, 8); // [r, n]
        let want = matmul(&transpose(&a).unwrap(), &b).unwrap();
        assert_eq!(matmul_atb(&a, &b).unwrap(), want);
        let mut acc = want.clone();
        matmul_atb_acc(&a, &b, &mut acc).unwrap();
        let doubled = Tensor::from_vec(
            want.as_slice().iter().map(|&v| v + v).collect(),
            [4usize, 5],
        )
        .unwrap();
        assert_eq!(acc, doubled);
    }

    #[test]
    fn im2col_batch_matches_per_sample_lowering() {
        let win = Window2d::simple(3);
        let s0 = Tensor::from_vec(
            (0..2 * 5 * 5).map(|i| i as f32 * 0.25 - 3.0).collect(),
            [2, 5, 5],
        )
        .unwrap();
        let s1 = Tensor::from_vec(
            (0..2 * 5 * 5)
                .map(|i| ((i * 3) % 17) as f32 - 8.0)
                .collect(),
            [2, 5, 5],
        )
        .unwrap();
        let mut batch_data = s0.as_slice().to_vec();
        batch_data.extend_from_slice(s1.as_slice());
        let batch = Tensor::from_vec(batch_data, [2, 2, 5, 5]).unwrap();

        let mut lowered = Vec::new();
        let (rows, cols) = im2col_batch_into(&batch, win, &mut lowered).unwrap();
        let c0 = im2col(&s0, win).unwrap();
        let c1 = im2col(&s1, win).unwrap();
        assert_eq!((rows, cols), (c0.dims()[0], c0.dims()[1]));
        for r in 0..rows {
            assert_eq!(
                &lowered[r * 2 * cols..r * 2 * cols + cols],
                &c0.as_slice()[r * cols..(r + 1) * cols],
                "sample 0 row {r}"
            );
            assert_eq!(
                &lowered[r * 2 * cols + cols..(r + 1) * 2 * cols],
                &c1.as_slice()[r * cols..(r + 1) * cols],
                "sample 1 row {r}"
            );
        }
    }

    #[test]
    fn matvec_known() {
        let a = t2(2, 3, &[1.0, 0.0, -1.0, 2.0, 2.0, 2.0]);
        let x = Tensor::from_slice(&[3.0, 4.0, 5.0]);
        let y = matvec(&a, &x).unwrap();
        assert_eq!(y.as_slice(), &[-2.0, 24.0]);
    }

    #[test]
    fn transpose_involutive() {
        let a = t2(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let at = transpose(&a).unwrap();
        assert_eq!(at.dims(), &[3, 2]);
        assert_eq!(transpose(&at).unwrap(), a);
    }

    #[test]
    fn outer_known() {
        let x = Tensor::from_slice(&[1.0, 2.0]);
        let y = Tensor::from_slice(&[3.0, 4.0, 5.0]);
        let o = outer(&x, &y).unwrap();
        assert_eq!(o.dims(), &[2, 3]);
        assert_eq!(o.as_slice(), &[3.0, 4.0, 5.0, 6.0, 8.0, 10.0]);
    }

    #[test]
    fn window_output_sizes() {
        assert_eq!(Window2d::simple(3).output_size(5, 5).unwrap(), (3, 3));
        assert_eq!(Window2d::strided(2, 2).output_size(4, 6).unwrap(), (2, 3));
        assert_eq!(Window2d::same(3).output_size(5, 5).unwrap(), (5, 5));
        assert!(Window2d::simple(6).output_size(5, 5).is_err());
        let zero_stride = Window2d {
            sh: 0,
            ..Window2d::simple(2)
        };
        assert!(zero_stride.output_size(4, 4).is_err());
    }

    #[test]
    fn conv2d_matches_im2col_matmul() {
        // Random-ish deterministic data.
        let input = Tensor::from_vec(
            (0..2 * 5 * 5)
                .map(|i| ((i * 7) % 11) as f32 - 5.0)
                .collect(),
            [2, 5, 5],
        )
        .unwrap();
        let filters = Tensor::from_vec(
            (0..3 * 2 * 3 * 3)
                .map(|i| ((i * 5) % 7) as f32 - 3.0)
                .collect(),
            [3, 2, 3, 3],
        )
        .unwrap();
        let bias = Tensor::from_slice(&[0.5, -0.5, 1.0]);
        let win = Window2d::simple(3);

        let direct = conv2d(&input, &filters, &bias, win).unwrap();

        let cols = im2col(&input, win).unwrap();
        let wmat = filters.reshape([3, 2 * 3 * 3]).unwrap();
        let prod = matmul(&wmat, &cols).unwrap();
        let (oh, ow) = win.output_size(5, 5).unwrap();
        for fi in 0..3 {
            for p in 0..oh * ow {
                let expect = prod.as_slice()[fi * oh * ow + p] + bias.as_slice()[fi];
                let got = direct.as_slice()[fi * oh * ow + p];
                assert!(
                    (expect - got).abs() < 1e-4,
                    "f={fi} p={p}: {expect} vs {got}"
                );
            }
        }
    }

    #[test]
    fn conv2d_with_padding_same_size() {
        let input = Tensor::full([1, 4, 4], 1.0);
        let filters = Tensor::full([1, 1, 3, 3], 1.0);
        let bias = Tensor::zeros([1]);
        let out = conv2d(&input, &filters, &bias, Window2d::same(3)).unwrap();
        assert_eq!(out.dims(), &[1, 4, 4]);
        // Corner sees a 2x2 patch, centre sees full 3x3.
        assert_eq!(out.get(&[0, 0, 0]).unwrap(), 4.0);
        assert_eq!(out.get(&[0, 1, 1]).unwrap(), 9.0);
    }

    #[test]
    fn conv2d_rejects_channel_mismatch() {
        let input = Tensor::zeros([2, 4, 4]);
        let filters = Tensor::zeros([1, 3, 3, 3]);
        let bias = Tensor::zeros([1]);
        assert!(conv2d(&input, &filters, &bias, Window2d::simple(3)).is_err());
    }

    #[test]
    fn col2im_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> — the adjoint identity that the
        // conv backward pass relies on.
        let win = Window2d::strided(2, 1);
        let x = Tensor::from_vec((0..9).map(|i| i as f32).collect(), [1, 3, 3]).unwrap();
        let cols = im2col(&x, win).unwrap();
        let y = Tensor::from_vec(
            (0..cols.len()).map(|i| (i as f32) * 0.5 - 2.0).collect(),
            cols.shape().clone(),
        )
        .unwrap();
        let back = col2im(&y, 1, 3, 3, win).unwrap();
        let lhs: f32 = cols
            .as_slice()
            .iter()
            .zip(y.as_slice())
            .map(|(&a, &b)| a * b)
            .sum();
        let rhs: f32 = x
            .as_slice()
            .iter()
            .zip(back.as_slice())
            .map(|(&a, &b)| a * b)
            .sum();
        assert!((lhs - rhs).abs() < 1e-4);
    }

    #[test]
    fn softmax_sums_to_one() {
        let x = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        let s = softmax(&x).unwrap();
        assert!((s.sum() - 1.0).abs() < 1e-6);
        assert!(s.as_slice()[2] > s.as_slice()[1]);
        assert!(s.as_slice()[1] > s.as_slice()[0]);
    }

    #[test]
    fn softmax_stable_for_large_inputs() {
        let x = Tensor::from_slice(&[1000.0, 1000.0]);
        let s = softmax(&x).unwrap();
        assert!(s.all_finite());
        assert!((s.as_slice()[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn log_sum_exp_known() {
        let x = Tensor::from_slice(&[0.0, 0.0]);
        assert!((log_sum_exp(&x).unwrap() - (2.0f32).ln()).abs() < 1e-6);
        assert!(log_sum_exp(&Tensor::from_slice(&[])).is_err());
    }
}
