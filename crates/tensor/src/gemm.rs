//! Cache-blocked, register-tiled GEMM kernels over raw `f32` slices.
//!
//! These are the slice-level engines behind the [`crate::ops`] matrix
//! wrappers and the batched forward/backward paths in `scnn-nn`. Two
//! properties drive the design:
//!
//! - **Throughput.** The inner loops are branch-free (no per-element
//!   zero test — that defeats autovectorization on dense operands; any
//!   sparsity exploitation belongs to the *traced* sparse-im2col kernels
//!   in `scnn-nn`, which model it as an event stream, not as arithmetic).
//!   `B` is packed into a contiguous panel when it exceeds one block, so
//!   the hot loop streams cache-resident rows, and each `C` row segment
//!   is held in a register tile across the whole depth of a `k` block.
//! - **Determinism.** Block sizes are fixed constants, `k` blocks are
//!   visited in increasing order, and the register tile is seeded from
//!   (and stored back to) `C` — so every `C[i][j]` is a *single running
//!   left fold over `k` in increasing order*, exactly the rounding
//!   sequence of the textbook `i/k/j` triple loop. Blocking changes the
//!   memory schedule, never the reduction order, which is what keeps
//!   results bit-identical across shapes, thread counts and refactors
//!   (see DESIGN.md §12).

use crate::error::{Result, ShapeError};

/// Depth (`k` extent) of one panel block. Each `C[i][j]` accumulates its
/// `k` range in increasing block order, so this only affects scheduling.
const BLOCK_K: usize = 128;
/// Width (`j` extent) of one panel block: `BLOCK_K × BLOCK_N` floats =
/// 128 KiB, sized to sit comfortably in L2 while the register tile
/// streams it.
const BLOCK_N: usize = 256;
/// Register-tile width: one `C` row segment of this many accumulators is
/// kept in registers across an entire `k` block (two 8-lane vectors on
/// AVX2 targets).
const TILE_N: usize = 16;

/// Caller-owned scratch for panel packing, so steady-state GEMM calls
/// allocate nothing. Cloning yields an *empty* scratch: buffers are lazy
/// working state, not data, and network replicas must not pay to copy
/// them.
#[derive(Debug, Default)]
pub struct GemmScratch {
    panel: Vec<f32>,
}

impl GemmScratch {
    /// Creates an empty scratch; buffers grow on first use and are
    /// reused afterwards.
    pub fn new() -> Self {
        GemmScratch::default()
    }
}

impl Clone for GemmScratch {
    fn clone(&self) -> Self {
        GemmScratch::default()
    }
}

/// How the output matrix is initialised before accumulation.
///
/// Bias is an *initialiser*, not an epilogue: seeding `C` with the bias
/// and then accumulating reproduces, bit for bit, the per-sample kernels
/// that start from the bias vector (`y ← b; y += xᵢ·Wᵢ`).
#[derive(Debug, Clone, Copy)]
pub enum GemmInit<'a> {
    /// `C ← 0`.
    Zeros,
    /// `C[i][j] ← bias[j]` — one bias per output column (dense layers:
    /// `[N, in]·[in, out]` with a `[out]` bias).
    BiasPerCol(&'a [f32]),
    /// `C[i][j] ← bias[i]` — one bias per output row (convolution
    /// lowering: `[F, K]·[K, N·P]` with a `[F]` bias).
    BiasPerRow(&'a [f32]),
}

/// `C = init ∘ (A·B)` with an optional fused thresholded-ReLU epilogue:
/// `A` is `[m, k]`, `B` is `[k, n]`, `C` is `[m, n]`, all row-major.
///
/// When `relu_threshold` is `Some(t)` every finished output is clamped
/// to `0.0` unless it exceeds `t` (the sparsifying ReLU of `scnn-nn`),
/// applied in one sweep while `C` is still cache-hot.
///
/// # Errors
///
/// Returns [`ShapeError::Mismatch`] when a slice length disagrees with
/// the stated dimensions.
// BLAS-style surface: dims and operands stay positional like sgemm's.
#[allow(clippy::too_many_arguments)]
pub fn gemm(
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    init: GemmInit<'_>,
    relu_threshold: Option<f32>,
    c: &mut [f32],
    scratch: &mut GemmScratch,
) -> Result<()> {
    check_len(a.len(), m, k)?;
    check_len(b.len(), k, n)?;
    check_len(c.len(), m, n)?;
    match init {
        GemmInit::Zeros => c.fill(0.0),
        GemmInit::BiasPerCol(bias) => {
            check_len(bias.len(), 1, n)?;
            for row in c.chunks_exact_mut(n.max(1)) {
                row.copy_from_slice(bias);
            }
        }
        GemmInit::BiasPerRow(bias) => {
            check_len(bias.len(), m, 1)?;
            for (row, &bv) in c.chunks_exact_mut(n.max(1)).zip(bias) {
                row.fill(bv);
            }
        }
    }
    accumulate(a, b, m, k, n, c, scratch);
    if let Some(t) = relu_threshold {
        for v in c.iter_mut() {
            *v = if *v > t { *v } else { 0.0 };
        }
    }
    scnn_obs::counter_add("gemm.calls", 1);
    scnn_obs::counter_add("gemm.flops", 2 * (m * k * n) as u64);
    Ok(())
}

/// The blocked accumulation core: `C += A·B`. Per-element reduction
/// order is strictly `k`-increasing (blocks ascend, `p` ascends within a
/// block, and the register tile carries the running value through each
/// block), matching the naive streaming `i/k/j` loop bit for bit.
fn accumulate(
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    c: &mut [f32],
    scratch: &mut GemmScratch,
) {
    if m == 0 || k == 0 || n == 0 {
        return;
    }
    // One-block operands are read in place; anything larger gets its
    // current `B` block packed contiguously so panel rows are unit-stride
    // regardless of `n`.
    let pack = k > BLOCK_K || n > BLOCK_N;
    for jb in (0..n).step_by(BLOCK_N) {
        let jw = BLOCK_N.min(n - jb);
        for kb in (0..k).step_by(BLOCK_K) {
            let kw = BLOCK_K.min(k - kb);
            if pack {
                scratch.panel.clear();
                scratch.panel.resize(kw * jw, 0.0);
                for p in 0..kw {
                    let src = &b[(kb + p) * n + jb..(kb + p) * n + jb + jw];
                    scratch.panel[p * jw..(p + 1) * jw].copy_from_slice(src);
                }
            }
            let panel: &[f32] = if pack { &scratch.panel } else { b };
            // When unpacked there is exactly one block, so the panel row
            // stride is `n` with `kb == jb == 0`; packed rows are `jw`.
            let stride = if pack { jw } else { n };
            for i in 0..m {
                let arow = &a[i * k + kb..i * k + kb + kw];
                let crow = &mut c[i * n + jb..i * n + jb + jw];
                let mut j = 0;
                while j + TILE_N <= jw {
                    // The register tile: seeded from C, accumulated over
                    // the whole k block, stored back — one rounding per
                    // multiply-add, in k order, same as streaming.
                    let mut acc = [0.0f32; TILE_N];
                    acc.copy_from_slice(&crow[j..j + TILE_N]);
                    for (p, &av) in arow.iter().enumerate() {
                        let brow = &panel[p * stride + j..p * stride + j + TILE_N];
                        for (accv, &bv) in acc.iter_mut().zip(brow) {
                            *accv += av * bv;
                        }
                    }
                    crow[j..j + TILE_N].copy_from_slice(&acc);
                    j += TILE_N;
                }
                if j < jw {
                    // Ragged column tail: same k-increasing streaming.
                    for (p, &av) in arow.iter().enumerate() {
                        let brow = &panel[p * stride + j..p * stride + jw];
                        for (cv, &bv) in crow[j..jw].iter_mut().zip(brow) {
                            *cv += av * bv;
                        }
                    }
                }
            }
        }
    }
}

/// `C (+)= A·Bᵀ` without materialising the transpose: `A` is `[m, k]`,
/// `B` is `[n, k]`, `C` is `[m, n]`. Each output is a single left-fold
/// dot product of two contiguous rows (`p` increasing), the same
/// reduction order as `gemm` against an explicitly transposed `B`.
///
/// With `accumulate = false` the output is overwritten; with `true` the
/// dot product is added to the existing value (gradient accumulation).
///
/// # Errors
///
/// Returns [`ShapeError::Mismatch`] on slice/dimension disagreement.
pub fn gemm_abt(
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    accumulate: bool,
    c: &mut [f32],
) -> Result<()> {
    check_len(a.len(), m, k)?;
    check_len(b.len(), n, k)?;
    check_len(c.len(), m, n)?;
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        for j in 0..n {
            let brow = &b[j * k..(j + 1) * k];
            let dot: f32 = arow.iter().zip(brow).map(|(&x, &y)| x * y).sum();
            let out = &mut c[i * n + j];
            *out = if accumulate { *out + dot } else { dot };
        }
    }
    scnn_obs::counter_add("gemm.calls", 1);
    scnn_obs::counter_add("gemm.flops", 2 * (m * k * n) as u64);
    Ok(())
}

/// `C (+)= Aᵀ·B` without materialising the transpose: `A` is `[r, m]`,
/// `B` is `[r, n]`, `C` is `[m, n]`. The reduction streams `r` in
/// increasing order (outer loop), so accumulating a batch reproduces the
/// per-sample `C += aᵣ ⊗ bᵣ` outer-product sequence bit for bit.
///
/// # Errors
///
/// Returns [`ShapeError::Mismatch`] on slice/dimension disagreement.
pub fn gemm_atb(
    a: &[f32],
    b: &[f32],
    r: usize,
    m: usize,
    n: usize,
    accumulate: bool,
    c: &mut [f32],
) -> Result<()> {
    check_len(a.len(), r, m)?;
    check_len(b.len(), r, n)?;
    check_len(c.len(), m, n)?;
    if !accumulate {
        c.fill(0.0);
    }
    for row in 0..r {
        let arow = &a[row * m..(row + 1) * m];
        let brow = &b[row * n..(row + 1) * n];
        for (i, &av) in arow.iter().enumerate() {
            let crow = &mut c[i * n..(i + 1) * n];
            for (cv, &bv) in crow.iter_mut().zip(brow) {
                *cv += av * bv;
            }
        }
    }
    scnn_obs::counter_add("gemm.calls", 1);
    scnn_obs::counter_add("gemm.flops", 2 * (r * m * n) as u64);
    Ok(())
}

/// Square tile edge for the blocked transpose: a 32×32 `f32` tile is
/// 4 KiB on each side, so both the row-major reads and the column-major
/// writes stay within a handful of cache lines per tile.
const TRANSPOSE_TILE: usize = 32;

/// Blocked out-of-place transpose: `dst[j][i] = src[i][j]` for an
/// `[m, n]` source. A pure permutation — no arithmetic, so there is
/// nothing to keep deterministic beyond the copy itself.
///
/// # Errors
///
/// Returns [`ShapeError::Mismatch`] on slice/dimension disagreement.
pub fn transpose_into(src: &[f32], m: usize, n: usize, dst: &mut [f32]) -> Result<()> {
    check_len(src.len(), m, n)?;
    check_len(dst.len(), n, m)?;
    for ib in (0..m).step_by(TRANSPOSE_TILE) {
        let ih = TRANSPOSE_TILE.min(m - ib);
        for jb in (0..n).step_by(TRANSPOSE_TILE) {
            let jw = TRANSPOSE_TILE.min(n - jb);
            for i in ib..ib + ih {
                for j in jb..jb + jw {
                    dst[j * m + i] = src[i * n + j];
                }
            }
        }
    }
    Ok(())
}

fn check_len(len: usize, rows: usize, cols: usize) -> Result<()> {
    if len != rows * cols {
        return Err(ShapeError::Mismatch {
            left: vec![len],
            right: vec![rows, cols],
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random fill with a mix of signs and exact
    /// zeros (zeros exercise the removed skip branch's edge cases).
    fn fill(len: usize, seed: u64) -> Vec<f32> {
        (0..len)
            .map(|i| {
                let x = (i as u64 + 1)
                    .wrapping_mul(seed | 1)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15);
                let v = ((x >> 40) % 2000) as f32 / 100.0 - 10.0;
                if x.is_multiple_of(7) {
                    0.0
                } else {
                    v
                }
            })
            .collect()
    }

    /// The reference reduction order: naive streaming `i/k/j`, no
    /// blocking, no branches. The blocked kernel must match bit for bit.
    fn naive(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut c = vec![0.0f32; m * n];
        for i in 0..m {
            for p in 0..k {
                let av = a[i * k + p];
                for j in 0..n {
                    c[i * n + j] += av * b[p * n + j];
                }
            }
        }
        c
    }

    #[test]
    fn blocked_matches_naive_bitwise_across_block_boundaries() {
        // Shapes straddling every blocking edge: tiny, exactly one
        // block, one-past, ragged tails in every dimension.
        let shapes = [
            (1, 1, 1),
            (3, 5, 7),
            (4, BLOCK_K, TILE_N),
            (2, BLOCK_K + 1, TILE_N + 1),
            (5, 2 * BLOCK_K + 3, BLOCK_N + 17),
            (7, 130, 300),
        ];
        for &(m, k, n) in &shapes {
            let a = fill(m * k, 11);
            let b = fill(k * n, 23);
            let want = naive(&a, &b, m, k, n);
            let mut got = vec![1.0f32; m * n]; // poisoned: init must clear
            let mut scratch = GemmScratch::new();
            gemm(
                &a,
                &b,
                m,
                k,
                n,
                GemmInit::Zeros,
                None,
                &mut got,
                &mut scratch,
            )
            .unwrap();
            assert_eq!(got, want, "({m},{k},{n})");
        }
    }

    #[test]
    fn bias_init_matches_seeded_streaming() {
        let (m, k, n) = (4, 150, 20);
        let a = fill(m * k, 3);
        let b = fill(k * n, 5);
        let col_bias = fill(n, 7);
        let row_bias = fill(m, 9);
        let mut scratch = GemmScratch::new();

        let mut want = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                want[i * n + j] = col_bias[j];
            }
        }
        for (i, row) in naive(&a, &b, m, k, n).chunks(n).enumerate() {
            // Seed-then-stream: same fold, bias first.
            let mut seeded = col_bias.clone();
            for p in 0..k {
                let av = a[i * k + p];
                for j in 0..n {
                    seeded[j] += av * b[p * n + j];
                }
            }
            want[i * n..(i + 1) * n].copy_from_slice(&seeded);
            let _ = row;
        }
        let mut got = vec![0.0f32; m * n];
        gemm(
            &a,
            &b,
            m,
            k,
            n,
            GemmInit::BiasPerCol(&col_bias),
            None,
            &mut got,
            &mut scratch,
        )
        .unwrap();
        assert_eq!(got, want);

        let mut got_row = vec![0.0f32; m * n];
        gemm(
            &a,
            &b,
            m,
            k,
            n,
            GemmInit::BiasPerRow(&row_bias),
            None,
            &mut got_row,
            &mut scratch,
        )
        .unwrap();
        for i in 0..m {
            let mut seeded = vec![row_bias[i]; n];
            for p in 0..k {
                let av = a[i * k + p];
                for j in 0..n {
                    seeded[j] += av * b[p * n + j];
                }
            }
            assert_eq!(&got_row[i * n..(i + 1) * n], &seeded[..], "row {i}");
        }
    }

    #[test]
    fn relu_epilogue_thresholds() {
        let a = [1.0f32, -1.0];
        let b = [2.0f32, -3.0, 0.05, 0.0];
        let mut c = [0.0f32; 2];
        let mut scratch = GemmScratch::new();
        // [1, 2]·[2, 2]: y = [2 - 0.05, -3 - 0] = [1.95, -3.0]
        gemm(
            &a,
            &b,
            1,
            2,
            2,
            GemmInit::Zeros,
            Some(0.1),
            &mut c,
            &mut scratch,
        )
        .unwrap();
        assert_eq!(c, [1.95, 0.0]);
    }

    #[test]
    fn abt_matches_explicit_transpose() {
        let (m, k, n) = (6, 37, 5);
        let a = fill(m * k, 13);
        let b = fill(n * k, 17); // [n, k]
        let mut bt = vec![0.0f32; k * n];
        transpose_into(&b, n, k, &mut bt).unwrap();
        let want = naive(&a, &bt, m, k, n);
        let mut got = vec![0.0f32; m * n];
        gemm_abt(&a, &b, m, k, n, false, &mut got).unwrap();
        assert_eq!(got, want);
        // Accumulating form adds on top.
        gemm_abt(&a, &b, m, k, n, true, &mut got).unwrap();
        let doubled: Vec<f32> = want.iter().map(|&v| v + v).collect();
        assert_eq!(got, doubled);
    }

    #[test]
    fn atb_matches_explicit_transpose_and_outer_product_order() {
        let (r, m, n) = (9, 4, 6);
        let a = fill(r * m, 19); // [r, m]
        let b = fill(r * n, 29); // [r, n]
        let mut at = vec![0.0f32; m * r];
        transpose_into(&a, r, m, &mut at).unwrap();
        let want = naive(&at, &b, m, r, n);
        let mut got = vec![0.0f32; m * n];
        gemm_atb(&a, &b, r, m, n, false, &mut got).unwrap();
        assert_eq!(got, want);

        // Sequence of per-row outer products — the order gradient
        // accumulation uses — must also match bit for bit.
        let mut seq = vec![0.0f32; m * n];
        for row in 0..r {
            for i in 0..m {
                for j in 0..n {
                    seq[i * n + j] += a[row * m + i] * b[row * n + j];
                }
            }
        }
        assert_eq!(got, seq);
    }

    #[test]
    fn transpose_blocked_is_exact_permutation() {
        for &(m, n) in &[(1, 1), (3, 70), (70, 3), (33, 65)] {
            let src = fill(m * n, 31);
            let mut dst = vec![0.0f32; n * m];
            transpose_into(&src, m, n, &mut dst).unwrap();
            for i in 0..m {
                for j in 0..n {
                    assert_eq!(dst[j * m + i], src[i * n + j]);
                }
            }
        }
    }

    #[test]
    fn scratch_clones_empty() {
        let mut s = GemmScratch::new();
        let a = fill(4, 1);
        let b = fill(4, 2);
        let mut c = vec![0.0f32; 4];
        gemm(&a, &b, 2, 2, 2, GemmInit::Zeros, None, &mut c, &mut s).unwrap();
        assert!(s.clone().panel.is_empty());
    }

    #[test]
    fn dimension_mismatches_are_rejected() {
        let mut s = GemmScratch::new();
        let mut c = vec![0.0f32; 4];
        assert!(gemm(
            &[0.0; 3],
            &[0.0; 4],
            2,
            2,
            2,
            GemmInit::Zeros,
            None,
            &mut c,
            &mut s
        )
        .is_err());
        assert!(gemm(
            &[0.0; 4],
            &[0.0; 3],
            2,
            2,
            2,
            GemmInit::Zeros,
            None,
            &mut c,
            &mut s
        )
        .is_err());
        assert!(gemm_abt(&[0.0; 4], &[0.0; 3], 2, 2, 2, false, &mut c).is_err());
        assert!(gemm_atb(&[0.0; 4], &[0.0; 3], 2, 2, 2, false, &mut c).is_err());
        assert!(transpose_into(&[0.0; 4], 2, 3, &mut c).is_err());
    }
}
