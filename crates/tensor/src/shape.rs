//! Shape and stride algebra for dense row-major tensors.

use crate::error::{Result, ShapeError};
use std::fmt;

/// The shape of a dense tensor: an ordered list of axis lengths.
///
/// Shapes are row-major ("C order"): the last axis is contiguous in memory.
///
/// # Examples
///
/// ```
/// use scnn_tensor::Shape;
///
/// let s = Shape::new(vec![2, 3, 4]);
/// assert_eq!(s.len(), 24);
/// assert_eq!(s.rank(), 3);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from axis lengths.
    ///
    /// A rank-0 shape (scalar) is allowed and has `len() == 1`.
    pub fn new(dims: Vec<usize>) -> Self {
        Shape { dims }
    }

    /// Creates a rank-0 (scalar) shape.
    pub fn scalar() -> Self {
        Shape { dims: Vec::new() }
    }

    /// Axis lengths as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of axes.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements (product of axis lengths; 1 for scalars).
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// True when the shape contains zero elements (some axis has length 0).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Length of axis `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= rank()`.
    pub fn dim(&self, axis: usize) -> usize {
        self.dims[axis]
    }

    /// Row-major strides, in elements, one per axis.
    ///
    /// An axis of length 1 still receives its natural stride. Rank-0 shapes
    /// return an empty vector.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Converts a multi-axis index into a flat row-major offset.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError::RankMismatch`] when `index.len() != rank()` and
    /// [`ShapeError::IndexOutOfBounds`] when any coordinate exceeds its axis.
    pub fn offset(&self, index: &[usize]) -> Result<usize> {
        if index.len() != self.dims.len() {
            return Err(ShapeError::RankMismatch {
                expected: self.dims.len(),
                actual: index.len(),
            });
        }
        let mut offset = 0;
        let strides = self.strides();
        for (axis, (&i, &d)) in index.iter().zip(self.dims.iter()).enumerate() {
            if i >= d {
                return Err(ShapeError::IndexOutOfBounds {
                    index: index.to_vec(),
                    shape: self.dims.clone(),
                });
            }
            offset += i * strides[axis];
        }
        Ok(offset)
    }

    /// Inverse of [`Shape::offset`]: converts a flat offset into coordinates.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError::IndexOutOfBounds`] when `offset >= len()`.
    pub fn coords(&self, offset: usize) -> Result<Vec<usize>> {
        if offset >= self.len().max(1) || self.is_empty() && self.rank() > 0 {
            return Err(ShapeError::IndexOutOfBounds {
                index: vec![offset],
                shape: self.dims.clone(),
            });
        }
        let mut rem = offset;
        let strides = self.strides();
        let mut coords = vec![0; self.rank()];
        for axis in 0..self.rank() {
            coords[axis] = rem / strides[axis];
            rem %= strides[axis];
        }
        Ok(coords)
    }

    /// Checks that two shapes are identical.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError::Mismatch`] when they differ.
    pub fn expect_same(&self, other: &Shape) -> Result<()> {
        if self != other {
            return Err(ShapeError::Mismatch {
                left: self.dims.clone(),
                right: other.dims.clone(),
            });
        }
        Ok(())
    }

    /// Checks that the shape has exactly `rank` axes.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError::RankMismatch`] otherwise.
    pub fn expect_rank(&self, rank: usize) -> Result<()> {
        if self.rank() != rank {
            return Err(ShapeError::RankMismatch {
                expected: rank,
                actual: self.rank(),
            });
        }
        Ok(())
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape::new(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims.to_vec())
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape::new(dims.to_vec())
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        assert_eq!(Shape::from([2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::from([5]).strides(), vec![1]);
        assert!(Shape::scalar().strides().is_empty());
    }

    #[test]
    fn offset_roundtrip() {
        let s = Shape::from([3, 4, 5]);
        for flat in 0..s.len() {
            let coords = s.coords(flat).unwrap();
            assert_eq!(s.offset(&coords).unwrap(), flat);
        }
    }

    #[test]
    fn offset_rejects_bad_rank() {
        let s = Shape::from([2, 2]);
        assert!(matches!(
            s.offset(&[1]),
            Err(ShapeError::RankMismatch { .. })
        ));
    }

    #[test]
    fn offset_rejects_out_of_bounds() {
        let s = Shape::from([2, 2]);
        assert!(matches!(
            s.offset(&[0, 2]),
            Err(ShapeError::IndexOutOfBounds { .. })
        ));
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::scalar();
        assert_eq!(s.rank(), 0);
        assert_eq!(s.len(), 1);
        assert_eq!(s.offset(&[]).unwrap(), 0);
    }

    #[test]
    fn zero_length_axis_is_empty() {
        let s = Shape::from([3, 0, 2]);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn display() {
        assert_eq!(Shape::from([2, 3]).to_string(), "(2, 3)");
        assert_eq!(Shape::scalar().to_string(), "()");
    }

    #[test]
    fn expect_helpers() {
        let a = Shape::from([2, 3]);
        assert!(a.expect_same(&Shape::from([2, 3])).is_ok());
        assert!(a.expect_same(&Shape::from([3, 2])).is_err());
        assert!(a.expect_rank(2).is_ok());
        assert!(a.expect_rank(3).is_err());
    }
}
