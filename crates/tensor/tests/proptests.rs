//! Property-based tests for shape algebra and the numeric kernels.
//!
//! Each property runs over `CASES` deterministically generated inputs
//! drawn from a per-test seeded [`ChaCha8Rng`] — reproducible on every
//! machine with no external test framework. A failing case prints its
//! case index; rerunning is exact.

use scnn_rng::{ChaCha8Rng, Rng, SeedableRng};
use scnn_tensor::{ops, Shape, Tensor};

const CASES: usize = 256;

fn small_dims(rng: &mut ChaCha8Rng) -> Vec<usize> {
    let rank = rng.gen_range(1usize..4);
    (0..rank).map(|_| rng.gen_range(1usize..6)).collect()
}

fn tensor_with_shape(rng: &mut ChaCha8Rng, dims: Vec<usize>) -> Tensor {
    let len: usize = dims.iter().product();
    let data: Vec<f32> = (0..len).map(|_| rng.gen_range(-10.0f32..10.0)).collect();
    Tensor::from_vec(data, dims).expect("length matches")
}

#[test]
fn offset_coords_roundtrip() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x7e5001);
    for case in 0..CASES {
        let shape = Shape::new(small_dims(&mut rng));
        let seed = rng.gen_range(0usize..10_000);
        if !shape.is_empty() {
            let flat = seed % shape.len();
            let coords = shape.coords(flat).unwrap();
            assert_eq!(shape.offset(&coords).unwrap(), flat, "case {case}");
        }
    }
}

#[test]
fn strides_decrease_row_major() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x7e5002);
    for case in 0..CASES {
        let shape = Shape::new(small_dims(&mut rng));
        let strides = shape.strides();
        for w in strides.windows(2) {
            assert!(
                w[0] >= w[1],
                "case {case}: row-major strides non-increasing"
            );
        }
        if let Some(&last) = strides.last() {
            assert_eq!(last, 1, "case {case}");
        }
    }
}

#[test]
fn reshape_preserves_contents() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x7e5003);
    for case in 0..CASES {
        let dims = small_dims(&mut rng);
        let t = tensor_with_shape(&mut rng, dims);
        let flat = t.reshape([t.len()]).unwrap();
        assert_eq!(flat.as_slice(), t.as_slice(), "case {case}");
        assert_eq!(flat.sum(), t.sum(), "case {case}");
    }
}

#[test]
fn transpose_is_involutive() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x7e5004);
    for case in 0..CASES {
        let rows = rng.gen_range(1usize..8);
        let cols = rng.gen_range(1usize..8);
        let seed = rng.gen_range(0u64..1000);
        let data: Vec<f32> = (0..rows * cols)
            .map(|i| ((i as u64).wrapping_mul(seed + 1) % 97) as f32 - 48.0)
            .collect();
        let a = Tensor::from_vec(data, [rows, cols]).unwrap();
        let att = ops::transpose(&ops::transpose(&a).unwrap()).unwrap();
        assert_eq!(att, a, "case {case}");
    }
}

#[test]
fn matmul_distributes_over_identity() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x7e5005);
    for case in 0..CASES {
        let n = rng.gen_range(1usize..6);
        let seed = rng.gen_range(0u64..1000);
        let data: Vec<f32> = (0..n * n)
            .map(|i| ((i as u64).wrapping_mul(seed * 3 + 7) % 13) as f32 - 6.0)
            .collect();
        let a = Tensor::from_vec(data, [n, n]).unwrap();
        let mut eye = Tensor::zeros([n, n]);
        for i in 0..n {
            eye.set(&[i, i], 1.0).unwrap();
        }
        assert_eq!(ops::matmul(&a, &eye).unwrap(), a.clone(), "case {case}");
        assert_eq!(ops::matmul(&eye, &a).unwrap(), a, "case {case}");
    }
}

#[test]
fn matvec_is_linear() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x7e5006);
    for case in 0..CASES {
        let m = rng.gen_range(1usize..6);
        let k = rng.gen_range(1usize..6);
        let s = rng.gen_range(1u64..50);
        let a = Tensor::from_vec(
            (0..m * k)
                .map(|i| ((i as u64 * s) % 11) as f32 - 5.0)
                .collect(),
            [m, k],
        )
        .unwrap();
        let x = Tensor::from_vec(
            (0..k)
                .map(|i| ((i as u64 * s * 5) % 7) as f32 - 3.0)
                .collect(),
            [k],
        )
        .unwrap();
        let y1 = ops::matvec(&a, &x).unwrap();
        let x2 = &x * 2.0;
        let y2 = ops::matvec(&a, &x2).unwrap();
        for (a, b) in y1.as_slice().iter().zip(y2.as_slice()) {
            assert!(
                (2.0 * a - b).abs() < 1e-3,
                "case {case}: A(2x) = 2(Ax): {a} vs {b}"
            );
        }
    }
}

#[test]
fn softmax_is_a_distribution() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x7e5007);
    for case in 0..CASES {
        let len = rng.gen_range(1usize..20);
        let data: Vec<f32> = (0..len).map(|_| rng.gen_range(-30.0f32..30.0)).collect();
        let x = Tensor::from_slice(&data);
        let s = ops::softmax(&x).unwrap();
        assert!((s.sum() - 1.0).abs() < 1e-4, "case {case}");
        assert!(
            s.as_slice().iter().all(|&p| (0.0..=1.0).contains(&p)),
            "case {case}"
        );
        // Order preserved.
        assert_eq!(x.argmax(), s.argmax(), "case {case}");
    }
}

#[test]
fn conv_direct_equals_im2col_gemm() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x7e5008);
    for case in 0..CASES {
        let c = rng.gen_range(1usize..3);
        let f = rng.gen_range(1usize..3);
        let size = rng.gen_range(4usize..7);
        let seed = rng.gen_range(0u64..500);
        let k = 3;
        let input = Tensor::from_vec(
            (0..c * size * size)
                .map(|i| ((i as u64).wrapping_mul(seed * 2 + 3) % 19) as f32 / 4.0 - 2.0)
                .collect(),
            [c, size, size],
        )
        .unwrap();
        let filters = Tensor::from_vec(
            (0..f * c * k * k)
                .map(|i| ((i as u64).wrapping_mul(seed + 11) % 9) as f32 / 2.0 - 2.0)
                .collect(),
            [f, c, k, k],
        )
        .unwrap();
        let bias = Tensor::zeros([f]);
        let win = ops::Window2d::simple(k);

        let direct = ops::conv2d(&input, &filters, &bias, win).unwrap();
        let cols = ops::im2col(&input, win).unwrap();
        let wmat = filters.reshape([f, c * k * k]).unwrap();
        let gemm = ops::matmul(&wmat, &cols).unwrap();
        for (a, b) in direct.as_slice().iter().zip(gemm.as_slice()) {
            assert!((a - b).abs() < 1e-3, "case {case}: {a} vs {b}");
        }
    }
}

#[test]
fn im2col_col2im_adjoint() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x7e5009);
    for case in 0..CASES {
        let size = rng.gen_range(3usize..7);
        let seed = rng.gen_range(0u64..200);
        // <im2col(x), y> == <x, col2im(y)>
        let win = ops::Window2d::simple(2);
        let x = Tensor::from_vec(
            (0..size * size)
                .map(|i| ((i as u64 * (seed + 1)) % 23) as f32 - 11.0)
                .collect(),
            [1, size, size],
        )
        .unwrap();
        let cols = ops::im2col(&x, win).unwrap();
        let y = Tensor::from_vec(
            (0..cols.len())
                .map(|i| ((i as u64 * (seed + 7)) % 17) as f32 - 8.0)
                .collect(),
            cols.shape().clone(),
        )
        .unwrap();
        let back = ops::col2im(&y, 1, size, size, win).unwrap();
        let lhs: f32 = cols
            .as_slice()
            .iter()
            .zip(y.as_slice())
            .map(|(a, b)| a * b)
            .sum();
        let rhs: f32 = x
            .as_slice()
            .iter()
            .zip(back.as_slice())
            .map(|(a, b)| a * b)
            .sum();
        assert!(
            (lhs - rhs).abs() < lhs.abs().max(1.0) * 1e-4,
            "case {case}: {lhs} vs {rhs}"
        );
    }
}

#[test]
fn sparsity_bounds() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x7e5010);
    for case in 0..CASES {
        let dims = small_dims(&mut rng);
        let t = tensor_with_shape(&mut rng, dims);
        let s = t.sparsity();
        assert!((0.0..=1.0).contains(&s), "case {case}: sparsity {s}");
    }
}
