//! Property-based tests for shape algebra and the numeric kernels.

use proptest::prelude::*;
use scnn_tensor::{ops, Shape, Tensor};

fn small_dims() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(1usize..6, 1..4)
}

fn tensor_with_shape(dims: Vec<usize>) -> impl Strategy<Value = Tensor> {
    let len: usize = dims.iter().product();
    prop::collection::vec(-10.0f32..10.0, len)
        .prop_map(move |data| Tensor::from_vec(data, dims.clone()).expect("length matches"))
}

proptest! {
    #[test]
    fn offset_coords_roundtrip(dims in small_dims(), seed in 0usize..10_000) {
        let shape = Shape::new(dims);
        if !shape.is_empty() {
            let flat = seed % shape.len();
            let coords = shape.coords(flat).unwrap();
            prop_assert_eq!(shape.offset(&coords).unwrap(), flat);
        }
    }

    #[test]
    fn strides_decrease_row_major(dims in small_dims()) {
        let shape = Shape::new(dims);
        let strides = shape.strides();
        for w in strides.windows(2) {
            prop_assert!(w[0] >= w[1], "row-major strides are non-increasing");
        }
        if let Some(&last) = strides.last() {
            prop_assert_eq!(last, 1);
        }
    }

    #[test]
    fn reshape_preserves_contents(t in small_dims().prop_flat_map(tensor_with_shape)) {
        let flat = t.reshape([t.len()]).unwrap();
        prop_assert_eq!(flat.as_slice(), t.as_slice());
        prop_assert_eq!(flat.sum(), t.sum());
    }

    #[test]
    fn transpose_is_involutive(rows in 1usize..8, cols in 1usize..8, seed in 0u64..1000) {
        let data: Vec<f32> = (0..rows * cols)
            .map(|i| ((i as u64).wrapping_mul(seed + 1) % 97) as f32 - 48.0)
            .collect();
        let a = Tensor::from_vec(data, [rows, cols]).unwrap();
        let att = ops::transpose(&ops::transpose(&a).unwrap()).unwrap();
        prop_assert_eq!(att, a);
    }

    #[test]
    fn matmul_distributes_over_identity(n in 1usize..6, seed in 0u64..1000) {
        let data: Vec<f32> = (0..n * n)
            .map(|i| ((i as u64).wrapping_mul(seed * 3 + 7) % 13) as f32 - 6.0)
            .collect();
        let a = Tensor::from_vec(data, [n, n]).unwrap();
        let mut eye = Tensor::zeros([n, n]);
        for i in 0..n {
            eye.set(&[i, i], 1.0).unwrap();
        }
        prop_assert_eq!(ops::matmul(&a, &eye).unwrap(), a.clone());
        prop_assert_eq!(ops::matmul(&eye, &a).unwrap(), a);
    }

    #[test]
    fn matvec_is_linear(m in 1usize..6, k in 1usize..6, s in 1u64..50) {
        let a = Tensor::from_vec(
            (0..m * k).map(|i| ((i as u64 * s) % 11) as f32 - 5.0).collect(),
            [m, k],
        ).unwrap();
        let x = Tensor::from_vec(
            (0..k).map(|i| ((i as u64 * s * 5) % 7) as f32 - 3.0).collect(),
            [k],
        ).unwrap();
        let y1 = ops::matvec(&a, &x).unwrap();
        let x2 = &x * 2.0;
        let y2 = ops::matvec(&a, &x2).unwrap();
        for (a, b) in y1.as_slice().iter().zip(y2.as_slice()) {
            prop_assert!((2.0 * a - b).abs() < 1e-3, "A(2x) = 2(Ax): {a} vs {b}");
        }
    }

    #[test]
    fn softmax_is_a_distribution(data in prop::collection::vec(-30.0f32..30.0, 1..20)) {
        let x = Tensor::from_slice(&data);
        let s = ops::softmax(&x).unwrap();
        prop_assert!((s.sum() - 1.0).abs() < 1e-4);
        prop_assert!(s.as_slice().iter().all(|&p| (0.0..=1.0).contains(&p)));
        // Order preserved.
        let max_in = x.argmax();
        let max_out = s.argmax();
        prop_assert_eq!(max_in, max_out);
    }

    #[test]
    fn conv_direct_equals_im2col_gemm(
        c in 1usize..3,
        f in 1usize..3,
        size in 4usize..7,
        seed in 0u64..500,
    ) {
        let k = 3;
        let input = Tensor::from_vec(
            (0..c * size * size)
                .map(|i| ((i as u64).wrapping_mul(seed * 2 + 3) % 19) as f32 / 4.0 - 2.0)
                .collect(),
            [c, size, size],
        ).unwrap();
        let filters = Tensor::from_vec(
            (0..f * c * k * k)
                .map(|i| ((i as u64).wrapping_mul(seed + 11) % 9) as f32 / 2.0 - 2.0)
                .collect(),
            [f, c, k, k],
        ).unwrap();
        let bias = Tensor::zeros([f]);
        let win = ops::Window2d::simple(k);

        let direct = ops::conv2d(&input, &filters, &bias, win).unwrap();
        let cols = ops::im2col(&input, win).unwrap();
        let wmat = filters.reshape([f, c * k * k]).unwrap();
        let gemm = ops::matmul(&wmat, &cols).unwrap();
        for (a, b) in direct.as_slice().iter().zip(gemm.as_slice()) {
            prop_assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn im2col_col2im_adjoint(size in 3usize..7, seed in 0u64..200) {
        // <im2col(x), y> == <x, col2im(y)>
        let win = ops::Window2d::simple(2);
        let x = Tensor::from_vec(
            (0..size * size).map(|i| ((i as u64 * (seed + 1)) % 23) as f32 - 11.0).collect(),
            [1, size, size],
        ).unwrap();
        let cols = ops::im2col(&x, win).unwrap();
        let y = Tensor::from_vec(
            (0..cols.len()).map(|i| ((i as u64 * (seed + 7)) % 17) as f32 - 8.0).collect(),
            cols.shape().clone(),
        ).unwrap();
        let back = ops::col2im(&y, 1, size, size, win).unwrap();
        let lhs: f32 = cols.as_slice().iter().zip(y.as_slice()).map(|(a, b)| a * b).sum();
        let rhs: f32 = x.as_slice().iter().zip(back.as_slice()).map(|(a, b)| a * b).sum();
        prop_assert!((lhs - rhs).abs() < lhs.abs().max(1.0) * 1e-4, "{lhs} vs {rhs}");
    }

    #[test]
    fn sparsity_bounds(t in small_dims().prop_flat_map(tensor_with_shape)) {
        let s = t.sparsity();
        prop_assert!((0.0..=1.0).contains(&s));
    }
}
