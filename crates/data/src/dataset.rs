//! Labelled image datasets: container, splitting, filtering and
//! normalisation.

use scnn_rng::{ChaCha8Rng, SeedableRng, SliceRandom};
use scnn_tensor::{Shape, Tensor};
use std::error::Error;
use std::fmt;

/// Error from dataset construction or manipulation.
#[derive(Debug, Clone, PartialEq)]
pub enum DatasetError {
    /// Image and label counts differ.
    LengthMismatch {
        /// Number of images supplied.
        images: usize,
        /// Number of labels supplied.
        labels: usize,
    },
    /// An image deviates from the dataset's common shape.
    ShapeMismatch {
        /// Index of the offending image.
        index: usize,
    },
    /// A label is outside `0..num_classes`.
    LabelOutOfRange {
        /// The offending label.
        label: usize,
        /// The class count.
        num_classes: usize,
    },
    /// The dataset is empty where content is required.
    Empty,
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::LengthMismatch { images, labels } => {
                write!(f, "{images} images but {labels} labels")
            }
            DatasetError::ShapeMismatch { index } => {
                write!(f, "image {index} has a different shape")
            }
            DatasetError::LabelOutOfRange { label, num_classes } => {
                write!(f, "label {label} out of range for {num_classes} classes")
            }
            DatasetError::Empty => write!(f, "dataset is empty"),
        }
    }
}

impl Error for DatasetError {}

/// A labelled image dataset with a common image shape.
///
/// # Examples
///
/// ```
/// use scnn_data::Dataset;
/// use scnn_tensor::Tensor;
///
/// # fn main() -> Result<(), scnn_data::DatasetError> {
/// let ds = Dataset::new(
///     vec![Tensor::zeros([1, 2, 2]), Tensor::zeros([1, 2, 2])],
///     vec![0, 1],
///     2,
/// )?;
/// assert_eq!(ds.len(), 2);
/// assert_eq!(ds.of_class(1).count(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    images: Vec<Tensor>,
    labels: Vec<usize>,
    num_classes: usize,
}

impl Dataset {
    /// Creates a dataset, validating lengths, shapes and label ranges.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError`] on any inconsistency.
    pub fn new(
        images: Vec<Tensor>,
        labels: Vec<usize>,
        num_classes: usize,
    ) -> Result<Self, DatasetError> {
        if images.len() != labels.len() {
            return Err(DatasetError::LengthMismatch {
                images: images.len(),
                labels: labels.len(),
            });
        }
        if let Some(first) = images.first() {
            for (i, img) in images.iter().enumerate() {
                if img.shape() != first.shape() {
                    return Err(DatasetError::ShapeMismatch { index: i });
                }
            }
        }
        for &label in &labels {
            if label >= num_classes {
                return Err(DatasetError::LabelOutOfRange { label, num_classes });
            }
        }
        Ok(Dataset {
            images,
            labels,
            num_classes,
        })
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.images.len()
    }

    /// True when there are no examples.
    pub fn is_empty(&self) -> bool {
        self.images.is_empty()
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// The common image shape.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::Empty`] for an empty dataset.
    pub fn image_shape(&self) -> Result<&Shape, DatasetError> {
        self.images
            .first()
            .map(Tensor::shape)
            .ok_or(DatasetError::Empty)
    }

    /// Example `i` as `(image, label)`.
    pub fn get(&self, i: usize) -> Option<(&Tensor, usize)> {
        Some((self.images.get(i)?, *self.labels.get(i)?))
    }

    /// Iterator over `(image, label)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Tensor, usize)> {
        self.images.iter().zip(self.labels.iter().copied())
    }

    /// Iterator over the images of one class.
    pub fn of_class(&self, class: usize) -> impl Iterator<Item = &Tensor> {
        self.iter()
            .filter_map(move |(img, l)| (l == class).then_some(img))
    }

    /// Count of examples per class, indexed by label.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_classes];
        for &l in &self.labels {
            counts[l] += 1;
        }
        counts
    }

    /// Owned `(image, label)` pairs — the format `scnn_nn::train`
    /// consumes.
    pub fn to_samples(&self) -> Vec<(Tensor, usize)> {
        self.iter().map(|(img, l)| (img.clone(), l)).collect()
    }

    /// Splits into `(train, test)` with `train_fraction` of each class's
    /// examples (stratified) going to the training set.
    ///
    /// # Panics
    ///
    /// Panics when `train_fraction` is outside `[0, 1]`.
    pub fn split(&self, train_fraction: f64, seed: u64) -> (Dataset, Dataset) {
        assert!(
            (0.0..=1.0).contains(&train_fraction),
            "train_fraction must be in [0, 1]"
        );
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut train_idx = Vec::new();
        let mut test_idx = Vec::new();
        for class in 0..self.num_classes {
            let mut idx: Vec<usize> = (0..self.len())
                .filter(|&i| self.labels[i] == class)
                .collect();
            idx.shuffle(&mut rng);
            let cut = (idx.len() as f64 * train_fraction).round() as usize;
            train_idx.extend_from_slice(&idx[..cut.min(idx.len())]);
            test_idx.extend_from_slice(&idx[cut.min(idx.len())..]);
        }
        (self.subset(&train_idx), self.subset(&test_idx))
    }

    /// A new dataset containing only the listed examples.
    ///
    /// # Panics
    ///
    /// Panics when an index is out of bounds.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        Dataset {
            images: indices.iter().map(|&i| self.images[i].clone()).collect(),
            labels: indices.iter().map(|&i| self.labels[i]).collect(),
            num_classes: self.num_classes,
        }
    }

    /// A new dataset keeping only the given classes, with labels
    /// *re-mapped* to `0..classes.len()` in the order given — the paper
    /// evaluates 4 of the 10 categories, so this is the entry point for
    /// its category selection.
    pub fn select_classes(&self, classes: &[usize]) -> Dataset {
        let mut images = Vec::new();
        let mut labels = Vec::new();
        for (img, l) in self.iter() {
            if let Some(new_label) = classes.iter().position(|&c| c == l) {
                images.push(img.clone());
                labels.push(new_label);
            }
        }
        Dataset {
            images,
            labels,
            num_classes: classes.len(),
        }
    }

    /// Normalises every image in place to zero mean and unit variance
    /// *per dataset* (global statistics), returning `(mean, std)`.
    pub fn normalize(&mut self) -> (f32, f32) {
        let n: usize = self.images.iter().map(Tensor::len).sum();
        if n == 0 {
            return (0.0, 1.0);
        }
        let mean = self.images.iter().map(Tensor::sum).sum::<f32>() / n as f32;
        let var = self
            .images
            .iter()
            .flat_map(|t| t.as_slice().iter())
            .map(|&x| (x - mean) * (x - mean))
            .sum::<f32>()
            / n as f32;
        let std = var.sqrt().max(1e-8);
        for img in &mut self.images {
            img.map_in_place(|x| (x - mean) / std);
        }
        (mean, std)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n_per_class: usize, classes: usize) -> Dataset {
        let mut images = Vec::new();
        let mut labels = Vec::new();
        for c in 0..classes {
            for i in 0..n_per_class {
                images.push(Tensor::full([1, 2, 2], c as f32 + i as f32 * 0.01));
                labels.push(c);
            }
        }
        Dataset::new(images, labels, classes).unwrap()
    }

    #[test]
    fn construction_validations() {
        assert!(matches!(
            Dataset::new(vec![Tensor::zeros([1])], vec![], 1),
            Err(DatasetError::LengthMismatch { .. })
        ));
        assert!(matches!(
            Dataset::new(vec![Tensor::zeros([1]), Tensor::zeros([2])], vec![0, 0], 1),
            Err(DatasetError::ShapeMismatch { index: 1 })
        ));
        assert!(matches!(
            Dataset::new(vec![Tensor::zeros([1])], vec![3], 2),
            Err(DatasetError::LabelOutOfRange { .. })
        ));
        assert!(Dataset::new(vec![], vec![], 4).is_ok());
    }

    #[test]
    fn class_access() {
        let ds = toy(5, 3);
        assert_eq!(ds.len(), 15);
        assert_eq!(ds.class_counts(), vec![5, 5, 5]);
        assert_eq!(ds.of_class(1).count(), 5);
        for img in ds.of_class(2) {
            assert!(img.as_slice()[0] >= 2.0);
        }
    }

    #[test]
    fn stratified_split() {
        let ds = toy(10, 4);
        let (train, test) = ds.split(0.8, 42);
        assert_eq!(train.len(), 32);
        assert_eq!(test.len(), 8);
        assert_eq!(train.class_counts(), vec![8, 8, 8, 8]);
        assert_eq!(test.class_counts(), vec![2, 2, 2, 2]);
    }

    #[test]
    fn split_deterministic() {
        let ds = toy(10, 2);
        let (a, _) = ds.split(0.5, 7);
        let (b, _) = ds.split(0.5, 7);
        assert_eq!(a, b);
        let (c, _) = ds.split(0.5, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn select_classes_remaps() {
        let ds = toy(3, 5);
        let sel = ds.select_classes(&[4, 1]);
        assert_eq!(sel.len(), 6);
        assert_eq!(sel.num_classes(), 2);
        assert_eq!(sel.class_counts(), vec![3, 3]);
        // Class 4 images got label 0.
        for img in sel.of_class(0) {
            assert!(img.as_slice()[0] >= 4.0);
        }
    }

    #[test]
    fn normalization() {
        let mut ds = toy(10, 3);
        let (mean, std) = ds.normalize();
        assert!(std > 0.0);
        assert!(mean > 0.0);
        let n: usize = ds.iter().map(|(img, _)| img.len()).sum();
        let new_mean: f32 = ds.iter().map(|(img, _)| img.sum()).sum::<f32>() / n as f32;
        assert!(new_mean.abs() < 1e-5);
    }

    #[test]
    fn to_samples_matches() {
        let ds = toy(2, 2);
        let samples = ds.to_samples();
        assert_eq!(samples.len(), 4);
        assert_eq!(samples[0].1, ds.get(0).unwrap().1);
    }

    #[test]
    fn empty_dataset_shape_errors() {
        let ds = Dataset::new(vec![], vec![], 2).unwrap();
        assert!(ds.image_shape().is_err());
        assert!(ds.is_empty());
    }
}
