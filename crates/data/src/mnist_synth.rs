//! Procedural MNIST: stroke-rendered digit glyphs.
//!
//! Each digit class is a set of strokes (line segments in the unit
//! square) rasterised at 28×28 with per-example random affine jitter,
//! stroke-thickness variation and pixel noise. Like real MNIST, images
//! are mostly background zeros, and the *spatial pattern* of non-zero
//! pixels is class-characteristic while the non-zero *count* varies
//! within a class — exactly the structure the side-channel mechanism
//! needs (see `scnn-nn`'s crate docs).

use crate::dataset::{Dataset, DatasetError};
use scnn_rng::{ChaCha8Rng, Rng, SeedableRng};
use scnn_tensor::Tensor;

/// Default image side length (real MNIST geometry).
pub const SIDE: usize = 28;
/// Number of digit classes.
pub const CLASSES: usize = 10;

/// A line segment in glyph space (unit square, y growing downward).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Stroke {
    x0: f32,
    y0: f32,
    x1: f32,
    y1: f32,
}

const fn s(x0: f32, y0: f32, x1: f32, y1: f32) -> Stroke {
    Stroke { x0, y0, x1, y1 }
}

/// Class-conditional mean stroke-thickness multipliers. Real handwritten
/// digit classes have visibly different mean ink (a `1` carries roughly a
/// third of the foreground pixels of an `8`); this table reproduces that
/// first-order statistic for the rendered glyphs.
const THICKNESS_SCALE: [f32; 10] = [1.16, 0.82, 1.18, 0.92, 1.22, 1.00, 1.06, 0.90, 1.12, 1.02];

/// Seven-segment-inspired stroke models, with a few diagonals for
/// naturalness. Indexed by digit.
fn strokes_for(digit: usize) -> Vec<Stroke> {
    // Segment endpoints.
    const L: f32 = 0.30;
    const R: f32 = 0.70;
    const T: f32 = 0.18;
    const M: f32 = 0.50;
    const B: f32 = 0.82;
    let top = s(L, T, R, T);
    let mid = s(L, M, R, M);
    let bottom = s(L, B, R, B);
    let tl = s(L, T, L, M);
    let bl = s(L, M, L, B);
    let tr = s(R, T, R, M);
    let br = s(R, M, R, B);
    match digit {
        0 => vec![top, bottom, tl, bl, tr, br],
        1 => vec![s(0.5, T, 0.5, B), s(0.38, 0.30, 0.5, T)],
        2 => vec![top, tr, mid, bl, bottom],
        3 => vec![top, tr, mid, br, bottom],
        4 => vec![tl, mid, tr, br],
        5 => vec![top, tl, mid, br, bottom],
        6 => vec![top, tl, bl, mid, br, bottom],
        7 => vec![top, s(R, T, 0.45, B)],
        8 => vec![top, mid, bottom, tl, bl, tr, br],
        9 => vec![top, tl, tr, mid, br, bottom],
        _ => unreachable!("digit must be 0..10"),
    }
}

/// Generation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MnistSynthConfig {
    /// Examples per class.
    pub per_class: usize,
    /// Image side length in pixels (28 matches real MNIST; smaller sides
    /// give fast test datasets).
    pub side: usize,
    /// Mean stroke half-thickness in glyph units.
    pub thickness: f32,
    /// Relative thickness jitter (uniform ±).
    pub thickness_jitter: f32,
    /// Max translation jitter in glyph units.
    pub translate: f32,
    /// Max rotation in radians.
    pub rotate: f32,
    /// Scale jitter (uniform in `1 ± scale`).
    pub scale: f32,
    /// Additive noise amplitude on lit pixels; also the probability scale
    /// of salt noise on background pixels.
    pub noise: f32,
}

impl Default for MnistSynthConfig {
    fn default() -> Self {
        MnistSynthConfig {
            per_class: 100,
            side: SIDE,
            thickness: 0.055,
            thickness_jitter: 0.15,
            translate: 0.06,
            rotate: 0.18,
            scale: 0.12,
            noise: 0.08,
        }
    }
}

/// Renders one digit with the given jitter RNG.
fn render_digit(digit: usize, cfg: &MnistSynthConfig, rng: &mut ChaCha8Rng) -> Tensor {
    let strokes = strokes_for(digit);
    let thickness = cfg.thickness
        * THICKNESS_SCALE[digit % 10]
        * (1.0 + rng.gen_range(-cfg.thickness_jitter..=cfg.thickness_jitter));
    let dx = rng.gen_range(-cfg.translate..=cfg.translate);
    let dy = rng.gen_range(-cfg.translate..=cfg.translate);
    let angle = rng.gen_range(-cfg.rotate..=cfg.rotate);
    let scale = 1.0 + rng.gen_range(-cfg.scale..=cfg.scale);
    let (sin, cos) = angle.sin_cos();

    // Transform strokes: rotate about centre, scale, translate.
    let tf = |x: f32, y: f32| -> (f32, f32) {
        let (cx, cy) = (x - 0.5, y - 0.5);
        let rx = cx * cos - cy * sin;
        let ry = cx * sin + cy * cos;
        (rx * scale + 0.5 + dx, ry * scale + 0.5 + dy)
    };
    let strokes: Vec<Stroke> = strokes
        .iter()
        .map(|st| {
            let (x0, y0) = tf(st.x0, st.y0);
            let (x1, y1) = tf(st.x1, st.y1);
            s(x0, y0, x1, y1)
        })
        .collect();

    let side = cfg.side;
    let mut pixels = vec![0.0f32; side * side];
    for py in 0..side {
        for px in 0..side {
            let x = (px as f32 + 0.5) / side as f32;
            let y = (py as f32 + 0.5) / side as f32;
            let mut best = f32::INFINITY;
            for st in &strokes {
                best = best.min(dist_to_segment(x, y, st));
            }
            // Soft pen: full ink inside, linear falloff over one pixel.
            let falloff = 1.0 / side as f32;
            let v = if best <= thickness {
                1.0
            } else if best <= thickness + falloff {
                1.0 - (best - thickness) / falloff
            } else {
                0.0
            };
            if v > 0.0 {
                let noisy = (v + rng.gen_range(-cfg.noise..=cfg.noise)).clamp(0.0, 1.0);
                // Threshold faint ink back to true zero so background
                // sparsity is preserved.
                pixels[py * side + px] = if noisy < 0.05 { 0.0 } else { noisy };
            }
        }
    }
    Tensor::from_vec(pixels, [1, side, side]).expect("fixed geometry")
}

fn dist_to_segment(x: f32, y: f32, st: &Stroke) -> f32 {
    let (dx, dy) = (st.x1 - st.x0, st.y1 - st.y0);
    let len_sq = dx * dx + dy * dy;
    let t = if len_sq == 0.0 {
        0.0
    } else {
        (((x - st.x0) * dx + (y - st.y0) * dy) / len_sq).clamp(0.0, 1.0)
    };
    let (cx, cy) = (st.x0 + t * dx, st.y0 + t * dy);
    ((x - cx).powi(2) + (y - cy).powi(2)).sqrt()
}

/// Generates a synthetic MNIST-style dataset: `cfg.per_class` examples of
/// each digit 0–9, shuffled order deterministic in `seed`.
///
/// # Errors
///
/// Never fails in practice; the `Result` mirrors [`Dataset::new`].
///
/// # Examples
///
/// ```
/// use scnn_data::mnist_synth::{generate, MnistSynthConfig};
///
/// # fn main() -> Result<(), scnn_data::DatasetError> {
/// let ds = generate(&MnistSynthConfig { per_class: 5, ..Default::default() }, 42)?;
/// assert_eq!(ds.len(), 50);
/// assert_eq!(ds.num_classes(), 10);
/// # Ok(())
/// # }
/// ```
pub fn generate(cfg: &MnistSynthConfig, seed: u64) -> Result<Dataset, DatasetError> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut images = Vec::with_capacity(cfg.per_class * CLASSES);
    let mut labels = Vec::with_capacity(cfg.per_class * CLASSES);
    for digit in 0..CLASSES {
        for _ in 0..cfg.per_class {
            images.push(render_digit(digit, cfg, &mut rng));
            labels.push(digit);
        }
    }
    Dataset::new(images, labels, CLASSES)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Dataset {
        generate(
            &MnistSynthConfig {
                per_class: 8,
                ..MnistSynthConfig::default()
            },
            1,
        )
        .unwrap()
    }

    #[test]
    fn dataset_dimensions() {
        let ds = small();
        assert_eq!(ds.len(), 80);
        assert_eq!(ds.image_shape().unwrap().dims(), &[1, 28, 28]);
        assert_eq!(ds.class_counts(), vec![8; 10]);
    }

    #[test]
    fn images_are_sparse_like_mnist() {
        let ds = small();
        for (img, label) in ds.iter() {
            let sparsity = img.sparsity();
            assert!(
                (0.45..0.97).contains(&sparsity),
                "digit {label}: background should dominate, sparsity {sparsity}"
            );
            assert!(img.max() <= 1.0 && img.min() >= 0.0);
        }
    }

    #[test]
    fn classes_have_distinct_spatial_signatures() {
        // Mean image per class should differ clearly between digit pairs.
        let ds = generate(
            &MnistSynthConfig {
                per_class: 20,
                ..MnistSynthConfig::default()
            },
            3,
        )
        .unwrap();
        let mean_image = |class: usize| {
            let mut acc = Tensor::zeros([1, 28, 28]);
            let mut n = 0;
            for img in ds.of_class(class) {
                acc += img;
                n += 1;
            }
            acc.scale_in_place(1.0 / n as f32);
            acc
        };
        let m1 = mean_image(1);
        let m8 = mean_image(8);
        let diff = (&m1 - &m8).norm_sq();
        assert!(diff > 1.0, "digit 1 vs 8 mean images must differ: {diff}");
    }

    #[test]
    fn within_class_variation_exists() {
        let ds = small();
        let imgs: Vec<&Tensor> = ds.of_class(3).collect();
        assert!(imgs.windows(2).any(|w| w[0] != w[1]));
        // Non-zero counts vary (stroke thickness jitter).
        let counts: Vec<usize> = imgs
            .iter()
            .map(|t| t.as_slice().iter().filter(|&&v| v > 0.0).count())
            .collect();
        let min = counts.iter().min().unwrap();
        let max = counts.iter().max().unwrap();
        assert!(max > min, "ink amount must vary within a class: {counts:?}");
    }

    #[test]
    fn deterministic_in_seed() {
        let a = generate(
            &MnistSynthConfig {
                per_class: 2,
                ..Default::default()
            },
            9,
        )
        .unwrap();
        let b = generate(
            &MnistSynthConfig {
                per_class: 2,
                ..Default::default()
            },
            9,
        )
        .unwrap();
        let c = generate(
            &MnistSynthConfig {
                per_class: 2,
                ..Default::default()
            },
            10,
        )
        .unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn custom_side_renders() {
        let ds = generate(
            &MnistSynthConfig {
                per_class: 2,
                side: 12,
                ..MnistSynthConfig::default()
            },
            5,
        )
        .unwrap();
        assert_eq!(ds.image_shape().unwrap().dims(), &[1, 12, 12]);
        for (img, _) in ds.iter() {
            assert!(img.sparsity() > 0.3, "small glyphs still mostly background");
        }
    }

    #[test]
    fn all_digits_render_strokes() {
        for d in 0..10 {
            assert!(!strokes_for(d).is_empty());
        }
    }

    #[test]
    fn segment_distance() {
        let st = s(0.0, 0.0, 1.0, 0.0);
        assert!((dist_to_segment(0.5, 0.5, &st) - 0.5).abs() < 1e-6);
        assert!((dist_to_segment(2.0, 0.0, &st) - 1.0).abs() < 1e-6);
        assert!(dist_to_segment(0.3, 0.0, &st) < 1e-6);
        // Degenerate zero-length segment.
        let pt = s(0.5, 0.5, 0.5, 0.5);
        assert!((dist_to_segment(0.5, 1.0, &pt) - 0.5).abs() < 1e-6);
    }
}
