//! Procedural CIFAR-10: class-conditioned colour scenes.
//!
//! Each of the ten classes gets a characteristic scene recipe —
//! background palette, object shape, object palette and texture
//! statistics — with per-example jitter. Unlike the MNIST generator the
//! images are dense (no zero pixels), matching real CIFAR-10; the
//! class-dependence of the hardware footprint then arises *inside* the
//! network from post-ReLU activation patterns rather than from input
//! sparsity.

use crate::dataset::{Dataset, DatasetError};
use scnn_rng::{ChaCha8Rng, Rng, SeedableRng};
use scnn_tensor::Tensor;

/// Default image side length (real CIFAR-10 geometry).
pub const SIDE: usize = 32;
/// Number of classes.
pub const CLASSES: usize = 10;

/// CIFAR-10 class names, index-aligned with generated labels.
pub const CLASS_NAMES: [&str; 10] = [
    "airplane",
    "automobile",
    "bird",
    "cat",
    "deer",
    "dog",
    "frog",
    "horse",
    "ship",
    "truck",
];

/// Object silhouette per class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ObjectShape {
    /// Horizontal lens / fuselage.
    HorizontalEllipse,
    /// Boxy body.
    Rectangle,
    /// Small round blob.
    Blob,
    /// Tall triangle.
    Triangle,
}

/// Scene recipe for one class.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Recipe {
    sky: [f32; 3],
    ground: [f32; 3],
    object: [f32; 3],
    shape: ObjectShape,
    object_scale: f32,
    texture: f32,
    horizon: f32,
}

fn recipe_for(class: usize) -> Recipe {
    // Palettes chosen to echo the photographic statistics of each class:
    // vehicles on grey roads, animals on green/brown grounds, ships on
    // water, airplanes in sky.
    match class {
        0 => Recipe {
            sky: [0.55, 0.72, 0.90],
            ground: [0.60, 0.75, 0.92],
            object: [0.80, 0.80, 0.85],
            shape: ObjectShape::HorizontalEllipse,
            object_scale: 0.75,
            texture: 0.09,
            horizon: 0.72,
        },
        1 => Recipe {
            sky: [0.65, 0.70, 0.75],
            ground: [0.35, 0.35, 0.38],
            object: [0.75, 0.15, 0.15],
            shape: ObjectShape::Rectangle,
            object_scale: 0.6,
            texture: 0.05,
            horizon: 0.55,
        },
        2 => Recipe {
            sky: [0.60, 0.78, 0.95],
            ground: [0.40, 0.60, 0.35],
            object: [0.55, 0.40, 0.25],
            shape: ObjectShape::Blob,
            object_scale: 0.35,
            texture: 0.08,
            horizon: 0.7,
        },
        3 => Recipe {
            sky: [0.70, 0.65, 0.60],
            ground: [0.55, 0.45, 0.35],
            object: [0.45, 0.35, 0.30],
            shape: ObjectShape::Blob,
            object_scale: 0.55,
            texture: 0.12,
            horizon: 0.5,
        },
        4 => Recipe {
            sky: [0.55, 0.70, 0.60],
            ground: [0.35, 0.50, 0.25],
            object: [0.50, 0.35, 0.20],
            shape: ObjectShape::Triangle,
            object_scale: 0.6,
            texture: 0.10,
            horizon: 0.45,
        },
        5 => Recipe {
            sky: [0.72, 0.68, 0.62],
            ground: [0.50, 0.42, 0.32],
            object: [0.60, 0.50, 0.35],
            shape: ObjectShape::Blob,
            object_scale: 0.6,
            texture: 0.11,
            horizon: 0.5,
        },
        6 => Recipe {
            sky: [0.35, 0.55, 0.35],
            ground: [0.25, 0.45, 0.20],
            object: [0.30, 0.65, 0.25],
            shape: ObjectShape::Blob,
            object_scale: 0.45,
            texture: 0.09,
            horizon: 0.4,
        },
        7 => Recipe {
            sky: [0.65, 0.75, 0.85],
            ground: [0.45, 0.55, 0.30],
            object: [0.45, 0.30, 0.20],
            shape: ObjectShape::Triangle,
            object_scale: 0.7,
            texture: 0.08,
            horizon: 0.5,
        },
        8 => Recipe {
            sky: [0.60, 0.72, 0.88],
            ground: [0.20, 0.35, 0.55],
            object: [0.40, 0.40, 0.45],
            shape: ObjectShape::Rectangle,
            object_scale: 0.65,
            texture: 0.06,
            horizon: 0.5,
        },
        9 => Recipe {
            sky: [0.68, 0.72, 0.78],
            ground: [0.38, 0.38, 0.40],
            object: [0.85, 0.75, 0.25],
            shape: ObjectShape::Rectangle,
            object_scale: 0.75,
            texture: 0.05,
            horizon: 0.6,
        },
        _ => unreachable!("class must be 0..10"),
    }
}

/// Generation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CifarSynthConfig {
    /// Examples per class.
    pub per_class: usize,
    /// Image side length in pixels (32 matches real CIFAR-10; smaller
    /// sides give fast test datasets).
    pub side: usize,
    /// Colour jitter amplitude (uniform ± on every palette channel).
    pub color_jitter: f32,
    /// Object position jitter in image fractions.
    pub position_jitter: f32,
    /// Object scale jitter, relative.
    pub scale_jitter: f32,
    /// Extra white noise over the whole image.
    pub noise: f32,
}

impl Default for CifarSynthConfig {
    fn default() -> Self {
        CifarSynthConfig {
            per_class: 100,
            side: SIDE,
            color_jitter: 0.08,
            position_jitter: 0.10,
            scale_jitter: 0.25,
            noise: 0.03,
        }
    }
}

fn inside(shape: ObjectShape, nx: f32, ny: f32) -> bool {
    match shape {
        ObjectShape::HorizontalEllipse => (nx * nx) / 1.0 + (ny * ny) / 0.16 <= 1.0,
        ObjectShape::Rectangle => nx.abs() <= 0.9 && ny.abs() <= 0.5,
        ObjectShape::Blob => nx * nx + ny * ny <= 0.7,
        ObjectShape::Triangle => (-0.8..=0.8).contains(&ny) && nx.abs() <= (0.8 - ny) * 0.6,
    }
}

fn render_scene(class: usize, cfg: &CifarSynthConfig, rng: &mut ChaCha8Rng) -> Tensor {
    let r = recipe_for(class);
    let jitter = |c: f32, rng: &mut ChaCha8Rng| {
        (c + rng.gen_range(-cfg.color_jitter..=cfg.color_jitter)).clamp(0.02, 1.0)
    };
    let sky: Vec<f32> = r.sky.iter().map(|&c| jitter(c, rng)).collect();
    let ground: Vec<f32> = r.ground.iter().map(|&c| jitter(c, rng)).collect();
    let object: Vec<f32> = r.object.iter().map(|&c| jitter(c, rng)).collect();
    let cx = 0.5 + rng.gen_range(-cfg.position_jitter..=cfg.position_jitter);
    let cy = 0.55 + rng.gen_range(-cfg.position_jitter..=cfg.position_jitter);
    let scale = r.object_scale * (1.0 + rng.gen_range(-cfg.scale_jitter..=cfg.scale_jitter));
    let horizon = r.horizon + rng.gen_range(-0.05..=0.05);

    let side = cfg.side;
    let mut pixels = vec![0.0f32; 3 * side * side];
    for py in 0..side {
        for px in 0..side {
            let x = (px as f32 + 0.5) / side as f32;
            let y = (py as f32 + 0.5) / side as f32;
            let base = if y < horizon { &sky } else { &ground };
            // Object test in normalised object coordinates.
            let nx = (x - cx) / (scale * 0.5);
            let ny = (y - cy) / (scale * 0.5);
            let obj = inside(r.shape, nx, ny);
            for ch in 0..3 {
                let mut v = if obj { object[ch] } else { base[ch] };
                // Class-characteristic texture + white noise.
                v += r.texture * ((x * 37.0 + y * 23.0 + ch as f32).sin() * 0.5);
                v += rng.gen_range(-cfg.noise..=cfg.noise);
                pixels[(ch * side + py) * side + px] = v.clamp(0.01, 1.0);
            }
        }
    }
    Tensor::from_vec(pixels, [3, side, side]).expect("fixed geometry")
}

/// Generates a synthetic CIFAR-10-style dataset.
///
/// # Errors
///
/// Never fails in practice; the `Result` mirrors [`Dataset::new`].
///
/// # Examples
///
/// ```
/// use scnn_data::cifar_synth::{generate, CifarSynthConfig};
///
/// # fn main() -> Result<(), scnn_data::DatasetError> {
/// let ds = generate(&CifarSynthConfig { per_class: 3, ..Default::default() }, 7)?;
/// assert_eq!(ds.len(), 30);
/// assert_eq!(ds.image_shape()?.dims(), &[3, 32, 32]);
/// # Ok(())
/// # }
/// ```
pub fn generate(cfg: &CifarSynthConfig, seed: u64) -> Result<Dataset, DatasetError> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut images = Vec::with_capacity(cfg.per_class * CLASSES);
    let mut labels = Vec::with_capacity(cfg.per_class * CLASSES);
    for class in 0..CLASSES {
        for _ in 0..cfg.per_class {
            images.push(render_scene(class, cfg, &mut rng));
            labels.push(class);
        }
    }
    Dataset::new(images, labels, CLASSES)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Dataset {
        generate(
            &CifarSynthConfig {
                per_class: 6,
                ..CifarSynthConfig::default()
            },
            2,
        )
        .unwrap()
    }

    #[test]
    fn dimensions() {
        let ds = small();
        assert_eq!(ds.len(), 60);
        assert_eq!(ds.image_shape().unwrap().dims(), &[3, 32, 32]);
        assert_eq!(ds.num_classes(), 10);
    }

    #[test]
    fn images_are_dense_unlike_mnist() {
        let ds = small();
        for (img, _) in ds.iter() {
            assert_eq!(img.sparsity(), 0.0, "CIFAR-style images have no zeros");
            assert!(img.min() > 0.0 && img.max() <= 1.0);
        }
    }

    #[test]
    fn class_palettes_differ() {
        let ds = small();
        let mean_color = |class: usize| -> [f32; 3] {
            let mut acc = [0.0f32; 3];
            let mut n = 0;
            for img in ds.of_class(class) {
                for (ch, a) in acc.iter_mut().enumerate() {
                    *a += img.as_slice()[ch * SIDE * SIDE..(ch + 1) * SIDE * SIDE]
                        .iter()
                        .sum::<f32>();
                }
                n += 1;
            }
            acc.map(|v| v / (n * SIDE * SIDE) as f32)
        };
        let airplane = mean_color(0);
        let frog = mean_color(6);
        let dist: f32 = airplane
            .iter()
            .zip(frog.iter())
            .map(|(a, b)| (a - b).powi(2))
            .sum();
        assert!(
            dist > 0.01,
            "airplane vs frog palettes: {airplane:?} vs {frog:?}"
        );
    }

    #[test]
    fn within_class_variation() {
        let ds = small();
        let imgs: Vec<&Tensor> = ds.of_class(4).collect();
        assert!(imgs.windows(2).all(|w| w[0] != w[1]));
    }

    #[test]
    fn deterministic_in_seed() {
        let cfg = CifarSynthConfig {
            per_class: 2,
            ..CifarSynthConfig::default()
        };
        assert_eq!(generate(&cfg, 5).unwrap(), generate(&cfg, 5).unwrap());
        assert_ne!(generate(&cfg, 5).unwrap(), generate(&cfg, 6).unwrap());
    }

    #[test]
    fn custom_side_renders() {
        let ds = generate(
            &CifarSynthConfig {
                per_class: 1,
                side: 12,
                ..CifarSynthConfig::default()
            },
            3,
        )
        .unwrap();
        assert_eq!(ds.image_shape().unwrap().dims(), &[3, 12, 12]);
    }

    #[test]
    fn class_names_aligned() {
        assert_eq!(CLASS_NAMES.len(), CLASSES);
        assert_eq!(CLASS_NAMES[0], "airplane");
        assert_eq!(CLASS_NAMES[9], "truck");
    }

    #[test]
    fn shapes_cover_variants() {
        let mut seen = std::collections::HashSet::new();
        for c in 0..10 {
            seen.insert(format!("{:?}", recipe_for(c).shape));
        }
        assert!(seen.len() >= 4, "all silhouette kinds used: {seen:?}");
    }
}
