//! The IDX binary format used by the real MNIST distribution.
//!
//! When the genuine `train-images-idx3-ubyte` files are available this
//! loader feeds them into the same pipeline as the synthetic generator;
//! the writer exists so round-trip tests (and users exporting synthetic
//! data for other tools) can produce valid files.

use crate::dataset::{Dataset, DatasetError};
use scnn_tensor::wire::{ByteReader, ByteWriter};
use scnn_tensor::Tensor;
use std::error::Error;
use std::fmt;
use std::io::{self, Read, Write};

/// Magic for unsigned-byte rank-3 tensors (images).
const MAGIC_IMAGES: u32 = 0x0000_0803;
/// Magic for unsigned-byte rank-1 tensors (labels).
const MAGIC_LABELS: u32 = 0x0000_0801;

/// Error reading IDX data.
#[derive(Debug)]
pub enum IdxError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The magic number did not match the expected tensor kind.
    BadMagic {
        /// Magic found in the stream.
        found: u32,
        /// Magic required.
        expected: u32,
    },
    /// The payload was shorter than the header promised.
    Truncated,
    /// Image and label files disagree on the example count.
    CountMismatch {
        /// Image count.
        images: usize,
        /// Label count.
        labels: usize,
    },
    /// The assembled dataset failed validation.
    Dataset(DatasetError),
}

impl fmt::Display for IdxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IdxError::Io(e) => write!(f, "i/o error: {e}"),
            IdxError::BadMagic { found, expected } => {
                write!(f, "bad IDX magic {found:#010x}, expected {expected:#010x}")
            }
            IdxError::Truncated => write!(f, "IDX payload shorter than header promises"),
            IdxError::CountMismatch { images, labels } => {
                write!(f, "{images} images but {labels} labels")
            }
            IdxError::Dataset(e) => write!(f, "dataset error: {e}"),
        }
    }
}

impl Error for IdxError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            IdxError::Io(e) => Some(e),
            IdxError::Dataset(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for IdxError {
    fn from(e: io::Error) -> Self {
        IdxError::Io(e)
    }
}

impl From<DatasetError> for IdxError {
    fn from(e: DatasetError) -> Self {
        IdxError::Dataset(e)
    }
}

/// Reads an IDX image file (`magic 0x803`): returns `(images, rows,
/// cols)` with pixel values scaled to `[0, 1]`.
///
/// A `&mut` reference can be passed as the reader.
///
/// # Errors
///
/// Returns [`IdxError`] on I/O failure, a wrong magic or truncation.
pub fn read_images<R: Read>(mut reader: R) -> Result<(Vec<Tensor>, usize, usize), IdxError> {
    let mut raw = Vec::new();
    reader.read_to_end(&mut raw)?;
    let mut buf = ByteReader::new(&raw);
    if buf.remaining() < 16 {
        return Err(IdxError::Truncated);
    }
    let magic = buf.get_u32();
    if magic != MAGIC_IMAGES {
        return Err(IdxError::BadMagic {
            found: magic,
            expected: MAGIC_IMAGES,
        });
    }
    let count = buf.get_u32() as usize;
    let rows = buf.get_u32() as usize;
    let cols = buf.get_u32() as usize;
    // `count * rows * cols` wraps on hostile headers (three u32::MAX
    // fields overflow even u64), which would let the bounds check pass
    // and the pixel loop run off the payload. Checked arithmetic turns
    // that into Truncated. A zero-area image shape with a nonzero count
    // is rejected too: no payload can back it, and trusting the header's
    // `count` there would attempt a giant allocation.
    let need = count
        .checked_mul(rows)
        .and_then(|n| n.checked_mul(cols))
        .ok_or(IdxError::Truncated)?;
    if buf.remaining() < need || (count > 0 && rows * cols == 0) {
        return Err(IdxError::Truncated);
    }
    let mut images = Vec::with_capacity(count);
    for _ in 0..count {
        let mut pixels = Vec::with_capacity(rows * cols);
        for _ in 0..rows * cols {
            pixels.push(buf.get_u8() as f32 / 255.0);
        }
        images.push(
            Tensor::from_vec(pixels, [1, rows, cols]).expect("length matches by construction"),
        );
    }
    Ok((images, rows, cols))
}

/// Reads an IDX label file (`magic 0x801`).
///
/// # Errors
///
/// Returns [`IdxError`] on I/O failure, a wrong magic or truncation.
pub fn read_labels<R: Read>(mut reader: R) -> Result<Vec<usize>, IdxError> {
    let mut raw = Vec::new();
    reader.read_to_end(&mut raw)?;
    let mut buf = ByteReader::new(&raw);
    if buf.remaining() < 8 {
        return Err(IdxError::Truncated);
    }
    let magic = buf.get_u32();
    if magic != MAGIC_LABELS {
        return Err(IdxError::BadMagic {
            found: magic,
            expected: MAGIC_LABELS,
        });
    }
    let count = buf.get_u32() as usize;
    if buf.remaining() < count {
        return Err(IdxError::Truncated);
    }
    Ok((0..count).map(|_| buf.get_u8() as usize).collect())
}

/// Assembles a dataset from paired IDX image and label streams.
///
/// # Errors
///
/// Returns [`IdxError`] on any read failure or count mismatch.
pub fn read_dataset<R1: Read, R2: Read>(
    images: R1,
    labels: R2,
    num_classes: usize,
) -> Result<Dataset, IdxError> {
    let (imgs, _, _) = read_images(images)?;
    let lbls = read_labels(labels)?;
    if imgs.len() != lbls.len() {
        return Err(IdxError::CountMismatch {
            images: imgs.len(),
            labels: lbls.len(),
        });
    }
    Ok(Dataset::new(imgs, lbls, num_classes)?)
}

/// Writes images in IDX format; values are clamped to `[0, 1]` and scaled
/// to bytes.
///
/// # Errors
///
/// Returns [`IdxError::Io`] on write failure.
///
/// # Panics
///
/// Panics when images are not rank-3 `[1, rows, cols]` tensors of a
/// common size.
pub fn write_images<W: Write>(mut writer: W, images: &[Tensor]) -> Result<(), IdxError> {
    let (rows, cols) = images
        .first()
        .map(|t| {
            assert_eq!(t.shape().rank(), 3, "IDX images are [1, rows, cols]");
            (t.dims()[1], t.dims()[2])
        })
        .unwrap_or((0, 0));
    let mut buf = ByteWriter::with_capacity(16 + images.len() * rows * cols);
    buf.put_u32(MAGIC_IMAGES);
    buf.put_u32(images.len() as u32);
    buf.put_u32(rows as u32);
    buf.put_u32(cols as u32);
    for img in images {
        assert_eq!(img.dims(), &[1, rows, cols], "inconsistent image shapes");
        for &v in img.as_slice() {
            buf.put_u8((v.clamp(0.0, 1.0) * 255.0).round() as u8);
        }
    }
    writer.write_all(buf.as_slice())?;
    Ok(())
}

/// Writes labels in IDX format.
///
/// # Errors
///
/// Returns [`IdxError::Io`] on write failure.
pub fn write_labels<W: Write>(mut writer: W, labels: &[usize]) -> Result<(), IdxError> {
    let mut buf = ByteWriter::with_capacity(8 + labels.len());
    buf.put_u32(MAGIC_LABELS);
    buf.put_u32(labels.len() as u32);
    for &l in labels {
        buf.put_u8(l as u8);
    }
    writer.write_all(buf.as_slice())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mnist_synth::{generate, MnistSynthConfig};

    #[test]
    fn roundtrip_synthetic_dataset() {
        let ds = generate(
            &MnistSynthConfig {
                per_class: 2,
                ..MnistSynthConfig::default()
            },
            4,
        )
        .unwrap();
        let images: Vec<Tensor> = ds.iter().map(|(img, _)| img.clone()).collect();
        let labels: Vec<usize> = ds.iter().map(|(_, l)| l).collect();

        let mut img_bytes = Vec::new();
        write_images(&mut img_bytes, &images).unwrap();
        let mut lbl_bytes = Vec::new();
        write_labels(&mut lbl_bytes, &labels).unwrap();

        let back = read_dataset(&img_bytes[..], &lbl_bytes[..], 10).unwrap();
        assert_eq!(back.len(), ds.len());
        assert_eq!(back.class_counts(), ds.class_counts());
        // Pixel quantisation to u8 loses at most 1/510 per pixel.
        for ((a, la), (b, lb)) in back.iter().zip(ds.iter()) {
            assert_eq!(la, lb);
            for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
                assert!((x - y).abs() <= 1.0 / 255.0 + 1e-6);
            }
        }
    }

    #[test]
    fn header_format_exact() {
        let images = vec![Tensor::full([1, 2, 2], 1.0)];
        let mut bytes = Vec::new();
        write_images(&mut bytes, &images).unwrap();
        assert_eq!(&bytes[..4], &[0, 0, 8, 3], "big-endian magic 0x803");
        assert_eq!(&bytes[4..8], &[0, 0, 0, 1], "count 1");
        assert_eq!(&bytes[8..12], &[0, 0, 0, 2], "rows 2");
        assert_eq!(&bytes[12..16], &[0, 0, 0, 2], "cols 2");
        assert_eq!(&bytes[16..], &[255, 255, 255, 255]);
    }

    #[test]
    fn bad_magic_rejected() {
        let bytes = [0u8, 0, 8, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0];
        assert!(matches!(
            read_images(&bytes[..]),
            Err(IdxError::BadMagic { .. })
        ));
        let bytes = [0u8, 0, 8, 3, 0, 0, 0, 0];
        assert!(matches!(
            read_labels(&bytes[..]),
            Err(IdxError::BadMagic { .. })
        ));
    }

    #[test]
    fn truncation_detected() {
        // Header promises one 28×28 image but supplies no payload.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC_IMAGES.to_be_bytes());
        bytes.extend_from_slice(&1u32.to_be_bytes());
        bytes.extend_from_slice(&28u32.to_be_bytes());
        bytes.extend_from_slice(&28u32.to_be_bytes());
        assert!(matches!(read_images(&bytes[..]), Err(IdxError::Truncated)));
        assert!(matches!(read_images(&bytes[..3]), Err(IdxError::Truncated)));
    }

    #[test]
    fn hostile_header_overflow_rejected() {
        // count = rows = cols = u32::MAX: the naive size product wraps
        // (it overflows u64), so an unchecked bounds test would pass and
        // the reader would walk off the 4-byte payload.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC_IMAGES.to_be_bytes());
        bytes.extend_from_slice(&u32::MAX.to_be_bytes());
        bytes.extend_from_slice(&u32::MAX.to_be_bytes());
        bytes.extend_from_slice(&u32::MAX.to_be_bytes());
        bytes.extend_from_slice(&[7, 7, 7, 7]);
        assert!(matches!(read_images(&bytes[..]), Err(IdxError::Truncated)));
    }

    #[test]
    fn zero_area_images_with_nonzero_count_rejected() {
        // A 0×0 image shape makes the size product 0 for any count, so
        // the header could claim billions of images backed by nothing.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC_IMAGES.to_be_bytes());
        bytes.extend_from_slice(&u32::MAX.to_be_bytes());
        bytes.extend_from_slice(&0u32.to_be_bytes());
        bytes.extend_from_slice(&0u32.to_be_bytes());
        assert!(matches!(read_images(&bytes[..]), Err(IdxError::Truncated)));
    }

    #[test]
    fn truncated_labels_detected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC_LABELS.to_be_bytes());
        bytes.extend_from_slice(&100u32.to_be_bytes());
        bytes.extend_from_slice(&[1, 2, 3]);
        assert!(matches!(read_labels(&bytes[..]), Err(IdxError::Truncated)));
        assert!(matches!(read_labels(&bytes[..5]), Err(IdxError::Truncated)));
    }

    #[test]
    fn count_mismatch_detected() {
        let mut img_bytes = Vec::new();
        write_images(&mut img_bytes, &[Tensor::zeros([1, 2, 2])]).unwrap();
        let mut lbl_bytes = Vec::new();
        write_labels(&mut lbl_bytes, &[0, 1]).unwrap();
        assert!(matches!(
            read_dataset(&img_bytes[..], &lbl_bytes[..], 10),
            Err(IdxError::CountMismatch { .. })
        ));
    }

    #[test]
    fn empty_files_roundtrip() {
        let mut img_bytes = Vec::new();
        write_images(&mut img_bytes, &[]).unwrap();
        let (imgs, _, _) = read_images(&img_bytes[..]).unwrap();
        assert!(imgs.is_empty());
    }
}
