//! # scnn-data
//!
//! Datasets for the `scnn` workspace: class-conditioned synthetic MNIST
//! and CIFAR-10 generators, plus loaders/writers for the real on-disk
//! formats (IDX and the CIFAR-10 binary batches).
//!
//! The paper evaluates on the genuine MNIST and CIFAR-10 files; this
//! environment does not ship them, so [`mnist_synth`] and [`cifar_synth`]
//! produce procedural stand-ins with the statistical structure the
//! experiments rely on — class-characteristic spatial patterns with
//! within-class variation (see `DESIGN.md` §2 for the substitution
//! argument). When the real files are present, [`idx`] and [`cifar_bin`]
//! feed them into the identical pipeline.
//!
//! # Examples
//!
//! ```
//! use scnn_data::mnist_synth::{generate, MnistSynthConfig};
//!
//! # fn main() -> Result<(), scnn_data::DatasetError> {
//! let ds = generate(&MnistSynthConfig { per_class: 10, ..Default::default() }, 42)?;
//! // The paper's §5.2 protocol uses four categories.
//! let four = ds.select_classes(&[0, 1, 2, 3]);
//! let (train, test) = four.split(0.8, 42);
//! assert_eq!(train.num_classes(), 4);
//! assert!(!test.is_empty());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod augment;
pub mod cifar_bin;
pub mod cifar_synth;
pub mod dataset;
pub mod idx;
pub mod mnist_synth;

pub use augment::{apply as augment_apply, expand as augment_expand, Augmentation};
pub use cifar_bin::CifarBinError;
pub use dataset::{Dataset, DatasetError};
pub use idx::IdxError;
