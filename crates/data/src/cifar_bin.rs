//! The CIFAR-10 binary format (`data_batch_*.bin`): one record per image,
//! a label byte followed by 3072 channel-planar pixel bytes.

use crate::dataset::{Dataset, DatasetError};
use scnn_tensor::Tensor;
use std::error::Error;
use std::fmt;
use std::io::{self, Read, Write};

/// Bytes per record: 1 label + 3 × 32 × 32 pixels.
pub const RECORD_BYTES: usize = 1 + 3 * 32 * 32;

/// Error reading CIFAR binary data.
#[derive(Debug)]
pub enum CifarBinError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The stream length is not a whole number of records.
    RaggedFile {
        /// Total bytes found.
        bytes: usize,
    },
    /// A label byte exceeds 9.
    BadLabel {
        /// Record index.
        record: usize,
        /// The offending label byte.
        label: u8,
    },
    /// The assembled dataset failed validation.
    Dataset(DatasetError),
}

impl fmt::Display for CifarBinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CifarBinError::Io(e) => write!(f, "i/o error: {e}"),
            CifarBinError::RaggedFile { bytes } => {
                write!(f, "{bytes} bytes is not a multiple of {RECORD_BYTES}")
            }
            CifarBinError::BadLabel { record, label } => {
                write!(f, "record {record} has label {label} > 9")
            }
            CifarBinError::Dataset(e) => write!(f, "dataset error: {e}"),
        }
    }
}

impl Error for CifarBinError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CifarBinError::Io(e) => Some(e),
            CifarBinError::Dataset(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CifarBinError {
    fn from(e: io::Error) -> Self {
        CifarBinError::Io(e)
    }
}

impl From<DatasetError> for CifarBinError {
    fn from(e: DatasetError) -> Self {
        CifarBinError::Dataset(e)
    }
}

/// Reads a CIFAR-10 binary batch into a dataset; pixels scale to `[0, 1]`.
///
/// A `&mut` reference can be passed as the reader.
///
/// # Errors
///
/// Returns [`CifarBinError`] on I/O failure, a ragged file or an invalid
/// label.
pub fn read_batch<R: Read>(mut reader: R) -> Result<Dataset, CifarBinError> {
    let mut raw = Vec::new();
    reader.read_to_end(&mut raw)?;
    if raw.len() % RECORD_BYTES != 0 {
        return Err(CifarBinError::RaggedFile { bytes: raw.len() });
    }
    let count = raw.len() / RECORD_BYTES;
    let mut images = Vec::with_capacity(count);
    let mut labels = Vec::with_capacity(count);
    for rec in 0..count {
        let base = rec * RECORD_BYTES;
        let label = raw[base];
        if label > 9 {
            return Err(CifarBinError::BadLabel { record: rec, label });
        }
        let pixels: Vec<f32> = raw[base + 1..base + RECORD_BYTES]
            .iter()
            .map(|&b| b as f32 / 255.0)
            .collect();
        images.push(Tensor::from_vec(pixels, [3, 32, 32]).expect("record length fixed"));
        labels.push(label as usize);
    }
    Ok(Dataset::new(images, labels, 10)?)
}

/// Writes a dataset as a CIFAR-10 binary batch.
///
/// # Errors
///
/// Returns [`CifarBinError::Io`] on write failure.
///
/// # Panics
///
/// Panics when an image is not `[3, 32, 32]` or a label exceeds 9.
pub fn write_batch<W: Write>(mut writer: W, dataset: &Dataset) -> Result<(), CifarBinError> {
    let mut buf = Vec::with_capacity(dataset.len() * RECORD_BYTES);
    for (img, label) in dataset.iter() {
        assert!(label <= 9, "CIFAR-10 labels are 0..=9");
        assert_eq!(img.dims(), &[3, 32, 32], "CIFAR-10 images are 3x32x32");
        buf.push(label as u8);
        for &v in img.as_slice() {
            buf.push((v.clamp(0.0, 1.0) * 255.0).round() as u8);
        }
    }
    writer.write_all(&buf)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cifar_synth::{generate, CifarSynthConfig};

    #[test]
    fn roundtrip() {
        let ds = generate(
            &CifarSynthConfig {
                per_class: 2,
                ..CifarSynthConfig::default()
            },
            1,
        )
        .unwrap();
        let mut bytes = Vec::new();
        write_batch(&mut bytes, &ds).unwrap();
        assert_eq!(bytes.len(), ds.len() * RECORD_BYTES);
        let back = read_batch(&bytes[..]).unwrap();
        assert_eq!(back.len(), ds.len());
        assert_eq!(back.class_counts(), ds.class_counts());
        for ((a, la), (b, lb)) in back.iter().zip(ds.iter()) {
            assert_eq!(la, lb);
            for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
                assert!((x - y).abs() <= 1.0 / 255.0 + 1e-6);
            }
        }
    }

    #[test]
    fn ragged_file_rejected() {
        let bytes = vec![0u8; RECORD_BYTES + 5];
        assert!(matches!(
            read_batch(&bytes[..]),
            Err(CifarBinError::RaggedFile { .. })
        ));
    }

    #[test]
    fn bad_label_rejected() {
        let mut bytes = vec![0u8; RECORD_BYTES];
        bytes[0] = 10;
        assert!(matches!(
            read_batch(&bytes[..]),
            Err(CifarBinError::BadLabel {
                record: 0,
                label: 10
            })
        ));
    }

    #[test]
    fn empty_stream_is_empty_dataset() {
        let ds = read_batch(&[][..]).unwrap();
        assert!(ds.is_empty());
    }
}
