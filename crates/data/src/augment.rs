//! Image augmentation: the standard label-preserving transforms used to
//! stretch small training sets (and, in this workspace, to grow the
//! measurement pool for high-sample leakage campaigns).

use crate::dataset::{Dataset, DatasetError};
use scnn_rng::{ChaCha8Rng, Rng, SeedableRng};
use scnn_tensor::Tensor;

/// A label-preserving image transform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Augmentation {
    /// Shift by `(dy, dx)` pixels (positive = down/right); vacated pixels
    /// become zero.
    Shift {
        /// Vertical shift in pixels.
        dy: i32,
        /// Horizontal shift in pixels.
        dx: i32,
    },
    /// Mirror left–right.
    FlipHorizontal,
    /// Add uniform noise in `[-amplitude, +amplitude]` to non-zero pixels,
    /// clamped to `[0, 1]`. Zero pixels stay exactly zero so the sparsity
    /// structure (the side-channel signal) is preserved.
    Noise {
        /// Noise amplitude.
        amplitude: f32,
        /// RNG seed.
        seed: u64,
    },
    /// Scale every pixel by a factor, clamped to `[0, 1]`.
    Brightness {
        /// Multiplicative factor.
        factor: f32,
    },
}

/// Applies one augmentation to a `[C, H, W]` image.
///
/// # Errors
///
/// Returns a [`DatasetError::ShapeMismatch`]-style error through the
/// tensor layer only on rank violations; in practice the function accepts
/// any rank-3 tensor.
///
/// # Panics
///
/// Panics when the image is not rank 3.
pub fn apply(image: &Tensor, augmentation: Augmentation) -> Tensor {
    assert_eq!(image.shape().rank(), 3, "augmentations expect [C, H, W]");
    let (c, h, w) = (image.dims()[0], image.dims()[1], image.dims()[2]);
    let src = image.as_slice();
    match augmentation {
        Augmentation::Shift { dy, dx } => {
            let mut out = vec![0.0f32; src.len()];
            for ch in 0..c {
                for y in 0..h {
                    let sy = y as i32 - dy;
                    if sy < 0 || sy >= h as i32 {
                        continue;
                    }
                    for x in 0..w {
                        let sx = x as i32 - dx;
                        if sx < 0 || sx >= w as i32 {
                            continue;
                        }
                        out[(ch * h + y) * w + x] = src[(ch * h + sy as usize) * w + sx as usize];
                    }
                }
            }
            Tensor::from_vec(out, image.shape().clone()).expect("same length")
        }
        Augmentation::FlipHorizontal => {
            let mut out = vec![0.0f32; src.len()];
            for ch in 0..c {
                for y in 0..h {
                    for x in 0..w {
                        out[(ch * h + y) * w + x] = src[(ch * h + y) * w + (w - 1 - x)];
                    }
                }
            }
            Tensor::from_vec(out, image.shape().clone()).expect("same length")
        }
        Augmentation::Noise { amplitude, seed } => {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let out: Vec<f32> = src
                .iter()
                .map(|&v| {
                    if v == 0.0 {
                        0.0
                    } else {
                        (v + rng.gen_range(-amplitude..=amplitude)).clamp(0.0, 1.0)
                    }
                })
                .collect();
            Tensor::from_vec(out, image.shape().clone()).expect("same length")
        }
        Augmentation::Brightness { factor } => image.map(|v| (v * factor).clamp(0.0, 1.0)),
    }
}

/// Expands a dataset: for every image, keeps the original and adds
/// `per_image` jittered copies (random small shifts + noise), seeded by
/// `seed`.
///
/// # Errors
///
/// Propagates [`DatasetError`] from dataset reconstruction.
pub fn expand(dataset: &Dataset, per_image: usize, seed: u64) -> Result<Dataset, DatasetError> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut images = Vec::with_capacity(dataset.len() * (1 + per_image));
    let mut labels = Vec::with_capacity(dataset.len() * (1 + per_image));
    for (image, label) in dataset.iter() {
        images.push(image.clone());
        labels.push(label);
        for _ in 0..per_image {
            let shifted = apply(
                image,
                Augmentation::Shift {
                    dy: rng.gen_range(-2..=2),
                    dx: rng.gen_range(-2..=2),
                },
            );
            let noisy = apply(
                &shifted,
                Augmentation::Noise {
                    amplitude: 0.05,
                    seed: rng.gen(),
                },
            );
            images.push(noisy);
            labels.push(label);
        }
    }
    Dataset::new(images, labels, dataset.num_classes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mnist_synth::{generate, MnistSynthConfig};

    fn img() -> Tensor {
        Tensor::from_vec(
            vec![
                0.0, 1.0, 0.0, //
                0.0, 0.5, 0.0, //
                0.0, 0.0, 0.9,
            ],
            [1, 3, 3],
        )
        .unwrap()
    }

    #[test]
    fn shift_moves_pixels_and_zero_fills() {
        let shifted = apply(&img(), Augmentation::Shift { dy: 1, dx: 0 });
        assert_eq!(shifted.get(&[0, 1, 1]).unwrap(), 1.0, "moved down");
        assert_eq!(shifted.get(&[0, 0, 1]).unwrap(), 0.0, "vacated row zeroed");
        assert_eq!(shifted.get(&[0, 2, 1]).unwrap(), 0.5);
        // The bottom-row pixel (0.9) shifted past the edge and disappeared.
        assert!(!shifted.as_slice().contains(&0.9));
    }

    #[test]
    fn shift_zero_is_identity() {
        assert_eq!(apply(&img(), Augmentation::Shift { dy: 0, dx: 0 }), img());
    }

    #[test]
    fn flip_is_involutive() {
        let flipped = apply(&img(), Augmentation::FlipHorizontal);
        assert_ne!(flipped, img());
        assert_eq!(apply(&flipped, Augmentation::FlipHorizontal), img());
    }

    #[test]
    fn noise_preserves_zero_structure() {
        let noisy = apply(
            &img(),
            Augmentation::Noise {
                amplitude: 0.2,
                seed: 7,
            },
        );
        for (a, b) in img().as_slice().iter().zip(noisy.as_slice()) {
            if *a == 0.0 {
                assert_eq!(*b, 0.0, "zeros stay exactly zero");
            } else {
                assert!((a - b).abs() <= 0.2 + 1e-6);
            }
        }
        assert_eq!(noisy.sparsity(), img().sparsity());
    }

    #[test]
    fn brightness_clamps() {
        let bright = apply(&img(), Augmentation::Brightness { factor: 3.0 });
        assert!(bright.max() <= 1.0);
        assert_eq!(bright.get(&[0, 0, 1]).unwrap(), 1.0);
        let dim = apply(&img(), Augmentation::Brightness { factor: 0.5 });
        assert_eq!(dim.get(&[0, 1, 1]).unwrap(), 0.25);
    }

    #[test]
    fn expand_multiplies_dataset() {
        let ds = generate(
            &MnistSynthConfig {
                per_class: 2,
                side: 10,
                ..MnistSynthConfig::default()
            },
            3,
        )
        .unwrap();
        let big = expand(&ds, 3, 11).unwrap();
        assert_eq!(big.len(), ds.len() * 4);
        assert_eq!(
            big.class_counts(),
            ds.class_counts().iter().map(|c| c * 4).collect::<Vec<_>>()
        );
        // Deterministic.
        assert_eq!(expand(&ds, 3, 11).unwrap(), big);
        assert_ne!(expand(&ds, 3, 12).unwrap(), big);
    }
}
