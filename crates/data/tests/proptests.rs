//! Property-based tests for dataset containers and on-disk formats.

use proptest::prelude::*;
use scnn_data::{cifar_bin, idx, Dataset};
use scnn_tensor::Tensor;

fn labelled_images(classes: usize) -> impl Strategy<Value = (Vec<Tensor>, Vec<usize>)> {
    prop::collection::vec(
        (prop::collection::vec(0.0f32..1.0, 16), 0..classes),
        1..30,
    )
    .prop_map(|entries| {
        let mut images = Vec::new();
        let mut labels = Vec::new();
        for (pixels, label) in entries {
            images.push(Tensor::from_vec(pixels, [1, 4, 4]).expect("16 pixels"));
            labels.push(label);
        }
        (images, labels)
    })
}

proptest! {
    #[test]
    fn split_partitions_every_class((images, labels) in labelled_images(4), frac in 0.0f64..1.0, seed in 0u64..100) {
        let ds = Dataset::new(images, labels, 4).unwrap();
        let (train, test) = ds.split(frac, seed);
        prop_assert_eq!(train.len() + test.len(), ds.len());
        let total = ds.class_counts();
        let t = train.class_counts();
        let e = test.class_counts();
        for c in 0..4 {
            prop_assert_eq!(t[c] + e[c], total[c], "class {} partition", c);
        }
    }

    #[test]
    fn select_classes_remaps_into_range((images, labels) in labelled_images(6)) {
        let ds = Dataset::new(images, labels, 6).unwrap();
        let sel = ds.select_classes(&[5, 1, 3]);
        prop_assert_eq!(sel.num_classes(), 3);
        for (_, l) in sel.iter() {
            prop_assert!(l < 3);
        }
        let expected: usize = ds.class_counts()[5] + ds.class_counts()[1] + ds.class_counts()[3];
        prop_assert_eq!(sel.len(), expected);
    }

    #[test]
    fn idx_roundtrip_within_quantisation((images, labels) in labelled_images(10)) {
        let mut img_bytes = Vec::new();
        idx::write_images(&mut img_bytes, &images).unwrap();
        let mut lbl_bytes = Vec::new();
        idx::write_labels(&mut lbl_bytes, &labels).unwrap();
        let back = idx::read_dataset(&img_bytes[..], &lbl_bytes[..], 10).unwrap();
        prop_assert_eq!(back.len(), images.len());
        for ((img, l), (orig, ol)) in back.iter().zip(images.iter().zip(labels.iter())) {
            prop_assert_eq!(l, *ol);
            for (a, b) in img.as_slice().iter().zip(orig.as_slice()) {
                prop_assert!((a - b).abs() <= 1.0 / 255.0 + 1e-6);
            }
        }
    }

    #[test]
    fn cifar_bin_roundtrip(count in 1usize..8, seed in 0u64..100) {
        let images: Vec<Tensor> = (0..count)
            .map(|i| {
                Tensor::from_vec(
                    (0..3 * 32 * 32)
                        .map(|p| (((p as u64 + i as u64 * 131) * (seed + 1)) % 256) as f32 / 255.0)
                        .collect(),
                    [3, 32, 32],
                )
                .expect("fixed size")
            })
            .collect();
        let labels: Vec<usize> = (0..count).map(|i| i % 10).collect();
        let ds = Dataset::new(images, labels, 10).unwrap();
        let mut bytes = Vec::new();
        cifar_bin::write_batch(&mut bytes, &ds).unwrap();
        prop_assert_eq!(bytes.len(), count * cifar_bin::RECORD_BYTES);
        let back = cifar_bin::read_batch(&bytes[..]).unwrap();
        prop_assert_eq!(back.class_counts(), ds.class_counts());
    }

    #[test]
    fn normalize_centres_data((images, labels) in labelled_images(3)) {
        let mut ds = Dataset::new(images, labels, 3).unwrap();
        let _ = ds.normalize();
        let n: usize = ds.iter().map(|(img, _)| img.len()).sum();
        if n > 0 {
            let mean: f32 = ds.iter().map(|(img, _)| img.sum()).sum::<f32>() / n as f32;
            prop_assert!(mean.abs() < 1e-3, "post-normalisation mean {}", mean);
        }
    }
}
