//! Property-based tests for dataset containers and on-disk formats.
//!
//! Each property runs over `CASES` deterministically generated inputs
//! from a per-test seeded [`ChaCha8Rng`]; a failing case prints its index
//! and reproduces exactly.

use scnn_data::{cifar_bin, idx, Dataset};
use scnn_rng::{ChaCha8Rng, Rng, SeedableRng};
use scnn_tensor::Tensor;

const CASES: usize = 256;

fn labelled_images(rng: &mut ChaCha8Rng, classes: usize) -> (Vec<Tensor>, Vec<usize>) {
    let count = rng.gen_range(1usize..30);
    let mut images = Vec::new();
    let mut labels = Vec::new();
    for _ in 0..count {
        let pixels: Vec<f32> = (0..16).map(|_| rng.gen_range(0.0f32..1.0)).collect();
        images.push(Tensor::from_vec(pixels, [1, 4, 4]).expect("16 pixels"));
        labels.push(rng.gen_range(0..classes));
    }
    (images, labels)
}

#[test]
fn split_partitions_every_class() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xda7a01);
    for case in 0..CASES {
        let (images, labels) = labelled_images(&mut rng, 4);
        let frac = rng.gen_range(0.0f64..1.0);
        let seed = rng.gen_range(0u64..100);
        let ds = Dataset::new(images, labels, 4).unwrap();
        let (train, test) = ds.split(frac, seed);
        assert_eq!(train.len() + test.len(), ds.len(), "case {case}");
        let total = ds.class_counts();
        let t = train.class_counts();
        let e = test.class_counts();
        for c in 0..4 {
            assert_eq!(t[c] + e[c], total[c], "case {case}: class {c} partition");
        }
    }
}

#[test]
fn select_classes_remaps_into_range() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xda7a02);
    for case in 0..CASES {
        let (images, labels) = labelled_images(&mut rng, 6);
        let ds = Dataset::new(images, labels, 6).unwrap();
        let sel = ds.select_classes(&[5, 1, 3]);
        assert_eq!(sel.num_classes(), 3, "case {case}");
        for (_, l) in sel.iter() {
            assert!(l < 3, "case {case}");
        }
        let expected: usize = ds.class_counts()[5] + ds.class_counts()[1] + ds.class_counts()[3];
        assert_eq!(sel.len(), expected, "case {case}");
    }
}

#[test]
fn idx_roundtrip_within_quantisation() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xda7a03);
    for case in 0..CASES {
        let (images, labels) = labelled_images(&mut rng, 10);
        let mut img_bytes = Vec::new();
        idx::write_images(&mut img_bytes, &images).unwrap();
        let mut lbl_bytes = Vec::new();
        idx::write_labels(&mut lbl_bytes, &labels).unwrap();
        let back = idx::read_dataset(&img_bytes[..], &lbl_bytes[..], 10).unwrap();
        assert_eq!(back.len(), images.len(), "case {case}");
        for ((img, l), (orig, ol)) in back.iter().zip(images.iter().zip(labels.iter())) {
            assert_eq!(l, *ol, "case {case}");
            for (a, b) in img.as_slice().iter().zip(orig.as_slice()) {
                assert!((a - b).abs() <= 1.0 / 255.0 + 1e-6, "case {case}");
            }
        }
    }
}

#[test]
fn cifar_bin_roundtrip() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xda7a04);
    for case in 0..CASES {
        let count = rng.gen_range(1usize..8);
        let seed = rng.gen_range(0u64..100);
        let images: Vec<Tensor> = (0..count)
            .map(|i| {
                Tensor::from_vec(
                    (0..3 * 32 * 32)
                        .map(|p| (((p as u64 + i as u64 * 131) * (seed + 1)) % 256) as f32 / 255.0)
                        .collect(),
                    [3, 32, 32],
                )
                .expect("fixed size")
            })
            .collect();
        let labels: Vec<usize> = (0..count).map(|i| i % 10).collect();
        let ds = Dataset::new(images, labels, 10).unwrap();
        let mut bytes = Vec::new();
        cifar_bin::write_batch(&mut bytes, &ds).unwrap();
        assert_eq!(bytes.len(), count * cifar_bin::RECORD_BYTES, "case {case}");
        let back = cifar_bin::read_batch(&bytes[..]).unwrap();
        assert_eq!(back.class_counts(), ds.class_counts(), "case {case}");
    }
}

#[test]
fn normalize_centres_data() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xda7a05);
    for case in 0..CASES {
        let (images, labels) = labelled_images(&mut rng, 3);
        let mut ds = Dataset::new(images, labels, 3).unwrap();
        let _ = ds.normalize();
        let n: usize = ds.iter().map(|(img, _)| img.len()).sum();
        if n > 0 {
            let mean: f32 = ds.iter().map(|(img, _)| img.sum()).sum::<f32>() / n as f32;
            assert!(
                mean.abs() < 1e-3,
                "case {case}: post-normalisation mean {mean}"
            );
        }
    }
}
