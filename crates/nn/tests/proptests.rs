//! Property-based tests for the CNN engine: the traced execution path
//! must be numerically identical to the reference path for arbitrary
//! inputs and layer geometries, and gradients must stay sane.

use proptest::prelude::*;
use scnn_nn::prelude::*;
use scnn_nn::{loss, models};
use scnn_tensor::Tensor;
use scnn_uarch::CountingProbe;

fn image(c: usize, side: usize) -> impl Strategy<Value = Tensor> {
    prop::collection::vec(
        prop_oneof![3 => Just(0.0f32), 2 => 0.01f32..1.0f32],
        c * side * side,
    )
    .prop_map(move |data| Tensor::from_vec(data, [c, side, side]).expect("length matches"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn conv_traced_equals_reference(
        img in image(2, 6),
        style in prop_oneof![Just(ConvStyle::ZeroSkip), Just(ConvStyle::Dense)],
        seed in 0u64..100,
    ) {
        let mut conv = Conv2d::new(2, 3, 3, style, seed);
        let want = conv.forward(&img, Mode::Infer).unwrap();
        let mut probe = CountingProbe::new();
        let mut ctx = scnn_nn::ExecContext::new(&mut probe);
        let region = ctx.alloc_activation(img.len());
        let (got, _) = conv.forward_traced(&img, region, &mut ctx).unwrap();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn dense_traced_equals_reference(
        data in prop::collection::vec(prop_oneof![Just(0.0f32), -2.0f32..2.0], 1..24),
        style in prop_oneof![Just(DenseStyle::ZeroSkip), Just(DenseStyle::Dense)],
        seed in 0u64..100,
    ) {
        let x = Tensor::from_slice(&data);
        let mut dense = Dense::new(data.len(), 5, style, seed);
        let want = dense.forward(&x, Mode::Infer).unwrap();
        let mut probe = CountingProbe::new();
        let mut ctx = scnn_nn::ExecContext::new(&mut probe);
        let region = ctx.alloc_activation(x.len());
        let (got, _) = dense.forward_traced(&x, region, &mut ctx).unwrap();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn whole_network_traced_equals_reference(img in image(1, 10), seed in 0u64..50) {
        let mut net = models::small_cnn(1, 10, 4, seed);
        let want = net.infer(&img).unwrap();
        let mut probe = CountingProbe::new();
        let got = net.infer_traced(&img, &mut probe).unwrap();
        prop_assert_eq!(got, want);
        prop_assert!(probe.instructions() > 0);
    }

    #[test]
    fn constant_time_footprint_ignores_input(img in image(1, 10), seed in 0u64..50) {
        let mut net = models::small_cnn(1, 10, 4, seed);
        net.set_constant_time(true);
        let count = |net: &Network, x: &Tensor| {
            let mut probe = CountingProbe::new();
            net.infer_traced(x, &mut probe).unwrap();
            (probe.loads, probe.stores, probe.branches)
        };
        let a = count(&net, &img);
        let b = count(&net, &Tensor::zeros([1, 10, 10]));
        prop_assert_eq!(a, b, "constant-time kernels must have static footprints");
    }

    #[test]
    fn leaky_event_count_weakly_monotone_in_sparsity(seed in 0u64..50) {
        // All-zero input never produces more events than an all-dense one.
        let net = models::small_cnn(1, 10, 4, seed);
        let count = |x: &Tensor| {
            let mut probe = CountingProbe::new();
            net.infer_traced(x, &mut probe).unwrap();
            probe.loads + probe.stores
        };
        prop_assert!(count(&Tensor::zeros([1, 10, 10])) < count(&Tensor::full([1, 10, 10], 1.0)));
    }

    #[test]
    fn relu_idempotent_and_nonnegative(data in prop::collection::vec(-5.0f32..5.0, 1..40)) {
        let mut relu = Relu::default();
        let x = Tensor::from_slice(&data);
        let once = relu.forward(&x, Mode::Infer).unwrap();
        let twice = relu.forward(&once, Mode::Infer).unwrap();
        prop_assert_eq!(&once, &twice);
        prop_assert!(once.min() >= 0.0);
    }

    #[test]
    fn cross_entropy_gradient_sums_to_zero(
        data in prop::collection::vec(-8.0f32..8.0, 2..12),
        label_seed in 0usize..100,
    ) {
        let logits = Tensor::from_slice(&data);
        let label = label_seed % data.len();
        let (loss_value, grad) = loss::softmax_cross_entropy(&logits, label).unwrap();
        prop_assert!(loss_value >= -1e-5);
        prop_assert!(grad.sum().abs() < 1e-4);
        prop_assert!(grad.as_slice()[label] <= 0.0, "true-class gradient is non-positive");
    }

    #[test]
    fn maxpool_output_bounded_by_input(img in image(1, 8)) {
        let mut pool = MaxPool2d::new(2);
        let y = pool.forward(&img, Mode::Infer).unwrap();
        prop_assert!(y.max() <= img.max() + 1e-6);
        prop_assert!(y.min() >= img.min() - 1e-6);
    }
}
