//! Property-based tests for the CNN engine: the traced execution path
//! must be numerically identical to the reference path for arbitrary
//! inputs and layer geometries, and gradients must stay sane.
//!
//! Each property runs over `CASES` deterministically generated inputs
//! from a per-test seeded [`ChaCha8Rng`]; a failing case prints its index
//! and reproduces exactly. The count matches the suite's historical
//! proptest configuration (48 cases — network inference is costly).

use scnn_nn::prelude::*;
use scnn_nn::{loss, models};
use scnn_rng::{ChaCha8Rng, Rng, SeedableRng};
use scnn_tensor::Tensor;
use scnn_uarch::CountingProbe;

const CASES: usize = 48;

/// Mixed sparse/dense image: ~60% exact zeros, the paper's leaky regime.
fn image(rng: &mut ChaCha8Rng, c: usize, side: usize) -> Tensor {
    let data: Vec<f32> = (0..c * side * side)
        .map(|_| {
            if rng.gen_range(0u32..5) < 3 {
                0.0
            } else {
                rng.gen_range(0.01f32..1.0)
            }
        })
        .collect();
    Tensor::from_vec(data, [c, side, side]).expect("length matches")
}

#[test]
fn conv_traced_equals_reference() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x4e4e01);
    for case in 0..CASES {
        let img = image(&mut rng, 2, 6);
        let style = if rng.gen::<bool>() {
            ConvStyle::ZeroSkip
        } else {
            ConvStyle::Dense
        };
        let seed = rng.gen_range(0u64..100);
        let mut conv = Conv2d::new(2, 3, 3, style, seed);
        let want = conv.forward(&img, Mode::Infer).unwrap();
        let mut probe = CountingProbe::new();
        let mut ctx = scnn_nn::ExecContext::new(&mut probe);
        let region = ctx.alloc_activation(img.len());
        let (got, _) = conv.forward_traced(&img, region, &mut ctx).unwrap();
        assert_eq!(got, want, "case {case}");
    }
}

#[test]
fn dense_traced_equals_reference() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x4e4e02);
    for case in 0..CASES {
        let len = rng.gen_range(1usize..24);
        let data: Vec<f32> = (0..len)
            .map(|_| {
                if rng.gen::<bool>() {
                    0.0
                } else {
                    rng.gen_range(-2.0f32..2.0)
                }
            })
            .collect();
        let style = if rng.gen::<bool>() {
            DenseStyle::ZeroSkip
        } else {
            DenseStyle::Dense
        };
        let seed = rng.gen_range(0u64..100);
        let x = Tensor::from_slice(&data);
        let mut dense = Dense::new(data.len(), 5, style, seed);
        let want = dense.forward(&x, Mode::Infer).unwrap();
        let mut probe = CountingProbe::new();
        let mut ctx = scnn_nn::ExecContext::new(&mut probe);
        let region = ctx.alloc_activation(x.len());
        let (got, _) = dense.forward_traced(&x, region, &mut ctx).unwrap();
        assert_eq!(got, want, "case {case}");
    }
}

#[test]
fn whole_network_traced_equals_reference() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x4e4e03);
    for case in 0..CASES {
        let img = image(&mut rng, 1, 10);
        let seed = rng.gen_range(0u64..50);
        let mut net = models::small_cnn(1, 10, 4, seed);
        let want = net.infer(&img).unwrap();
        let mut probe = CountingProbe::new();
        let got = net.infer_traced(&img, &mut probe).unwrap();
        assert_eq!(got, want, "case {case}");
        assert!(probe.instructions() > 0, "case {case}");
    }
}

#[test]
fn constant_time_footprint_ignores_input() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x4e4e04);
    for case in 0..CASES {
        let img = image(&mut rng, 1, 10);
        let seed = rng.gen_range(0u64..50);
        let mut net = models::small_cnn(1, 10, 4, seed);
        net.set_constant_time(true);
        let count = |net: &Network, x: &Tensor| {
            let mut probe = CountingProbe::new();
            net.infer_traced(x, &mut probe).unwrap();
            (probe.loads, probe.stores, probe.branches)
        };
        let a = count(&net, &img);
        let b = count(&net, &Tensor::zeros([1, 10, 10]));
        assert_eq!(
            a, b,
            "case {case}: constant-time kernels must have static footprints"
        );
    }
}

#[test]
fn leaky_event_count_weakly_monotone_in_sparsity() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x4e4e05);
    for case in 0..CASES {
        let seed = rng.gen_range(0u64..50);
        // All-zero input never produces more events than an all-dense one.
        let net = models::small_cnn(1, 10, 4, seed);
        let count = |x: &Tensor| {
            let mut probe = CountingProbe::new();
            net.infer_traced(x, &mut probe).unwrap();
            probe.loads + probe.stores
        };
        assert!(
            count(&Tensor::zeros([1, 10, 10])) < count(&Tensor::full([1, 10, 10], 1.0)),
            "case {case}"
        );
    }
}

#[test]
fn relu_idempotent_and_nonnegative() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x4e4e06);
    for case in 0..CASES {
        let len = rng.gen_range(1usize..40);
        let data: Vec<f32> = (0..len).map(|_| rng.gen_range(-5.0f32..5.0)).collect();
        let mut relu = Relu::default();
        let x = Tensor::from_slice(&data);
        let once = relu.forward(&x, Mode::Infer).unwrap();
        let twice = relu.forward(&once, Mode::Infer).unwrap();
        assert_eq!(&once, &twice, "case {case}");
        assert!(once.min() >= 0.0, "case {case}");
    }
}

#[test]
fn cross_entropy_gradient_sums_to_zero() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x4e4e07);
    for case in 0..CASES {
        let len = rng.gen_range(2usize..12);
        let data: Vec<f32> = (0..len).map(|_| rng.gen_range(-8.0f32..8.0)).collect();
        let label = rng.gen_range(0usize..100) % data.len();
        let logits = Tensor::from_slice(&data);
        let (loss_value, grad) = loss::softmax_cross_entropy(&logits, label).unwrap();
        assert!(loss_value >= -1e-5, "case {case}");
        assert!(grad.sum().abs() < 1e-4, "case {case}");
        assert!(
            grad.as_slice()[label] <= 0.0,
            "case {case}: true-class gradient is non-positive"
        );
    }
}

#[test]
fn maxpool_output_bounded_by_input() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x4e4e08);
    for case in 0..CASES {
        let img = image(&mut rng, 1, 8);
        let mut pool = MaxPool2d::new(2);
        let y = pool.forward(&img, Mode::Infer).unwrap();
        assert!(y.max() <= img.max() + 1e-6, "case {case}");
        assert!(y.min() >= img.min() - 1e-6, "case {case}");
    }
}
