//! Property-based tests for model serialization: arbitrary layer specs
//! must round-trip exactly through the binary format.

use proptest::prelude::*;
use scnn_nn::spec::{decode, encode, LayerSpec};
use scnn_nn::{ConvStyle, DenseStyle, ReluStyle};
use scnn_tensor::Tensor;

fn tensor(dims: Vec<usize>) -> impl Strategy<Value = Tensor> {
    let len: usize = dims.iter().product();
    prop::collection::vec(-100.0f32..100.0, len)
        .prop_map(move |data| Tensor::from_vec(data, dims.clone()).expect("length matches"))
}

fn any_spec() -> impl Strategy<Value = LayerSpec> {
    prop_oneof![
        ((1usize..4, 1usize..4, 1usize..3), any::<bool>(), any::<bool>()).prop_flat_map(
            |((f, c, half_k), zero_skip, use_bias)| {
                let k = 2 * half_k + 1;
                (tensor(vec![f, c, k, k]), tensor(vec![f])).prop_map(move |(filters, bias)| {
                    LayerSpec::Conv2d {
                        filters,
                        bias,
                        style: if zero_skip { ConvStyle::ZeroSkip } else { ConvStyle::Dense },
                        use_bias,
                    }
                })
            }
        ),
        (any::<bool>(), 0.0f32..0.5).prop_map(|(branchy, threshold)| LayerSpec::Relu {
            style: if branchy { ReluStyle::Branchy } else { ReluStyle::Branchless },
            threshold,
        }),
        (1usize..5).prop_map(|k| LayerSpec::MaxPool2d { k }),
        Just(LayerSpec::Flatten),
        Just(LayerSpec::Softmax),
        ((1usize..12, 1usize..8), any::<bool>()).prop_flat_map(|((i, o), zero_skip)| {
            (tensor(vec![i, o]), tensor(vec![o])).prop_map(move |(weight, bias)| {
                LayerSpec::Dense {
                    weight,
                    bias,
                    style: if zero_skip { DenseStyle::ZeroSkip } else { DenseStyle::Dense },
                }
            })
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn specs_roundtrip_exactly(specs in prop::collection::vec(any_spec(), 0..8)) {
        let bytes = encode(&specs);
        let back = decode(&bytes).unwrap();
        prop_assert_eq!(back, specs);
    }

    #[test]
    fn any_truncation_is_rejected(specs in prop::collection::vec(any_spec(), 1..4), cut_frac in 0.0f64..1.0) {
        let bytes = encode(&specs);
        let cut = ((bytes.len() - 1) as f64 * cut_frac) as usize;
        prop_assert!(decode(&bytes[..cut]).is_err(), "cut at {} of {}", cut, bytes.len());
    }

    #[test]
    fn corrupting_the_magic_is_rejected(specs in prop::collection::vec(any_spec(), 0..3), byte in 0usize..4) {
        let mut bytes = encode(&specs);
        bytes[byte] ^= 0x55;
        prop_assert!(decode(&bytes).is_err());
    }
}
