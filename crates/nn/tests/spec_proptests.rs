//! Property-based tests for model serialization: arbitrary layer specs
//! must round-trip exactly through the binary format.
//!
//! Each property runs over `CASES` deterministically generated inputs
//! from a per-test seeded [`ChaCha8Rng`]; a failing case prints its index
//! and reproduces exactly. The count matches the suite's historical
//! proptest configuration (64 cases).

use scnn_nn::spec::{decode, encode, LayerSpec};
use scnn_nn::{ConvStyle, DenseStyle, ReluStyle};
use scnn_rng::{ChaCha8Rng, Rng, SeedableRng};
use scnn_tensor::Tensor;

const CASES: usize = 64;

fn tensor(rng: &mut ChaCha8Rng, dims: Vec<usize>) -> Tensor {
    let len: usize = dims.iter().product();
    let data: Vec<f32> = (0..len).map(|_| rng.gen_range(-100.0f32..100.0)).collect();
    Tensor::from_vec(data, dims).expect("length matches")
}

fn any_spec(rng: &mut ChaCha8Rng) -> LayerSpec {
    match rng.gen_range(0u32..6) {
        0 => {
            let f = rng.gen_range(1usize..4);
            let c = rng.gen_range(1usize..4);
            let k = 2 * rng.gen_range(1usize..3) + 1;
            let style = if rng.gen::<bool>() {
                ConvStyle::ZeroSkip
            } else {
                ConvStyle::Dense
            };
            let use_bias = rng.gen::<bool>();
            LayerSpec::Conv2d {
                filters: tensor(rng, vec![f, c, k, k]),
                bias: tensor(rng, vec![f]),
                style,
                use_bias,
            }
        }
        1 => LayerSpec::Relu {
            style: if rng.gen::<bool>() {
                ReluStyle::Branchy
            } else {
                ReluStyle::Branchless
            },
            threshold: rng.gen_range(0.0f32..0.5),
        },
        2 => LayerSpec::MaxPool2d {
            k: rng.gen_range(1usize..5),
        },
        3 => LayerSpec::Flatten,
        4 => LayerSpec::Softmax,
        _ => {
            let i = rng.gen_range(1usize..12);
            let o = rng.gen_range(1usize..8);
            let style = if rng.gen::<bool>() {
                DenseStyle::ZeroSkip
            } else {
                DenseStyle::Dense
            };
            LayerSpec::Dense {
                weight: tensor(rng, vec![i, o]),
                bias: tensor(rng, vec![o]),
                style,
            }
        }
    }
}

fn spec_vec(rng: &mut ChaCha8Rng, min: usize, max: usize) -> Vec<LayerSpec> {
    let count = rng.gen_range(min..max);
    (0..count).map(|_| any_spec(rng)).collect()
}

#[test]
fn specs_roundtrip_exactly() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x59ec01);
    for case in 0..CASES {
        let specs = spec_vec(&mut rng, 0, 8);
        let bytes = encode(&specs);
        let back = decode(&bytes).unwrap();
        assert_eq!(back, specs, "case {case}");
    }
}

#[test]
fn any_truncation_is_rejected() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x59ec02);
    for case in 0..CASES {
        let specs = spec_vec(&mut rng, 1, 4);
        let cut_frac = rng.gen_range(0.0f64..1.0);
        let bytes = encode(&specs);
        let cut = ((bytes.len() - 1) as f64 * cut_frac) as usize;
        assert!(
            decode(&bytes[..cut]).is_err(),
            "case {case}: cut at {cut} of {}",
            bytes.len()
        );
    }
}

#[test]
fn corrupting_the_magic_is_rejected() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x59ec03);
    for case in 0..CASES {
        let specs = spec_vec(&mut rng, 0, 3);
        let byte = rng.gen_range(0usize..4);
        let mut bytes = encode(&specs);
        bytes[byte] ^= 0x55;
        assert!(decode(&bytes).is_err(), "case {case}");
    }
}
