//! Batched-execution equivalence properties.
//!
//! The contract pinned here is the determinism story of the batched GEMM
//! hot path: for every layer kind and for whole networks,
//! `forward_batch` row `s` is **bitwise** equal to `forward` on sample
//! `s` alone, and `backward_batch` accumulates exactly the parameter and
//! input gradients of driving the samples through the scalar
//! `forward`/`backward` one at a time without zeroing in between.
//!
//! Bitwise means `==` on `f32`, which deliberately identifies `-0.0` and
//! `+0.0`: the batched kernels drop the scalar path's zero-skip branch,
//! so products of exact-zero activations contribute `±0.0` terms that
//! can flip the sign of a zero without ever changing a finite value.
//!
//! Batch sizes cover the ragged cases a fixed sub-batch width produces
//! (`N = 1`, a prime, and a non-divisor remainder).

use scnn_nn::batch::stack;
use scnn_nn::prelude::*;
use scnn_nn::{models, Layer};
use scnn_rng::{ChaCha8Rng, Rng, SeedableRng};
use scnn_tensor::Tensor;

const BATCH_SIZES: [usize; 3] = [1, 3, 7];

/// Mixed sparse/dense tensor: ~60% exact zeros, the paper's leaky regime
/// and the regime where zero-skip vs. branch-free kernels could disagree
/// if the equivalence argument were wrong.
fn sparse(rng: &mut ChaCha8Rng, dims: &[usize]) -> Tensor {
    let len: usize = dims.iter().product();
    let data: Vec<f32> = (0..len)
        .map(|_| {
            if rng.gen_range(0u32..5) < 3 {
                0.0
            } else {
                rng.gen_range(-1.0f32..1.0)
            }
        })
        .collect();
    Tensor::from_vec(data, dims.to_vec()).unwrap()
}

/// Drives `scalar` per-sample and `batched` over the stacked batch, then
/// checks the full contract: forward rows, input-gradient rows, and
/// accumulated parameter gradients.
fn assert_batch_equivalent(
    mut scalar: Box<dyn Layer>,
    mut batched: Box<dyn Layer>,
    inputs: &[Tensor],
    grads: &[Tensor],
) {
    let n = inputs.len();

    // Scalar reference: interleaved forward/backward per sample, never
    // zeroing parameter gradients — the accumulation backward_batch must
    // reproduce.
    let mut want_out = Vec::with_capacity(n);
    let mut want_dx = Vec::with_capacity(n);
    for (x, g) in inputs.iter().zip(grads) {
        want_out.push(scalar.forward(x, Mode::Train).unwrap());
        want_dx.push(scalar.backward(g).unwrap());
    }

    let x_batch = stack(&inputs.iter().collect::<Vec<_>>()).unwrap();
    let out = batched.forward_batch(&x_batch, Mode::Train).unwrap();
    let g_batch = stack(&grads.iter().collect::<Vec<_>>()).unwrap();
    let dx = batched.backward_batch(&g_batch).unwrap();

    let name = scalar.name();
    assert_eq!(
        out,
        stack(&want_out.iter().collect::<Vec<_>>()).unwrap(),
        "{name}: forward_batch vs {n} scalar forwards"
    );
    assert_eq!(
        dx,
        stack(&want_dx.iter().collect::<Vec<_>>()).unwrap(),
        "{name}: backward_batch vs {n} scalar backwards"
    );
    let want_grads: Vec<Tensor> = scalar.params_mut().iter().map(|p| p.grad.clone()).collect();
    let got_grads: Vec<Tensor> = batched
        .params_mut()
        .iter()
        .map(|p| p.grad.clone())
        .collect();
    assert_eq!(
        got_grads, want_grads,
        "{name}: accumulated parameter gradients"
    );
}

#[test]
fn dense_batch_matches_scalar_bitwise() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xba7c01);
    for style in [DenseStyle::ZeroSkip, DenseStyle::Dense] {
        for n in BATCH_SIZES {
            let inputs: Vec<Tensor> = (0..n).map(|_| sparse(&mut rng, &[9])).collect();
            let grads: Vec<Tensor> = (0..n).map(|_| sparse(&mut rng, &[5])).collect();
            assert_batch_equivalent(
                Box::new(Dense::new(9, 5, style, 3)),
                Box::new(Dense::new(9, 5, style, 3)),
                &inputs,
                &grads,
            );
        }
    }
}

#[test]
fn conv_batch_matches_scalar_bitwise() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xba7c02);
    for n in BATCH_SIZES {
        let inputs: Vec<Tensor> = (0..n).map(|_| sparse(&mut rng, &[2, 6, 6])).collect();
        let grads: Vec<Tensor> = (0..n).map(|_| sparse(&mut rng, &[3, 4, 4])).collect();
        assert_batch_equivalent(
            Box::new(Conv2d::new(2, 3, 3, ConvStyle::ZeroSkip, 7)),
            Box::new(Conv2d::new(2, 3, 3, ConvStyle::ZeroSkip, 7)),
            &inputs,
            &grads,
        );
        // And with bias disabled, as the case-study models configure it.
        let inputs: Vec<Tensor> = (0..n).map(|_| sparse(&mut rng, &[1, 5, 5])).collect();
        let grads: Vec<Tensor> = (0..n).map(|_| sparse(&mut rng, &[2, 3, 3])).collect();
        assert_batch_equivalent(
            Box::new(Conv2d::new(1, 2, 3, ConvStyle::Dense, 11).without_bias()),
            Box::new(Conv2d::new(1, 2, 3, ConvStyle::Dense, 11).without_bias()),
            &inputs,
            &grads,
        );
    }
}

#[test]
fn pool_batch_matches_scalar_bitwise() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xba7c03);
    for n in BATCH_SIZES {
        let inputs: Vec<Tensor> = (0..n).map(|_| sparse(&mut rng, &[2, 6, 6])).collect();
        let grads: Vec<Tensor> = (0..n).map(|_| sparse(&mut rng, &[2, 3, 3])).collect();
        assert_batch_equivalent(
            Box::new(MaxPool2d::new(2)),
            Box::new(MaxPool2d::new(2)),
            &inputs,
            &grads,
        );
    }
}

#[test]
fn relu_batch_matches_scalar_bitwise() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xba7c04);
    for style in [ReluStyle::Branchy, ReluStyle::Branchless] {
        for n in BATCH_SIZES {
            let inputs: Vec<Tensor> = (0..n).map(|_| sparse(&mut rng, &[2, 4, 4])).collect();
            let grads: Vec<Tensor> = (0..n).map(|_| sparse(&mut rng, &[2, 4, 4])).collect();
            assert_batch_equivalent(
                Box::new(Relu::new(style).with_threshold(0.02)),
                Box::new(Relu::new(style).with_threshold(0.02)),
                &inputs,
                &grads,
            );
        }
    }
}

#[test]
fn flatten_batch_matches_scalar_bitwise() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xba7c05);
    for n in BATCH_SIZES {
        let inputs: Vec<Tensor> = (0..n).map(|_| sparse(&mut rng, &[2, 3, 4])).collect();
        let grads: Vec<Tensor> = (0..n).map(|_| sparse(&mut rng, &[24])).collect();
        assert_batch_equivalent(
            Box::new(Flatten::new()),
            Box::new(Flatten::new()),
            &inputs,
            &grads,
        );
    }
}

#[test]
fn softmax_batch_matches_scalar_bitwise() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xba7c06);
    for n in BATCH_SIZES {
        let inputs: Vec<Tensor> = (0..n).map(|_| sparse(&mut rng, &[10])).collect();
        let grads: Vec<Tensor> = (0..n).map(|_| sparse(&mut rng, &[10])).collect();
        assert_batch_equivalent(
            Box::new(Softmax::new()),
            Box::new(Softmax::new()),
            &inputs,
            &grads,
        );
    }
}

#[test]
fn network_batch_matches_scalar_bitwise() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xba7c07);
    for n in BATCH_SIZES {
        let mut scalar = models::small_cnn(1, 10, 4, 21);
        let mut batched = models::small_cnn(1, 10, 4, 21);
        let inputs: Vec<Tensor> = (0..n)
            .map(|_| sparse(&mut rng, &[1, 10, 10]).map(f32::abs))
            .collect();
        let grads: Vec<Tensor> = (0..n).map(|_| sparse(&mut rng, &[4])).collect();

        scalar.zero_grads();
        let mut want_out = Vec::new();
        let mut want_dx = Vec::new();
        for (x, g) in inputs.iter().zip(&grads) {
            want_out.push(scalar.forward(x, Mode::Train).unwrap());
            want_dx.push(scalar.backward(g).unwrap());
        }

        batched.zero_grads();
        let x_batch = stack(&inputs.iter().collect::<Vec<_>>()).unwrap();
        let out = batched.forward_batch(&x_batch, Mode::Train).unwrap();
        let g_batch = stack(&grads.iter().collect::<Vec<_>>()).unwrap();
        let dx = batched.backward_batch(&g_batch).unwrap();

        assert_eq!(out, stack(&want_out.iter().collect::<Vec<_>>()).unwrap());
        assert_eq!(dx, stack(&want_dx.iter().collect::<Vec<_>>()).unwrap());
        assert_eq!(batched.grad_vector(), scalar.grad_vector());
    }
}

#[test]
fn classify_batch_matches_scalar() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xba7c08);
    let mut net = models::mnist_mlp(1, 6, 9);
    for n in BATCH_SIZES {
        let inputs: Vec<Tensor> = (0..n)
            .map(|_| sparse(&mut rng, &[1, 6, 6]).map(f32::abs))
            .collect();
        let want: Vec<usize> = inputs.iter().map(|x| net.classify(x).unwrap()).collect();
        let got = net
            .classify_batch(&stack(&inputs.iter().collect::<Vec<_>>()).unwrap())
            .unwrap();
        assert_eq!(got, want, "n = {n}");
    }
}

#[test]
fn infer_batch_rejects_rank_1_input() {
    let mut net = models::mnist_mlp(1, 6, 1);
    assert!(net.infer_batch(&Tensor::zeros([36])).is_err());
}

#[test]
fn ragged_final_subbatch_width_is_exercised() {
    // `GRAD_SUBBATCH` chunking leaves a ragged tail whenever the batch
    // size is not a multiple; pin that the width used by the trainer and
    // the ragged sizes covered here stay in sync.
    assert!(BATCH_SIZES
        .iter()
        .any(|&n| n % scnn_nn::train::GRAD_SUBBATCH != 0));
}
