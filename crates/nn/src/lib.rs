//! # scnn-nn
//!
//! A from-scratch CNN inference and training library whose execution can
//! be *instrumented* — every weight/activation memory access and every
//! data-dependent branch streamed into the `scnn-uarch` simulator — so
//! that its hardware-performance-counter footprint can be measured
//! exactly as in *"How Secure are Deep Learning Algorithms from
//! Side-Channel based Reverse Engineering?"* (Alam & Mukhopadhyay,
//! DAC 2019).
//!
//! ## Where the leak comes from
//!
//! Two standard CPU-inference optimisations make the footprint
//! input-dependent:
//!
//! - **Zero skipping** ([`ConvStyle::ZeroSkip`], [`DenseStyle::ZeroSkip`]):
//!   post-ReLU activations (and MNIST background pixels) are mostly zero;
//!   skipping their multiply-accumulate work means the set of weight
//!   cache lines touched traces the activation pattern — which is
//!   class-characteristic. This drives the paper's `cache-misses`
//!   separations.
//! - **Branchy ReLU / max-pooling** ([`ReluStyle::Branchy`]): sign tests
//!   and running-max comparisons retire a constant number of branches but
//!   with data-dependent outcomes, perturbing `branch-misses` and, via
//!   skipped inner loops, retired `branches`.
//!
//! Every leaky kernel has a constant-footprint twin (`Dense`,
//! `Branchless`) reachable through
//! [`Network::set_constant_time`] — the countermeasure whose
//! effectiveness the ablation experiments quantify.
//!
//! # Examples
//!
//! ```
//! use scnn_nn::models;
//! use scnn_tensor::Tensor;
//! use scnn_uarch::CountingProbe;
//!
//! # fn main() -> Result<(), scnn_nn::NnError> {
//! let net = models::tiny_cnn(42);
//! let image = Tensor::full([1, 8, 8], 0.3);
//! let mut probe = CountingProbe::new();
//! let logits = net.infer_traced(&image, &mut probe)?;
//! assert_eq!(logits.dims(), &[4]);
//! assert!(probe.loads > 0, "the inference narrated its memory accesses");
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod activation;
pub mod addr;
pub mod batch;
pub mod conv;
pub mod dense;
pub mod exec;
pub mod layer;
pub mod loss;
pub mod models;
pub mod network;
pub mod optim;
pub mod pool;
pub mod softmax;
pub mod spec;
pub mod train;

pub use activation::{Relu, ReluStyle};
pub use conv::{Conv2d, ConvStyle};
pub use dense::{Dense, DenseStyle};
pub use exec::ExecContext;
pub use layer::{Layer, Mode, NnError, Param};
pub use network::Network;
pub use pool::MaxPool2d;
pub use softmax::{Flatten, Softmax};

/// Convenient glob import for building networks.
pub mod prelude {
    pub use crate::activation::{Relu, ReluStyle};
    pub use crate::conv::{Conv2d, ConvStyle};
    pub use crate::dense::{Dense, DenseStyle};
    pub use crate::layer::{Layer, Mode, NnError};
    pub use crate::network::Network;
    pub use crate::pool::MaxPool2d;
    pub use crate::softmax::{Flatten, Softmax};
}
