//! Virtual-address layout for instrumented execution.
//!
//! The microarchitectural simulator cares about *addresses*, so every
//! tensor that instrumented kernels touch is assigned a region of a
//! synthetic virtual address space. Weights get stable addresses when the
//! network is built (they live for the process lifetime, as in a real
//! inference server); activations are bump-allocated per inference.

/// Size of one `f32` element in the synthetic address space.
pub const ELEM_BYTES: u64 = 4;

/// Base of the static (weights/biases) segment.
pub const STATIC_BASE: u64 = 0x1000_0000;
/// Base of the per-inference activation segment.
pub const ACTIVATION_BASE: u64 = 0x4000_0000;
/// Base of the input-image segment.
pub const INPUT_BASE: u64 = 0x7000_0000;
/// Synthetic code segment: branch/load sites get PCs here.
pub const CODE_BASE: u64 = 0x0040_0000;

/// A contiguous region of the synthetic address space holding `len`
/// `f32` elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    base: u64,
    len: u64,
}

impl Region {
    /// Creates a region at `base` holding `len` elements.
    pub fn new(base: u64, len: usize) -> Self {
        Region {
            base,
            len: len as u64,
        }
    }

    /// Base byte address.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Element capacity.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True when the region holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Byte address of element `i`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `i` is out of bounds (hot path: release
    /// builds skip the check).
    #[inline]
    pub fn addr(&self, i: usize) -> u64 {
        debug_assert!(
            (i as u64) < self.len,
            "element {i} out of region (len {})",
            self.len
        );
        self.base + i as u64 * ELEM_BYTES
    }

    /// One-past-the-end byte address.
    pub fn end(&self) -> u64 {
        self.base + self.len * ELEM_BYTES
    }

    /// True when two regions share any byte.
    pub fn overlaps(&self, other: &Region) -> bool {
        self.base < other.end() && other.base < self.end()
    }
}

/// Bump allocator carving [`Region`]s out of a segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentAllocator {
    next: u64,
    start: u64,
}

impl SegmentAllocator {
    /// Allocator for the static weights segment.
    pub fn statics() -> Self {
        SegmentAllocator {
            next: STATIC_BASE,
            start: STATIC_BASE,
        }
    }

    /// Allocator for the activation segment.
    pub fn activations() -> Self {
        SegmentAllocator {
            next: ACTIVATION_BASE,
            start: ACTIVATION_BASE,
        }
    }

    /// Allocator for the input segment.
    pub fn inputs() -> Self {
        SegmentAllocator {
            next: INPUT_BASE,
            start: INPUT_BASE,
        }
    }

    /// Allocates a region of `len` elements, aligned to a cache line
    /// (64 B), mirroring how real allocators place tensor buffers.
    pub fn alloc(&mut self, len: usize) -> Region {
        const LINE: u64 = 64;
        let base = (self.next + LINE - 1) & !(LINE - 1);
        self.next = base + len as u64 * ELEM_BYTES;
        Region::new(base, len)
    }

    /// Bytes handed out so far.
    pub fn used(&self) -> u64 {
        self.next - self.start
    }

    /// Resets to the segment start (new inference reuses the same
    /// activation arena, as a real runtime's arena allocator does).
    pub fn reset(&mut self) {
        self.next = self.start;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_addressing() {
        let r = Region::new(0x1000, 10);
        assert_eq!(r.addr(0), 0x1000);
        assert_eq!(r.addr(3), 0x1000 + 12);
        assert_eq!(r.end(), 0x1000 + 40);
        assert_eq!(r.len(), 10);
        assert!(!r.is_empty());
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn region_bounds_checked_in_debug() {
        let r = Region::new(0x1000, 2);
        let _ = r.addr(2);
    }

    #[test]
    fn allocations_are_disjoint_and_aligned() {
        let mut a = SegmentAllocator::statics();
        let r1 = a.alloc(5);
        let r2 = a.alloc(100);
        let r3 = a.alloc(1);
        assert!(!r1.overlaps(&r2));
        assert!(!r2.overlaps(&r3));
        assert_eq!(r1.base() % 64, 0);
        assert_eq!(r2.base() % 64, 0);
        assert!(a.used() > 0);
    }

    #[test]
    fn reset_reuses_arena() {
        let mut a = SegmentAllocator::activations();
        let r1 = a.alloc(16);
        a.reset();
        let r2 = a.alloc(16);
        assert_eq!(
            r1, r2,
            "arena reuse gives identical addresses per inference"
        );
    }

    #[test]
    fn segments_never_collide() {
        let mut s = SegmentAllocator::statics();
        let mut a = SegmentAllocator::activations();
        let mut i = SegmentAllocator::inputs();
        let rs = s.alloc(1 << 20);
        let ra = a.alloc(1 << 20);
        let ri = i.alloc(1 << 20);
        assert!(!rs.overlaps(&ra));
        assert!(!ra.overlaps(&ri));
        assert!(!rs.overlaps(&ri));
    }

    #[test]
    fn overlap_detection() {
        let a = Region::new(100, 10); // 100..140
        let b = Region::new(136, 10); // 136..176
        let c = Region::new(140, 10); // 140..180
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert!(c.overlaps(&b));
    }
}
