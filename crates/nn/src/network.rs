//! The [`Network`]: a sequential stack of layers with reference and
//! instrumented execution paths.

use crate::addr::SegmentAllocator;
use crate::exec::{ExecContext, Site};
use crate::layer::{Layer, Mode, NnError, Result};
use scnn_tensor::{Shape, Tensor};
use scnn_uarch::Probe;

/// A sequential neural network.
///
/// # Examples
///
/// ```
/// use scnn_nn::prelude::*;
/// use scnn_tensor::Tensor;
///
/// # fn main() -> Result<(), scnn_nn::NnError> {
/// let mut net = Network::new();
/// net.push(Conv2d::new(1, 4, 3, ConvStyle::ZeroSkip, 7));
/// net.push(Relu::default());
/// net.push(MaxPool2d::new(2));
/// net.push(Flatten::new());
/// net.push(Dense::new(4 * 3 * 3, 2, DenseStyle::ZeroSkip, 8));
/// net.finalize();
///
/// let image = Tensor::full([1, 8, 8], 0.5);
/// let logits = net.infer(&image)?;
/// assert_eq!(logits.dims(), &[2]);
/// # Ok(())
/// # }
/// ```
pub struct Network {
    layers: Vec<Box<dyn Layer>>,
    finalized: bool,
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<_> = self.layers.iter().map(|l| l.name()).collect();
        f.debug_struct("Network")
            .field("layers", &names)
            .field("params", &self.param_count())
            .finish()
    }
}

impl Default for Network {
    fn default() -> Self {
        Network::new()
    }
}

impl Clone for Network {
    /// Deep-copies every layer (weights, gradients, kernel style and
    /// assigned addresses) via [`Layer::clone_box`]. A clone is fully
    /// independent: training it or running traced inference on it never
    /// touches the original, which is what lets minibatch gradients be
    /// evaluated on per-worker replicas.
    fn clone(&self) -> Self {
        Network {
            layers: self.layers.iter().map(|l| l.clone_box()).collect(),
            finalized: self.finalized,
        }
    }
}

impl Network {
    /// Creates an empty network.
    pub fn new() -> Self {
        Network {
            layers: Vec::new(),
            finalized: false,
        }
    }

    /// Appends a layer.
    pub fn push<L: Layer + 'static>(&mut self, layer: L) {
        self.layers.push(Box::new(layer));
        self.finalized = false;
    }

    /// Appends an already-boxed layer (used by deserialization).
    pub fn push_boxed(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
        self.finalized = false;
    }

    /// Assigns stable weight addresses to every layer. Must be called
    /// once after the last `push` and before any traced execution;
    /// reference execution works either way.
    pub fn finalize(&mut self) {
        let mut alloc = SegmentAllocator::statics();
        for layer in &mut self.layers {
            layer.assign_addresses(&mut alloc);
        }
        self.finalized = true;
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// True when the network has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Total scalar parameter count.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    /// Output shape for an input shape.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::EmptyNetwork`] or a shape error from any layer.
    pub fn output_shape(&self, input: &Shape) -> Result<Shape> {
        if self.layers.is_empty() {
            return Err(NnError::EmptyNetwork);
        }
        let mut shape = input.clone();
        for layer in &self.layers {
            shape = layer.output_shape(&shape)?;
        }
        Ok(shape)
    }

    /// Reference forward pass in the given mode.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::EmptyNetwork`] or layer shape errors.
    pub fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        if self.layers.is_empty() {
            return Err(NnError::EmptyNetwork);
        }
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, mode)?;
        }
        Ok(x)
    }

    /// Fast inference (reference path, no caches).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Network::forward`].
    pub fn infer(&mut self, input: &Tensor) -> Result<Tensor> {
        self.forward(input, Mode::Infer)
    }

    /// Batched forward pass over an `[N, …]` tensor whose trailing axes
    /// are one sample.
    ///
    /// Row `s` of the output is bit-identical to `forward` on sample `s`
    /// alone: every layer's `forward_batch` preserves the per-sample
    /// reduction order, and the heavy layers (dense, conv) lower the whole
    /// batch through one GEMM instead of `N` small ones.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Network::forward`], plus shape errors when the
    /// input is not rank ≥ 2.
    pub fn forward_batch(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        if self.layers.is_empty() {
            return Err(NnError::EmptyNetwork);
        }
        let _span = scnn_obs::Span::enter("nn.forward_batch");
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward_batch(&x, mode)?;
        }
        Ok(x)
    }

    /// Batched inference (no caches). See [`Network::forward_batch`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`Network::forward_batch`].
    pub fn infer_batch(&mut self, input: &Tensor) -> Result<Tensor> {
        self.forward_batch(input, Mode::Infer)
    }

    /// Predicted class index per batch row (first occurrence wins on
    /// ties, matching [`Tensor::argmax`]).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Network::forward_batch`].
    pub fn classify_batch(&mut self, input: &Tensor) -> Result<Vec<usize>> {
        let out = self.infer_batch(input)?;
        out.shape().expect_rank(2).map_err(NnError::from)?;
        let classes = out.dims()[1];
        Ok(out
            .as_slice()
            .chunks_exact(classes)
            .map(|row| {
                let mut best = row[0];
                let mut arg = 0;
                for (i, &v) in row.iter().enumerate().skip(1) {
                    if v > best {
                        best = v;
                        arg = i;
                    }
                }
                arg
            })
            .collect())
    }

    /// Predicted class index for an input.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Network::forward`].
    pub fn classify(&mut self, input: &Tensor) -> Result<usize> {
        let out = self.infer(input)?;
        out.argmax().ok_or(NnError::EmptyNetwork)
    }

    /// Instrumented inference: numerically identical to [`Network::infer`]
    /// while narrating every architectural event to `probe`. This is the
    /// execution the side-channel evaluator measures.
    ///
    /// The input image is first streamed into the synthetic input segment
    /// (the memcpy/decode a real pipeline performs).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Network::forward`].
    pub fn infer_traced(&self, input: &Tensor, probe: &mut dyn Probe) -> Result<Tensor> {
        if self.layers.is_empty() {
            return Err(NnError::EmptyNetwork);
        }
        debug_assert!(
            self.finalized,
            "call finalize() before traced execution so weights have stable addresses"
        );
        let mut ctx = ExecContext::new(probe);

        // Stage the input image.
        let mut inputs = SegmentAllocator::inputs();
        let input_region = inputs.alloc(input.len());
        for i in 0..input.len() {
            ctx.store(Site::ACT, input_region, i);
        }
        ctx.counted_loop(Site::LOOP, input.len());

        let mut x = input.clone();
        let mut region = input_region;
        for (li, layer) in self.layers.iter().enumerate() {
            ctx.enter_layer(li + 1);
            let (nx, nregion) = layer.forward_traced(&x, region, &mut ctx)?;
            x = nx;
            region = nregion;
        }
        Ok(x)
    }

    /// Traced classification.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Network::forward`].
    pub fn classify_traced(&self, input: &Tensor, probe: &mut dyn Probe) -> Result<usize> {
        let out = self.infer_traced(input, probe)?;
        out.argmax().ok_or(NnError::EmptyNetwork)
    }

    /// Backward pass through every layer, from the loss gradient at the
    /// output. Must follow a `forward(…, Mode::Train)` call.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::NoForwardCache`] when driven out of order.
    pub fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        if self.layers.is_empty() {
            return Err(NnError::EmptyNetwork);
        }
        let mut g = grad_output.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g)?;
        }
        Ok(g)
    }

    /// Batched backward pass from a `[N, …]` loss gradient. Must follow a
    /// `forward_batch(…, Mode::Train)` call. Parameter gradients accumulate
    /// exactly as if the `N` samples had been driven through
    /// `forward`/`backward` one at a time without zeroing in between.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::NoForwardCache`] when driven out of order.
    pub fn backward_batch(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        if self.layers.is_empty() {
            return Err(NnError::EmptyNetwork);
        }
        let _span = scnn_obs::Span::enter("nn.backward_batch");
        let mut g = grad_output.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward_batch(&g)?;
        }
        Ok(g)
    }

    /// Zeroes every parameter gradient.
    pub fn zero_grads(&mut self) {
        for layer in &mut self.layers {
            for p in layer.params_mut() {
                p.zero_grad();
            }
        }
    }

    /// Visits every parameter (used by optimizers).
    pub fn visit_params<F: FnMut(&mut crate::layer::Param)>(&mut self, mut f: F) {
        for layer in &mut self.layers {
            for p in layer.params_mut() {
                f(p);
            }
        }
    }

    /// Snapshots every parameter gradient, in `visit_params` order.
    ///
    /// Together with [`Network::accumulate_grads`] this is the transport
    /// for parallel minibatch training: each worker computes gradients on
    /// its own clone, extracts them here, and the trainer sums the
    /// snapshots into the master network in sample order.
    pub fn grad_vector(&mut self) -> Vec<Tensor> {
        let mut grads = Vec::new();
        self.visit_params(|p| grads.push(p.grad.clone()));
        grads
    }

    /// Adds a gradient snapshot (from [`Network::grad_vector`]) into this
    /// network's parameter gradients, element-wise.
    ///
    /// # Panics
    ///
    /// Panics when `grads` does not match this network's parameter list
    /// (wrong length or shapes) — snapshots are only meaningful between
    /// clones of the same network.
    pub fn accumulate_grads(&mut self, grads: &[Tensor]) {
        let mut i = 0;
        self.visit_params(|p| {
            let g = grads
                .get(i)
                .expect("gradient snapshot shorter than parameter list");
            p.grad
                .axpy(1.0, g)
                .expect("gradient snapshot shape mismatch");
            i += 1;
        });
        assert_eq!(
            i,
            grads.len(),
            "gradient snapshot longer than parameter list"
        );
    }

    /// Multiplies every parameter gradient by `factor` (used to turn a
    /// minibatch gradient sum into a mean).
    pub fn scale_grads(&mut self, factor: f32) {
        self.visit_params(|p| p.grad.map_in_place(|g| g * factor));
    }

    /// Immutable access to the layer stack.
    pub fn layers(&self) -> &[Box<dyn Layer>] {
        &self.layers
    }

    /// Mutable access to the layer stack (used by the countermeasure pass
    /// that rewrites kernel styles).
    pub fn layers_mut(&mut self) -> &mut [Box<dyn Layer>] {
        &mut self.layers
    }

    /// Flips every layer between its leaky and constant-footprint kernel
    /// (see [`Layer::set_constant_time`]) — the countermeasure evaluated
    /// by the ablation experiments.
    pub fn set_constant_time(&mut self, enabled: bool) {
        for layer in &mut self.layers {
            layer.set_constant_time(enabled);
        }
    }

    /// Arms (with `Some(seed)`) or disarms (with `None`) memory-access
    /// shuffling in every layer's traced kernel (see
    /// [`Layer::set_shuffle`]). Predictions are unaffected — only the
    /// event stream a probe observes is permuted. The shuffle
    /// countermeasure re-seeds this before every inference so no two
    /// traces share a permutation.
    pub fn set_shuffle(&mut self, seed: Option<u64>) {
        for layer in &mut self.layers {
            layer.set_shuffle(seed);
        }
    }

    /// True when every parameter is finite.
    pub fn all_finite(&mut self) -> bool {
        let mut ok = true;
        self.visit_params(|p| ok &= p.value.all_finite());
        ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::{Relu, ReluStyle};
    use crate::conv::{Conv2d, ConvStyle};
    use crate::dense::{Dense, DenseStyle};
    use crate::pool::MaxPool2d;
    use crate::softmax::Flatten;
    use scnn_uarch::CountingProbe;

    fn tiny_net() -> Network {
        let mut net = Network::new();
        net.push(Conv2d::new(1, 2, 3, ConvStyle::ZeroSkip, 3));
        net.push(Relu::new(ReluStyle::Branchy));
        net.push(MaxPool2d::new(2));
        net.push(Flatten::new());
        net.push(Dense::new(2 * 3 * 3, 4, DenseStyle::ZeroSkip, 4));
        net.finalize();
        net
    }

    fn image(seed: u32) -> Tensor {
        Tensor::from_vec(
            (0..64)
                .map(|i| {
                    let v = (i * 2654435761u64 as usize + seed as usize * 97) % 11;
                    if v < 5 {
                        0.0
                    } else {
                        v as f32 / 10.0
                    }
                })
                .collect(),
            [1, 8, 8],
        )
        .unwrap()
    }

    #[test]
    fn shapes_flow() {
        let net = tiny_net();
        assert_eq!(
            net.output_shape(&Shape::from([1, 8, 8])).unwrap(),
            Shape::from([4])
        );
        assert_eq!(net.len(), 5);
        assert!(net.param_count() > 0);
    }

    #[test]
    fn empty_network_errors() {
        let mut net = Network::new();
        assert!(matches!(
            net.infer(&Tensor::zeros([1, 4, 4])),
            Err(NnError::EmptyNetwork)
        ));
        assert!(net.output_shape(&Shape::from([1])).is_err());
    }

    #[test]
    fn traced_equals_reference_end_to_end() {
        let mut net = tiny_net();
        for seed in 0..5 {
            let x = image(seed);
            let want = net.infer(&x).unwrap();
            let mut probe = CountingProbe::new();
            let got = net.infer_traced(&x, &mut probe).unwrap();
            assert_eq!(got, want, "seed {seed}");
            assert!(probe.instructions() > 0);
        }
    }

    #[test]
    fn traced_footprint_differs_across_inputs() {
        let net = tiny_net();
        let count = |x: &Tensor| {
            let mut probe = CountingProbe::new();
            net.infer_traced(x, &mut probe).unwrap();
            probe.loads
        };
        assert_ne!(count(&image(0)), count(&Tensor::zeros([1, 8, 8])));
    }

    #[test]
    fn classify_returns_argmax() {
        let mut net = tiny_net();
        let x = image(1);
        let logits = net.infer(&x).unwrap();
        let class = net.classify(&x).unwrap();
        assert_eq!(Some(class), logits.argmax());
        let mut probe = CountingProbe::new();
        assert_eq!(net.classify_traced(&x, &mut probe).unwrap(), class);
    }

    #[test]
    fn train_step_reduces_loss_on_single_example() {
        // One SGD step on a fixed example must reduce a simple quadratic
        // loss (L = Σ(y - t)²) for a small enough step.
        let mut net = tiny_net();
        let x = image(2);
        let target = Tensor::from_slice(&[1.0, 0.0, 0.0, 0.0]);

        let loss = |y: &Tensor| -> f32 {
            y.as_slice()
                .iter()
                .zip(target.as_slice())
                .map(|(a, b)| (a - b) * (a - b))
                .sum()
        };

        let y0 = net.forward(&x, Mode::Train).unwrap();
        let l0 = loss(&y0);
        let grad = y0.zip_with(&target, |a, b| 2.0 * (a - b)).unwrap();
        net.zero_grads();
        net.backward(&grad).unwrap();
        net.visit_params(|p| {
            let g = p.grad.clone();
            p.value.axpy(-0.01, &g).unwrap();
        });
        let y1 = net.infer(&x).unwrap();
        assert!(loss(&y1) < l0, "{} -> {}", l0, loss(&y1));
    }

    #[test]
    fn zero_grads_clears() {
        let mut net = tiny_net();
        let x = image(3);
        let y = net.forward(&x, Mode::Train).unwrap();
        net.backward(&Tensor::full(y.shape().clone(), 1.0)).unwrap();
        let mut total = 0.0f32;
        net.visit_params(|p| total += p.grad.norm_sq());
        assert!(total > 0.0);
        net.zero_grads();
        let mut total2 = 0.0f32;
        net.visit_params(|p| total2 += p.grad.norm_sq());
        assert_eq!(total2, 0.0);
    }

    #[test]
    fn clone_is_independent_and_identical() {
        let mut net = tiny_net();
        let mut copy = net.clone();
        let x = image(4);
        // Same numbers on both execution paths.
        assert_eq!(net.infer(&x).unwrap(), copy.infer(&x).unwrap());
        let mut probe = CountingProbe::new();
        let traced = net.infer_traced(&x, &mut probe).unwrap();
        let mut probe2 = CountingProbe::new();
        assert_eq!(copy.infer_traced(&x, &mut probe2).unwrap(), traced);
        assert_eq!(probe.loads, probe2.loads, "cloned addresses must match");
        // Training the clone leaves the original untouched.
        let before = net.infer(&x).unwrap();
        let y = copy.forward(&x, Mode::Train).unwrap();
        copy.zero_grads();
        copy.backward(&Tensor::full(y.shape().clone(), 1.0))
            .unwrap();
        copy.visit_params(|p| {
            let g = p.grad.clone();
            p.value.axpy(-0.1, &g).unwrap();
        });
        assert_eq!(net.infer(&x).unwrap(), before);
        assert_ne!(copy.infer(&x).unwrap(), before);
    }

    #[test]
    fn grad_snapshot_roundtrip() {
        let mut net = tiny_net();
        let x = image(5);
        let y = net.forward(&x, Mode::Train).unwrap();
        net.zero_grads();
        net.backward(&Tensor::full(y.shape().clone(), 1.0)).unwrap();
        let grads = net.grad_vector();
        assert!(!grads.is_empty());

        // Accumulating the snapshot doubles each gradient; scaling by 0.5
        // restores the original.
        let mut expect = grads.clone();
        for g in &mut expect {
            g.map_in_place(|v| v * 2.0);
        }
        net.accumulate_grads(&grads);
        assert_eq!(net.grad_vector(), expect);
        net.scale_grads(0.5);
        assert_eq!(net.grad_vector(), grads);
    }

    #[test]
    fn debug_lists_layers() {
        let net = tiny_net();
        let dbg = format!("{net:?}");
        assert!(dbg.contains("conv2d"));
        assert!(dbg.contains("dense"));
    }
}
