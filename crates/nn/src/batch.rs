//! Batch-axis helpers shared by the batched layer paths and the trainer.
//!
//! A batch is always a single row-major tensor whose leading dimension is
//! the batch size `N` and whose trailing dimensions are one sample's
//! shape, so sample `s` is the contiguous slice
//! `data[s * sample_len .. (s + 1) * sample_len]`. Keeping batches in one
//! allocation is what lets dense and conv layers run the whole batch as a
//! single GEMM.

use crate::layer::{NnError, Result};
use scnn_tensor::{Shape, ShapeError, Tensor};

/// Splits a batch shape `[N, …]` into `(N, sample_shape)`.
///
/// # Errors
///
/// Returns a shape error for rank < 2 tensors (a batch always carries an
/// explicit leading axis, even for vector samples).
pub fn split_batch(shape: &Shape) -> Result<(usize, Shape)> {
    if shape.rank() < 2 {
        return Err(NnError::Shape(ShapeError::RankMismatch {
            expected: 2,
            actual: shape.rank(),
        }));
    }
    let n = shape.dim(0);
    let sample = Shape::from(shape.dims()[1..].to_vec());
    Ok((n, sample))
}

/// Stacks same-shaped sample tensors into one `[N, …]` batch tensor.
///
/// # Errors
///
/// Returns a shape error when `samples` is empty or the shapes disagree.
pub fn stack(samples: &[&Tensor]) -> Result<Tensor> {
    let first = samples.first().ok_or(NnError::Shape(ShapeError::ZeroDim))?;
    let sample_len = first.len();
    let mut data = Vec::with_capacity(samples.len() * sample_len);
    for s in samples {
        if s.shape() != first.shape() {
            return Err(NnError::Shape(ShapeError::Mismatch {
                left: s.dims().to_vec(),
                right: first.dims().to_vec(),
            }));
        }
        data.extend_from_slice(s.as_slice());
    }
    let mut dims = vec![samples.len()];
    dims.extend_from_slice(first.dims());
    Ok(Tensor::from_vec(data, dims)?)
}

/// Extracts sample `s` of a batch as an owned tensor with the given
/// per-sample shape. Used where a per-row computation (loss, softmax)
/// needs a standalone tensor.
///
/// # Errors
///
/// Returns a shape error when the index or shape is inconsistent with the
/// batch tensor.
pub fn sample(batch: &Tensor, s: usize, sample_shape: &Shape) -> Result<Tensor> {
    let sample_len = sample_shape.len();
    let start = s * sample_len;
    if start + sample_len > batch.len() {
        return Err(NnError::Shape(ShapeError::Mismatch {
            left: batch.dims().to_vec(),
            right: sample_shape.dims().to_vec(),
        }));
    }
    Ok(Tensor::from_vec(
        batch.as_slice()[start..start + sample_len].to_vec(),
        sample_shape.clone(),
    )?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stack_and_split_roundtrip() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], [2, 3]).unwrap();
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], [2, 3]).unwrap();
        let batch = stack(&[&a, &b]).unwrap();
        assert_eq!(batch.dims(), &[2, 2, 3]);
        let (n, sample_shape) = split_batch(batch.shape()).unwrap();
        assert_eq!(n, 2);
        assert_eq!(sample_shape.dims(), &[2, 3]);
        assert_eq!(sample(&batch, 0, &sample_shape).unwrap(), a);
        assert_eq!(sample(&batch, 1, &sample_shape).unwrap(), b);
    }

    #[test]
    fn stack_rejects_empty_and_ragged() {
        assert!(stack(&[]).is_err());
        let a = Tensor::zeros([2, 3]);
        let b = Tensor::zeros([3, 2]);
        assert!(stack(&[&a, &b]).is_err());
    }

    #[test]
    fn split_rejects_vectors() {
        assert!(split_batch(&Shape::from(vec![4])).is_err());
    }
}
