//! Execution context for instrumented ("traced") inference.
//!
//! Traced kernels compute the same numbers as the reference kernels while
//! narrating their architectural behaviour — every load/store of a weight
//! or activation and every data-dependent branch — to a
//! [`Probe`]. Feeding that stream to a
//! [`CoreSim`](scnn_uarch::CoreSim) yields the hardware-counter footprint
//! of the inference; feeding it to a
//! [`NullProbe`](scnn_uarch::NullProbe) costs (almost) nothing.

use crate::addr::{Region, SegmentAllocator, CODE_BASE};
use scnn_uarch::Probe;

/// Identifies a static code site (loop body, branch) inside a layer's
/// kernel; combined with the layer index it yields a stable synthetic PC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Site(pub u32);

impl Site {
    /// The kernel's main loop branch.
    pub const LOOP: Site = Site(0);
    /// A zero-skip test on an activation.
    pub const SKIP: Site = Site(1);
    /// A ReLU sign test.
    pub const RELU: Site = Site(2);
    /// A pooling max comparison.
    pub const POOL: Site = Site(3);
    /// A load from the weight array.
    pub const WEIGHT: Site = Site(4);
    /// A load/store on the output accumulator.
    pub const ACC: Site = Site(5);
    /// A load from the input/activation array.
    pub const ACT: Site = Site(6);
    /// A store into a lowering scratch buffer (sparse im2col).
    pub const SCRATCH: Site = Site(7);
}

/// The mutable state threaded through a traced forward pass.
pub struct ExecContext<'p> {
    probe: &'p mut dyn Probe,
    activations: SegmentAllocator,
    layer_index: u32,
    events: u64,
}

impl std::fmt::Debug for ExecContext<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecContext")
            .field("layer_index", &self.layer_index)
            .field("events", &self.events)
            .finish_non_exhaustive()
    }
}

impl<'p> ExecContext<'p> {
    /// Creates a context that reports to `probe`.
    pub fn new(probe: &'p mut dyn Probe) -> Self {
        ExecContext {
            probe,
            activations: SegmentAllocator::activations(),
            layer_index: 0,
            events: 0,
        }
    }

    /// Allocates an activation buffer for a layer output.
    pub fn alloc_activation(&mut self, len: usize) -> Region {
        self.activations.alloc(len)
    }

    /// Marks entry into layer `index`; kernel PCs embed it so each layer's
    /// branches and loads are distinct predictor/prefetcher streams. The
    /// probe hears the boundary too, so per-layer trace captures can
    /// segment the event stream without changing it.
    pub fn enter_layer(&mut self, index: usize) {
        self.layer_index = index as u32;
        self.probe.layer_boundary(index);
    }

    /// Synthetic PC for `site` in the current layer.
    #[inline]
    pub fn pc(&self, site: Site) -> u64 {
        CODE_BASE + (self.layer_index as u64) * 0x1000 + (site.0 as u64) * 0x40
    }

    /// Number of probe events emitted so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// A load of element `i` from `region`, attributed to `site`.
    #[inline]
    pub fn load(&mut self, site: Site, region: Region, i: usize) {
        self.events += 1;
        let pc = self.pc(site);
        self.probe.load(region.addr(i), pc);
    }

    /// A store to element `i` of `region`, attributed to `site`.
    #[inline]
    pub fn store(&mut self, site: Site, region: Region, i: usize) {
        self.events += 1;
        let pc = self.pc(site);
        self.probe.store(region.addr(i), pc);
    }

    /// A conditional branch at `site` with outcome `taken`.
    #[inline]
    pub fn branch(&mut self, site: Site, taken: bool) {
        self.events += 1;
        let pc = self.pc(site);
        self.probe.branch(pc, taken);
    }

    /// `n` retired ALU instructions.
    #[inline]
    pub fn alu(&mut self, n: u64) {
        self.events += 1;
        self.probe.alu(n);
    }

    /// Emits the canonical loop-control overhead for a counted loop that
    /// ran `iters` iterations: `iters` taken back-edges plus one
    /// fall-through exit, and one index-increment ALU op per iteration.
    pub fn counted_loop(&mut self, site: Site, iters: usize) {
        for _ in 0..iters {
            self.branch(site, true);
        }
        self.branch(site, false);
        self.alu(iters as u64);
    }

    /// Loop-control overhead of a *vectorised* counted loop: `iters`
    /// scalar iterations executed `width` lanes at a time (AVX-style), so
    /// only `ceil(iters / width)` back-edges retire. Hot numeric kernels
    /// use this — it is why retired-branch counts react only weakly to
    /// data-dependent work while memory footprints react strongly.
    pub fn vector_loop(&mut self, site: Site, iters: usize, width: usize) {
        let width = width.max(1);
        let steps = iters.div_ceil(width);
        for _ in 0..steps {
            self.branch(site, true);
        }
        self.branch(site, false);
        self.alu(steps as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scnn_uarch::CountingProbe;

    #[test]
    fn events_reach_probe() {
        let mut probe = CountingProbe::new();
        {
            let mut ctx = ExecContext::new(&mut probe);
            let r = ctx.alloc_activation(8);
            ctx.load(Site::ACT, r, 0);
            ctx.store(Site::ACC, r, 1);
            ctx.branch(Site::RELU, true);
            ctx.alu(5);
            assert_eq!(ctx.events(), 4);
        }
        assert_eq!(probe.loads, 1);
        assert_eq!(probe.stores, 1);
        assert_eq!(probe.branches, 1);
        assert_eq!(probe.alu_ops, 5);
    }

    #[test]
    fn pcs_differ_by_layer_and_site() {
        let mut probe = CountingProbe::new();
        let mut ctx = ExecContext::new(&mut probe);
        ctx.enter_layer(0);
        let a = ctx.pc(Site::RELU);
        let b = ctx.pc(Site::POOL);
        ctx.enter_layer(1);
        let c = ctx.pc(Site::RELU);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn counted_loop_shape() {
        let mut probe = CountingProbe::new();
        {
            let mut ctx = ExecContext::new(&mut probe);
            ctx.counted_loop(Site::LOOP, 10);
        }
        assert_eq!(probe.branches, 11, "10 back-edges + 1 exit");
        assert_eq!(probe.taken_branches, 10);
        assert_eq!(probe.alu_ops, 10);
    }

    #[test]
    fn vector_loop_shape() {
        let mut probe = CountingProbe::new();
        {
            let mut ctx = ExecContext::new(&mut probe);
            ctx.vector_loop(Site::LOOP, 20, 8);
        }
        assert_eq!(probe.branches, 4, "ceil(20/8) = 3 back-edges + 1 exit");
        assert_eq!(probe.taken_branches, 3);
    }

    #[test]
    fn activation_allocations_monotone() {
        let mut probe = CountingProbe::new();
        let mut ctx = ExecContext::new(&mut probe);
        let r1 = ctx.alloc_activation(100);
        let r2 = ctx.alloc_activation(100);
        assert!(!r1.overlaps(&r2));
        assert!(r2.base() > r1.base());
    }
}
