//! Activation layers: ReLU in branchy and branchless (constant-time)
//! flavours.
//!
//! The branchy ReLU is one of the two data-dependent mechanisms that make
//! the CNN's hardware footprint input-dependent (the other is
//! zero-skipping in the compute kernels): its per-element sign branch
//! retires one branch either way, but the *outcome pattern* — and hence
//! `branch-misses` — follows the activation signs. The branchless variant
//! is the countermeasure evaluated in the ablation experiments.

use crate::addr::{Region, SegmentAllocator};
use crate::exec::{ExecContext, Site};
use crate::layer::{Layer, Mode, NnError, Result};
use scnn_tensor::{Shape, Tensor};

/// How ReLU is computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReluStyle {
    /// `if x > 0 { x } else { 0 }` with a real conditional branch
    /// (compiler output for scalar code; leaks sign pattern through the
    /// branch predictor).
    #[default]
    Branchy,
    /// `max(x, 0)` via a select/blend instruction — no branch, constant
    /// footprint. The countermeasure.
    Branchless,
}

/// Rectified linear unit, optionally *sparsifying*: activations at or
/// below a threshold are clamped to exact zero.
///
/// A positive threshold models the activation pruning that
/// sparsity-aware inference engines apply so that near-zero feature
/// values (e.g. a trained bias leaking onto background regions) do not
/// defeat downstream zero-skipping. It also regularises the leak story:
/// with `threshold = 0` a positive conv bias lights up the entire
/// background of a feature map, masking the input's sparsity pattern.
#[derive(Debug, Clone)]
pub struct Relu {
    style: ReluStyle,
    threshold: f32,
    cached_input: Option<Tensor>,
}

impl Relu {
    /// Creates a ReLU with the given execution style and no sparsifying
    /// threshold.
    pub fn new(style: ReluStyle) -> Self {
        Relu {
            style,
            threshold: 0.0,
            cached_input: None,
        }
    }

    /// Returns the same ReLU with a sparsifying threshold: outputs are
    /// `x` when `x > threshold` and exactly `0.0` otherwise.
    pub fn with_threshold(mut self, threshold: f32) -> Self {
        self.threshold = threshold;
        self
    }

    /// The execution style.
    pub fn style(&self) -> ReluStyle {
        self.style
    }

    /// The sparsifying threshold.
    pub fn threshold(&self) -> f32 {
        self.threshold
    }
}

impl Default for Relu {
    fn default() -> Self {
        Relu::new(ReluStyle::Branchy)
    }
}

impl Layer for Relu {
    fn name(&self) -> &'static str {
        "relu"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn output_shape(&self, input: &Shape) -> Result<Shape> {
        Ok(input.clone())
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        if mode == Mode::Train {
            self.cached_input = Some(input.clone());
        }
        let t = self.threshold;
        Ok(input.map(|x| if x > t { x } else { 0.0 }))
    }

    fn forward_traced(
        &self,
        input: &Tensor,
        input_region: Region,
        ctx: &mut ExecContext<'_>,
    ) -> Result<(Tensor, Region)> {
        let out_region = ctx.alloc_activation(input.len());
        let mut out = Vec::with_capacity(input.len());
        let t = self.threshold;
        match self.style {
            ReluStyle::Branchy => {
                for (i, &x) in input.as_slice().iter().enumerate() {
                    ctx.load(Site::ACT, input_region, i);
                    let positive = x > t;
                    // The sign test: outcome — and therefore the
                    // predictor's behaviour — depends on the data.
                    ctx.branch(Site::RELU, positive);
                    out.push(if positive { x } else { 0.0 });
                    ctx.store(Site::ACC, out_region, i);
                }
                ctx.counted_loop(Site::LOOP, input.len());
            }
            ReluStyle::Branchless => {
                for (i, &x) in input.as_slice().iter().enumerate() {
                    ctx.load(Site::ACT, input_region, i);
                    // threshold via compare + blend: ALU only, no branch.
                    ctx.alu(1);
                    out.push(if x > t { x } else { 0.0 });
                    ctx.store(Site::ACC, out_region, i);
                }
                ctx.counted_loop(Site::LOOP, input.len());
            }
        }
        Ok((Tensor::from_vec(out, input.shape().clone())?, out_region))
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let input = self
            .cached_input
            .as_ref()
            .ok_or(NnError::NoForwardCache { layer: "relu" })?;
        let t = self.threshold;
        Ok(grad_output.zip_with(input, |g, x| if x > t { g } else { 0.0 })?)
    }

    fn forward_batch(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        // Elementwise — the scalar path is already shape-agnostic, so the
        // batched forward is the same map over the batch tensor.
        self.forward(input, mode)
    }

    fn backward_batch(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        self.backward(grad_output)
    }

    fn assign_addresses(&mut self, _alloc: &mut SegmentAllocator) {}

    fn set_constant_time(&mut self, enabled: bool) {
        self.style = if enabled {
            ReluStyle::Branchless
        } else {
            ReluStyle::Branchy
        };
    }

    fn spec(&self) -> crate::spec::LayerSpec {
        crate::spec::LayerSpec::Relu {
            style: self.style,
            threshold: self.threshold,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scnn_uarch::CountingProbe;

    #[test]
    fn forward_clamps_negatives() {
        let mut relu = Relu::default();
        let x = Tensor::from_slice(&[-1.0, 0.0, 2.0]);
        let y = relu.forward(&x, Mode::Infer).unwrap();
        assert_eq!(y.as_slice(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn traced_matches_reference_both_styles() {
        let x = Tensor::from_slice(&[-3.0, 1.5, 0.0, -0.1, 7.0]);
        for style in [ReluStyle::Branchy, ReluStyle::Branchless] {
            let mut relu = Relu::new(style);
            let want = relu.forward(&x, Mode::Infer).unwrap();
            let mut probe = CountingProbe::new();
            let mut ctx = ExecContext::new(&mut probe);
            let region = ctx.alloc_activation(x.len());
            let (got, _) = relu.forward_traced(&x, region, &mut ctx).unwrap();
            assert_eq!(got, want, "{style:?}");
        }
    }

    #[test]
    fn branchy_emits_data_branches_branchless_does_not() {
        let x = Tensor::from_slice(&[-1.0, 1.0, -1.0, 1.0]);
        let count = |style| {
            let relu = Relu::new(style);
            let mut probe = CountingProbe::new();
            {
                let mut ctx = ExecContext::new(&mut probe);
                let region = ctx.alloc_activation(x.len());
                relu.forward_traced(&x, region, &mut ctx).unwrap();
            }
            probe
        };
        let branchy = count(ReluStyle::Branchy);
        let branchless = count(ReluStyle::Branchless);
        // Branchy: 4 sign branches + 5 loop branches; branchless: loop only.
        assert_eq!(branchy.branches, 4 + 5);
        assert_eq!(branchless.branches, 5);
        // Branchless spends the blend as ALU work instead.
        assert!(branchless.alu_ops > 0);
    }

    #[test]
    fn branchy_taken_pattern_follows_signs() {
        let x = Tensor::from_slice(&[1.0, 1.0, 1.0, -1.0]);
        let relu = Relu::default();
        let mut probe = CountingProbe::new();
        {
            let mut ctx = ExecContext::new(&mut probe);
            let region = ctx.alloc_activation(x.len());
            relu.forward_traced(&x, region, &mut ctx).unwrap();
        }
        // 3 positive sign-branches taken + 4 loop back-edges taken.
        assert_eq!(probe.taken_branches, 3 + 4);
    }

    #[test]
    fn threshold_sparsifies() {
        let mut relu = Relu::default().with_threshold(0.1);
        let x = Tensor::from_slice(&[-1.0, 0.05, 0.1, 0.2]);
        let y = relu.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.as_slice(), &[0.0, 0.0, 0.0, 0.2]);
        // Gradient masked at the same threshold.
        let g = relu.backward(&Tensor::full([4], 1.0)).unwrap();
        assert_eq!(g.as_slice(), &[0.0, 0.0, 0.0, 1.0]);
        // Traced path agrees, both styles.
        for style in [ReluStyle::Branchy, ReluStyle::Branchless] {
            let r = Relu::new(style).with_threshold(0.1);
            let mut probe = CountingProbe::new();
            let mut ctx = ExecContext::new(&mut probe);
            let region = ctx.alloc_activation(x.len());
            let (got, _) = r.forward_traced(&x, region, &mut ctx).unwrap();
            assert_eq!(got, y, "{style:?}");
        }
    }

    #[test]
    fn backward_masks_gradient() {
        let mut relu = Relu::default();
        let x = Tensor::from_slice(&[-1.0, 2.0]);
        relu.forward(&x, Mode::Train).unwrap();
        let g = relu.backward(&Tensor::from_slice(&[10.0, 10.0])).unwrap();
        assert_eq!(g.as_slice(), &[0.0, 10.0]);
    }

    #[test]
    fn backward_without_forward_errors() {
        let mut relu = Relu::default();
        assert!(matches!(
            relu.backward(&Tensor::from_slice(&[1.0])),
            Err(NnError::NoForwardCache { .. })
        ));
    }

    #[test]
    fn infer_mode_does_not_cache() {
        let mut relu = Relu::default();
        relu.forward(&Tensor::from_slice(&[1.0]), Mode::Infer)
            .unwrap();
        assert!(relu.backward(&Tensor::from_slice(&[1.0])).is_err());
    }
}
