//! Max pooling with data-dependent comparison branches.

use crate::addr::{Region, SegmentAllocator};
use crate::exec::{ExecContext, Site};
use crate::layer::{Layer, Mode, NnError, Result};
use scnn_tensor::ops::Window2d;
use scnn_tensor::{Shape, Tensor};

/// 2-D max pooling over `[C, H, W]` feature maps.
///
/// Each window element after the first is compared against the running
/// maximum with a conditional branch; *which* comparisons succeed depends
/// on the feature values, so the branch-outcome stream (and `branch-misses`)
/// is input-dependent even though the retired branch count is constant.
/// Under [`Layer::set_constant_time`] the comparison becomes a
/// compare-and-blend max (ALU only, like the branchless ReLU), removing
/// the last data-dependent branch outcomes from a protected inference.
#[derive(Debug, Clone)]
pub struct MaxPool2d {
    win: Window2d,
    constant_time: bool,
    cached: Option<PoolCache>,
}

#[derive(Debug, Clone)]
struct PoolCache {
    input_shape: Shape,
    /// Flat input index of the winning element per output element.
    argmax: Vec<usize>,
}

impl MaxPool2d {
    /// Square pooling window of size `k` with stride `k` (the usual
    /// non-overlapping pooling).
    pub fn new(k: usize) -> Self {
        MaxPool2d {
            win: Window2d::strided(k, k),
            constant_time: false,
            cached: None,
        }
    }

    /// Pooling with an explicit window.
    pub fn with_window(win: Window2d) -> Self {
        MaxPool2d {
            win,
            constant_time: false,
            cached: None,
        }
    }

    fn geometry(&self, input: &Shape) -> Result<(usize, usize, usize, usize, usize)> {
        input.expect_rank(3)?;
        let (c, h, w) = (input.dim(0), input.dim(1), input.dim(2));
        let (oh, ow) = self.win.output_size(h, w)?;
        Ok((c, h, w, oh, ow))
    }

    /// Core pooling loop shared by the reference and traced paths. The
    /// `emit` callback sees `(output_index, window_position, input_index,
    /// is_new_max)` for every window element.
    fn pool_with<F: FnMut(usize, usize, usize, bool)>(
        &self,
        input: &Tensor,
        emit: F,
    ) -> Result<(Tensor, Vec<usize>)> {
        let (c, h, w, oh, ow) = self.geometry(input.shape())?;
        let mut out = vec![0.0f32; c * oh * ow];
        let mut argmax = vec![0usize; c * oh * ow];
        self.pool_sample(
            input.as_slice(),
            (c, h, w, oh, ow),
            &mut out,
            &mut argmax,
            emit,
        );
        Ok((Tensor::from_vec(out, [c, oh, ow])?, argmax))
    }

    /// Pools one `[C, H, W]` sample given as a raw slice — the unit the
    /// batched path loops over. `dims` is `(c, h, w, oh, ow)`; `argmax`
    /// receives *sample-local* input indices.
    fn pool_sample<F: FnMut(usize, usize, usize, bool)>(
        &self,
        src: &[f32],
        dims: (usize, usize, usize, usize, usize),
        out: &mut [f32],
        argmax: &mut [usize],
        mut emit: F,
    ) {
        let (c, h, w, oh, ow) = dims;
        for ch in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let oi = (ch * oh + oy) * ow + ox;
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = 0usize;
                    let mut wpos = 0usize;
                    for ky in 0..self.win.kh {
                        for kx in 0..self.win.kw {
                            let iy = oy * self.win.sh + ky;
                            let ix = ox * self.win.sw + kx;
                            if iy >= h || ix >= w {
                                continue;
                            }
                            let ii = (ch * h + iy) * w + ix;
                            let v = src[ii];
                            let new_max = v > best;
                            emit(oi, wpos, ii, new_max);
                            if new_max {
                                best = v;
                                best_idx = ii;
                            }
                            wpos += 1;
                        }
                    }
                    out[oi] = best;
                    argmax[oi] = best_idx;
                }
            }
        }
    }
}

impl Layer for MaxPool2d {
    fn name(&self) -> &'static str {
        "maxpool2d"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn output_shape(&self, input: &Shape) -> Result<Shape> {
        let (c, _, _, oh, ow) = self.geometry(input)?;
        Ok(Shape::from(vec![c, oh, ow]))
    }

    fn set_constant_time(&mut self, enabled: bool) {
        self.constant_time = enabled;
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let (out, argmax) = self.pool_with(input, |_, _, _, _| {})?;
        if mode == Mode::Train {
            self.cached = Some(PoolCache {
                input_shape: input.shape().clone(),
                argmax,
            });
        }
        Ok(out)
    }

    fn forward_traced(
        &self,
        input: &Tensor,
        input_region: Region,
        ctx: &mut ExecContext<'_>,
    ) -> Result<(Tensor, Region)> {
        let out_shape = self.output_shape(input.shape())?;
        let out_region = ctx.alloc_activation(out_shape.len());
        let mut writes = 0usize;
        let ct = self.constant_time;
        let (out, _) = self.pool_with(input, |oi, wpos, ii, new_max| {
            ctx.load(Site::ACT, input_region, ii);
            if wpos > 0 {
                if ct {
                    // Compare + blend: ALU only, no branch to mispredict.
                    ctx.alu(1);
                } else {
                    // The running-max comparison: data-dependent outcome.
                    ctx.branch(Site::POOL, new_max);
                }
            }
            let _ = oi;
        })?;
        for i in 0..out.len() {
            ctx.store(Site::ACC, out_region, i);
            writes += 1;
        }
        ctx.counted_loop(Site::LOOP, writes);
        Ok((out, out_region))
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let cache = self
            .cached
            .as_ref()
            .ok_or(NnError::NoForwardCache { layer: "maxpool2d" })?;
        let mut grad_in = Tensor::zeros(cache.input_shape.clone());
        let gi = grad_in.as_mut_slice();
        for (oi, &ii) in cache.argmax.iter().enumerate() {
            gi[ii] += grad_output.as_slice()[oi];
        }
        Ok(grad_in)
    }

    fn forward_batch(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        input.shape().expect_rank(4)?;
        let n = input.dims()[0];
        let sample_shape = Shape::from(input.dims()[1..].to_vec());
        let (c, h, w, oh, ow) = self.geometry(&sample_shape)?;
        let in_len = c * h * w;
        let out_len = c * oh * ow;
        let src = input.as_slice();
        let mut out = vec![0.0f32; n * out_len];
        let mut argmax = vec![0usize; n * out_len];
        for s in 0..n {
            let arg_s = &mut argmax[s * out_len..(s + 1) * out_len];
            self.pool_sample(
                &src[s * in_len..(s + 1) * in_len],
                (c, h, w, oh, ow),
                &mut out[s * out_len..(s + 1) * out_len],
                arg_s,
                |_, _, _, _| {},
            );
            // Rebase to batch-flat input indices so the argmax scatter in
            // `backward` works on the batch tensor unchanged.
            for a in arg_s.iter_mut() {
                *a += s * in_len;
            }
        }
        if mode == Mode::Train {
            self.cached = Some(PoolCache {
                input_shape: input.shape().clone(),
                argmax,
            });
        }
        Ok(Tensor::from_vec(out, [n, c, oh, ow])?)
    }

    fn backward_batch(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        // The argmax scatter is shape-agnostic; with batch-flat indices
        // cached by `forward_batch` it already is the batched backward.
        self.backward(grad_output)
    }

    fn assign_addresses(&mut self, _alloc: &mut SegmentAllocator) {}

    fn spec(&self) -> crate::spec::LayerSpec {
        crate::spec::LayerSpec::MaxPool2d { k: self.win.kh }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::ExecContext;
    use scnn_uarch::CountingProbe;

    fn input_2x4x4() -> Tensor {
        let data: Vec<f32> = (0..32).map(|i| ((i * 7) % 13) as f32).collect();
        Tensor::from_vec(data, [2, 4, 4]).unwrap()
    }

    #[test]
    fn known_pooling() {
        let mut pool = MaxPool2d::new(2);
        let x = Tensor::from_vec(
            vec![
                1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0, 12.0, 13.0, 14.0, 15.0,
                16.0,
            ],
            [1, 4, 4],
        )
        .unwrap();
        let y = pool.forward(&x, Mode::Infer).unwrap();
        assert_eq!(y.dims(), &[1, 2, 2]);
        assert_eq!(y.as_slice(), &[6.0, 8.0, 14.0, 16.0]);
    }

    #[test]
    fn traced_matches_reference() {
        let x = input_2x4x4();
        let mut pool = MaxPool2d::new(2);
        let want = pool.forward(&x, Mode::Infer).unwrap();
        let mut probe = CountingProbe::new();
        let mut ctx = ExecContext::new(&mut probe);
        let region = ctx.alloc_activation(x.len());
        let (got, _) = pool.forward_traced(&x, region, &mut ctx).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn traced_branch_count_is_shape_static() {
        // Retired branches depend only on the geometry, not the values.
        let count = |x: &Tensor| {
            let pool = MaxPool2d::new(2);
            let mut probe = CountingProbe::new();
            {
                let mut ctx = ExecContext::new(&mut probe);
                let region = ctx.alloc_activation(x.len());
                pool.forward_traced(x, region, &mut ctx).unwrap();
            }
            probe.branches
        };
        let a = input_2x4x4();
        let b = a.map(|v| -v);
        assert_eq!(count(&a), count(&b));
    }

    #[test]
    fn traced_taken_pattern_is_data_dependent() {
        let taken = |x: &Tensor| {
            let pool = MaxPool2d::new(2);
            let mut probe = CountingProbe::new();
            {
                let mut ctx = ExecContext::new(&mut probe);
                let region = ctx.alloc_activation(x.len());
                pool.forward_traced(x, region, &mut ctx).unwrap();
            }
            probe.taken_branches
        };
        let ascending = Tensor::from_vec((0..16).map(|i| i as f32).collect(), [1, 4, 4]).unwrap();
        let descending =
            Tensor::from_vec((0..16).rev().map(|i| i as f32).collect(), [1, 4, 4]).unwrap();
        assert_ne!(taken(&ascending), taken(&descending));
    }

    #[test]
    fn constant_time_pooling_emits_no_pool_branches() {
        // Compare-and-blend max: same numbers, no data-dependent
        // branch outcomes left for the predictor to leak.
        let trace = |x: &Tensor| {
            let mut pool = MaxPool2d::new(2);
            pool.set_constant_time(true);
            let want = pool.forward(x, Mode::Infer).unwrap();
            let mut probe = CountingProbe::new();
            let branches;
            let taken;
            let got;
            {
                let mut ctx = ExecContext::new(&mut probe);
                let region = ctx.alloc_activation(x.len());
                got = pool.forward_traced(x, region, &mut ctx).unwrap().0;
                branches = probe.branches;
                taken = probe.taken_branches;
            }
            assert_eq!(got, want);
            (branches, taken)
        };
        let ascending = Tensor::from_vec((0..16).map(|i| i as f32).collect(), [1, 4, 4]).unwrap();
        let descending =
            Tensor::from_vec((0..16).rev().map(|i| i as f32).collect(), [1, 4, 4]).unwrap();
        // Only the (value-independent) loop branches remain: identical
        // counts and identical outcome streams across inputs.
        assert_eq!(trace(&ascending), trace(&descending));
    }

    #[test]
    fn backward_routes_gradient_to_argmax() {
        let mut pool = MaxPool2d::new(2);
        let x = Tensor::from_vec(
            vec![
                0.0, 9.0, 0.0, 0.0, 0.0, 0.0, 0.0, 7.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 2.0,
            ],
            [1, 4, 4],
        )
        .unwrap();
        pool.forward(&x, Mode::Train).unwrap();
        let g = pool
            .backward(&Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [1, 2, 2]).unwrap())
            .unwrap();
        assert_eq!(g.get(&[0, 0, 1]).unwrap(), 1.0, "9.0 won the first window");
        assert_eq!(g.get(&[0, 1, 3]).unwrap(), 2.0, "7.0 won the second");
        assert_eq!(g.get(&[0, 2, 0]).unwrap(), 3.0);
        assert_eq!(g.get(&[0, 3, 3]).unwrap(), 4.0);
        assert_eq!(g.sum(), 10.0, "all gradient mass routed");
    }

    #[test]
    fn output_shape_checks_rank() {
        let pool = MaxPool2d::new(2);
        assert!(pool.output_shape(&Shape::from([4, 4])).is_err());
        assert_eq!(
            pool.output_shape(&Shape::from([3, 8, 8])).unwrap(),
            Shape::from([3, 4, 4])
        );
    }

    #[test]
    fn backward_requires_forward() {
        let mut pool = MaxPool2d::new(2);
        assert!(pool.backward(&Tensor::zeros([1, 1, 1])).is_err());
    }
}
