//! The CNN architectures used by the paper's two case studies.
//!
//! The paper implements "two CNN models for MNIST and CIFAR-10 using the
//! tensorflow library" without giving the exact topology; these presets
//! use standard LeNet-style stacks sized so that instrumented inference is
//! fast enough to collect hundreds of measurements per category.

use crate::activation::{Relu, ReluStyle};

/// Activation-pruning threshold used by all presets: values at or below
/// this are treated as zero by the sparsifying ReLU, keeping background
/// regions exactly zero even when trained biases drift positive.
pub const ACTIVATION_PRUNE: f32 = 0.02;
use crate::conv::{Conv2d, ConvStyle};
use crate::dense::{Dense, DenseStyle};
use crate::network::Network;
use crate::pool::MaxPool2d;
use crate::softmax::Flatten;

/// The MNIST case-study CNN (§5.2): `1×28×28` input, two conv+pool
/// stages, two dense layers, 10 logits.
///
/// Topology: conv(1→8, 5×5) → ReLU → pool2 → conv(8→16, 5×5) → ReLU →
/// pool2 → flatten(256) → dense(256→64) → ReLU → dense(64→10).
pub fn mnist_cnn(seed: u64) -> Network {
    let mut net = Network::new();
    net.push(Conv2d::new(1, 8, 5, ConvStyle::ZeroSkip, seed).without_bias());
    net.push(Relu::new(ReluStyle::Branchy).with_threshold(ACTIVATION_PRUNE));
    net.push(MaxPool2d::new(2));
    net.push(Conv2d::new(8, 16, 5, ConvStyle::ZeroSkip, seed ^ 0x11).without_bias());
    net.push(Relu::new(ReluStyle::Branchy).with_threshold(ACTIVATION_PRUNE));
    net.push(MaxPool2d::new(2));
    net.push(Flatten::new());
    net.push(Dense::new(
        16 * 4 * 4,
        64,
        DenseStyle::ZeroSkip,
        seed ^ 0x22,
    ));
    net.push(Relu::new(ReluStyle::Branchy).with_threshold(ACTIVATION_PRUNE));
    net.push(Dense::new(64, 10, DenseStyle::ZeroSkip, seed ^ 0x33));
    net.finalize();
    net
}

/// The CIFAR-10 case-study CNN (§5.3): `3×32×32` input.
///
/// Topology: conv(3→8, 5×5) → ReLU → pool2 → conv(8→16, 5×5) → ReLU →
/// pool2 → flatten(400) → dense(400→64) → ReLU → dense(64→10).
pub fn cifar_cnn(seed: u64) -> Network {
    let mut net = Network::new();
    net.push(Conv2d::new(3, 8, 5, ConvStyle::ZeroSkip, seed).without_bias());
    net.push(Relu::new(ReluStyle::Branchy).with_threshold(ACTIVATION_PRUNE));
    net.push(MaxPool2d::new(2));
    net.push(Conv2d::new(8, 16, 5, ConvStyle::ZeroSkip, seed ^ 0x11).without_bias());
    net.push(Relu::new(ReluStyle::Branchy).with_threshold(ACTIVATION_PRUNE));
    net.push(MaxPool2d::new(2));
    net.push(Flatten::new());
    net.push(Dense::new(
        16 * 5 * 5,
        64,
        DenseStyle::ZeroSkip,
        seed ^ 0x22,
    ));
    net.push(Relu::new(ReluStyle::Branchy).with_threshold(ACTIVATION_PRUNE));
    net.push(Dense::new(64, 10, DenseStyle::ZeroSkip, seed ^ 0x33));
    net.finalize();
    net
}

/// A multi-layer perceptron over flattened images — the "other deep
/// learning model" the paper's future-work section points at. With no
/// convolutions, the zero-skipping dense layers see the raw image
/// sparsity directly, so the first layer's weight-column footprint is the
/// digit silhouette itself.
///
/// Topology: flatten → dense(`side²·channels`→128) → ReLU →
/// dense(128→64) → ReLU → dense(64→10).
pub fn mnist_mlp(in_channels: usize, side: usize, seed: u64) -> Network {
    let inputs = in_channels * side * side;
    let mut net = Network::new();
    net.push(Flatten::new());
    net.push(Dense::new(inputs, 128, DenseStyle::ZeroSkip, seed));
    net.push(Relu::new(ReluStyle::Branchy).with_threshold(ACTIVATION_PRUNE));
    net.push(Dense::new(128, 64, DenseStyle::ZeroSkip, seed ^ 0x44));
    net.push(Relu::new(ReluStyle::Branchy).with_threshold(ACTIVATION_PRUNE));
    net.push(Dense::new(64, 10, DenseStyle::ZeroSkip, seed ^ 0x55));
    net.finalize();
    net
}

/// A compact single-conv model parameterised by geometry — used by the
/// fast ("tiny scale") experiment pipeline and by tests.
///
/// Topology: conv(`in_channels`→4, 3×3) → ReLU → pool2 →
/// flatten → dense(→`classes`).
///
/// # Panics
///
/// Panics when `side` is too small for a 3×3 convolution followed by 2×2
/// pooling (`side < 5`).
pub fn small_cnn(in_channels: usize, side: usize, classes: usize, seed: u64) -> Network {
    assert!(side >= 5, "side must be at least 5");
    let conv_out = side - 2;
    let pooled = conv_out / 2;
    let mut net = Network::new();
    net.push(Conv2d::new(in_channels, 4, 3, ConvStyle::ZeroSkip, seed).without_bias());
    net.push(Relu::new(ReluStyle::Branchy).with_threshold(ACTIVATION_PRUNE));
    net.push(MaxPool2d::new(2));
    net.push(Flatten::new());
    net.push(Dense::new(
        4 * pooled * pooled,
        classes,
        DenseStyle::ZeroSkip,
        seed ^ 0x22,
    ));
    net.finalize();
    net
}

/// A deliberately small model for fast tests: `1×8×8` input, 4 logits.
pub fn tiny_cnn(seed: u64) -> Network {
    let mut net = Network::new();
    net.push(Conv2d::new(1, 2, 3, ConvStyle::ZeroSkip, seed).without_bias());
    net.push(Relu::new(ReluStyle::Branchy).with_threshold(ACTIVATION_PRUNE));
    net.push(MaxPool2d::new(2));
    net.push(Flatten::new());
    net.push(Dense::new(2 * 3 * 3, 4, DenseStyle::ZeroSkip, seed ^ 0x22));
    net.finalize();
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use scnn_tensor::{Shape, Tensor};

    #[test]
    fn mnist_shapes() {
        let net = mnist_cnn(1);
        assert_eq!(
            net.output_shape(&Shape::from([1, 28, 28])).unwrap(),
            Shape::from([10])
        );
    }

    #[test]
    fn cifar_shapes() {
        let net = cifar_cnn(1);
        assert_eq!(
            net.output_shape(&Shape::from([3, 32, 32])).unwrap(),
            Shape::from([10])
        );
    }

    #[test]
    fn tiny_shapes() {
        let net = tiny_cnn(1);
        assert_eq!(
            net.output_shape(&Shape::from([1, 8, 8])).unwrap(),
            Shape::from([4])
        );
    }

    #[test]
    fn mlp_shapes_and_inference() {
        let mut net = mnist_mlp(1, 28, 4);
        assert_eq!(
            net.output_shape(&Shape::from([1, 28, 28])).unwrap(),
            Shape::from([10])
        );
        let y = net.infer(&Tensor::full([1, 28, 28], 0.2)).unwrap();
        assert!(y.all_finite());
        assert_eq!(
            net.param_count(),
            784 * 128 + 128 + 128 * 64 + 64 + 64 * 10 + 10
        );
    }

    #[test]
    fn small_cnn_shapes() {
        for (ch, side, classes) in [(1, 12, 4), (3, 9, 2), (1, 5, 10)] {
            let net = small_cnn(ch, side, classes, 3);
            assert_eq!(
                net.output_shape(&Shape::from([ch, side, side])).unwrap(),
                Shape::from([classes]),
                "ch={ch} side={side}"
            );
        }
    }

    #[test]
    fn models_run_inference() {
        let mut m = mnist_cnn(2);
        let y = m.infer(&Tensor::full([1, 28, 28], 0.1)).unwrap();
        assert_eq!(y.dims(), &[10]);
        assert!(y.all_finite());

        let mut c = cifar_cnn(2);
        let y = c.infer(&Tensor::full([3, 32, 32], 0.1)).unwrap();
        assert_eq!(y.dims(), &[10]);
        assert!(y.all_finite());
    }

    #[test]
    fn different_seeds_different_weights() {
        let mut a = mnist_cnn(1);
        let mut b = mnist_cnn(2);
        let x = Tensor::full([1, 28, 28], 0.5);
        assert_ne!(a.infer(&x).unwrap(), b.infer(&x).unwrap());
    }

    #[test]
    fn constant_time_switch_preserves_output() {
        let mut net = tiny_cnn(3);
        let x = Tensor::full([1, 8, 8], 0.25);
        let before = net.infer(&x).unwrap();
        net.set_constant_time(true);
        let after = net.infer(&x).unwrap();
        assert_eq!(before, after, "countermeasure must not change semantics");
    }
}
