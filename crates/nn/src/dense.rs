//! Fully-connected layer with an activation-sparsity-aware ("zero
//! skipping") kernel.
//!
//! The kernel is input-stationary: for every input activation it first
//! tests for zero and, when the test succeeds, skips that activation's
//! entire weight column. To make the column walk sequential the weights
//! are stored **input-major** (`[in_dim][out_dim]`, i.e. transposed) —
//! the layout any real sparse GEMV kernel chooses — so a skipped
//! activation skips *contiguous cache lines* of weights. Because
//! post-ReLU sparsity patterns are class-characteristic, the set of
//! weight lines touched — and with it the `cache-misses` count — depends
//! on *which* category the input image belongs to. This is the principal
//! leakage mechanism reproduced from the paper.

use crate::addr::{Region, SegmentAllocator};
use crate::exec::{ExecContext, Site};
use crate::layer::{Layer, Mode, NnError, Param, Result};
use scnn_rng::{ChaCha8Rng, SeedableRng, SliceRandom};
use scnn_tensor::ops::{self, GemmInit, GemmScratch};
use scnn_tensor::{Init, Shape, ShapeError, Tensor};

/// How the dense kernel treats zero activations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DenseStyle {
    /// Skip the weight column of a zero activation (sparsity-aware GEMV,
    /// the optimisation that leaks).
    #[default]
    ZeroSkip,
    /// Always walk every weight — constant memory footprint, the
    /// countermeasure.
    Dense,
}

/// A fully-connected layer computing `y = W·x + b`.
#[derive(Debug, Clone)]
pub struct Dense {
    weight: Param,
    bias: Param,
    in_dim: usize,
    out_dim: usize,
    style: DenseStyle,
    /// When set, the traced kernel visits input activations in a seeded
    /// random order instead of ascending index order (runtime-only state,
    /// never serialized — see [`Layer::set_shuffle`]).
    shuffle: Option<u64>,
    weight_region: Option<Region>,
    bias_region: Option<Region>,
    cached_input: Option<Tensor>,
    scratch: GemmScratch,
}

impl Dense {
    /// Creates the layer with He-normal weights derived from `seed`.
    /// Weights are stored input-major: `weight[i][j]` multiplies input
    /// `i` into output `j`.
    pub fn new(in_dim: usize, out_dim: usize, style: DenseStyle, seed: u64) -> Self {
        let weight = Init::HeNormal.sample([in_dim, out_dim], in_dim, out_dim, seed);
        let bias = Init::Zeros.sample([out_dim], in_dim, out_dim, seed ^ 1);
        Dense {
            weight: Param::new(weight),
            bias: Param::new(bias),
            in_dim,
            out_dim,
            style,
            shuffle: None,
            weight_region: None,
            bias_region: None,
            cached_input: None,
            scratch: GemmScratch::new(),
        }
    }

    /// Rebuilds a layer from existing parameters (deserialization).
    /// Weights are input-major: `[in_dim, out_dim]`.
    ///
    /// # Panics
    ///
    /// Panics when `weight` is not rank 2 or `bias` is not `[out_dim]`.
    pub fn from_params(weight: Tensor, bias: Tensor, style: DenseStyle) -> Self {
        assert_eq!(weight.shape().rank(), 2, "weights must be [in, out]");
        let (in_dim, out_dim) = (weight.dims()[0], weight.dims()[1]);
        assert_eq!(bias.dims(), &[out_dim], "bias must be [out]");
        Dense {
            weight: Param::new(weight),
            bias: Param::new(bias),
            in_dim,
            out_dim,
            style,
            shuffle: None,
            weight_region: None,
            bias_region: None,
            cached_input: None,
            scratch: GemmScratch::new(),
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// The kernel style.
    pub fn style(&self) -> DenseStyle {
        self.style
    }

    /// Switches the kernel style (used by the countermeasure ablation).
    pub fn set_style(&mut self, style: DenseStyle) {
        self.style = style;
    }

    fn check_input(&self, input: &Shape) -> Result<()> {
        input.expect_rank(1)?;
        if input.dim(0) != self.in_dim {
            return Err(NnError::Shape(ShapeError::Mismatch {
                left: input.dims().to_vec(),
                right: vec![self.in_dim],
            }));
        }
        Ok(())
    }

    fn compute(&self, x: &[f32]) -> Vec<f32> {
        let w = self.weight.value.as_slice();
        let mut y = self.bias.value.as_slice().to_vec();
        // Input-stationary, branch-free accumulation: one row of the batch
        // GEMM (`y ← b; y += xᵢ·Wᵢ`, i ascending), so the scalar and
        // batched paths make identical rounding decisions. Zero skipping
        // is purely an *event-stream* property of the traced kernel — a
        // numeric skip would defeat autovectorization here.
        for (i, &xi) in x.iter().enumerate() {
            let col = &w[i * self.out_dim..(i + 1) * self.out_dim];
            for (yj, &wij) in y.iter_mut().zip(col) {
                *yj += wij * xi;
            }
        }
        y
    }
}

impl Layer for Dense {
    fn name(&self) -> &'static str {
        "dense"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn output_shape(&self, input: &Shape) -> Result<Shape> {
        self.check_input(input)?;
        Ok(Shape::from(vec![self.out_dim]))
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        self.check_input(input.shape())?;
        if mode == Mode::Train {
            self.cached_input = Some(input.clone());
        }
        Ok(Tensor::from_vec(
            self.compute(input.as_slice()),
            [self.out_dim],
        )?)
    }

    fn forward_traced(
        &self,
        input: &Tensor,
        input_region: Region,
        ctx: &mut ExecContext<'_>,
    ) -> Result<(Tensor, Region)> {
        self.check_input(input.shape())?;
        let weight_region = self
            .weight_region
            .unwrap_or_else(|| Region::new(crate::addr::STATIC_BASE, self.weight.value.len()));
        let bias_region = self
            .bias_region
            .unwrap_or_else(|| Region::new(weight_region.end(), self.bias.value.len()));
        let out_region = ctx.alloc_activation(self.out_dim);

        // y ← b
        for j in 0..self.out_dim {
            ctx.load(Site::WEIGHT, bias_region, j);
            ctx.store(Site::ACC, out_region, j);
        }
        ctx.counted_loop(Site::LOOP, self.out_dim);

        let x = input.as_slice();
        // With shuffling armed, the input-stationary walk visits the
        // activations in a seeded random order — the probe sees permuted
        // activation/weight addresses and a decorrelated skip pattern.
        // The numeric output is untouched either way: it comes from the
        // separate branch-free fold below.
        let order = self.shuffle.map(|seed| {
            let salt = ((self.in_dim as u64) << 32) | self.out_dim as u64;
            let mut order: Vec<usize> = (0..self.in_dim).collect();
            order.shuffle(&mut ChaCha8Rng::seed_from_u64(seed ^ salt));
            order
        });
        for step in 0..self.in_dim {
            let i = order.as_ref().map_or(step, |o| o[step]);
            let xi = x[i];
            ctx.load(Site::ACT, input_region, i);
            match self.style {
                DenseStyle::ZeroSkip => {
                    let nonzero = xi != 0.0;
                    // The skip test: the branch retires either way, but a
                    // zero activation skips the whole column walk below —
                    // weights stay untouched.
                    ctx.branch(Site::SKIP, !nonzero);
                    if !nonzero {
                        continue;
                    }
                }
                DenseStyle::Dense => {
                    // Constant-footprint kernel: no skip test, every
                    // column is walked.
                }
            }
            for j in 0..self.out_dim {
                // Contiguous column of the input-major weight matrix.
                ctx.load(Site::WEIGHT, weight_region, i * self.out_dim + j);
                ctx.load(Site::ACC, out_region, j);
                ctx.alu(2); // mul + add
                ctx.store(Site::ACC, out_region, j);
            }
            // The column walk is a vectorised AXPY.
            ctx.vector_loop(Site::LOOP, self.out_dim, 8);
        }
        ctx.counted_loop(Site::LOOP, self.in_dim);

        // The event stream above models the skipping kernel; the numbers
        // come from the same branch-free fold as the reference path.
        Ok((
            Tensor::from_vec(self.compute(x), [self.out_dim])?,
            out_region,
        ))
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let input = self
            .cached_input
            .as_ref()
            .ok_or(NnError::NoForwardCache { layer: "dense" })?;
        grad_output.shape().expect_rank(1)?;
        let g = grad_output.as_slice();
        let x = input.as_slice();
        let w = self.weight.value.as_slice();

        // dW[i][j] += x[i]·g[j];  db[j] += g[j];  dx[i] = Σ_j g[j]·W[i][j]
        let gw = self.weight.grad.as_mut_slice();
        for i in 0..self.in_dim {
            for j in 0..self.out_dim {
                gw[i * self.out_dim + j] += x[i] * g[j];
            }
        }
        let gb = self.bias.grad.as_mut_slice();
        for j in 0..self.out_dim {
            gb[j] += g[j];
        }
        let mut gx = vec![0.0f32; self.in_dim];
        for (i, gxi) in gx.iter_mut().enumerate() {
            let col = &w[i * self.out_dim..(i + 1) * self.out_dim];
            *gxi = col.iter().zip(g).map(|(&wij, &gj)| wij * gj).sum();
        }
        Ok(Tensor::from_vec(gx, [self.in_dim])?)
    }

    fn forward_batch(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        input.shape().expect_rank(2)?;
        if input.dims()[1] != self.in_dim {
            return Err(NnError::Shape(ShapeError::Mismatch {
                left: input.dims().to_vec(),
                right: vec![input.dims()[0], self.in_dim],
            }));
        }
        if mode == Mode::Train {
            self.cached_input = Some(input.clone());
        }
        let n = input.dims()[0];
        let mut out = Tensor::zeros([n, self.out_dim]);
        // One [N, in]×[in, out] GEMM. Seeding each output row with the
        // bias and accumulating k-ascending is exactly `compute` per row.
        ops::gemm_into(
            input,
            &self.weight.value,
            GemmInit::BiasPerCol(self.bias.value.as_slice()),
            None,
            &mut out,
            &mut self.scratch,
        )?;
        Ok(out)
    }

    fn backward_batch(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let input = self
            .cached_input
            .as_ref()
            .ok_or(NnError::NoForwardCache { layer: "dense" })?;
        input.shape().expect_rank(2)?;
        grad_output.shape().expect_rank(2)?;
        if grad_output.dims() != [input.dims()[0], self.out_dim] {
            return Err(NnError::Shape(ShapeError::Mismatch {
                left: grad_output.dims().to_vec(),
                right: vec![input.dims()[0], self.out_dim],
            }));
        }
        // dW += Xᵀ·G streams samples in increasing order — the same
        // accumulation sequence as per-sample `dW += x ⊗ g`.
        ops::matmul_atb_acc(input, grad_output, &mut self.weight.grad)?;
        let gb = self.bias.grad.as_mut_slice();
        for grow in grad_output.as_slice().chunks_exact(self.out_dim) {
            for (gbj, &gj) in gb.iter_mut().zip(grow) {
                *gbj += gj;
            }
        }
        // dX = G·Wᵀ: each dx[i] is the same j-ascending dot product the
        // per-sample backward computes.
        ops::matmul_abt(grad_output, &self.weight.value).map_err(NnError::from)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn assign_addresses(&mut self, alloc: &mut SegmentAllocator) {
        self.weight_region = Some(alloc.alloc(self.weight.value.len()));
        self.bias_region = Some(alloc.alloc(self.bias.value.len()));
    }

    fn param_count(&self) -> usize {
        self.weight.value.len() + self.bias.value.len()
    }

    fn set_constant_time(&mut self, enabled: bool) {
        self.style = if enabled {
            DenseStyle::Dense
        } else {
            DenseStyle::ZeroSkip
        };
    }

    fn set_shuffle(&mut self, seed: Option<u64>) {
        self.shuffle = seed;
    }

    fn spec(&self) -> crate::spec::LayerSpec {
        crate::spec::LayerSpec::Dense {
            weight: self.weight.value.clone(),
            bias: self.bias.value.clone(),
            style: self.style,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scnn_tensor::ops;
    use scnn_uarch::CountingProbe;

    fn layer(style: DenseStyle) -> Dense {
        Dense::new(4, 3, style, 11)
    }

    #[test]
    fn forward_matches_matvec() {
        let mut d = layer(DenseStyle::ZeroSkip);
        let x = Tensor::from_slice(&[0.5, -1.0, 0.0, 2.0]);
        let y = d.forward(&x, Mode::Infer).unwrap();
        let wt = ops::transpose(&d.weight.value).unwrap();
        let mut expect = ops::matvec(&wt, &x).unwrap();
        expect += &d.bias.value;
        for (a, b) in y.as_slice().iter().zip(expect.as_slice()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn traced_matches_reference() {
        for style in [DenseStyle::ZeroSkip, DenseStyle::Dense] {
            let mut d = layer(style);
            let x = Tensor::from_slice(&[0.0, 1.0, 0.0, -2.0]);
            let want = d.forward(&x, Mode::Infer).unwrap();
            let mut probe = CountingProbe::new();
            let mut ctx = ExecContext::new(&mut probe);
            let region = ctx.alloc_activation(4);
            let (got, _) = d.forward_traced(&x, region, &mut ctx).unwrap();
            assert_eq!(got, want, "{style:?}");
        }
    }

    #[test]
    fn zero_skip_touches_fewer_weights() {
        let loads = |style, x: &Tensor| {
            let d = layer(style);
            let mut probe = CountingProbe::new();
            {
                let mut ctx = ExecContext::new(&mut probe);
                let region = ctx.alloc_activation(4);
                d.forward_traced(x, region, &mut ctx).unwrap();
            }
            probe.loads
        };
        let sparse = Tensor::from_slice(&[0.0, 0.0, 0.0, 1.0]);
        let dense_in = Tensor::from_slice(&[1.0, 1.0, 1.0, 1.0]);
        assert!(loads(DenseStyle::ZeroSkip, &sparse) < loads(DenseStyle::ZeroSkip, &dense_in));
        assert_eq!(
            loads(DenseStyle::Dense, &sparse),
            loads(DenseStyle::Dense, &dense_in),
            "constant-footprint kernel ignores sparsity"
        );
    }

    #[test]
    fn branch_counts_data_dependent_only_under_zero_skip() {
        let branch_count = |style, x: &Tensor| {
            let d = layer(style);
            let mut probe = CountingProbe::new();
            {
                let mut ctx = ExecContext::new(&mut probe);
                let region = ctx.alloc_activation(4);
                d.forward_traced(x, region, &mut ctx).unwrap();
            }
            probe.branches
        };
        let sparse = Tensor::from_slice(&[0.0, 1.0, 0.0, 0.0]);
        let dense_in = Tensor::from_slice(&[1.0, 1.0, 1.0, 1.0]);
        // Zero skipping: skipped columns never run their inner loop, so
        // the retired branch count follows the input sparsity.
        assert!(
            branch_count(DenseStyle::ZeroSkip, &sparse)
                < branch_count(DenseStyle::ZeroSkip, &dense_in)
        );
        // The constant-footprint kernel retires the same branches always.
        assert_eq!(
            branch_count(DenseStyle::Dense, &sparse),
            branch_count(DenseStyle::Dense, &dense_in)
        );
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut d = layer(DenseStyle::ZeroSkip);
        let x = Tensor::from_slice(&[0.3, -0.7, 0.9, 0.1]);
        let y = d.forward(&x, Mode::Train).unwrap();
        // Loss = sum(y); dL/dy = 1.
        let ones = Tensor::full([3], 1.0);
        let gx = d.backward(&ones).unwrap();

        let eps = 1e-3f32;
        for i in 0..4 {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let fp = d.forward(&xp, Mode::Infer).unwrap().sum();
            let fm = d.forward(&xm, Mode::Infer).unwrap().sum();
            let numeric = (fp - fm) / (2.0 * eps);
            assert!(
                (numeric - gx.as_slice()[i]).abs() < 1e-2,
                "dx[{i}]: numeric {numeric} vs analytic {}",
                gx.as_slice()[i]
            );
        }

        // Weight gradient: dL/dW[i][j] = x[i] when every g[j] = 1.
        for i in 0..4 {
            for j in 0..3 {
                let got = d.weight.grad.as_slice()[i * 3 + j];
                assert!((got - x.as_slice()[i]).abs() < 1e-6);
            }
        }
        // Bias gradient = 1.
        assert!(d
            .bias
            .grad
            .as_slice()
            .iter()
            .all(|&g| (g - 1.0).abs() < 1e-6));
        let _ = y;
    }

    #[test]
    fn rejects_wrong_input_shape() {
        let mut d = layer(DenseStyle::ZeroSkip);
        assert!(d.forward(&Tensor::zeros([5]), Mode::Infer).is_err());
        assert!(d.forward(&Tensor::zeros([2, 2]), Mode::Infer).is_err());
    }

    #[test]
    fn params_exposed() {
        let mut d = layer(DenseStyle::ZeroSkip);
        assert_eq!(d.params_mut().len(), 2);
        assert_eq!(d.param_count(), 3 * 4 + 3);
    }

    #[test]
    fn assigned_addresses_are_stable() {
        let mut d = layer(DenseStyle::ZeroSkip);
        let mut alloc = SegmentAllocator::statics();
        d.assign_addresses(&mut alloc);
        let w1 = d.weight_region.unwrap();
        // Traced twice: weight loads must hit the same addresses.
        let addrs = |d: &Dense| {
            let mut probe = RecordingProbe::default();
            {
                let mut ctx = ExecContext::new(&mut probe);
                let region = ctx.alloc_activation(4);
                d.forward_traced(&Tensor::full([4], 1.0), region, &mut ctx)
                    .unwrap();
            }
            probe.addrs
        };
        let a1 = addrs(&d);
        let a2 = addrs(&d);
        assert_eq!(a1, a2);
        assert!(a1.iter().any(|&a| a >= w1.base() && a < w1.end()));
    }

    #[test]
    fn shuffle_permutes_trace_but_not_numbers() {
        let x = Tensor::from_slice(&[0.5, 0.0, -1.0, 2.0]);
        let mut reference = layer(DenseStyle::ZeroSkip);
        let want = reference.forward(&x, Mode::Infer).unwrap();
        let trace = |shuffle: Option<u64>| {
            let mut d = layer(DenseStyle::ZeroSkip);
            d.set_shuffle(shuffle);
            let mut probe = RecordingProbe::default();
            let got = {
                let mut ctx = ExecContext::new(&mut probe);
                let region = ctx.alloc_activation(4);
                d.forward_traced(&x, region, &mut ctx).unwrap().0
            };
            (got, probe.addrs)
        };
        let (plain_out, plain_addrs) = trace(None);
        let (shuf_out, shuf_addrs) = trace(Some(7));
        assert_eq!(plain_out, want);
        assert_eq!(shuf_out, want, "shuffling never changes the numbers");
        assert_eq!(
            plain_addrs.len(),
            shuf_addrs.len(),
            "shuffling permutes accesses, it does not add or drop any"
        );
        assert_ne!(plain_addrs, shuf_addrs, "the probe sees a permuted order");
        // Distinct seeds give distinct permutations.
        let (_, other) = trace(Some(8));
        assert_ne!(shuf_addrs, other);
    }

    #[derive(Default)]
    struct RecordingProbe {
        addrs: Vec<u64>,
    }

    impl scnn_uarch::Probe for RecordingProbe {
        fn load(&mut self, addr: u64, _pc: u64) {
            self.addrs.push(addr);
        }
    }
}
