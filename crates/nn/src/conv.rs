//! 2-D convolution with an input-stationary, zero-skipping kernel.
//!
//! The traced kernel iterates over *input* pixels and scatters each
//! pixel's contribution to every output it reaches. A zero input pixel is
//! skipped after a single test, so its multiply-accumulate work never
//! happens.
//!
//! Like real CPU inference stacks, the kernel also materialises a
//! **lowering scratch buffer**: a *compacted* (gather-style) sparse
//! im2col that appends each live pixel's patch entries contiguously,
//! leaving dead pixels out entirely (their positions live in a small
//! index array instead). The scratch cache-line footprint is therefore
//! proportional to the number of non-zero activations of the layer input
//! at per-pixel granularity. For the first convolution of an MNIST-style
//! classifier that count is the amount of ink in the digit — the most
//! direct leak of the private input, and the dominant source of the
//! class-dependent `cache-misses` distributions reproduced from the
//! paper.

use crate::addr::{Region, SegmentAllocator};
use crate::exec::{ExecContext, Site};
use crate::layer::{Layer, Mode, NnError, Param, Result};
use scnn_rng::{ChaCha8Rng, SeedableRng, SliceRandom};
use scnn_tensor::gemm::{self, GemmInit, GemmScratch};
use scnn_tensor::ops::{self, Window2d};
use scnn_tensor::{Init, Shape, ShapeError, Tensor};

/// Working buffers for the lowered (im2col + GEMM) convolution paths,
/// reused across calls so steady-state forward/backward allocates only
/// its output tensor. Clones are empty: scratch is working state, and a
/// replica cloned for parallel gradient work regrows its own.
#[derive(Debug, Default)]
struct ConvScratch {
    gemm: GemmScratch,
    /// im2col lowering of the current input (one sample or a batch).
    cols: Vec<f32>,
    /// Staging for GEMM outputs that need reshuffling or scattering.
    stage: Vec<f32>,
}

impl Clone for ConvScratch {
    fn clone(&self) -> Self {
        ConvScratch::default()
    }
}

/// How the convolution kernel treats zero input activations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConvStyle {
    /// Skip all work for a zero input pixel (sparsity-aware, leaks).
    #[default]
    ZeroSkip,
    /// Touch every weight and accumulator regardless — the
    /// constant-footprint countermeasure.
    Dense,
}

/// A 2-D convolution layer over `[C, H, W]` inputs with `[F, C, kh, kw]`
/// filters.
#[derive(Debug, Clone)]
pub struct Conv2d {
    filters: Param,
    bias: Param,
    use_bias: bool,
    in_channels: usize,
    out_channels: usize,
    win: Window2d,
    style: ConvStyle,
    /// When set, the traced kernel reports input-pixel loads through a
    /// seeded permutation of the activation address space (runtime-only
    /// state, never serialized — see [`Layer::set_shuffle`]).
    shuffle: Option<u64>,
    filter_region: Option<Region>,
    bias_region: Option<Region>,
    cached_input: Option<Tensor>,
    scratch: ConvScratch,
}

impl Conv2d {
    /// Creates the layer with He-normal filters derived from `seed`.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        style: ConvStyle,
        seed: u64,
    ) -> Self {
        let fan_in = in_channels * kernel * kernel;
        let filters = Init::HeNormal.sample(
            [out_channels, in_channels, kernel, kernel],
            fan_in,
            out_channels,
            seed,
        );
        let bias = Init::Zeros.sample([out_channels], fan_in, out_channels, seed ^ 1);
        Conv2d {
            filters: Param::new(filters),
            bias: Param::new(bias),
            use_bias: true,
            in_channels,
            out_channels,
            win: Window2d::simple(kernel),
            style,
            shuffle: None,
            filter_region: None,
            bias_region: None,
            cached_input: None,
            scratch: ConvScratch::default(),
        }
    }

    /// Rebuilds a layer from existing parameters (deserialization).
    ///
    /// # Panics
    ///
    /// Panics when `filters` is not `[F, C, k, k]` with a square kernel or
    /// `bias` is not `[F]`.
    pub fn from_params(filters: Tensor, bias: Tensor, style: ConvStyle, use_bias: bool) -> Self {
        assert_eq!(filters.shape().rank(), 4, "filters must be [F, C, kh, kw]");
        let (f, c, kh, kw) = (
            filters.dims()[0],
            filters.dims()[1],
            filters.dims()[2],
            filters.dims()[3],
        );
        assert_eq!(kh, kw, "kernel must be square");
        assert_eq!(bias.dims(), &[f], "bias must be [F]");
        Conv2d {
            filters: Param::new(filters),
            bias: Param::new(bias),
            use_bias,
            in_channels: c,
            out_channels: f,
            win: Window2d::simple(kh),
            style,
            shuffle: None,
            filter_region: None,
            bias_region: None,
            cached_input: None,
            scratch: ConvScratch::default(),
        }
    }

    /// Returns the same layer without a trainable bias (the usual choice
    /// for convolutions feeding a ReLU): outputs over an all-zero
    /// receptive field stay exactly zero, preserving input sparsity
    /// through the network.
    pub fn without_bias(mut self) -> Self {
        self.use_bias = false;
        self.bias = Param::new(scnn_tensor::Tensor::zeros([self.out_channels]));
        self
    }

    /// True when the layer has a trainable bias.
    pub fn has_bias(&self) -> bool {
        self.use_bias
    }

    /// The kernel style.
    pub fn style(&self) -> ConvStyle {
        self.style
    }

    /// Switches the kernel style (countermeasure ablation).
    pub fn set_style(&mut self, style: ConvStyle) {
        self.style = style;
    }

    /// The sliding-window geometry.
    pub fn window(&self) -> Window2d {
        self.win
    }

    fn geometry(&self, input: &Shape) -> Result<(usize, usize, usize, usize)> {
        input.expect_rank(3)?;
        if input.dim(0) != self.in_channels {
            return Err(NnError::Shape(ShapeError::Mismatch {
                left: vec![input.dim(0)],
                right: vec![self.in_channels],
            }));
        }
        let (h, w) = (input.dim(1), input.dim(2));
        let (oh, ow) = self.win.output_size(h, w)?;
        Ok((h, w, oh, ow))
    }

    /// Input-stationary scatter convolution shared by reference and traced
    /// paths; `emit` observes `(input_index, is_zero_skipped)` per pixel
    /// and `(filter_elem_index, output_index)` per MAC via `emit_mac`.
    fn scatter<FP, FM>(
        &self,
        input: &Tensor,
        mut emit_pixel: FP,
        mut emit_mac: FM,
    ) -> Result<Tensor>
    where
        FP: FnMut(usize, bool),
        FM: FnMut(usize, usize),
    {
        let (h, w, oh, ow) = self.geometry(input.shape())?;
        let (kh, kw) = (self.win.kh, self.win.kw);
        let src = input.as_slice();
        let wts = self.filters.value.as_slice();
        let mut out = vec![0.0f32; self.out_channels * oh * ow];

        // Bias initialisation.
        for f in 0..self.out_channels {
            let b = self.bias.value.as_slice()[f];
            for p in 0..oh * ow {
                out[f * oh * ow + p] = b;
            }
        }

        for c in 0..self.in_channels {
            for iy in 0..h {
                for ix in 0..w {
                    let ii = (c * h + iy) * w + ix;
                    let x = src[ii];
                    let skipped = self.style == ConvStyle::ZeroSkip && x == 0.0;
                    emit_pixel(ii, skipped);
                    if skipped {
                        continue;
                    }
                    // Outputs reached by this input pixel: oy·sh + ky = iy.
                    for ky in 0..kh {
                        let oy_num = iy as isize + self.win.ph as isize - ky as isize;
                        if oy_num < 0 {
                            continue;
                        }
                        let oy_num = oy_num as usize;
                        if !oy_num.is_multiple_of(self.win.sh) {
                            continue;
                        }
                        let oy = oy_num / self.win.sh;
                        if oy >= oh {
                            continue;
                        }
                        for kx in 0..kw {
                            let ox_num = ix as isize + self.win.pw as isize - kx as isize;
                            if ox_num < 0 {
                                continue;
                            }
                            let ox_num = ox_num as usize;
                            if !ox_num.is_multiple_of(self.win.sw) {
                                continue;
                            }
                            let ox = ox_num / self.win.sw;
                            if ox >= ow {
                                continue;
                            }
                            for f in 0..self.out_channels {
                                let wi = ((f * self.in_channels + c) * kh + ky) * kw + kx;
                                let oi = (f * oh + oy) * ow + ox;
                                emit_mac(wi, oi);
                                out[oi] += wts[wi] * x;
                            }
                        }
                    }
                }
            }
        }
        Ok(Tensor::from_vec(out, [self.out_channels, oh, ow])?)
    }

    /// Lowered forward: im2col into reusable scratch, then one
    /// `[F, K] × [K, P]` GEMM seeded with the bias. Bit-compatible with
    /// `scatter`: a fixed output's contributions arrive in `(c, ky, kx)`
    /// order — exactly the im2col row order the GEMM reduces in — and the
    /// GEMM's extra `w·0` padding/zero-pixel terms cannot move a finite
    /// accumulator (see DESIGN.md §12).
    fn lowered_forward(&mut self, input: &Tensor) -> Result<Tensor> {
        let (_, _, oh, ow) = self.geometry(input.shape())?;
        let (rows, cols) = ops::im2col_into(input, self.win, &mut self.scratch.cols)?;
        let mut out = vec![0.0f32; self.out_channels * cols];
        gemm::gemm(
            self.filters.value.as_slice(),
            &self.scratch.cols,
            self.out_channels,
            rows,
            cols,
            GemmInit::BiasPerRow(self.bias.value.as_slice()),
            None,
            &mut out,
            &mut self.scratch.gemm,
        )?;
        Ok(Tensor::from_vec(out, [self.out_channels, oh, ow])?)
    }

    /// Validates a `[N, C, H, W]` batch shape and returns
    /// `(n, h, w, oh, ow)`.
    fn batch_geometry(&self, input: &Shape) -> Result<(usize, usize, usize, usize, usize)> {
        input.expect_rank(4)?;
        if input.dim(1) != self.in_channels {
            return Err(NnError::Shape(ShapeError::Mismatch {
                left: vec![input.dim(1)],
                right: vec![self.in_channels],
            }));
        }
        let (h, w) = (input.dim(2), input.dim(3));
        let (oh, ow) = self.win.output_size(h, w)?;
        Ok((input.dim(0), h, w, oh, ow))
    }

    /// Backward body shared by the single-sample and batched paths, so
    /// the two are bit-identical by construction: samples are processed
    /// in batch order, and each sample accumulates `dW += dY·colsᵀ` and
    /// scatters `dX = col2im(Wᵀ·dY)` through transpose-free GEMM variants
    /// (the old standalone `transpose` round-trips are gone).
    fn backward_lowered(&mut self, input: &Tensor, grad_output: &Tensor) -> Result<Tensor> {
        let batched = input.shape().rank() == 4;
        let (n, h, w, oh, ow) = if batched {
            self.batch_geometry(input.shape())?
        } else {
            let (h, w, oh, ow) = self.geometry(input.shape())?;
            (1, h, w, oh, ow)
        };
        let f = self.out_channels;
        if batched {
            grad_output
                .shape()
                .expect_same(&Shape::from(vec![n, f, oh, ow]))?;
        } else {
            grad_output
                .shape()
                .expect_same(&Shape::from(vec![f, oh, ow]))?;
        }
        let p = oh * ow;
        let sample_len = self.in_channels * h * w;
        let go = grad_output.as_slice();
        let src = input.as_slice();
        let mut dx = vec![0.0f32; n * sample_len];
        for s in 0..n {
            let (rows, _) = ops::im2col_slice_into(
                &src[s * sample_len..(s + 1) * sample_len],
                self.in_channels,
                h,
                w,
                self.win,
                &mut self.scratch.cols,
            )?;
            let go_s = &go[s * f * p..(s + 1) * f * p];
            // dW += dY·colsᵀ without materialising the transpose.
            gemm::gemm_abt(
                go_s,
                &self.scratch.cols,
                f,
                p,
                rows,
                true,
                self.filters.grad.as_mut_slice(),
            )?;
            // db[f] = Σ_p dY[f][p] (skipped entirely for bias-free layers).
            if self.use_bias {
                let gb = self.bias.grad.as_mut_slice();
                for (fi, gbf) in gb.iter_mut().enumerate() {
                    *gbf += go_s[fi * p..(fi + 1) * p].iter().sum::<f32>();
                }
            }
            // dX_s = col2im(Wᵀ·dY_s), again transpose-free.
            self.scratch.stage.clear();
            self.scratch.stage.resize(rows * p, 0.0);
            gemm::gemm_atb(
                self.filters.value.as_slice(),
                go_s,
                f,
                rows,
                p,
                false,
                &mut self.scratch.stage,
            )?;
            ops::col2im_into(
                &self.scratch.stage,
                self.in_channels,
                h,
                w,
                self.win,
                &mut dx[s * sample_len..(s + 1) * sample_len],
            )?;
        }
        if batched {
            Ok(Tensor::from_vec(dx, [n, self.in_channels, h, w])?)
        } else {
            Ok(Tensor::from_vec(dx, [self.in_channels, h, w])?)
        }
    }

    /// Takes the forward cache, runs `body` against it, and puts it back
    /// (repeated backward passes stay legal, as before).
    fn with_cached_input<F>(&mut self, body: F) -> Result<Tensor>
    where
        F: FnOnce(&mut Self, &Tensor) -> Result<Tensor>,
    {
        let input = self
            .cached_input
            .take()
            .ok_or(NnError::NoForwardCache { layer: "conv2d" })?;
        let result = body(self, &input);
        self.cached_input = Some(input);
        result
    }
}

impl Layer for Conv2d {
    fn name(&self) -> &'static str {
        "conv2d"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn output_shape(&self, input: &Shape) -> Result<Shape> {
        let (_, _, oh, ow) = self.geometry(input)?;
        Ok(Shape::from(vec![self.out_channels, oh, ow]))
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        if mode == Mode::Train {
            self.cached_input = Some(input.clone());
        }
        // The numeric hot path runs lowered (im2col + GEMM); `scatter`
        // remains the *leakage model* driven by `forward_traced`.
        self.lowered_forward(input)
    }

    fn forward_traced(
        &self,
        input: &Tensor,
        input_region: Region,
        ctx: &mut ExecContext<'_>,
    ) -> Result<(Tensor, Region)> {
        let out_shape = self.output_shape(input.shape())?;
        let out_region = ctx.alloc_activation(out_shape.len());
        let filter_region = self
            .filter_region
            .unwrap_or_else(|| Region::new(crate::addr::STATIC_BASE, self.filters.value.len()));
        let bias_region = self
            .bias_region
            .unwrap_or_else(|| Region::new(filter_region.end(), self.bias.value.len()));
        // Compacted sparse-im2col scratch: one ≤kh·kw-entry patch row is
        // appended per live input pixel, so the region's touched prefix —
        // and its cache-line footprint — is linear in the non-zero count.
        // A compacted format needs the coordinates too, so a parallel
        // u32 index array is written alongside the values.
        let lowering_rows = self.in_channels * self.win.kh * self.win.kw;
        let patch = self.win.kh * self.win.kw;
        let scratch_region = ctx.alloc_activation(input.len() * patch);
        let scratch_idx_region = ctx.alloc_activation(input.len() * patch);

        // Accumulator initialisation: bias broadcast, or a plain memset
        // for bias-free layers. Either way every output line is touched.
        let pixels = out_shape.len() / self.out_channels;
        for f in 0..self.out_channels {
            if self.use_bias {
                ctx.load(Site::WEIGHT, bias_region, f);
            }
            for p in 0..pixels {
                ctx.store(Site::ACC, out_region, f * pixels + p);
            }
        }
        ctx.counted_loop(Site::LOOP, out_shape.len());

        let zero_skip = self.style == ConvStyle::ZeroSkip;
        // With shuffling armed, input-pixel loads are reported through a
        // seeded permutation of the activation index space: the probe
        // sees a scrambled address layout while the scatter itself (and
        // with it every number) runs in its usual order.
        let perm = self.shuffle.map(|seed| {
            let salt = ((self.in_channels as u64) << 32) | self.out_channels as u64;
            let mut perm: Vec<usize> = (0..input.len()).collect();
            perm.shuffle(&mut ChaCha8Rng::seed_from_u64(seed ^ salt));
            perm
        });
        let mut pixel_count = 0usize;
        let mut scratch_cursor = 0usize;
        let out = {
            // Split borrows for the two closures.
            let ctx_cell = std::cell::RefCell::new(&mut *ctx);
            self.scatter(
                input,
                |ii, skipped| {
                    let mut c = ctx_cell.borrow_mut();
                    let reported = perm.as_ref().map_or(ii, |p| p[ii]);
                    c.load(Site::ACT, input_region, reported);
                    if zero_skip {
                        c.branch(Site::SKIP, skipped);
                    }
                    pixel_count += 1;
                },
                |wi, oi| {
                    let mut c = ctx_cell.borrow_mut();
                    // The first-filter visit of each (pixel, ky, kx)
                    // triple appends one value + one index entry to the
                    // compacted lowering scratch (wi < rows exactly when
                    // f == 0).
                    if wi < lowering_rows {
                        c.store(Site::SCRATCH, scratch_region, scratch_cursor);
                        c.store(Site::SCRATCH, scratch_idx_region, scratch_cursor);
                        scratch_cursor += 1;
                    }
                    c.load(Site::WEIGHT, filter_region, wi);
                    c.load(Site::ACC, out_region, oi);
                    c.alu(2); // mul + add
                    c.store(Site::ACC, out_region, oi);
                },
            )?
        };
        ctx.counted_loop(Site::LOOP, pixel_count);
        Ok((out, out_region))
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        self.with_cached_input(|layer, input| layer.backward_lowered(input, grad_output))
    }

    fn forward_batch(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let (n, _, _, oh, ow) = self.batch_geometry(input.shape())?;
        if mode == Mode::Train {
            self.cached_input = Some(input.clone());
        }
        let (rows, cols) = ops::im2col_batch_into(input, self.win, &mut self.scratch.cols)?;
        let f = self.out_channels;
        self.scratch.stage.clear();
        self.scratch.stage.resize(f * n * cols, 0.0);
        // One [F, K]×[K, N·P] GEMM over the whole batch. Sample column
        // blocks are disjoint, so each output element reduces in exactly
        // the order of its solo lowering.
        gemm::gemm(
            self.filters.value.as_slice(),
            &self.scratch.cols,
            f,
            rows,
            n * cols,
            GemmInit::BiasPerRow(self.bias.value.as_slice()),
            None,
            &mut self.scratch.stage,
            &mut self.scratch.gemm,
        )?;
        // Unshuffle [F, N·P] → [N, F, P].
        let mut out = vec![0.0f32; n * f * cols];
        for s in 0..n {
            for fi in 0..f {
                let dst = &mut out[(s * f + fi) * cols..(s * f + fi + 1) * cols];
                let src =
                    &self.scratch.stage[fi * n * cols + s * cols..fi * n * cols + (s + 1) * cols];
                dst.copy_from_slice(src);
            }
        }
        Ok(Tensor::from_vec(out, [n, f, oh, ow])?)
    }

    fn backward_batch(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        self.with_cached_input(|layer, input| layer.backward_lowered(input, grad_output))
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        if self.use_bias {
            vec![&mut self.filters, &mut self.bias]
        } else {
            vec![&mut self.filters]
        }
    }

    fn assign_addresses(&mut self, alloc: &mut SegmentAllocator) {
        self.filter_region = Some(alloc.alloc(self.filters.value.len()));
        self.bias_region = Some(alloc.alloc(self.bias.value.len()));
    }

    fn param_count(&self) -> usize {
        self.filters.value.len()
            + if self.use_bias {
                self.bias.value.len()
            } else {
                0
            }
    }

    fn set_constant_time(&mut self, enabled: bool) {
        self.style = if enabled {
            ConvStyle::Dense
        } else {
            ConvStyle::ZeroSkip
        };
    }

    fn set_shuffle(&mut self, seed: Option<u64>) {
        self.shuffle = seed;
    }

    fn spec(&self) -> crate::spec::LayerSpec {
        crate::spec::LayerSpec::Conv2d {
            filters: self.filters.value.clone(),
            bias: self.bias.value.clone(),
            style: self.style,
            use_bias: self.use_bias,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scnn_uarch::CountingProbe;

    fn input(seed: u64) -> Tensor {
        let data: Vec<f32> = (0..2 * 6 * 6)
            .map(|i| {
                let v = (((i as u64).wrapping_mul(seed * 2 + 1) * 2654435761) >> 24) % 17;
                if v < 6 {
                    0.0
                } else {
                    v as f32 / 8.0 - 1.0
                }
            })
            .collect();
        Tensor::from_vec(data, [2, 6, 6]).unwrap()
    }

    #[test]
    fn forward_matches_reference_conv() {
        let mut conv = Conv2d::new(2, 3, 3, ConvStyle::ZeroSkip, 5);
        let x = input(1);
        let got = conv.forward(&x, Mode::Infer).unwrap();
        let want = ops::conv2d(&x, &conv.filters.value, &conv.bias.value, conv.win).unwrap();
        assert_eq!(got.dims(), want.dims());
        for (a, b) in got.as_slice().iter().zip(want.as_slice()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn traced_matches_reference() {
        for style in [ConvStyle::ZeroSkip, ConvStyle::Dense] {
            let mut conv = Conv2d::new(2, 3, 3, style, 5);
            let x = input(2);
            let want = conv.forward(&x, Mode::Infer).unwrap();
            let mut probe = CountingProbe::new();
            let mut ctx = ExecContext::new(&mut probe);
            let region = ctx.alloc_activation(x.len());
            let (got, _) = conv.forward_traced(&x, region, &mut ctx).unwrap();
            assert_eq!(got, want, "{style:?}");
        }
    }

    #[test]
    fn zero_skip_footprint_tracks_sparsity() {
        let loads = |x: &Tensor| {
            let conv = Conv2d::new(2, 3, 3, ConvStyle::ZeroSkip, 5);
            let mut probe = CountingProbe::new();
            {
                let mut ctx = ExecContext::new(&mut probe);
                let region = ctx.alloc_activation(x.len());
                conv.forward_traced(x, region, &mut ctx).unwrap();
            }
            probe.loads
        };
        let sparse = Tensor::zeros([2, 6, 6]);
        let dense = Tensor::full([2, 6, 6], 1.0);
        let mid = input(3);
        assert!(loads(&sparse) < loads(&mid));
        assert!(loads(&mid) < loads(&dense));
    }

    #[test]
    fn dense_style_footprint_is_constant() {
        let loads = |x: &Tensor| {
            let conv = Conv2d::new(2, 3, 3, ConvStyle::Dense, 5);
            let mut probe = CountingProbe::new();
            {
                let mut ctx = ExecContext::new(&mut probe);
                let region = ctx.alloc_activation(x.len());
                conv.forward_traced(x, region, &mut ctx).unwrap();
            }
            (probe.loads, probe.branches)
        };
        assert_eq!(
            loads(&Tensor::zeros([2, 6, 6])),
            loads(&Tensor::full([2, 6, 6], 1.0))
        );
    }

    #[test]
    fn gradient_check_against_finite_differences() {
        let mut conv = Conv2d::new(1, 2, 3, ConvStyle::Dense, 9);
        let x = Tensor::from_vec(
            (0..16).map(|i| (i as f32 * 0.13).sin()).collect(),
            [1, 4, 4],
        )
        .unwrap();
        conv.forward(&x, Mode::Train).unwrap();
        let oh_ow = 2 * 2 * 2;
        let gy = Tensor::full([2, 2, 2], 1.0);
        let gx = conv.backward(&gy).unwrap();

        let eps = 1e-2f32;
        for i in [0usize, 5, 10, 15] {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let fp = conv.forward(&xp, Mode::Infer).unwrap().sum();
            let fm = conv.forward(&xm, Mode::Infer).unwrap().sum();
            let numeric = (fp - fm) / (2.0 * eps);
            let analytic = gx.as_slice()[i];
            assert!(
                (numeric - analytic).abs() < 2e-2,
                "dx[{i}]: numeric {numeric} vs analytic {analytic}"
            );
        }
        let _ = oh_ow;
    }

    #[test]
    fn filter_gradient_finite_differences() {
        let x = Tensor::from_vec(
            (0..16).map(|i| ((i * 3) % 7) as f32 * 0.2 - 0.5).collect(),
            [1, 4, 4],
        )
        .unwrap();
        let mut conv = Conv2d::new(1, 1, 3, ConvStyle::Dense, 21);
        conv.forward(&x, Mode::Train).unwrap();
        conv.backward(&Tensor::full([1, 2, 2], 1.0)).unwrap();
        let analytic = conv.filters.grad.clone();

        let eps = 1e-2f32;
        for wi in [0usize, 4, 8] {
            let orig = conv.filters.value.as_slice()[wi];
            conv.filters.value.as_mut_slice()[wi] = orig + eps;
            let fp = conv.forward(&x, Mode::Infer).unwrap().sum();
            conv.filters.value.as_mut_slice()[wi] = orig - eps;
            let fm = conv.forward(&x, Mode::Infer).unwrap().sum();
            conv.filters.value.as_mut_slice()[wi] = orig;
            let numeric = (fp - fm) / (2.0 * eps);
            assert!(
                (numeric - analytic.as_slice()[wi]).abs() < 2e-2,
                "dW[{wi}]: numeric {numeric} vs analytic {}",
                analytic.as_slice()[wi]
            );
        }
    }

    #[test]
    fn bias_free_conv_keeps_background_zero() {
        let mut conv = Conv2d::new(1, 4, 3, ConvStyle::ZeroSkip, 7).without_bias();
        assert!(!conv.has_bias());
        assert_eq!(conv.params_mut().len(), 1);
        let y = conv
            .forward(&Tensor::zeros([1, 6, 6]), Mode::Infer)
            .unwrap();
        assert_eq!(y.sum(), 0.0, "zero input must give exactly zero output");
        // Training never moves the bias.
        conv.forward(&Tensor::full([1, 6, 6], 0.5), Mode::Train)
            .unwrap();
        conv.backward(&Tensor::full([4, 4, 4], 1.0)).unwrap();
        assert_eq!(conv.bias.grad.sum(), 0.0);
    }

    #[test]
    fn rejects_wrong_channels() {
        let mut conv = Conv2d::new(3, 2, 3, ConvStyle::ZeroSkip, 1);
        assert!(conv
            .forward(&Tensor::zeros([2, 6, 6]), Mode::Infer)
            .is_err());
    }

    #[test]
    fn output_shape() {
        let conv = Conv2d::new(1, 8, 5, ConvStyle::ZeroSkip, 1);
        assert_eq!(
            conv.output_shape(&Shape::from([1, 28, 28])).unwrap(),
            Shape::from([8, 24, 24])
        );
    }

    #[test]
    fn param_count() {
        let conv = Conv2d::new(2, 3, 3, ConvStyle::ZeroSkip, 1);
        assert_eq!(conv.param_count(), 3 * 2 * 3 * 3 + 3);
    }
}
