//! Training loop: per-example SGD over a labelled dataset.

use crate::layer::{Mode, NnError, Result};
use crate::loss::softmax_cross_entropy;
use crate::network::Network;
use crate::optim::{Sgd, StepSchedule};
use scnn_par::{Pool, Threads};
use scnn_rng::{ChaCha8Rng, SeedableRng, SliceRandom};
use scnn_tensor::Tensor;

/// One labelled example.
pub type Sample = (Tensor, usize);

/// Width of the fixed gradient sub-batches a minibatch is split into.
///
/// The gradient reduction tree — per-sample accumulation inside a chunk,
/// per-chunk accumulation at the master — is pinned by this constant, not
/// by how many workers happen to be available, which is what makes
/// minibatch training bit-identical across thread counts.
pub const GRAD_SUBBATCH: usize = 8;

/// Samples per batched inference call in [`accuracy`] and
/// [`per_class_accuracy`].
const EVAL_BATCH: usize = 32;

/// Training hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the data.
    pub epochs: usize,
    /// Learning-rate schedule.
    pub schedule: StepSchedule,
    /// Momentum coefficient.
    pub momentum: f64,
    /// L2 weight decay.
    pub weight_decay: f64,
    /// Shuffle seed.
    pub seed: u64,
    /// Minibatch size. `1` (the default) runs the paper's original
    /// per-example SGD loop verbatim; larger values step on the mean
    /// gradient of each batch. The batch is split into fixed
    /// [`GRAD_SUBBATCH`]-sample chunks — a property of the batch alone,
    /// never of the thread count — and each chunk runs through the
    /// batched GEMM forward/backward on its own network replica (in
    /// parallel when [`TrainConfig::threads`] allows). Chunk gradients
    /// are reduced in batch order, so the result is bit-identical at
    /// every thread count.
    pub batch_size: usize,
    /// Worker threads for minibatch gradient evaluation. Ignored when
    /// `batch_size == 1`.
    pub threads: Threads,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 5,
            schedule: StepSchedule {
                base_lr: 0.002,
                gamma: 0.7,
                every: 2,
            },
            momentum: 0.9,
            weight_decay: 1e-4,
            seed: 0xDEC0DE,
            batch_size: 1,
            threads: Threads::Auto,
        }
    }
}

/// What a training run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Mean cross-entropy loss per epoch.
    pub epoch_losses: Vec<f64>,
    /// Training accuracy after the final epoch.
    pub final_train_accuracy: f64,
}

/// Trains `net` with per-example SGD and cross-entropy loss.
///
/// # Errors
///
/// Returns [`NnError::Diverged`] when the loss goes non-finite, and
/// propagates shape errors from the network.
///
/// # Examples
///
/// ```no_run
/// use scnn_nn::models;
/// use scnn_nn::train::{train, TrainConfig};
/// # fn samples() -> Vec<scnn_nn::train::Sample> { Vec::new() }
///
/// # fn main() -> Result<(), scnn_nn::NnError> {
/// let mut net = models::mnist_cnn(7);
/// let report = train(&mut net, &samples(), &TrainConfig::default())?;
/// println!("final accuracy {:.1}%", report.final_train_accuracy * 100.0);
/// # Ok(())
/// # }
/// ```
pub fn train(net: &mut Network, samples: &[Sample], config: &TrainConfig) -> Result<TrainReport> {
    let mut opt =
        Sgd::new(config.schedule.base_lr, config.momentum).with_weight_decay(config.weight_decay);
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let mut order: Vec<usize> = (0..samples.len()).collect();
    let mut epoch_losses = Vec::with_capacity(config.epochs);

    let pool = Pool::new(config.threads);

    for epoch in 0..config.epochs {
        // Telemetry (spans, counters, series) is observation-only: it
        // reads loss values and wall-clock time but never touches the
        // RNG stream, the sample order or the weights, so the training
        // trajectory is identical with a recorder installed or not.
        let epoch_span = scnn_obs::Span::enter_indexed("train.epoch", epoch as u64);
        opt.set_learning_rate(config.schedule.lr_at(epoch).max(1e-9));
        order.shuffle(&mut rng);
        let mut total = 0.0f64;
        if config.batch_size <= 1 {
            // Per-example SGD, exactly as in the paper's setup. This path
            // is kept verbatim so `batch_size: 1` reproduces the original
            // training trajectory bit for bit.
            for &i in &order {
                let (image, label) = &samples[i];
                let logits = net.forward(image, Mode::Train)?;
                let (loss, grad) = softmax_cross_entropy(&logits, *label)?;
                if !loss.is_finite() {
                    return Err(NnError::Diverged { epoch });
                }
                total += loss as f64;
                net.zero_grads();
                net.backward(&grad)?;
                opt.step(net);
            }
            scnn_obs::counter_add("train.steps", order.len() as u64);
        } else {
            for batch in order.chunks(config.batch_size) {
                let results = chunk_gradients(net, samples, batch, &pool)?;
                net.zero_grads();
                for (losses, grads) in &results {
                    for &loss in losses {
                        if !loss.is_finite() {
                            return Err(NnError::Diverged { epoch });
                        }
                        total += loss as f64;
                    }
                    net.accumulate_grads(grads);
                }
                net.scale_grads(1.0 / batch.len() as f32);
                opt.step(net);
                scnn_obs::counter_add("train.minibatches", 1);
            }
        }
        let mean_loss = total / samples.len().max(1) as f64;
        epoch_losses.push(mean_loss);
        if !net.all_finite() {
            return Err(NnError::Diverged { epoch });
        }
        scnn_obs::counter_add("train.epochs", 1);
        if epoch_span.is_recording() {
            scnn_obs::series_push("train.epoch_loss", epoch as f64, mean_loss);
            // Extra observation work, gated on telemetry being live: a
            // per-epoch training-accuracy point. `accuracy` only runs
            // inference — weights, optimizer state and the shuffle RNG
            // are untouched — so computing it cannot change the result.
            scnn_obs::series_push(
                "train.epoch_accuracy",
                epoch as f64,
                accuracy(net, samples)?,
            );
        }
        drop(epoch_span);
    }

    Ok(TrainReport {
        epoch_losses,
        final_train_accuracy: accuracy(net, samples)?,
    })
}

/// Per-chunk losses and gradient snapshots for one minibatch, in batch
/// order.
///
/// The batch is split into fixed [`GRAD_SUBBATCH`]-sample chunks —
/// independent of the worker count, so the reduction tree never moves
/// when the pool is resized. Each chunk runs on its own clone of `net`
/// through the batched forward/backward (one GEMM per dense layer, one
/// lowered pass per conv layer); the master's weights are never touched,
/// so every chunk's gradient is a pure function of (weights, chunk) and
/// the ordered flatten yields the same `Vec` — bit for bit — at any
/// thread count.
fn chunk_gradients(
    net: &Network,
    samples: &[Sample],
    batch: &[usize],
    pool: &Pool,
) -> Result<Vec<(Vec<f32>, Vec<Tensor>)>> {
    let chunks: Vec<Vec<usize>> = batch.chunks(GRAD_SUBBATCH).map(<[usize]>::to_vec).collect();
    let per_chunk = pool.par_map(chunks, |chunk| -> Result<(Vec<f32>, Vec<Tensor>)> {
        let mut replica = net.clone();
        let images: Vec<&Tensor> = chunk.iter().map(|&i| &samples[i].0).collect();
        let input = crate::batch::stack(&images)?;
        let logits = replica.forward_batch(&input, Mode::Train)?;
        let classes = logits.dims()[1];
        let mut losses = Vec::with_capacity(chunk.len());
        let mut grad_rows = Vec::with_capacity(logits.len());
        for (row, &i) in logits.as_slice().chunks_exact(classes).zip(&chunk) {
            // Same per-row loss computation as the per-example path:
            // forward_batch row s is bit-identical to forward on sample s.
            let logits_s = Tensor::from_vec(row.to_vec(), [classes])?;
            let (loss, grad) = softmax_cross_entropy(&logits_s, samples[i].1)?;
            losses.push(loss);
            grad_rows.extend_from_slice(grad.as_slice());
        }
        let grad = Tensor::from_vec(grad_rows, [chunk.len(), classes])?;
        replica.zero_grads();
        replica.backward_batch(&grad)?;
        Ok((losses, replica.grad_vector()))
    });
    per_chunk.into_iter().collect()
}

/// Classification accuracy of `net` over `samples`.
///
/// # Errors
///
/// Propagates shape errors from the network.
pub fn accuracy(net: &mut Network, samples: &[Sample]) -> Result<f64> {
    if samples.is_empty() {
        return Ok(0.0);
    }
    let mut correct = 0usize;
    for chunk in samples.chunks(EVAL_BATCH) {
        let images: Vec<&Tensor> = chunk.iter().map(|(image, _)| image).collect();
        let preds = net.classify_batch(&crate::batch::stack(&images)?)?;
        correct += preds
            .iter()
            .zip(chunk)
            .filter(|(&p, (_, label))| p == *label)
            .count();
    }
    Ok(correct as f64 / samples.len() as f64)
}

/// Per-class accuracy, indexed by label; classes absent from `samples`
/// report accuracy `0.0`.
///
/// # Errors
///
/// Propagates shape errors from the network.
pub fn per_class_accuracy(
    net: &mut Network,
    samples: &[Sample],
    num_classes: usize,
) -> Result<Vec<f64>> {
    let mut correct = vec![0usize; num_classes];
    let mut total = vec![0usize; num_classes];
    for chunk in samples.chunks(EVAL_BATCH) {
        let images: Vec<&Tensor> = chunk.iter().map(|(image, _)| image).collect();
        let preds = net.classify_batch(&crate::batch::stack(&images)?)?;
        for (&pred, (_, label)) in preds.iter().zip(chunk) {
            if *label < num_classes {
                total[*label] += 1;
                if pred == *label {
                    correct[*label] += 1;
                }
            }
        }
    }
    Ok(correct
        .iter()
        .zip(total.iter())
        .map(|(&c, &t)| if t == 0 { 0.0 } else { c as f64 / t as f64 })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::{Dense, DenseStyle};
    use crate::softmax::Flatten;

    /// A linearly separable two-class toy problem in 2×2 "images".
    fn toy_samples() -> Vec<Sample> {
        let mut out = Vec::new();
        for i in 0..40 {
            let a = (i % 5) as f32 * 0.1;
            // Class 0: energy in the first two pixels; class 1: in the last two.
            out.push((
                Tensor::from_vec(vec![1.0 + a, 0.8, 0.0, 0.1], [1, 2, 2]).unwrap(),
                0,
            ));
            out.push((
                Tensor::from_vec(vec![0.1, 0.0, 0.9 + a, 1.0], [1, 2, 2]).unwrap(),
                1,
            ));
        }
        out
    }

    fn toy_net() -> Network {
        let mut net = Network::new();
        net.push(Flatten::new());
        net.push(Dense::new(4, 2, DenseStyle::Dense, 17));
        net.finalize();
        net
    }

    #[test]
    fn training_learns_separable_problem() {
        let mut net = toy_net();
        let samples = toy_samples();
        let config = TrainConfig {
            epochs: 10,
            ..TrainConfig::default()
        };
        let report = train(&mut net, &samples, &config).unwrap();
        assert_eq!(report.epoch_losses.len(), 10);
        assert!(
            report.final_train_accuracy > 0.95,
            "accuracy {}",
            report.final_train_accuracy
        );
        assert!(
            report.epoch_losses.last().unwrap() < &report.epoch_losses[0],
            "loss must decrease: {:?}",
            report.epoch_losses
        );
    }

    #[test]
    fn accuracy_on_empty_is_zero() {
        let mut net = toy_net();
        assert_eq!(accuracy(&mut net, &[]).unwrap(), 0.0);
    }

    #[test]
    fn per_class_breakdown() {
        let mut net = toy_net();
        let samples = toy_samples();
        train(
            &mut net,
            &samples,
            &TrainConfig {
                epochs: 10,
                ..TrainConfig::default()
            },
        )
        .unwrap();
        let per = per_class_accuracy(&mut net, &samples, 3).unwrap();
        assert_eq!(per.len(), 3);
        assert!(per[0] > 0.9);
        assert!(per[1] > 0.9);
        assert_eq!(per[2], 0.0, "class absent from data");
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut net = toy_net();
            train(&mut net, &toy_samples(), &TrainConfig::default())
                .unwrap()
                .epoch_losses
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn minibatch_training_learns_separable_problem() {
        let mut net = toy_net();
        let config = TrainConfig {
            epochs: 10,
            batch_size: 8,
            threads: Threads::Count(2),
            ..TrainConfig::default()
        };
        let report = train(&mut net, &toy_samples(), &config).unwrap();
        assert!(
            report.final_train_accuracy > 0.95,
            "accuracy {}",
            report.final_train_accuracy
        );
    }

    #[test]
    fn telemetry_observes_without_changing_the_trajectory() {
        let config = TrainConfig {
            epochs: 3,
            ..TrainConfig::default()
        };
        let baseline = {
            let mut net = toy_net();
            train(&mut net, &toy_samples(), &config).unwrap()
        };

        let recorder = std::sync::Arc::new(scnn_obs::Recorder::new());
        scnn_obs::install(recorder.clone());
        let observed = {
            let mut net = toy_net();
            train(&mut net, &toy_samples(), &config).unwrap()
        };
        scnn_obs::uninstall();

        assert_eq!(
            baseline, observed,
            "telemetry must not change the training trajectory"
        );

        // Other tests in this binary may train concurrently while the
        // recorder is installed, so assert lower bounds / membership.
        let snap = recorder.snapshot();
        assert!(snap.spans_named("train.epoch").count() >= config.epochs);
        assert!(snap.counter("train.epochs").unwrap_or(0) >= config.epochs as u64);
        assert!(snap.counter("train.steps").unwrap_or(0) > 0);
        let losses = snap.series("train.epoch_loss").unwrap();
        for (epoch, loss) in baseline.epoch_losses.iter().enumerate() {
            assert!(
                losses.points.contains(&(epoch as f64, *loss)),
                "epoch {epoch} loss missing from telemetry series"
            );
        }
        assert!(snap.series("train.epoch_accuracy").is_some());
    }

    #[test]
    fn minibatch_gradients_bit_identical_across_thread_counts() {
        let run = |threads: Threads| {
            let mut net = toy_net();
            let config = TrainConfig {
                epochs: 3,
                batch_size: 7, // deliberately not a divisor of the dataset
                threads,
                ..TrainConfig::default()
            };
            let report = train(&mut net, &toy_samples(), &config).unwrap();
            let mut weights = Vec::new();
            net.visit_params(|p| weights.extend_from_slice(p.value.as_slice()));
            (report.epoch_losses, weights)
        };
        let seq = run(Threads::Count(1));
        assert_eq!(seq, run(Threads::Count(2)));
        assert_eq!(seq, run(Threads::Count(5)));
    }
}
