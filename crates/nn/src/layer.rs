//! The [`Layer`] trait: forward (reference and traced), backward, and
//! parameter access.

use crate::addr::SegmentAllocator;
use crate::exec::ExecContext;
use scnn_tensor::{Shape, ShapeError, Tensor};
use std::error::Error;
use std::fmt;

/// Error from network construction, execution or training.
#[derive(Debug, Clone, PartialEq)]
pub enum NnError {
    /// A tensor-shape inconsistency.
    Shape(ShapeError),
    /// The layer was asked to backward() before any forward(Train) pass.
    NoForwardCache {
        /// Layer that was driven out of order.
        layer: &'static str,
    },
    /// The network is empty.
    EmptyNetwork,
    /// Training diverged (non-finite loss or weights).
    Diverged {
        /// Epoch at which divergence was detected.
        epoch: usize,
    },
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::Shape(e) => write!(f, "shape error: {e}"),
            NnError::NoForwardCache { layer } => {
                write!(f, "backward called on {layer} before forward(Train)")
            }
            NnError::EmptyNetwork => write!(f, "network has no layers"),
            NnError::Diverged { epoch } => write!(f, "training diverged at epoch {epoch}"),
        }
    }
}

impl Error for NnError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NnError::Shape(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ShapeError> for NnError {
    fn from(e: ShapeError) -> Self {
        NnError::Shape(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, NnError>;

/// A trainable parameter: its value and the gradient of the most recent
/// backward pass.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Current value.
    pub value: Tensor,
    /// Accumulated gradient (same shape as `value`).
    pub grad: Tensor,
}

impl Param {
    /// Wraps a value tensor with a zeroed gradient.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape().clone());
        Param { value, grad }
    }

    /// Zeroes the gradient.
    pub fn zero_grad(&mut self) {
        self.grad.map_in_place(|_| 0.0);
    }
}

/// Whether a forward pass should cache intermediates for backward.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Inference only; no caches are kept.
    Infer,
    /// Training; the layer caches what backward needs.
    Train,
}

/// One network layer.
///
/// Layers provide three execution paths:
///
/// - [`Layer::forward`] — the fast reference path, used for training and
///   accuracy evaluation;
/// - [`Layer::forward_traced`] — numerically identical, but narrating
///   every weight/activation access and data-dependent branch to an
///   [`ExecContext`]. This is the path the side-channel evaluator
///   measures;
/// - [`Layer::backward`] — gradients for training.
pub trait Layer: Send + Sync {
    /// Short human-readable layer name (`"conv2d"`, `"relu"`, …).
    fn name(&self) -> &'static str;

    /// Clones this layer behind a fresh box, so a whole
    /// [`Network`](crate::Network) can be duplicated for parallel
    /// per-sample gradient evaluation.
    fn clone_box(&self) -> Box<dyn Layer>;

    /// Output shape for a given input shape.
    ///
    /// # Errors
    ///
    /// Returns a shape error when the input is incompatible.
    fn output_shape(&self, input: &Shape) -> Result<Shape>;

    /// Reference forward pass. With [`Mode::Train`] the layer caches
    /// whatever its backward pass needs.
    ///
    /// # Errors
    ///
    /// Returns a shape error when the input is incompatible.
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor>;

    /// Instrumented forward pass; must produce the same numbers as
    /// [`Layer::forward`] while emitting its event stream into `ctx`.
    ///
    /// `input_region` is where the caller's activation buffer lives in the
    /// synthetic address space; the returned region is where this layer
    /// wrote its output.
    ///
    /// # Errors
    ///
    /// Returns a shape error when the input is incompatible.
    fn forward_traced(
        &self,
        input: &Tensor,
        input_region: crate::addr::Region,
        ctx: &mut ExecContext<'_>,
    ) -> Result<(Tensor, crate::addr::Region)>;

    /// Backward pass: consumes the gradient w.r.t. this layer's output and
    /// returns the gradient w.r.t. its input, accumulating parameter
    /// gradients internally.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::NoForwardCache`] when no `forward(Train)` pass
    /// preceded this call.
    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor>;

    /// Batched reference forward pass over a `[N, …]` input whose trailing
    /// dimensions are one sample's shape. **Contract:** row `s` of the
    /// output must be bit-identical to `forward` on sample `s` alone —
    /// batching is an execution-schedule change, never a numeric one
    /// (dense and conv layers run one GEMM over the whole batch, but with
    /// the same per-output reduction order; see DESIGN.md §12). With
    /// [`Mode::Train`] the layer caches the batch for
    /// [`Layer::backward_batch`].
    ///
    /// # Errors
    ///
    /// Returns a shape error when the per-sample shape is incompatible.
    fn forward_batch(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor>;

    /// Batched backward pass: `grad_output` is `[N, …]` aligned with the
    /// most recent [`Layer::forward_batch`] in [`Mode::Train`].
    /// **Contract:** parameter-gradient accumulation and the returned
    /// `[N, …]` input gradient are bit-identical to running
    /// `forward(s); backward(s)` for each sample `s` in batch order
    /// (without zeroing gradients in between).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::NoForwardCache`] when no `forward_batch(Train)`
    /// preceded this call, and shape errors on misaligned gradients.
    fn backward_batch(&mut self, grad_output: &Tensor) -> Result<Tensor>;

    /// Mutable access to the layer's parameters (empty for stateless
    /// layers).
    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    /// Assigns static (weight) addresses from the network's allocator.
    /// Stateless layers ignore this.
    fn assign_addresses(&mut self, alloc: &mut SegmentAllocator) {
        let _ = alloc;
    }

    /// Number of scalar parameters.
    fn param_count(&self) -> usize {
        0
    }

    /// Switches the layer between its leaky (data-dependent) and
    /// constant-footprint kernels. The countermeasure pass of `scnn-core`
    /// flips every layer to constant time and re-runs the evaluation.
    /// Layers without a data-dependent kernel ignore this.
    fn set_constant_time(&mut self, enabled: bool) {
        let _ = enabled;
    }

    /// Arms (or disarms, with `None`) memory-access shuffling in the
    /// *traced* kernel: the seed drives a per-layer permutation of the
    /// activation visit order (dense) or reported activation addresses
    /// (conv), so a probe sees a shuffled access stream while the numeric
    /// output — computed by the branch-free reference fold — stays
    /// bit-identical. The shuffle countermeasure of `scnn-core` re-seeds
    /// this before every inference. Layers without data-dependent memory
    /// traffic ignore it.
    fn set_shuffle(&mut self, seed: Option<u64>) {
        let _ = seed;
    }

    /// A serializable description of this layer (architecture +
    /// parameters) for [`Network::to_bytes`](crate::Network::to_bytes).
    fn spec(&self) -> crate::spec::LayerSpec;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_zero_grad() {
        let mut p = Param::new(Tensor::from_slice(&[1.0, 2.0]));
        p.grad = Tensor::from_slice(&[3.0, 4.0]);
        p.zero_grad();
        assert_eq!(p.grad.sum(), 0.0);
        assert_eq!(p.value.as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn error_conversion_and_display() {
        let e: NnError = ShapeError::ZeroDim.into();
        assert!(e.to_string().contains("shape"));
        assert!(e.source().is_some());
        assert!(NnError::EmptyNetwork.source().is_none());
        assert!(NnError::Diverged { epoch: 3 }.to_string().contains('3'));
    }
}
