//! Network serialization: a compact binary format for trained models.
//!
//! The workspace builds hermetically with no external crates, so the
//! format is hand-rolled: a magic/version header followed
//! by one tagged record per layer, with tensors stored as
//! rank/dims/little-endian `f32` data. Round-tripping preserves weights
//! bit-for-bit, so a saved model classifies — and *leaks* — identically.

use crate::activation::{Relu, ReluStyle};
use crate::conv::{Conv2d, ConvStyle};
use crate::dense::{Dense, DenseStyle};
use crate::network::Network;
use crate::pool::MaxPool2d;
use crate::softmax::{Flatten, Softmax};
use scnn_tensor::wire::{ByteReader, ByteWriter};
use scnn_tensor::Tensor;
use std::error::Error;
use std::fmt;

const MAGIC: u32 = 0x5343_4e4e; // "SCNN"
const VERSION: u16 = 1;

/// Error decoding a serialized network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The magic number or version did not match.
    BadHeader,
    /// The buffer ended before the structure did.
    Truncated,
    /// An unknown layer tag was encountered.
    UnknownLayer(u8),
    /// An unknown enum discriminant inside a layer record.
    BadDiscriminant(u8),
    /// A tensor's declared geometry disagrees with its payload.
    BadTensor,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadHeader => write!(f, "not a scnn model (bad magic/version)"),
            DecodeError::Truncated => write!(f, "model data truncated"),
            DecodeError::UnknownLayer(t) => write!(f, "unknown layer tag {t}"),
            DecodeError::BadDiscriminant(d) => write!(f, "invalid enum discriminant {d}"),
            DecodeError::BadTensor => write!(f, "tensor geometry inconsistent with payload"),
        }
    }
}

impl Error for DecodeError {}

/// A serializable description of one layer, including its parameters.
///
/// [`Layer::spec`](crate::layer::Layer::spec) produces these;
/// [`LayerSpec::build`] turns one back into a live layer.
#[derive(Debug, Clone, PartialEq)]
pub enum LayerSpec {
    /// 2-D convolution with filters `[F, C, k, k]` and bias `[F]`.
    Conv2d {
        /// Filter tensor.
        filters: Tensor,
        /// Bias tensor (all zeros when `use_bias` is false).
        bias: Tensor,
        /// Kernel style.
        style: ConvStyle,
        /// Whether the bias is trainable.
        use_bias: bool,
    },
    /// ReLU activation.
    Relu {
        /// Execution style.
        style: ReluStyle,
        /// Sparsifying threshold.
        threshold: f32,
    },
    /// Non-overlapping max pooling with window `k`.
    MaxPool2d {
        /// Window/stride size.
        k: usize,
    },
    /// Flatten to rank 1.
    Flatten,
    /// Fully-connected layer with input-major weights `[in, out]`.
    Dense {
        /// Weight tensor.
        weight: Tensor,
        /// Bias tensor.
        bias: Tensor,
        /// Kernel style.
        style: DenseStyle,
    },
    /// Softmax over a vector.
    Softmax,
}

impl LayerSpec {
    /// Reconstructs the live layer.
    pub fn build(self) -> Box<dyn crate::layer::Layer> {
        match self {
            LayerSpec::Conv2d {
                filters,
                bias,
                style,
                use_bias,
            } => Box::new(Conv2d::from_params(filters, bias, style, use_bias)),
            LayerSpec::Relu { style, threshold } => {
                Box::new(Relu::new(style).with_threshold(threshold))
            }
            LayerSpec::MaxPool2d { k } => Box::new(MaxPool2d::new(k)),
            LayerSpec::Flatten => Box::new(Flatten::new()),
            LayerSpec::Dense {
                weight,
                bias,
                style,
            } => Box::new(Dense::from_params(weight, bias, style)),
            LayerSpec::Softmax => Box::new(Softmax::new()),
        }
    }
}

fn put_tensor(buf: &mut ByteWriter, t: &Tensor) {
    buf.put_u32(t.shape().rank() as u32);
    for &d in t.dims() {
        buf.put_u32(d as u32);
    }
    for &v in t.as_slice() {
        buf.put_f32_le(v);
    }
}

fn get_tensor(buf: &mut ByteReader<'_>) -> Result<Tensor, DecodeError> {
    if buf.remaining() < 4 {
        return Err(DecodeError::Truncated);
    }
    let rank = buf.get_u32() as usize;
    if rank > 8 || buf.remaining() < rank * 4 {
        return Err(DecodeError::Truncated);
    }
    let dims: Vec<usize> = (0..rank).map(|_| buf.get_u32() as usize).collect();
    // checked_mul + divide: crafted dims like [u32::MAX; 4] must surface
    // as a decode error, not wrap `len * 4` around and pass the bound.
    let len = dims
        .iter()
        .try_fold(1usize, |acc, &d| acc.checked_mul(d))
        .ok_or(DecodeError::BadTensor)?;
    if buf.remaining() / 4 < len {
        return Err(DecodeError::Truncated);
    }
    let data: Vec<f32> = (0..len).map(|_| buf.get_f32_le()).collect();
    Tensor::from_vec(data, dims).map_err(|_| DecodeError::BadTensor)
}

/// Encodes a sequence of layer specs into the binary model format.
pub fn encode(specs: &[LayerSpec]) -> Vec<u8> {
    let mut buf = ByteWriter::new();
    buf.put_u32(MAGIC);
    buf.put_u16(VERSION);
    buf.put_u32(specs.len() as u32);
    for spec in specs {
        match spec {
            LayerSpec::Conv2d {
                filters,
                bias,
                style,
                use_bias,
            } => {
                buf.put_u8(0);
                buf.put_u8(match style {
                    ConvStyle::ZeroSkip => 0,
                    ConvStyle::Dense => 1,
                });
                buf.put_u8(u8::from(*use_bias));
                put_tensor(&mut buf, filters);
                put_tensor(&mut buf, bias);
            }
            LayerSpec::Relu { style, threshold } => {
                buf.put_u8(1);
                buf.put_u8(match style {
                    ReluStyle::Branchy => 0,
                    ReluStyle::Branchless => 1,
                });
                buf.put_f32_le(*threshold);
            }
            LayerSpec::MaxPool2d { k } => {
                buf.put_u8(2);
                buf.put_u32(*k as u32);
            }
            LayerSpec::Flatten => buf.put_u8(3),
            LayerSpec::Dense {
                weight,
                bias,
                style,
            } => {
                buf.put_u8(4);
                buf.put_u8(match style {
                    DenseStyle::ZeroSkip => 0,
                    DenseStyle::Dense => 1,
                });
                put_tensor(&mut buf, weight);
                put_tensor(&mut buf, bias);
            }
            LayerSpec::Softmax => buf.put_u8(5),
        }
    }
    buf.into_vec()
}

/// Decodes the binary model format back into layer specs.
///
/// # Errors
///
/// Returns [`DecodeError`] on any structural inconsistency.
pub fn decode(data: &[u8]) -> Result<Vec<LayerSpec>, DecodeError> {
    let mut buf = ByteReader::new(data);
    if buf.remaining() < 10 {
        return Err(DecodeError::Truncated);
    }
    if buf.get_u32() != MAGIC || buf.get_u16() != VERSION {
        return Err(DecodeError::BadHeader);
    }
    let count = buf.get_u32() as usize;
    let mut specs = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        if buf.remaining() < 1 {
            return Err(DecodeError::Truncated);
        }
        let tag = buf.get_u8();
        let spec = match tag {
            0 => {
                if buf.remaining() < 2 {
                    return Err(DecodeError::Truncated);
                }
                let style = match buf.get_u8() {
                    0 => ConvStyle::ZeroSkip,
                    1 => ConvStyle::Dense,
                    d => return Err(DecodeError::BadDiscriminant(d)),
                };
                let use_bias = buf.get_u8() != 0;
                let filters = get_tensor(&mut buf)?;
                let bias = get_tensor(&mut buf)?;
                if filters.shape().rank() != 4
                    || bias.shape().rank() != 1
                    // Mirror Conv2d::from_params's invariants so corrupt
                    // bytes surface here as an error, not as its asserts.
                    || filters.dims()[2] != filters.dims()[3]
                    || bias.dims()[0] != filters.dims()[0]
                {
                    return Err(DecodeError::BadTensor);
                }
                LayerSpec::Conv2d {
                    filters,
                    bias,
                    style,
                    use_bias,
                }
            }
            1 => {
                if buf.remaining() < 5 {
                    return Err(DecodeError::Truncated);
                }
                let style = match buf.get_u8() {
                    0 => ReluStyle::Branchy,
                    1 => ReluStyle::Branchless,
                    d => return Err(DecodeError::BadDiscriminant(d)),
                };
                LayerSpec::Relu {
                    style,
                    threshold: buf.get_f32_le(),
                }
            }
            2 => {
                if buf.remaining() < 4 {
                    return Err(DecodeError::Truncated);
                }
                LayerSpec::MaxPool2d {
                    k: buf.get_u32() as usize,
                }
            }
            3 => LayerSpec::Flatten,
            4 => {
                if buf.remaining() < 1 {
                    return Err(DecodeError::Truncated);
                }
                let style = match buf.get_u8() {
                    0 => DenseStyle::ZeroSkip,
                    1 => DenseStyle::Dense,
                    d => return Err(DecodeError::BadDiscriminant(d)),
                };
                let weight = get_tensor(&mut buf)?;
                let bias = get_tensor(&mut buf)?;
                if weight.shape().rank() != 2
                    || bias.shape().rank() != 1
                    || bias.dims()[0] != weight.dims()[1]
                {
                    return Err(DecodeError::BadTensor);
                }
                LayerSpec::Dense {
                    weight,
                    bias,
                    style,
                }
            }
            5 => LayerSpec::Softmax,
            t => return Err(DecodeError::UnknownLayer(t)),
        };
        specs.push(spec);
    }
    Ok(specs)
}

impl Network {
    /// Serializes the network (architecture + weights) into the binary
    /// model format.
    ///
    /// # Examples
    ///
    /// ```
    /// use scnn_nn::models;
    ///
    /// # fn main() -> Result<(), scnn_nn::spec::DecodeError> {
    /// let net = models::tiny_cnn(7);
    /// let bytes = net.to_bytes();
    /// let restored = scnn_nn::Network::from_bytes(&bytes)?;
    /// assert_eq!(restored.len(), net.len());
    /// # Ok(())
    /// # }
    /// ```
    pub fn to_bytes(&self) -> Vec<u8> {
        let specs: Vec<LayerSpec> = self.layers().iter().map(|l| l.spec()).collect();
        encode(&specs)
    }

    /// Reconstructs a network from [`Network::to_bytes`] output. The
    /// result is finalized (weight addresses assigned) and ready for both
    /// reference and traced execution.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] when the data is not a valid model.
    pub fn from_bytes(data: &[u8]) -> Result<Network, DecodeError> {
        let specs = decode(data)?;
        let mut net = Network::new();
        for spec in specs {
            net.push_boxed(spec.build());
        }
        net.finalize();
        Ok(net)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;
    use scnn_uarch::CountingProbe;

    #[test]
    fn roundtrip_preserves_inference_exactly() {
        let mut net = models::tiny_cnn(9);
        let image = Tensor::from_vec(
            (0..64)
                .map(|i| {
                    if i % 3 == 0 {
                        0.0
                    } else {
                        (i % 7) as f32 / 7.0
                    }
                })
                .collect(),
            [1, 8, 8],
        )
        .unwrap();
        let want = net.infer(&image).unwrap();

        let bytes = net.to_bytes();
        let mut restored = Network::from_bytes(&bytes).unwrap();
        assert_eq!(restored.infer(&image).unwrap(), want);
        assert_eq!(restored.param_count(), net.param_count());
    }

    #[test]
    fn roundtrip_preserves_traced_footprint() {
        let net = models::tiny_cnn(3);
        let restored = Network::from_bytes(&net.to_bytes()).unwrap();
        let image = Tensor::full([1, 8, 8], 0.4);
        let count = |n: &Network| {
            let mut probe = CountingProbe::new();
            n.infer_traced(&image, &mut probe).unwrap();
            (probe.loads, probe.stores, probe.branches, probe.alu_ops)
        };
        assert_eq!(count(&net), count(&restored), "leak profile preserved");
    }

    #[test]
    fn roundtrip_paper_model() {
        let net = models::mnist_cnn(1);
        let bytes = net.to_bytes();
        let restored = Network::from_bytes(&bytes).unwrap();
        assert_eq!(restored.len(), net.len());
        assert_eq!(restored.param_count(), net.param_count());
    }

    #[test]
    fn header_is_checked() {
        assert!(matches!(
            Network::from_bytes(&[]).map(|_| ()),
            Err(DecodeError::Truncated)
        ));
        let mut bytes = models::tiny_cnn(1).to_bytes();
        bytes[0] ^= 0xFF;
        assert!(matches!(
            Network::from_bytes(&bytes).map(|_| ()),
            Err(DecodeError::BadHeader)
        ));
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = models::tiny_cnn(1).to_bytes();
        for cut in [12, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                Network::from_bytes(&bytes[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn every_truncation_point_errors_never_panics() {
        // Exhaustive sweep: these are now artifact-cache load paths, so a
        // cut anywhere in the stream must be a clean DecodeError.
        let bytes = models::tiny_cnn(2).to_bytes();
        for cut in 0..bytes.len() {
            assert!(Network::from_bytes(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn wrong_version_is_bad_header() {
        let mut buf = ByteWriter::new();
        buf.put_u32(MAGIC);
        buf.put_u16(VERSION + 1);
        buf.put_u32(0);
        assert_eq!(decode(buf.as_slice()), Err(DecodeError::BadHeader));
    }

    #[test]
    fn byte_flips_error_or_roundtrip_never_panic() {
        // Flip one byte at a time through the whole model: decode must
        // either reject it or produce some (possibly different) model —
        // a panic or abort is the only failure mode.
        let bytes = models::tiny_cnn(1).to_bytes();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x80;
            let _ = Network::from_bytes(&bad);
        }
    }

    #[test]
    fn huge_dims_error_instead_of_allocating() {
        // A conv record whose tensor claims ~2^128 elements: the dims
        // product must be overflow-checked, not wrapped into a small
        // bound that then over-reads or OOMs.
        let mut buf = ByteWriter::new();
        buf.put_u32(MAGIC);
        buf.put_u16(VERSION);
        buf.put_u32(1);
        buf.put_u8(0); // Conv2d
        buf.put_u8(0); // ZeroSkip
        buf.put_u8(1); // use_bias
        buf.put_u32(4); // rank
        for _ in 0..4 {
            buf.put_u32(u32::MAX);
        }
        assert!(decode(buf.as_slice()).is_err());
    }

    #[test]
    fn unknown_tag_rejected() {
        let mut buf = ByteWriter::new();
        buf.put_u32(MAGIC);
        buf.put_u16(VERSION);
        buf.put_u32(1);
        buf.put_u8(99);
        assert_eq!(decode(buf.as_slice()), Err(DecodeError::UnknownLayer(99)));
    }

    #[test]
    fn specs_rebuild_individually() {
        for spec in [
            LayerSpec::Flatten,
            LayerSpec::Softmax,
            LayerSpec::MaxPool2d { k: 2 },
            LayerSpec::Relu {
                style: ReluStyle::Branchless,
                threshold: 0.1,
            },
        ] {
            let layer = spec.build();
            assert!(!layer.name().is_empty());
        }
    }
}
