//! Optimizers: SGD with momentum and a step learning-rate schedule.

use crate::layer::Param;
use crate::network::Network;
use scnn_tensor::Tensor;

/// Stochastic gradient descent with classical momentum and optional L2
/// weight decay.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f64,
    momentum: f64,
    weight_decay: f64,
    velocities: Vec<Tensor>,
}

impl Sgd {
    /// Creates the optimizer.
    ///
    /// # Panics
    ///
    /// Panics on a non-positive learning rate or momentum outside `[0, 1)`.
    pub fn new(lr: f64, momentum: f64) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        Sgd {
            lr,
            momentum,
            weight_decay: 0.0,
            velocities: Vec::new(),
        }
    }

    /// Adds L2 weight decay.
    pub fn with_weight_decay(mut self, wd: f64) -> Self {
        self.weight_decay = wd;
        self
    }

    /// Current learning rate.
    pub fn learning_rate(&self) -> f64 {
        self.lr
    }

    /// Overrides the learning rate (used by schedules).
    pub fn set_learning_rate(&mut self, lr: f64) {
        assert!(lr > 0.0, "learning rate must be positive");
        self.lr = lr;
    }

    /// Applies one update step using the gradients currently stored in the
    /// network's parameters.
    pub fn step(&mut self, net: &mut Network) {
        let lr = self.lr as f32;
        let momentum = self.momentum as f32;
        let wd = self.weight_decay as f32;
        let velocities = &mut self.velocities;
        let mut idx = 0usize;
        net.visit_params(|p: &mut Param| {
            if velocities.len() <= idx {
                velocities.push(Tensor::zeros(p.value.shape().clone()));
            }
            let v = &mut velocities[idx];
            // v ← µ·v − lr·(g + wd·w);  w ← w + v
            let vs = v.as_mut_slice();
            let gs = p.grad.as_slice();
            let ws = p.value.as_mut_slice();
            for ((v_i, &g_i), w_i) in vs.iter_mut().zip(gs).zip(ws.iter_mut()) {
                *v_i = momentum * *v_i - lr * (g_i + wd * *w_i);
                *w_i += *v_i;
            }
            idx += 1;
        });
    }
}

/// Multiplies the learning rate by `gamma` every `every` epochs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepSchedule {
    /// Initial learning rate.
    pub base_lr: f64,
    /// Decay factor per step.
    pub gamma: f64,
    /// Epochs between decays.
    pub every: usize,
}

impl StepSchedule {
    /// Learning rate for a (0-based) epoch.
    pub fn lr_at(&self, epoch: usize) -> f64 {
        let steps = epoch.checked_div(self.every).unwrap_or(0);
        self.base_lr * self.gamma.powi(steps as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::{Dense, DenseStyle};
    use crate::layer::Mode;
    use scnn_tensor::Tensor;

    fn one_layer_net() -> Network {
        let mut net = Network::new();
        net.push(Dense::new(2, 1, DenseStyle::Dense, 5));
        net.finalize();
        net
    }

    #[test]
    fn sgd_descends_quadratic() {
        // Fit y = w·x to a single target with MSE; loss must decrease
        // monotonically for a small lr.
        let mut net = one_layer_net();
        let mut opt = Sgd::new(0.05, 0.0);
        let x = Tensor::from_slice(&[1.0, -2.0]);
        let mut losses = Vec::new();
        for _ in 0..20 {
            let y = net.forward(&x, Mode::Train).unwrap();
            let (loss, grad) = crate::loss::mse(&y, &Tensor::from_slice(&[3.0])).unwrap();
            losses.push(loss);
            net.zero_grads();
            net.backward(&grad).unwrap();
            opt.step(&mut net);
        }
        assert!(losses.windows(2).all(|w| w[1] <= w[0] + 1e-6), "{losses:?}");
        assert!(losses.last().unwrap() < &0.01);
    }

    #[test]
    fn momentum_changes_trajectory_and_still_converges() {
        let run = |momentum: f64| {
            let mut net = one_layer_net();
            let mut opt = Sgd::new(0.01, momentum);
            let x = Tensor::from_slice(&[1.0, -2.0]);
            let mut losses = Vec::new();
            for _ in 0..60 {
                let y = net.forward(&x, Mode::Train).unwrap();
                let (loss, grad) = crate::loss::mse(&y, &Tensor::from_slice(&[3.0])).unwrap();
                losses.push(loss);
                net.zero_grads();
                net.backward(&grad).unwrap();
                opt.step(&mut net);
            }
            losses
        };
        let plain = run(0.0);
        let with_momentum = run(0.9);
        assert_ne!(plain, with_momentum, "momentum must alter the path");
        assert!(with_momentum.last().unwrap() < &0.05, "{with_momentum:?}");
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut net = one_layer_net();
        let mut opt = Sgd::new(0.1, 0.0).with_weight_decay(0.5);
        let mut before = 0.0f32;
        net.visit_params(|p| before += p.value.norm_sq());
        // Zero gradients: only decay acts.
        net.zero_grads();
        for _ in 0..5 {
            opt.step(&mut net);
        }
        let mut after = 0.0f32;
        net.visit_params(|p| after += p.value.norm_sq());
        assert!(after < before);
    }

    #[test]
    #[should_panic]
    fn rejects_zero_lr() {
        Sgd::new(0.0, 0.0);
    }

    #[test]
    fn schedule_decays() {
        let s = StepSchedule {
            base_lr: 0.1,
            gamma: 0.5,
            every: 2,
        };
        assert_eq!(s.lr_at(0), 0.1);
        assert_eq!(s.lr_at(1), 0.1);
        assert_eq!(s.lr_at(2), 0.05);
        assert_eq!(s.lr_at(5), 0.025);
    }
}
