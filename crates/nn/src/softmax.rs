//! Flatten and softmax layers.

use crate::addr::{Region, SegmentAllocator};
use crate::exec::{ExecContext, Site};
use crate::layer::{Layer, Mode, NnError, Result};
use scnn_tensor::{ops, Shape, Tensor};

/// Reshapes any input to a rank-1 vector. Free at runtime — tensors are
/// row-major, so no data moves and the traced path emits no events.
#[derive(Debug, Clone, Default)]
pub struct Flatten {
    cached_shape: Option<Shape>,
}

impl Flatten {
    /// Creates the layer.
    pub fn new() -> Self {
        Flatten::default()
    }
}

impl Layer for Flatten {
    fn name(&self) -> &'static str {
        "flatten"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn output_shape(&self, input: &Shape) -> Result<Shape> {
        Ok(Shape::from(vec![input.len()]))
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        if mode == Mode::Train {
            self.cached_shape = Some(input.shape().clone());
        }
        Ok(input.reshape([input.len()])?)
    }

    fn forward_traced(
        &self,
        input: &Tensor,
        input_region: Region,
        _ctx: &mut ExecContext<'_>,
    ) -> Result<(Tensor, Region)> {
        Ok((input.reshape([input.len()])?, input_region))
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let shape = self
            .cached_shape
            .as_ref()
            .ok_or(NnError::NoForwardCache { layer: "flatten" })?;
        Ok(grad_output.reshape(shape.clone())?)
    }

    fn forward_batch(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let (n, sample) = crate::batch::split_batch(input.shape())?;
        if mode == Mode::Train {
            self.cached_shape = Some(input.shape().clone());
        }
        Ok(input.reshape([n, sample.len()])?)
    }

    fn backward_batch(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        // The cached shape is the batch shape, so the scalar reshape is
        // already the batched backward.
        self.backward(grad_output)
    }

    fn assign_addresses(&mut self, _alloc: &mut SegmentAllocator) {}

    fn spec(&self) -> crate::spec::LayerSpec {
        crate::spec::LayerSpec::Flatten
    }
}

/// Numerically stable softmax over a vector.
#[derive(Debug, Clone, Default)]
pub struct Softmax {
    cached_output: Option<Tensor>,
}

impl Softmax {
    /// Creates the layer.
    pub fn new() -> Self {
        Softmax::default()
    }
}

impl Layer for Softmax {
    fn name(&self) -> &'static str {
        "softmax"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn output_shape(&self, input: &Shape) -> Result<Shape> {
        input.expect_rank(1)?;
        Ok(input.clone())
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let out = ops::softmax(input)?;
        if mode == Mode::Train {
            self.cached_output = Some(out.clone());
        }
        Ok(out)
    }

    fn forward_traced(
        &self,
        input: &Tensor,
        input_region: Region,
        ctx: &mut ExecContext<'_>,
    ) -> Result<(Tensor, Region)> {
        let out_region = ctx.alloc_activation(input.len());
        // Three passes: max, exp+sum, normalise — each touches every
        // element, all shape-static.
        for i in 0..input.len() {
            ctx.load(Site::ACT, input_region, i);
        }
        ctx.counted_loop(Site::LOOP, input.len());
        for i in 0..input.len() {
            ctx.load(Site::ACT, input_region, i);
            ctx.alu(3); // sub, exp approx, add
            ctx.store(Site::ACC, out_region, i);
        }
        ctx.counted_loop(Site::LOOP, input.len());
        for i in 0..input.len() {
            ctx.load(Site::ACC, out_region, i);
            ctx.alu(1); // divide
            ctx.store(Site::ACC, out_region, i);
        }
        ctx.counted_loop(Site::LOOP, input.len());
        Ok((ops::softmax(input)?, out_region))
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let s = self
            .cached_output
            .as_ref()
            .ok_or(NnError::NoForwardCache { layer: "softmax" })?;
        // dx = s ⊙ (g − ⟨g, s⟩)
        let dot: f32 = grad_output
            .as_slice()
            .iter()
            .zip(s.as_slice())
            .map(|(&g, &p)| g * p)
            .sum();
        Ok(s.zip_with(grad_output, |p, g| p * (g - dot))?)
    }

    fn forward_batch(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        input.shape().expect_rank(2)?;
        let (n, classes) = (input.dims()[0], input.dims()[1]);
        let mut data = Vec::with_capacity(n * classes);
        // Row-at-a-time: softmax has no cross-sample coupling, so the
        // batched output is the per-row computation verbatim.
        for row in input.as_slice().chunks_exact(classes) {
            let s = ops::softmax(&Tensor::from_vec(row.to_vec(), [classes])?)?;
            data.extend_from_slice(s.as_slice());
        }
        let out = Tensor::from_vec(data, [n, classes])?;
        if mode == Mode::Train {
            self.cached_output = Some(out.clone());
        }
        Ok(out)
    }

    fn backward_batch(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let s = self
            .cached_output
            .as_ref()
            .ok_or(NnError::NoForwardCache { layer: "softmax" })?;
        s.shape().expect_same(grad_output.shape())?;
        s.shape().expect_rank(2)?;
        let classes = s.dims()[1];
        let mut dx = Vec::with_capacity(s.len());
        for (srow, grow) in s
            .as_slice()
            .chunks_exact(classes)
            .zip(grad_output.as_slice().chunks_exact(classes))
        {
            // Same fold as the scalar backward: dx = s ⊙ (g − ⟨g, s⟩).
            let dot: f32 = grow.iter().zip(srow).map(|(&g, &p)| g * p).sum();
            dx.extend(srow.iter().zip(grow).map(|(&p, &g)| p * (g - dot)));
        }
        Ok(Tensor::from_vec(dx, s.dims().to_vec())?)
    }

    fn assign_addresses(&mut self, _alloc: &mut SegmentAllocator) {}

    fn spec(&self) -> crate::spec::LayerSpec {
        crate::spec::LayerSpec::Softmax
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scnn_uarch::CountingProbe;

    #[test]
    fn flatten_roundtrip() {
        let mut f = Flatten::new();
        let x = Tensor::zeros([2, 3, 4]);
        let y = f.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.dims(), &[24]);
        let g = f.backward(&Tensor::zeros([24])).unwrap();
        assert_eq!(g.dims(), &[2, 3, 4]);
    }

    #[test]
    fn flatten_traced_is_free() {
        let f = Flatten::new();
        let x = Tensor::zeros([2, 2, 2]);
        let mut probe = CountingProbe::new();
        let mut ctx = ExecContext::new(&mut probe);
        let region = ctx.alloc_activation(8);
        let (y, out_region) = f.forward_traced(&x, region, &mut ctx).unwrap();
        assert_eq!(y.dims(), &[8]);
        assert_eq!(out_region, region, "flatten reuses the input buffer");
        assert_eq!(probe.instructions(), 0);
    }

    #[test]
    fn softmax_forward_normalises() {
        let mut s = Softmax::new();
        let y = s
            .forward(&Tensor::from_slice(&[1.0, 2.0, 3.0]), Mode::Infer)
            .unwrap();
        assert!((y.sum() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn softmax_traced_matches() {
        let s = Softmax::new();
        let x = Tensor::from_slice(&[0.1, -2.0, 5.0, 0.0]);
        let want = ops::softmax(&x).unwrap();
        let mut probe = CountingProbe::new();
        let mut ctx = ExecContext::new(&mut probe);
        let region = ctx.alloc_activation(4);
        let (got, _) = s.forward_traced(&x, region, &mut ctx).unwrap();
        assert_eq!(got, want);
        assert!(probe.loads > 0);
    }

    #[test]
    fn softmax_backward_jacobian() {
        // Check against the analytic Jacobian: J[i][j] = s_i(δ_ij − s_j).
        let mut s = Softmax::new();
        let x = Tensor::from_slice(&[0.3, -0.5, 0.9]);
        let p = s.forward(&x, Mode::Train).unwrap();
        let g = Tensor::from_slice(&[1.0, 0.0, 0.0]);
        let dx = s.backward(&g).unwrap();
        for i in 0..3 {
            let pi = p.as_slice()[i];
            let expect = pi * ((i == 0) as i32 as f32 - p.as_slice()[0]);
            assert!(
                (dx.as_slice()[i] - expect).abs() < 1e-6,
                "dx[{i}] {} vs {expect}",
                dx.as_slice()[i]
            );
        }
    }

    #[test]
    fn softmax_gradient_sums_to_zero() {
        // Softmax outputs sum to 1 ⇒ gradient w.r.t. inputs sums to 0.
        let mut s = Softmax::new();
        s.forward(&Tensor::from_slice(&[1.0, 2.0, -1.0, 0.5]), Mode::Train)
            .unwrap();
        let dx = s
            .backward(&Tensor::from_slice(&[0.3, -0.2, 0.9, 0.0]))
            .unwrap();
        assert!(dx.sum().abs() < 1e-6);
    }

    #[test]
    fn backward_requires_forward() {
        let mut s = Softmax::new();
        assert!(s.backward(&Tensor::from_slice(&[1.0])).is_err());
        let mut f = Flatten::new();
        assert!(f.backward(&Tensor::from_slice(&[1.0])).is_err());
    }
}
