//! Loss functions for training.

use crate::layer::{NnError, Result};
use scnn_tensor::{ops, ShapeError, Tensor};

/// Softmax cross-entropy loss on raw logits.
///
/// Returns `(loss, grad_logits)`. Computing softmax and cross-entropy
/// jointly keeps the gradient numerically exact: `∂L/∂z_i = p_i − 1{i=y}`.
///
/// # Errors
///
/// Returns a shape error when `logits` is not a vector or `label` is out
/// of range.
///
/// # Examples
///
/// ```
/// use scnn_nn::loss::softmax_cross_entropy;
/// use scnn_tensor::Tensor;
///
/// # fn main() -> Result<(), scnn_nn::NnError> {
/// let logits = Tensor::from_slice(&[2.0, 0.5, -1.0]);
/// let (loss, grad) = softmax_cross_entropy(&logits, 0)?;
/// assert!(loss > 0.0);
/// assert!(grad.as_slice()[0] < 0.0, "true-class gradient pushes up");
/// # Ok(())
/// # }
/// ```
pub fn softmax_cross_entropy(logits: &Tensor, label: usize) -> Result<(f32, Tensor)> {
    logits.shape().expect_rank(1)?;
    if label >= logits.len() {
        return Err(NnError::Shape(ShapeError::IndexOutOfBounds {
            index: vec![label],
            shape: logits.dims().to_vec(),
        }));
    }
    let lse = ops::log_sum_exp(logits)?;
    let loss = lse - logits.as_slice()[label];
    let mut grad = ops::softmax(logits)?;
    grad.as_mut_slice()[label] -= 1.0;
    Ok((loss, grad))
}

/// Mean squared error between a prediction and a target of the same shape.
///
/// Returns `(loss, grad_prediction)` with `loss = mean((p - t)²)`.
///
/// # Errors
///
/// Returns a shape error when the shapes differ.
pub fn mse(prediction: &Tensor, target: &Tensor) -> Result<(f32, Tensor)> {
    let diff = prediction.zip_with(target, |p, t| p - t)?;
    let n = diff.len().max(1) as f32;
    let loss = diff.norm_sq() / n;
    let grad = diff.map(|d| 2.0 * d / n);
    Ok((loss, grad))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_entropy_perfect_prediction_near_zero() {
        let logits = Tensor::from_slice(&[100.0, 0.0, 0.0]);
        let (loss, _) = softmax_cross_entropy(&logits, 0).unwrap();
        assert!(loss < 1e-6);
    }

    #[test]
    fn cross_entropy_uniform_is_log_k() {
        let logits = Tensor::from_slice(&[0.0; 4]);
        let (loss, _) = softmax_cross_entropy(&logits, 2).unwrap();
        assert!((loss - (4.0f32).ln()).abs() < 1e-6);
    }

    #[test]
    fn cross_entropy_gradient_is_p_minus_onehot() {
        let logits = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        let p = ops::softmax(&logits).unwrap();
        let (_, grad) = softmax_cross_entropy(&logits, 1).unwrap();
        assert!((grad.as_slice()[0] - p.as_slice()[0]).abs() < 1e-6);
        assert!((grad.as_slice()[1] - (p.as_slice()[1] - 1.0)).abs() < 1e-6);
        assert!(grad.sum().abs() < 1e-6, "gradient sums to zero");
    }

    #[test]
    fn cross_entropy_gradient_finite_differences() {
        let logits = Tensor::from_slice(&[0.3, -0.8, 1.2, 0.0]);
        let (_, grad) = softmax_cross_entropy(&logits, 2).unwrap();
        let eps = 1e-3f32;
        for i in 0..4 {
            let mut lp = logits.clone();
            lp.as_mut_slice()[i] += eps;
            let mut lm = logits.clone();
            lm.as_mut_slice()[i] -= eps;
            let (fp, _) = softmax_cross_entropy(&lp, 2).unwrap();
            let (fm, _) = softmax_cross_entropy(&lm, 2).unwrap();
            let numeric = (fp - fm) / (2.0 * eps);
            assert!(
                (numeric - grad.as_slice()[i]).abs() < 1e-3,
                "grad[{i}]: {numeric} vs {}",
                grad.as_slice()[i]
            );
        }
    }

    #[test]
    fn cross_entropy_rejects_bad_label() {
        let logits = Tensor::from_slice(&[0.0, 0.0]);
        assert!(softmax_cross_entropy(&logits, 2).is_err());
    }

    #[test]
    fn mse_known() {
        let p = Tensor::from_slice(&[1.0, 2.0]);
        let t = Tensor::from_slice(&[0.0, 0.0]);
        let (loss, grad) = mse(&p, &t).unwrap();
        assert!((loss - 2.5).abs() < 1e-6);
        assert_eq!(grad.as_slice(), &[1.0, 2.0]);
        assert!(mse(&p, &Tensor::zeros([3])).is_err());
    }
}
