//! Property-based tests for the counter model: perf-style scaling must
//! recover totals, names must round-trip, and measurements must respect
//! the scheduling arithmetic.
//!
//! Each property runs over `CASES` deterministically generated inputs
//! from a per-test seeded [`ChaCha8Rng`]; a failing case prints its index
//! and reproduces exactly.

use scnn_hpc::{group_digits_indian, CounterGroup, CounterReading, HpcEvent};
use scnn_rng::{ChaCha8Rng, Rng, SeedableRng};

const CASES: usize = 256;

fn any_event(rng: &mut ChaCha8Rng) -> HpcEvent {
    HpcEvent::ALL[rng.gen_range(0..HpcEvent::ALL.len())]
}

#[test]
fn event_names_roundtrip() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x49c01);
    for case in 0..CASES {
        let event = any_event(&mut rng);
        let parsed: HpcEvent = event.perf_name().parse().unwrap();
        assert_eq!(parsed, event, "case {case}");
    }
}

#[test]
fn scaled_reading_recovers_total() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x49c02);
    for case in 0..CASES {
        let total = rng.gen_range(0u64..1 << 40);
        let frac_millis = rng.gen_range(1u64..1000);
        let enabled = 1_000_000u64;
        let running = enabled * frac_millis / 1000;
        let reading = CounterReading {
            event: HpcEvent::Cycles,
            raw: (total as f64 * frac_millis as f64 / 1000.0).round() as u64,
            time_enabled: enabled,
            time_running: running.max(1),
        };
        let estimate = reading.value();
        let err = estimate.abs_diff(total);
        // Extrapolation error is bounded by the rounding granularity.
        assert!(
            err as f64 <= 1000.0 / frac_millis as f64 + 2.0,
            "case {case}: total {total}, frac {frac_millis}/1000: estimate {estimate}"
        );
        assert!(
            (0.0..=1.0).contains(&reading.running_fraction()),
            "case {case}"
        );
    }
}

#[test]
fn group_schedule_covers_all_events() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x49c03);
    for case in 0..CASES {
        let budget = rng.gen_range(1usize..16);
        let group = CounterGroup::new(HpcEvent::ALL.to_vec(), budget).unwrap();
        let readings = group.schedule(1_000_000, |_| 500_000);
        assert_eq!(readings.len(), HpcEvent::ALL.len(), "case {case}");
        for r in &readings {
            assert_eq!(r.was_multiplexed(), group.is_multiplexed(), "case {case}");
            let err = r.value().abs_diff(500_000);
            assert!(err <= 20, "case {case}: scaling error {err}");
        }
    }
}

#[test]
fn schedule_fraction_bounds() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x49c04);
    for case in 0..CASES {
        let budget = rng.gen_range(1usize..32);
        let n_events = rng.gen_range(1usize..=12);
        let events: Vec<HpcEvent> = HpcEvent::ALL[..n_events].to_vec();
        let group = CounterGroup::new(events.clone(), budget).unwrap();
        for e in events {
            let f = group.schedule_fraction(e).unwrap();
            assert!(f > 0.0 && f <= 1.0, "case {case}");
            if budget >= n_events {
                assert_eq!(f, 1.0, "case {case}");
            }
        }
    }
}

#[test]
fn indian_grouping_preserves_digits() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x49c05);
    for case in 0..CASES {
        let value = rng.gen_range(0u64..=u64::MAX);
        let formatted = group_digits_indian(value);
        let digits: String = formatted.chars().filter(|c| c.is_ascii_digit()).collect();
        assert_eq!(digits, value.to_string(), "case {case}");
        // Groups after the first comma are 2 digits, except the last is 3.
        if let Some((_, tail)) = formatted.split_once(',') {
            let parts: Vec<&str> = tail.split(',').collect();
            let (last, rest) = parts.split_last().unwrap();
            assert_eq!(last.len(), 3, "case {case}");
            for p in rest {
                assert_eq!(p.len(), 2, "case {case}");
            }
        }
    }
}
