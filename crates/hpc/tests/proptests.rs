//! Property-based tests for the counter model: perf-style scaling must
//! recover totals, names must round-trip, and measurements must respect
//! the scheduling arithmetic.

use proptest::prelude::*;
use scnn_hpc::{group_digits_indian, CounterGroup, CounterReading, HpcEvent};

fn any_event() -> impl Strategy<Value = HpcEvent> {
    (0..HpcEvent::ALL.len()).prop_map(|i| HpcEvent::ALL[i])
}

proptest! {
    #[test]
    fn event_names_roundtrip(event in any_event()) {
        let parsed: HpcEvent = event.perf_name().parse().unwrap();
        prop_assert_eq!(parsed, event);
    }

    #[test]
    fn scaled_reading_recovers_total(total in 0u64..1u64 << 40, frac_millis in 1u64..1000) {
        let enabled = 1_000_000u64;
        let running = enabled * frac_millis / 1000;
        let reading = CounterReading {
            event: HpcEvent::Cycles,
            raw: (total as f64 * frac_millis as f64 / 1000.0).round() as u64,
            time_enabled: enabled,
            time_running: running.max(1),
        };
        let estimate = reading.value();
        let err = estimate.abs_diff(total);
        // Extrapolation error is bounded by the rounding granularity.
        prop_assert!(
            err as f64 <= 1000.0 / frac_millis as f64 + 2.0,
            "total {}, frac {}/1000: estimate {}", total, frac_millis, estimate
        );
        prop_assert!((0.0..=1.0).contains(&reading.running_fraction()));
    }

    #[test]
    fn group_schedule_covers_all_events(budget in 1usize..16) {
        let group = CounterGroup::new(HpcEvent::ALL.to_vec(), budget).unwrap();
        let readings = group.schedule(1_000_000, |_| 500_000);
        prop_assert_eq!(readings.len(), HpcEvent::ALL.len());
        for r in &readings {
            prop_assert_eq!(r.was_multiplexed(), group.is_multiplexed());
            let err = r.value().abs_diff(500_000);
            prop_assert!(err <= 20, "scaling error {}", err);
        }
    }

    #[test]
    fn schedule_fraction_bounds(budget in 1usize..32, n_events in 1usize..=12) {
        let events: Vec<HpcEvent> = HpcEvent::ALL[..n_events].to_vec();
        let group = CounterGroup::new(events.clone(), budget).unwrap();
        for e in events {
            let f = group.schedule_fraction(e).unwrap();
            prop_assert!(f > 0.0 && f <= 1.0);
            if budget >= n_events {
                prop_assert_eq!(f, 1.0);
            }
        }
    }

    #[test]
    fn indian_grouping_preserves_digits(value in 0u64..u64::MAX) {
        let formatted = group_digits_indian(value);
        let digits: String = formatted.chars().filter(|c| c.is_ascii_digit()).collect();
        prop_assert_eq!(digits, value.to_string());
        // Groups after the first comma are 2 digits, except the last is 3.
        if let Some((_, tail)) = formatted.split_once(',') {
            let parts: Vec<&str> = tail.split(',').collect();
            let (last, rest) = parts.split_last().unwrap();
            prop_assert_eq!(last.len(), 3);
            for p in rest {
                prop_assert_eq!(p.len(), 2);
            }
        }
    }
}
