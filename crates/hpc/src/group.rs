//! Counter groups and the hardware-counter budget.
//!
//! The paper (§3) notes that `perf` can observe "a maximum of 6 to 8
//! hardware events in parallel because of the restrictions in the number
//! of built-in HPC registers"; asking for more makes the kernel
//! time-multiplex counters onto the PMU and scale the results. This module
//! models both the budget and the multiplexing schedule.

use crate::event::HpcEvent;
use crate::reading::CounterReading;
use std::error::Error;
use std::fmt;

/// Error constructing a counter group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GroupError {
    /// No events requested.
    Empty,
    /// The same event was requested twice.
    Duplicate(HpcEvent),
    /// The hardware-counter budget is zero.
    NoCounters,
}

impl fmt::Display for GroupError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GroupError::Empty => write!(f, "counter group needs at least one event"),
            GroupError::Duplicate(e) => write!(f, "event {e} requested more than once"),
            GroupError::NoCounters => write!(f, "hardware counter budget must be at least 1"),
        }
    }
}

impl Error for GroupError {}

/// A set of events to be measured together under a hardware budget of
/// `hw_counters` simultaneous counters.
///
/// # Examples
///
/// ```
/// use scnn_hpc::{CounterGroup, HpcEvent};
///
/// # fn main() -> Result<(), scnn_hpc::GroupError> {
/// // All 8 paper events on a 4-counter PMU: each runs half the time.
/// let group = CounterGroup::new(HpcEvent::FIG2B.to_vec(), 4)?;
/// assert!(group.is_multiplexed());
/// assert!((group.schedule_fraction(HpcEvent::Cycles).unwrap() - 0.5).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CounterGroup {
    events: Vec<HpcEvent>,
    hw_counters: usize,
}

impl CounterGroup {
    /// Typical number of programmable counters on the paper's platform.
    pub const DEFAULT_HW_COUNTERS: usize = 8;

    /// Creates a group.
    ///
    /// # Errors
    ///
    /// Returns [`GroupError`] on an empty event list, duplicate events or
    /// a zero budget.
    pub fn new(events: Vec<HpcEvent>, hw_counters: usize) -> Result<Self, GroupError> {
        if events.is_empty() {
            return Err(GroupError::Empty);
        }
        if hw_counters == 0 {
            return Err(GroupError::NoCounters);
        }
        for (i, e) in events.iter().enumerate() {
            if events[i + 1..].contains(e) {
                return Err(GroupError::Duplicate(*e));
            }
        }
        Ok(CounterGroup {
            events,
            hw_counters,
        })
    }

    /// The requested events.
    pub fn events(&self) -> &[HpcEvent] {
        &self.events
    }

    /// The simultaneous-counter budget.
    pub fn hw_counters(&self) -> usize {
        self.hw_counters
    }

    /// True when the kernel would have to time-multiplex this group.
    pub fn is_multiplexed(&self) -> bool {
        self.events.len() > self.hw_counters
    }

    /// Fraction of the window each event gets to run: `min(1, budget/n)`.
    /// Returns `None` for an event not in the group.
    pub fn schedule_fraction(&self, event: HpcEvent) -> Option<f64> {
        if !self.events.contains(&event) {
            return None;
        }
        Some((self.hw_counters as f64 / self.events.len() as f64).min(1.0))
    }

    /// Turns true whole-window totals into perf-style readings: each raw
    /// count reflects only the scheduled fraction of the window, and the
    /// `time_enabled`/`time_running` metadata lets [`CounterReading::value`]
    /// extrapolate back.
    ///
    /// `window_ns` is the measurement window length in model nanoseconds;
    /// `true_value(event)` supplies the whole-window count.
    pub fn schedule<F: FnMut(HpcEvent) -> u64>(
        &self,
        window_ns: u64,
        mut true_value: F,
    ) -> Vec<CounterReading> {
        let frac = (self.hw_counters as f64 / self.events.len() as f64).min(1.0);
        self.events
            .iter()
            .map(|&e| {
                let total = true_value(e);
                let running = (window_ns as f64 * frac).round() as u64;
                if frac >= 1.0 || running == 0 {
                    // Degenerate window: the scheduled slice rounds to zero
                    // nanoseconds, so there is no meaningful multiplexing
                    // metadata to attach. Fabricating `time_running = 1`
                    // here made `value()` rescale by `window_ns / 1` —
                    // orders of magnitude off for tiny windows — so report
                    // the true whole-window count instead.
                    CounterReading::full(e, total, window_ns)
                } else {
                    CounterReading {
                        event: e,
                        raw: (total as f64 * frac).round() as u64,
                        time_enabled: window_ns,
                        time_running: running,
                    }
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_errors() {
        assert!(matches!(
            CounterGroup::new(vec![], 4),
            Err(GroupError::Empty)
        ));
        assert!(matches!(
            CounterGroup::new(vec![HpcEvent::Cycles], 0),
            Err(GroupError::NoCounters)
        ));
        assert!(matches!(
            CounterGroup::new(vec![HpcEvent::Cycles, HpcEvent::Cycles], 4),
            Err(GroupError::Duplicate(HpcEvent::Cycles))
        ));
    }

    #[test]
    fn small_group_not_multiplexed() {
        let g = CounterGroup::new(vec![HpcEvent::Cycles, HpcEvent::Instructions], 8).unwrap();
        assert!(!g.is_multiplexed());
        assert_eq!(g.schedule_fraction(HpcEvent::Cycles), Some(1.0));
        assert_eq!(g.schedule_fraction(HpcEvent::Branches), None);
    }

    #[test]
    fn schedule_full_counters_exact() {
        let g = CounterGroup::new(vec![HpcEvent::Cycles, HpcEvent::Branches], 8).unwrap();
        let readings = g.schedule(1_000_000, |e| match e {
            HpcEvent::Cycles => 12345,
            HpcEvent::Branches => 678,
            _ => 0,
        });
        assert_eq!(readings.len(), 2);
        assert_eq!(readings[0].value(), 12345);
        assert_eq!(readings[1].value(), 678);
        assert!(!readings[0].was_multiplexed());
    }

    #[test]
    fn multiplexed_scaling_recovers_estimate() {
        let g = CounterGroup::new(HpcEvent::FIG2B.to_vec(), 4).unwrap();
        let readings = g.schedule(1_000_000, |_| 1_000_000);
        for r in &readings {
            assert!(r.was_multiplexed());
            assert!(r.raw < 1_000_000, "raw is the scheduled fraction");
            let err = (r.value() as i64 - 1_000_000i64).abs();
            assert!(err <= 2, "scaled estimate within rounding: {}", r.value());
        }
    }

    #[test]
    fn fig2b_on_default_budget_fits() {
        let g =
            CounterGroup::new(HpcEvent::FIG2B.to_vec(), CounterGroup::DEFAULT_HW_COUNTERS).unwrap();
        assert!(!g.is_multiplexed(), "8 events on 8 counters fit exactly");
    }

    #[test]
    fn degenerate_window_reports_true_totals() {
        // 12 events on 1 counter: the per-event slice of a 0/1/2 ns
        // window rounds to zero. The old `.max(1)` clamp then rescaled by
        // `window_ns / 1`, inflating or crushing the estimate; the guard
        // must surface the exact whole-window count instead.
        let g = CounterGroup::new(HpcEvent::ALL.to_vec(), 1).unwrap();
        for window_ns in [0u64, 1, 2] {
            let readings = g.schedule(window_ns, |_| 1_000_000);
            for r in &readings {
                assert_eq!(
                    r.value(),
                    1_000_000,
                    "window_ns={window_ns} event={}",
                    r.event
                );
            }
        }
        // A realistic window still multiplexes and extrapolates normally.
        let readings = g.schedule(1_200_000, |_| 1_000_000);
        for r in &readings {
            assert!(r.was_multiplexed());
            assert!(
                (r.value() as i64 - 1_000_000i64).abs() <= 12,
                "{}",
                r.value()
            );
        }
    }

    #[test]
    fn twelve_events_on_eight_counters_multiplex() {
        let g = CounterGroup::new(HpcEvent::ALL.to_vec(), 8).unwrap();
        assert!(g.is_multiplexed());
        let f = g.schedule_fraction(HpcEvent::Cycles).unwrap();
        assert!((f - 8.0 / 12.0).abs() < 1e-12);
    }
}
