//! Hardware performance counter events, named and parsed the way the
//! Linux `perf` tool names them.

use scnn_uarch::CounterSnapshot;
use std::error::Error;
use std::fmt;
use std::str::FromStr;

/// A hardware event observable through the PMU.
///
/// The first eight variants are exactly the events the paper lists in
/// Figure 2(b); the remainder are the extra events its §3 mentions as
/// available ("more than 1000 depending on the ISA") that this workspace
/// also models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum HpcEvent {
    /// Retired branch instructions (`branches`).
    Branches,
    /// Mispredicted branches (`branch-misses`).
    BranchMisses,
    /// Bus (off-core clock) cycles (`bus-cycles`).
    BusCycles,
    /// Last-level-cache misses (`cache-misses`).
    CacheMisses,
    /// Last-level-cache references (`cache-references`).
    CacheReferences,
    /// Core clock cycles (`cycles`).
    Cycles,
    /// Retired instructions (`instructions`).
    Instructions,
    /// Reference (constant-rate) cycles (`ref-cycles`).
    RefCycles,
    /// L1 data-cache loads (`L1-dcache-loads`).
    L1dLoads,
    /// L1 data-cache load misses (`L1-dcache-load-misses`).
    L1dLoadMisses,
    /// Data-TLB load misses (`dTLB-load-misses`).
    DtlbLoadMisses,
    /// Retired stores (`mem-stores`).
    MemStores,
}

impl HpcEvent {
    /// The eight events of the paper's Figure 2(b), in its display order.
    pub const FIG2B: [HpcEvent; 8] = [
        HpcEvent::Branches,
        HpcEvent::BranchMisses,
        HpcEvent::BusCycles,
        HpcEvent::CacheMisses,
        HpcEvent::CacheReferences,
        HpcEvent::Cycles,
        HpcEvent::Instructions,
        HpcEvent::RefCycles,
    ];

    /// Every event this model knows about.
    pub const ALL: [HpcEvent; 12] = [
        HpcEvent::Branches,
        HpcEvent::BranchMisses,
        HpcEvent::BusCycles,
        HpcEvent::CacheMisses,
        HpcEvent::CacheReferences,
        HpcEvent::Cycles,
        HpcEvent::Instructions,
        HpcEvent::RefCycles,
        HpcEvent::L1dLoads,
        HpcEvent::L1dLoadMisses,
        HpcEvent::DtlbLoadMisses,
        HpcEvent::MemStores,
    ];

    /// The perf-tool name of the event (what `perf stat -e <name>` takes).
    pub fn perf_name(&self) -> &'static str {
        match self {
            HpcEvent::Branches => "branches",
            HpcEvent::BranchMisses => "branch-misses",
            HpcEvent::BusCycles => "bus-cycles",
            HpcEvent::CacheMisses => "cache-misses",
            HpcEvent::CacheReferences => "cache-references",
            HpcEvent::Cycles => "cycles",
            HpcEvent::Instructions => "instructions",
            HpcEvent::RefCycles => "ref-cycles",
            HpcEvent::L1dLoads => "L1-dcache-loads",
            HpcEvent::L1dLoadMisses => "L1-dcache-load-misses",
            HpcEvent::DtlbLoadMisses => "dTLB-load-misses",
            HpcEvent::MemStores => "mem-stores",
        }
    }

    /// Extracts this event's value from a raw simulator snapshot.
    pub fn value_from(&self, snap: &CounterSnapshot) -> u64 {
        match self {
            HpcEvent::Branches => snap.branches,
            HpcEvent::BranchMisses => snap.branch_misses,
            HpcEvent::BusCycles => snap.bus_cycles,
            HpcEvent::CacheMisses => snap.llc_misses,
            HpcEvent::CacheReferences => snap.llc_references,
            HpcEvent::Cycles => snap.cycles,
            HpcEvent::Instructions => snap.instructions,
            HpcEvent::RefCycles => snap.ref_cycles,
            HpcEvent::L1dLoads => snap.loads,
            HpcEvent::L1dLoadMisses => snap.l1d_misses,
            HpcEvent::DtlbLoadMisses => snap.dtlb_misses,
            HpcEvent::MemStores => snap.stores,
        }
    }
}

impl fmt::Display for HpcEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.perf_name())
    }
}

/// Error parsing an event name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseEventError {
    name: String,
}

impl ParseEventError {
    /// The unrecognised name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl fmt::Display for ParseEventError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown perf event name: {:?}", self.name)
    }
}

impl Error for ParseEventError {}

impl FromStr for HpcEvent {
    type Err = ParseEventError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        // Accept perf aliases used interchangeably in the wild.
        let canonical = match s {
            "cpu-cycles" => "cycles",
            "branch-instructions" => "branches",
            other => other,
        };
        HpcEvent::ALL
            .iter()
            .find(|e| e.perf_name() == canonical)
            .copied()
            .ok_or_else(|| ParseEventError { name: s.to_owned() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_names() {
        for e in HpcEvent::ALL {
            assert_eq!(e.perf_name().parse::<HpcEvent>().unwrap(), e);
            assert_eq!(e.to_string(), e.perf_name());
        }
    }

    #[test]
    fn aliases() {
        assert_eq!("cpu-cycles".parse::<HpcEvent>().unwrap(), HpcEvent::Cycles);
        assert_eq!(
            "branch-instructions".parse::<HpcEvent>().unwrap(),
            HpcEvent::Branches
        );
    }

    #[test]
    fn unknown_name_errors() {
        let err = "frobnications".parse::<HpcEvent>().unwrap_err();
        assert_eq!(err.name(), "frobnications");
        assert!(err.to_string().contains("frobnications"));
    }

    #[test]
    fn fig2b_matches_paper_listing() {
        let names: Vec<_> = HpcEvent::FIG2B.iter().map(|e| e.perf_name()).collect();
        assert_eq!(
            names,
            vec![
                "branches",
                "branch-misses",
                "bus-cycles",
                "cache-misses",
                "cache-references",
                "cycles",
                "instructions",
                "ref-cycles",
            ]
        );
    }

    #[test]
    fn value_extraction() {
        let snap = CounterSnapshot {
            branches: 10,
            llc_misses: 20,
            instructions: 30,
            ..CounterSnapshot::default()
        };
        assert_eq!(HpcEvent::Branches.value_from(&snap), 10);
        assert_eq!(HpcEvent::CacheMisses.value_from(&snap), 20);
        assert_eq!(HpcEvent::Instructions.value_from(&snap), 30);
        assert_eq!(HpcEvent::Cycles.value_from(&snap), 0);
    }
}
