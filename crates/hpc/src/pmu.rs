//! The PMU abstraction: something that can measure a workload's event
//! counts, whatever the backend (simulator or real `perf_event_open`).

use crate::event::HpcEvent;
use crate::group::{CounterGroup, GroupError};
use crate::reading::CounterReading;
use scnn_uarch::cache::CacheConfigError;
use scnn_uarch::Probe;
use std::error::Error;
use std::fmt;

/// Error from a PMU measurement.
#[derive(Debug)]
pub enum PmuError {
    /// The simulated core could not be built.
    Cache(CacheConfigError),
    /// The counter group was invalid.
    Group(GroupError),
    /// A backend-specific failure (e.g. `perf_event_open` denied).
    Backend(String),
}

impl fmt::Display for PmuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PmuError::Cache(e) => write!(f, "core construction failed: {e}"),
            PmuError::Group(e) => write!(f, "invalid counter group: {e}"),
            PmuError::Backend(msg) => write!(f, "pmu backend error: {msg}"),
        }
    }
}

impl Error for PmuError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PmuError::Cache(e) => Some(e),
            PmuError::Group(e) => Some(e),
            PmuError::Backend(_) => None,
        }
    }
}

impl From<CacheConfigError> for PmuError {
    fn from(e: CacheConfigError) -> Self {
        PmuError::Cache(e)
    }
}

impl From<GroupError> for PmuError {
    fn from(e: GroupError) -> Self {
        PmuError::Group(e)
    }
}

/// The result of measuring one workload execution.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// One reading per requested event, in request order.
    pub readings: Vec<CounterReading>,
    /// Length of the measurement window in model nanoseconds.
    pub window_ns: u64,
}

impl Measurement {
    /// The (scaled) value of `event`, or `None` when it was not measured.
    pub fn value(&self, event: HpcEvent) -> Option<u64> {
        self.readings
            .iter()
            .find(|r| r.event == event)
            .map(CounterReading::value)
    }

    /// All values as `(event, value)` pairs in request order.
    pub fn values(&self) -> Vec<(HpcEvent, u64)> {
        self.readings.iter().map(|r| (r.event, r.value())).collect()
    }
}

impl fmt::Display for Measurement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.readings {
            writeln!(f, "{r}")?;
        }
        Ok(())
    }
}

/// A performance-monitoring unit that can measure a workload.
///
/// The workload is handed a [`Probe`] through which it reports its
/// architectural events (for the simulated backend) — a real-hardware
/// backend simply ignores the probe and lets the CPU count the native
/// execution.
pub trait Pmu {
    /// Measures one execution of `workload` against the group's events.
    ///
    /// # Errors
    ///
    /// Returns [`PmuError`] when the group cannot be programmed or the
    /// backend fails.
    fn measure(
        &mut self,
        group: &CounterGroup,
        workload: &mut dyn FnMut(&mut dyn Probe),
    ) -> Result<Measurement, PmuError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_lookup() {
        let m = Measurement {
            readings: vec![
                CounterReading::full(HpcEvent::Cycles, 100, 10),
                CounterReading::full(HpcEvent::Branches, 5, 10),
            ],
            window_ns: 10,
        };
        assert_eq!(m.value(HpcEvent::Cycles), Some(100));
        assert_eq!(m.value(HpcEvent::CacheMisses), None);
        assert_eq!(
            m.values(),
            vec![(HpcEvent::Cycles, 100), (HpcEvent::Branches, 5)]
        );
    }

    #[test]
    fn error_display_and_source() {
        let e = PmuError::Group(GroupError::Empty);
        assert!(e.to_string().contains("counter group"));
        assert!(e.source().is_some());
        let b = PmuError::Backend("EACCES".into());
        assert!(b.source().is_none());
    }

    #[test]
    fn measurement_display_lists_readings() {
        let m = Measurement {
            readings: vec![CounterReading::full(HpcEvent::CacheMisses, 8_364_694, 10)],
            window_ns: 10,
        };
        assert!(m.to_string().contains("cache-misses"));
    }
}
