//! Counter readings, including perf-style multiplexing metadata.

use crate::event::HpcEvent;
use std::fmt;

/// One counter's value for one measurement window, with the
/// `time_enabled` / `time_running` bookkeeping that `perf` reports when
/// counters are time-multiplexed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CounterReading {
    /// Which event was counted.
    pub event: HpcEvent,
    /// The raw count accumulated while the counter was scheduled.
    pub raw: u64,
    /// Nanoseconds (model time) the counter was requested for.
    pub time_enabled: u64,
    /// Nanoseconds the counter was actually live on hardware.
    pub time_running: u64,
}

impl CounterReading {
    /// A reading that was live for the whole window (no multiplexing).
    pub fn full(event: HpcEvent, value: u64, window: u64) -> Self {
        CounterReading {
            event,
            raw: value,
            time_enabled: window,
            time_running: window,
        }
    }

    /// True when the counter was descheduled for part of the window and
    /// the value had to be extrapolated.
    pub fn was_multiplexed(&self) -> bool {
        self.time_running < self.time_enabled
    }

    /// Fraction of the window the counter was live, in `[0, 1]`.
    pub fn running_fraction(&self) -> f64 {
        if self.time_enabled == 0 {
            0.0
        } else {
            self.time_running as f64 / self.time_enabled as f64
        }
    }

    /// The perf-style scaled estimate: `raw × enabled / running`.
    ///
    /// When `time_running` is zero there is nothing to extrapolate from,
    /// so the raw count is returned as-is (zero for a counter that truly
    /// never ran; the whole-window total for a degenerate zero-length
    /// window reported via [`CounterReading::full`]).
    pub fn value(&self) -> u64 {
        if self.time_running == 0 {
            return self.raw;
        }
        if self.time_running == self.time_enabled {
            return self.raw;
        }
        (self.raw as f64 * self.time_enabled as f64 / self.time_running as f64).round() as u64
    }
}

impl fmt::Display for CounterReading {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:>20}  {}",
            group_digits_indian(self.value()),
            self.event
        )?;
        if self.was_multiplexed() {
            write!(f, "  ({:.2}%)", self.running_fraction() * 100.0)?;
        }
        Ok(())
    }
}

/// Formats an integer with Indian-style digit grouping (3 then 2s), the
/// format the paper's Figure 2(b) uses: `2,26,77,01,129`.
pub fn group_digits_indian(value: u64) -> String {
    let s = value.to_string();
    if s.len() <= 3 {
        return s;
    }
    let (head, tail) = s.split_at(s.len() - 3);
    let mut groups: Vec<String> = Vec::new();
    let bytes = head.as_bytes();
    let mut i = bytes.len();
    while i > 0 {
        let start = i.saturating_sub(2);
        groups.push(String::from_utf8_lossy(&bytes[start..i]).into_owned());
        i = start;
    }
    groups.reverse();
    format!("{},{}", groups.join(","), tail)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_reading_not_multiplexed() {
        let r = CounterReading::full(HpcEvent::Cycles, 100, 1_000);
        assert!(!r.was_multiplexed());
        assert_eq!(r.value(), 100);
        assert_eq!(r.running_fraction(), 1.0);
    }

    #[test]
    fn scaling_extrapolates() {
        let r = CounterReading {
            event: HpcEvent::CacheMisses,
            raw: 250,
            time_enabled: 1_000,
            time_running: 250,
        };
        assert!(r.was_multiplexed());
        assert_eq!(r.value(), 1_000, "250 counts over a quarter of the window");
    }

    #[test]
    fn never_ran_reads_zero() {
        let r = CounterReading {
            event: HpcEvent::Branches,
            raw: 0,
            time_enabled: 1_000,
            time_running: 0,
        };
        assert_eq!(r.value(), 0);
        assert_eq!(r.running_fraction(), 0.0);
    }

    #[test]
    fn indian_grouping_matches_paper() {
        // Exact figures from the paper's Figure 2(b).
        assert_eq!(group_digits_indian(2_267_701_129), "2,26,77,01,129");
        assert_eq!(group_digits_indian(62_460_873), "6,24,60,873");
        assert_eq!(group_digits_indian(8_364_694), "83,64,694");
        assert_eq!(group_digits_indian(12_094_222_814), "12,09,42,22,814");
        assert_eq!(group_digits_indian(999), "999");
        assert_eq!(group_digits_indian(1_000), "1,000");
        assert_eq!(group_digits_indian(0), "0");
    }

    #[test]
    fn display_contains_event_name() {
        let r = CounterReading::full(HpcEvent::CacheMisses, 8_364_694, 10);
        let s = r.to_string();
        assert!(s.contains("cache-misses"));
        assert!(s.contains("83,64,694"));
    }
}
