//! A `perf stat`-style session façade.
//!
//! The paper's evaluator invokes `perf stat -e <event_name> -p <process_id>`
//! around each classification. [`PerfStat`] reproduces that workflow: pick
//! events (comma-separated spec, as on the perf command line), attach a
//! backend, measure a workload, print a perf-like report.

use crate::event::{HpcEvent, ParseEventError};
use crate::group::CounterGroup;
use crate::pmu::{Measurement, Pmu, PmuError};
use crate::reading::group_digits_indian;
use scnn_uarch::Probe;
use std::fmt;

/// Parses a perf-style comma-separated event specification such as
/// `"cache-misses,branches,instructions"`.
///
/// # Errors
///
/// Returns [`ParseEventError`] on the first unknown name.
///
/// # Examples
///
/// ```
/// use scnn_hpc::{parse_event_spec, HpcEvent};
///
/// # fn main() -> Result<(), scnn_hpc::ParseEventError> {
/// let events = parse_event_spec("cache-misses,branches")?;
/// assert_eq!(events, vec![HpcEvent::CacheMisses, HpcEvent::Branches]);
/// # Ok(())
/// # }
/// ```
pub fn parse_event_spec(spec: &str) -> Result<Vec<HpcEvent>, ParseEventError> {
    spec.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::parse)
        .collect()
}

/// A measurement session bound to one PMU backend and one event group.
pub struct PerfStat<P> {
    pmu: P,
    group: CounterGroup,
}

impl<P: std::fmt::Debug> std::fmt::Debug for PerfStat<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PerfStat")
            .field("pmu", &self.pmu)
            .field("group", &self.group)
            .finish()
    }
}

impl<P: Pmu> PerfStat<P> {
    /// Creates a session.
    pub fn new(pmu: P, group: CounterGroup) -> Self {
        PerfStat { pmu, group }
    }

    /// Measures one run of `workload` — the equivalent of wrapping one
    /// classification in `perf stat`.
    ///
    /// # Errors
    ///
    /// Propagates [`PmuError`] from the backend.
    pub fn stat(
        &mut self,
        workload: &mut dyn FnMut(&mut dyn Probe),
    ) -> Result<StatReport, PmuError> {
        let measurement = self.pmu.measure(&self.group, workload)?;
        Ok(StatReport { measurement })
    }

    /// Measures `n` runs, returning one report per run.
    ///
    /// # Errors
    ///
    /// Propagates the first backend error.
    pub fn stat_repeated(
        &mut self,
        n: usize,
        workload: &mut dyn FnMut(&mut dyn Probe),
    ) -> Result<Vec<StatReport>, PmuError> {
        (0..n).map(|_| self.stat(workload)).collect()
    }

    /// The event group being measured.
    pub fn group(&self) -> &CounterGroup {
        &self.group
    }

    /// Consumes the session, returning the backend.
    pub fn into_inner(self) -> P {
        self.pmu
    }
}

/// One `perf stat` report. Its `Display` output mirrors the layout the
/// paper shows in Figure 2(b) — value columns with Indian digit grouping
/// followed by the event name.
#[derive(Debug, Clone, PartialEq)]
pub struct StatReport {
    /// The underlying measurement.
    pub measurement: Measurement,
}

impl StatReport {
    /// The (scaled) value of one event, if it was measured.
    pub fn value(&self, event: HpcEvent) -> Option<u64> {
        self.measurement.value(event)
    }
}

impl fmt::Display for StatReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Order rows the way the paper's Figure 2(b) lists them; events
        // outside that figure sort after, by name.
        let fig_pos = |e: HpcEvent| {
            HpcEvent::FIG2B
                .iter()
                .position(|&f| f == e)
                .unwrap_or(usize::MAX)
        };
        let mut rows: Vec<_> = self
            .measurement
            .readings
            .iter()
            .map(|r| (r.event, r.value(), r.was_multiplexed()))
            .collect();
        rows.sort_by_key(|&(e, _, _)| (fig_pos(e), e.perf_name()));
        let rows: Vec<_> = rows
            .into_iter()
            .map(|(e, v, m)| (e.perf_name(), v, m))
            .collect();
        for (name, value, mux) in rows {
            write!(f, "{:>20}      {}", group_digits_indian(value), name)?;
            if mux {
                write!(f, "  (scaled)")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{SimPmuConfig, SimulatedPmu};
    use scnn_uarch::NoiseConfig;

    fn quiet_session(events: &[HpcEvent]) -> PerfStat<SimulatedPmu> {
        let pmu = SimulatedPmu::new(
            SimPmuConfig {
                noise: NoiseConfig::quiet(),
                ..SimPmuConfig::default()
            },
            3,
        )
        .unwrap();
        PerfStat::new(pmu, CounterGroup::new(events.to_vec(), 8).unwrap())
    }

    #[test]
    fn spec_parsing() {
        assert_eq!(
            parse_event_spec("cache-misses, branches ,instructions").unwrap(),
            vec![
                HpcEvent::CacheMisses,
                HpcEvent::Branches,
                HpcEvent::Instructions
            ]
        );
        assert!(parse_event_spec("cache-misses,bogus").is_err());
        assert_eq!(parse_event_spec("").unwrap(), vec![]);
    }

    #[test]
    fn stat_measures_workload() {
        let mut s = quiet_session(&[HpcEvent::Instructions, HpcEvent::Branches]);
        let report = s
            .stat(&mut |p| {
                p.alu(123);
                p.branch(0x40, true);
            })
            .unwrap();
        assert_eq!(report.value(HpcEvent::Instructions), Some(124));
        assert_eq!(report.value(HpcEvent::Branches), Some(1));
    }

    #[test]
    fn repeated_stats() {
        let mut s = quiet_session(&[HpcEvent::Instructions]);
        let reports = s.stat_repeated(5, &mut |p| p.alu(10)).unwrap();
        assert_eq!(reports.len(), 5);
        assert!(reports
            .iter()
            .all(|r| r.value(HpcEvent::Instructions) == Some(10)));
    }

    #[test]
    fn display_is_alphabetical_like_fig2b() {
        let mut s = quiet_session(&HpcEvent::FIG2B);
        let report = s
            .stat(&mut |p| {
                for i in 0..1000u64 {
                    p.load(i * 64, 0x40);
                    p.branch(0x40, i % 7 != 0);
                }
                p.alu(5_000);
            })
            .unwrap();
        let text = report.to_string();
        let order: Vec<usize> = [
            "branches",
            "branch-misses",
            "bus-cycles",
            "cache-misses",
            "cache-references",
            "cycles",
            "instructions",
            "ref-cycles",
        ]
        .iter()
        .map(|n| {
            text.lines()
                .position(|l| l.split_whitespace().last() == Some(n))
                .unwrap_or_else(|| panic!("missing {n} in:\n{text}"))
        })
        .collect();
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(order, sorted, "rows must appear in Fig 2(b) order");
    }

    #[test]
    fn into_inner_returns_backend() {
        let s = quiet_session(&[HpcEvent::Cycles]);
        let pmu = s.into_inner();
        assert_eq!(pmu.measurements_taken(), 0);
    }
}
