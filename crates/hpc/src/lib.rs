//! # scnn-hpc
//!
//! A hardware-performance-counter model mirroring the Linux `perf` tool's
//! view of the PMU — the measurement instrument of *"How Secure are Deep
//! Learning Algorithms from Side-Channel based Reverse Engineering?"*
//! (Alam & Mukhopadhyay, DAC 2019).
//!
//! The paper's evaluator runs `perf stat -e <event_name> -p <process_id>`
//! around each CNN classification. This crate reproduces that stack:
//!
//! - [`HpcEvent`] — perf-named events, including the exact eight of the
//!   paper's Figure 2(b);
//! - [`CounterGroup`] — the 6–8 simultaneous-counter hardware budget the
//!   paper discusses in §3, with time-multiplexing and perf-style scaling
//!   when oversubscribed;
//! - [`Pmu`] — the measurement backend trait, with [`SimulatedPmu`]
//!   (backed by the `scnn-uarch` core simulator plus a system-noise model)
//!   as the default backend and, behind the `linux-perf` feature, a real
//!   `perf_event_open(2)` backend in the `linux` module;
//! - [`PerfStat`] — the `perf stat` session façade used by the evaluator
//!   in `scnn-core`.
//!
//! # Examples
//!
//! ```
//! use scnn_hpc::{CounterGroup, HpcEvent, PerfStat, Pmu, SimPmuConfig, SimulatedPmu};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // perf stat -e cache-misses,branches <one classification>
//! let events = scnn_hpc::parse_event_spec("cache-misses,branches")?;
//! let pmu = SimulatedPmu::new(SimPmuConfig::default(), 42)?;
//! let mut session = PerfStat::new(pmu, CounterGroup::new(events, 8)?);
//! let report = session.stat(&mut |probe| {
//!     for i in 0..1_000u64 {
//!         probe.load(i * 64, 0x40);
//!         probe.branch(0x40, i % 3 == 0);
//!     }
//! })?;
//! assert!(report.value(HpcEvent::CacheMisses).unwrap() > 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod event;
pub mod group;
#[cfg(feature = "linux-perf")]
pub mod linux;
pub mod pmu;
pub mod reading;
pub mod session;
pub mod sim;

pub use event::{HpcEvent, ParseEventError};
pub use group::{CounterGroup, GroupError};
#[cfg(feature = "linux-perf")]
pub use linux::LinuxPmu;
pub use pmu::{Measurement, Pmu, PmuError};
pub use reading::{group_digits_indian, CounterReading};
pub use session::{parse_event_spec, PerfStat, StatReport};
pub use sim::{SimPmuConfig, SimulatedPmu, WarmupPolicy};
