//! Real hardware backend via `perf_event_open(2)` — available behind the
//! `linux-perf` cargo feature.
//!
//! This is the backend to use when reproducing the paper on bare metal:
//! it programs the same generalized hardware events (`PERF_COUNT_HW_*`)
//! that the `perf` tool maps `cache-misses`, `branches`, … onto, and reads
//! them with the scaling metadata (`time_enabled`/`time_running`) that
//! [`CounterReading`] models.
//!
//! Containers and CI runners usually deny `perf_event_open`
//! (`/proc/sys/kernel/perf_event_paranoid`, seccomp), which is exactly why
//! the default backend is the simulator: measurements must be runnable
//! anywhere. Errors from the syscall are surfaced as
//! [`PmuError::Backend`] so callers can fall back.

use crate::event::HpcEvent;
use crate::group::CounterGroup;
use crate::pmu::{Measurement, Pmu, PmuError};
use crate::reading::CounterReading;
use scnn_uarch::{NullProbe, Probe};
use std::ffi::{c_int, c_ulong, c_void};
use std::io;

/// Direct FFI onto the handful of C runtime symbols this backend needs.
/// Declared in-tree so the hermetic build carries no external `libc`
/// crate; the symbols come from the platform C runtime std already
/// links against.
mod sys {
    use std::ffi::{c_int, c_long, c_ulong, c_void};

    /// `perf_event_open(2)` has no C wrapper; it is invoked through
    /// `syscall(2)` with the per-architecture number.
    #[cfg(target_arch = "x86_64")]
    pub const SYS_PERF_EVENT_OPEN: c_long = 298;
    #[cfg(target_arch = "aarch64")]
    pub const SYS_PERF_EVENT_OPEN: c_long = 241;

    extern "C" {
        pub fn syscall(num: c_long, ...) -> c_long;
        pub fn ioctl(fd: c_int, request: c_ulong, ...) -> c_int;
        pub fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        pub fn close(fd: c_int) -> c_int;
    }
}

/// `perf_event_attr.type` for generalized hardware events.
const PERF_TYPE_HARDWARE: u32 = 0;
/// `perf_event_attr.type` for generalized cache events.
const PERF_TYPE_HW_CACHE: u32 = 3;

/// `PERF_COUNT_HW_*` ids (see `include/uapi/linux/perf_event.h`).
mod hw {
    pub const CPU_CYCLES: u64 = 0;
    pub const INSTRUCTIONS: u64 = 1;
    pub const CACHE_REFERENCES: u64 = 2;
    pub const CACHE_MISSES: u64 = 3;
    pub const BRANCH_INSTRUCTIONS: u64 = 4;
    pub const BRANCH_MISSES: u64 = 5;
    pub const BUS_CYCLES: u64 = 6;
    pub const REF_CPU_CYCLES: u64 = 9;
}

/// Cache-event encoding: `id | (op << 8) | (result << 16)`.
mod hw_cache {
    pub const L1D: u64 = 0;
    pub const DTLB: u64 = 3;
    pub const OP_READ: u64 = 0;
    pub const OP_WRITE: u64 = 1;
    pub const RESULT_ACCESS: u64 = 0;
    pub const RESULT_MISS: u64 = 1;

    pub fn encode(id: u64, op: u64, result: u64) -> u64 {
        id | (op << 8) | (result << 16)
    }
}

fn event_encoding(event: HpcEvent) -> (u32, u64) {
    match event {
        HpcEvent::Cycles => (PERF_TYPE_HARDWARE, hw::CPU_CYCLES),
        HpcEvent::Instructions => (PERF_TYPE_HARDWARE, hw::INSTRUCTIONS),
        HpcEvent::CacheReferences => (PERF_TYPE_HARDWARE, hw::CACHE_REFERENCES),
        HpcEvent::CacheMisses => (PERF_TYPE_HARDWARE, hw::CACHE_MISSES),
        HpcEvent::Branches => (PERF_TYPE_HARDWARE, hw::BRANCH_INSTRUCTIONS),
        HpcEvent::BranchMisses => (PERF_TYPE_HARDWARE, hw::BRANCH_MISSES),
        HpcEvent::BusCycles => (PERF_TYPE_HARDWARE, hw::BUS_CYCLES),
        HpcEvent::RefCycles => (PERF_TYPE_HARDWARE, hw::REF_CPU_CYCLES),
        HpcEvent::L1dLoads => (
            PERF_TYPE_HW_CACHE,
            hw_cache::encode(hw_cache::L1D, hw_cache::OP_READ, hw_cache::RESULT_ACCESS),
        ),
        HpcEvent::L1dLoadMisses => (
            PERF_TYPE_HW_CACHE,
            hw_cache::encode(hw_cache::L1D, hw_cache::OP_READ, hw_cache::RESULT_MISS),
        ),
        HpcEvent::DtlbLoadMisses => (
            PERF_TYPE_HW_CACHE,
            hw_cache::encode(hw_cache::DTLB, hw_cache::OP_READ, hw_cache::RESULT_MISS),
        ),
        HpcEvent::MemStores => (
            PERF_TYPE_HW_CACHE,
            hw_cache::encode(hw_cache::L1D, hw_cache::OP_WRITE, hw_cache::RESULT_ACCESS),
        ),
    }
}

/// Minimal `perf_event_attr`; the kernel accepts a caller-declared size
/// and zero-fills the rest, so only the leading fields are declared.
#[repr(C)]
#[derive(Clone, Copy)]
struct PerfEventAttr {
    type_: u32,
    size: u32,
    config: u64,
    sample_period_or_freq: u64,
    sample_type: u64,
    read_format: u64,
    flags: u64,
    rest: [u64; 14],
}

const PERF_ATTR_SIZE_VER0: u32 = 64;
/// `PERF_FORMAT_TOTAL_TIME_ENABLED | PERF_FORMAT_TOTAL_TIME_RUNNING`.
const READ_FORMAT_TIMES: u64 = 0b11;
/// attr bit 0: start disabled; bit 5: exclude_kernel; bit 6: exclude_hv.
const ATTR_FLAGS: u64 = 1 | (1 << 5) | (1 << 6);

const IOCTL_ENABLE: c_ulong = 0x2400;
const IOCTL_DISABLE: c_ulong = 0x2401;
const IOCTL_RESET: c_ulong = 0x2403;

struct CounterFd {
    fd: c_int,
    event: HpcEvent,
}

impl Drop for CounterFd {
    fn drop(&mut self) {
        // Safety: fd was returned by perf_event_open and is owned here.
        unsafe {
            sys::close(self.fd);
        }
    }
}

/// A PMU backed by real Linux performance counters for the calling
/// process/thread.
#[derive(Debug, Default)]
pub struct LinuxPmu {
    _private: (),
}

impl LinuxPmu {
    /// Creates the backend.
    ///
    /// Construction always succeeds; availability is only known when the
    /// first measurement programs the counters.
    pub fn new() -> Self {
        LinuxPmu::default()
    }

    fn open(event: HpcEvent) -> Result<CounterFd, PmuError> {
        let (type_, config) = event_encoding(event);
        let attr = PerfEventAttr {
            type_,
            size: PERF_ATTR_SIZE_VER0,
            config,
            sample_period_or_freq: 0,
            sample_type: 0,
            read_format: READ_FORMAT_TIMES,
            flags: ATTR_FLAGS,
            rest: [0; 14],
        };
        // Safety: attr is a properly sized, zero-padded perf_event_attr;
        // pid=0/cpu=-1 measures the calling thread on any CPU.
        let fd = unsafe {
            sys::syscall(
                sys::SYS_PERF_EVENT_OPEN,
                &attr as *const PerfEventAttr,
                0 as c_int,
                -1 as c_int,
                -1 as c_int,
                0 as c_ulong,
            )
        } as c_int;
        if fd < 0 {
            return Err(PmuError::Backend(format!(
                "perf_event_open({}) failed: {}",
                event,
                io::Error::last_os_error()
            )));
        }
        Ok(CounterFd { fd, event })
    }

    fn read(fd: &CounterFd) -> Result<CounterReading, PmuError> {
        let mut buf = [0u64; 3];
        // Safety: buf is a valid 24-byte buffer matching READ_FORMAT_TIMES.
        let n = unsafe {
            sys::read(
                fd.fd,
                buf.as_mut_ptr() as *mut c_void,
                std::mem::size_of_val(&buf),
            )
        };
        if n != std::mem::size_of_val(&buf) as isize {
            return Err(PmuError::Backend(format!(
                "short read from counter {}: {}",
                fd.event,
                io::Error::last_os_error()
            )));
        }
        Ok(CounterReading {
            event: fd.event,
            raw: buf[0],
            time_enabled: buf[1],
            time_running: buf[2],
        })
    }
}

impl Pmu for LinuxPmu {
    fn measure(
        &mut self,
        group: &CounterGroup,
        workload: &mut dyn FnMut(&mut dyn Probe),
    ) -> Result<Measurement, PmuError> {
        let fds: Vec<CounterFd> = group
            .events()
            .iter()
            .map(|&e| Self::open(e))
            .collect::<Result<_, _>>()?;
        // A failed RESET/ENABLE would leave the counter stopped at zero,
        // and the subsequent read would return a perfectly plausible
        // all-zero "measurement" — so every ioctl return is checked.
        let check = |ret: c_int, op: &str, fd: &CounterFd| -> Result<(), PmuError> {
            if ret < 0 {
                return Err(PmuError::Backend(format!(
                    "ioctl {op} failed for counter {}: {}",
                    fd.event,
                    io::Error::last_os_error()
                )));
            }
            Ok(())
        };
        for fd in &fds {
            // Safety: valid perf fds; these ioctls take no argument.
            unsafe {
                check(sys::ioctl(fd.fd, IOCTL_RESET, 0), "RESET", fd)?;
                check(sys::ioctl(fd.fd, IOCTL_ENABLE, 0), "ENABLE", fd)?;
            }
        }

        // The hardware counts native execution; the probe is a no-op.
        let mut null = NullProbe;
        workload(&mut null);

        for fd in &fds {
            // Safety: as above.
            unsafe {
                check(sys::ioctl(fd.fd, IOCTL_DISABLE, 0), "DISABLE", fd)?;
            }
        }
        let readings: Vec<CounterReading> = fds.iter().map(Self::read).collect::<Result<_, _>>()?;
        let window_ns = readings.iter().map(|r| r.time_enabled).max().unwrap_or(1);
        Ok(Measurement {
            readings,
            window_ns,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encodings_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for e in HpcEvent::ALL {
            assert!(seen.insert(event_encoding(e)), "duplicate encoding for {e}");
        }
    }

    #[test]
    fn attr_layout_size() {
        // The declared fields span 48 bytes + 112 bytes of zero padding;
        // the struct must at least cover the size we declare to the
        // kernel so its zero-fill check passes.
        assert_eq!(std::mem::size_of::<PerfEventAttr>(), 160);
        assert!(std::mem::size_of::<PerfEventAttr>() >= PERF_ATTR_SIZE_VER0 as usize);
    }

    /// Runs only where the kernel actually allows perf; otherwise the
    /// error path is exercised.
    #[test]
    fn measure_or_graceful_denial() {
        let mut pmu = LinuxPmu::new();
        let group = CounterGroup::new(vec![HpcEvent::Instructions], 8).unwrap();
        match pmu.measure(&group, &mut |_| {
            // Real work the hardware can count.
            let mut acc = 0u64;
            for i in 0..100_000u64 {
                acc = acc.wrapping_add(i * 2654435761);
            }
            std::hint::black_box(acc);
        }) {
            Ok(m) => {
                assert!(m.value(HpcEvent::Instructions).unwrap() > 10_000);
            }
            Err(PmuError::Backend(msg)) => {
                assert!(msg.contains("perf_event_open"), "unexpected error: {msg}");
            }
            Err(other) => panic!("unexpected error kind: {other}"),
        }
    }
}
