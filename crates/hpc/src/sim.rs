//! The simulated PMU backend: drives workloads through a [`CoreSim`] and
//! layers system noise and counter multiplexing on the raw counts.

use crate::group::CounterGroup;
use crate::pmu::{Measurement, Pmu, PmuError};
use scnn_uarch::{CoreConfig, CoreSim, CounterSnapshot, NoiseConfig, NoiseModel, Probe};

/// How the measured process's cache state is treated between measurement
/// windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WarmupPolicy {
    /// Flush caches and TLB before every measurement — each classification
    /// is measured as a freshly exec'd process (the `perf stat <cmd>`
    /// usage).
    #[default]
    ColdStart,
    /// Keep microarchitectural state warm across measurements — the
    /// `perf stat -p <pid>` attach usage on a long-running service. The
    /// noise model's context switches still pollute between windows.
    Warm,
}

/// Configuration of the simulated PMU.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimPmuConfig {
    /// The simulated core.
    pub core: CoreConfig,
    /// System-noise model parameters.
    pub noise: NoiseConfig,
    /// Cache-state policy between measurements.
    pub warmup: WarmupPolicy,
    /// Core clock in GHz, used to convert cycles into the
    /// `time_enabled`/`time_running` nanoseconds perf reports.
    pub clock_ghz: f64,
    /// Number of simultaneously-programmable hardware counters.
    pub hw_counters: usize,
}

impl Default for SimPmuConfig {
    fn default() -> Self {
        SimPmuConfig {
            core: CoreConfig::default(),
            noise: NoiseConfig::default(),
            warmup: WarmupPolicy::ColdStart,
            clock_ghz: 2.9, // Xeon E5-2690 base clock
            hw_counters: CounterGroup::DEFAULT_HW_COUNTERS,
        }
    }
}

/// A PMU backed by the `scnn-uarch` simulator.
///
/// # Examples
///
/// ```
/// use scnn_hpc::{CounterGroup, HpcEvent, Pmu, SimPmuConfig, SimulatedPmu};
///
/// # fn main() -> Result<(), scnn_hpc::PmuError> {
/// let mut pmu = SimulatedPmu::new(SimPmuConfig::default(), 42)?;
/// let group = CounterGroup::new(vec![HpcEvent::Instructions], 8)?;
/// let m = pmu.measure(&group, &mut |probe| {
///     probe.alu(1_000);
/// })?;
/// assert!(m.value(HpcEvent::Instructions).unwrap() >= 1_000);
/// # Ok(())
/// # }
/// ```
pub struct SimulatedPmu {
    core: CoreSim,
    noise: NoiseModel,
    config: SimPmuConfig,
    measurements_taken: u64,
}

impl std::fmt::Debug for SimulatedPmu {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimulatedPmu")
            .field("config", &self.config)
            .field("measurements_taken", &self.measurements_taken)
            .finish_non_exhaustive()
    }
}

impl SimulatedPmu {
    /// Builds the PMU; `seed` drives the noise model.
    ///
    /// # Errors
    ///
    /// Returns [`PmuError::Cache`] when the core geometry is invalid.
    pub fn new(config: SimPmuConfig, seed: u64) -> Result<Self, PmuError> {
        Ok(SimulatedPmu {
            core: CoreSim::new(config.core)?,
            noise: NoiseModel::new(config.noise, seed),
            config,
            measurements_taken: 0,
        })
    }

    /// The PMU's configuration.
    pub fn config(&self) -> &SimPmuConfig {
        &self.config
    }

    /// Number of measurements taken so far.
    pub fn measurements_taken(&self) -> u64 {
        self.measurements_taken
    }

    fn apply_noise(&mut self, snap: CounterSnapshot) -> CounterSnapshot {
        let n = self.noise.sample(snap.cycles);
        let scale = |v: u64| (v as f64 * n.counter_multiplier).round() as u64;
        let cycles =
            ((snap.cycles + n.instructions / 2) as f64 * n.cycle_multiplier).round() as u64;
        let noisy = CounterSnapshot {
            instructions: scale(snap.instructions + n.instructions),
            loads: scale(snap.loads + n.instructions / 4),
            stores: scale(snap.stores + n.instructions / 10),
            branches: scale(snap.branches + n.branches),
            branch_misses: scale(snap.branch_misses + n.branch_misses),
            l1d_accesses: scale(snap.l1d_accesses + n.instructions / 3),
            l1d_misses: scale(snap.l1d_misses + n.llc_references),
            l2_accesses: scale(snap.l2_accesses + n.llc_references),
            l2_misses: scale(snap.l2_misses + n.llc_misses),
            llc_references: scale(snap.llc_references + n.llc_references),
            llc_misses: scale(snap.llc_misses + n.llc_misses),
            dtlb_misses: scale(snap.dtlb_misses + n.context_switches * 64),
            prefetches: snap.prefetches,
            cycles,
            ref_cycles: self.core.config().cycles.ref_cycles(cycles),
            bus_cycles: self.core.config().cycles.bus_cycles(cycles),
        };
        // A context switch during this window pollutes state for the next
        // one (only observable under the Warm policy).
        if n.context_switches > 0 {
            self.core
                .pollute(0.5, self.measurements_taken.wrapping_mul(0x9E37_79B9));
        }
        noisy
    }
}

impl Pmu for SimulatedPmu {
    fn measure(
        &mut self,
        group: &CounterGroup,
        workload: &mut dyn FnMut(&mut dyn Probe),
    ) -> Result<Measurement, PmuError> {
        if self.config.warmup == WarmupPolicy::ColdStart {
            self.core.cold_start();
        }
        self.core.reset_counters();
        workload(&mut self.core);
        let snap = self.core.snapshot();
        let noisy = self.apply_noise(snap);
        self.measurements_taken += 1;

        let window_ns = (noisy.cycles as f64 / self.config.clock_ghz.max(0.1)).round() as u64;
        let readings = group.schedule(window_ns.max(1), |e| e.value_from(&noisy));
        Ok(Measurement {
            readings,
            window_ns: window_ns.max(1),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::HpcEvent;

    fn quiet_pmu() -> SimulatedPmu {
        SimulatedPmu::new(
            SimPmuConfig {
                noise: NoiseConfig::quiet(),
                ..SimPmuConfig::default()
            },
            1,
        )
        .unwrap()
    }

    fn group(events: &[HpcEvent]) -> CounterGroup {
        CounterGroup::new(events.to_vec(), 8).unwrap()
    }

    #[test]
    fn quiet_measurement_is_exact_and_deterministic() {
        let mut pmu = quiet_pmu();
        let g = group(&[HpcEvent::Instructions, HpcEvent::Branches]);
        let run = |pmu: &mut SimulatedPmu| {
            pmu.measure(&g, &mut |p| {
                for i in 0..100u64 {
                    p.load(i * 64, 0x40);
                    p.branch(0x40, i % 2 == 0);
                }
                p.alu(500);
            })
            .unwrap()
        };
        let a = run(&mut pmu);
        let b = run(&mut pmu);
        assert_eq!(a.value(HpcEvent::Instructions), Some(700));
        assert_eq!(a.value(HpcEvent::Branches), Some(100));
        // Branch-predictor state legitimately stays warm across runs (as
        // on real hardware), so cycles may differ; retired counts must
        // not.
        assert_eq!(
            a.values(),
            b.values(),
            "cold-start + quiet noise → identical counts"
        );
    }

    #[test]
    fn noise_perturbs_counts() {
        let mut pmu = SimulatedPmu::new(SimPmuConfig::default(), 7).unwrap();
        let g = group(&[HpcEvent::Instructions]);
        let mut values = Vec::new();
        for _ in 0..10 {
            let m = pmu
                .measure(&g, &mut |p| {
                    for i in 0..50_000u64 {
                        p.load((i % 512) * 64, 0x40);
                    }
                })
                .unwrap();
            values.push(m.value(HpcEvent::Instructions).unwrap());
        }
        let all_same = values.windows(2).all(|w| w[0] == w[1]);
        assert!(!all_same, "noise should disperse readings: {values:?}");
        assert_eq!(pmu.measurements_taken(), 10);
    }

    #[test]
    fn cold_start_policy_repeats_misses() {
        let mut pmu = quiet_pmu();
        let g = group(&[HpcEvent::CacheMisses]);
        let mut wl = |p: &mut dyn Probe| {
            for i in 0..64u64 {
                p.load(i * 64, 0x40);
            }
        };
        let a = pmu.measure(&g, &mut wl).unwrap();
        let b = pmu.measure(&g, &mut wl).unwrap();
        assert_eq!(
            a.value(HpcEvent::CacheMisses),
            b.value(HpcEvent::CacheMisses)
        );
        assert!(a.value(HpcEvent::CacheMisses).unwrap() > 0);
    }

    #[test]
    fn warm_policy_reduces_misses() {
        let mut pmu = SimulatedPmu::new(
            SimPmuConfig {
                noise: NoiseConfig::quiet(),
                warmup: WarmupPolicy::Warm,
                ..SimPmuConfig::default()
            },
            1,
        )
        .unwrap();
        let g = group(&[HpcEvent::CacheMisses]);
        let mut wl = |p: &mut dyn Probe| {
            for i in 0..64u64 {
                p.load(i * 64, 0x40);
            }
        };
        let cold = pmu.measure(&g, &mut wl).unwrap();
        let warm = pmu.measure(&g, &mut wl).unwrap();
        assert!(
            warm.value(HpcEvent::CacheMisses).unwrap() < cold.value(HpcEvent::CacheMisses).unwrap(),
            "second run should hit warm caches"
        );
    }

    #[test]
    fn multiplexed_group_scales_back() {
        let mut pmu = quiet_pmu();
        // 12 events on a 4-counter budget.
        let g = CounterGroup::new(HpcEvent::ALL.to_vec(), 4).unwrap();
        let m = pmu
            .measure(&g, &mut |p| {
                p.alu(30_000);
            })
            .unwrap();
        let insns = m.value(HpcEvent::Instructions).unwrap();
        assert!(
            (insns as i64 - 30_000).abs() <= 30,
            "scaling should approximately recover the total: {insns}"
        );
        assert!(m.readings.iter().all(|r| r.was_multiplexed()));
    }

    #[test]
    fn window_tracks_cycles() {
        let mut pmu = quiet_pmu();
        let g = group(&[HpcEvent::Cycles]);
        let small = pmu.measure(&g, &mut |p| p.alu(1_000)).unwrap();
        let large = pmu.measure(&g, &mut |p| p.alu(1_000_000)).unwrap();
        assert!(large.window_ns > small.window_ns * 100);
    }
}
