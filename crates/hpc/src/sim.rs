//! The simulated PMU backend: drives workloads through a [`CoreSim`] and
//! layers system noise and counter multiplexing on the raw counts.

use crate::group::CounterGroup;
use crate::pmu::{Measurement, Pmu, PmuError};
use scnn_uarch::{CoreConfig, CoreSim, CounterSnapshot, NoiseConfig, NoiseModel, Probe};

/// How the measured process's cache state is treated between measurement
/// windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WarmupPolicy {
    /// Flush caches and TLB before every measurement — each classification
    /// is measured as a freshly exec'd process (the `perf stat <cmd>`
    /// usage).
    #[default]
    ColdStart,
    /// Keep microarchitectural state warm across measurements — the
    /// `perf stat -p <pid>` attach usage on a long-running service. The
    /// noise model's context switches still pollute between windows.
    Warm,
}

/// Configuration of the simulated PMU.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimPmuConfig {
    /// The simulated core.
    pub core: CoreConfig,
    /// System-noise model parameters.
    pub noise: NoiseConfig,
    /// Cache-state policy between measurements.
    pub warmup: WarmupPolicy,
    /// Core clock in GHz, used to convert cycles into the
    /// `time_enabled`/`time_running` nanoseconds perf reports.
    pub clock_ghz: f64,
    /// Number of simultaneously-programmable hardware counters.
    pub hw_counters: usize,
}

impl Default for SimPmuConfig {
    fn default() -> Self {
        SimPmuConfig {
            core: CoreConfig::default(),
            noise: NoiseConfig::default(),
            warmup: WarmupPolicy::ColdStart,
            clock_ghz: 2.9, // Xeon E5-2690 base clock
            hw_counters: CounterGroup::DEFAULT_HW_COUNTERS,
        }
    }
}

/// A PMU backed by the `scnn-uarch` simulator.
///
/// # Examples
///
/// ```
/// use scnn_hpc::{CounterGroup, HpcEvent, Pmu, SimPmuConfig, SimulatedPmu};
///
/// # fn main() -> Result<(), scnn_hpc::PmuError> {
/// let mut pmu = SimulatedPmu::new(SimPmuConfig::default(), 42)?;
/// let group = CounterGroup::new(vec![HpcEvent::Instructions], 8)?;
/// let m = pmu.measure(&group, &mut |probe| {
///     probe.alu(1_000);
/// })?;
/// assert!(m.value(HpcEvent::Instructions).unwrap() >= 1_000);
/// # Ok(())
/// # }
/// ```
pub struct SimulatedPmu {
    core: CoreSim,
    noise: NoiseModel,
    config: SimPmuConfig,
    measurements_taken: u64,
}

impl std::fmt::Debug for SimulatedPmu {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimulatedPmu")
            .field("config", &self.config)
            .field("measurements_taken", &self.measurements_taken)
            .finish_non_exhaustive()
    }
}

impl SimulatedPmu {
    /// Builds the PMU; `seed` drives the noise model.
    ///
    /// # Errors
    ///
    /// Returns [`PmuError::Cache`] when the core geometry is invalid.
    pub fn new(config: SimPmuConfig, seed: u64) -> Result<Self, PmuError> {
        Ok(SimulatedPmu {
            core: CoreSim::new(config.core)?,
            noise: NoiseModel::new(config.noise, seed),
            config,
            measurements_taken: 0,
        })
    }

    /// The PMU's configuration.
    pub fn config(&self) -> &SimPmuConfig {
        &self.config
    }

    /// Number of measurements taken so far.
    pub fn measurements_taken(&self) -> u64 {
        self.measurements_taken
    }

    fn apply_noise(&mut self, snap: CounterSnapshot) -> CounterSnapshot {
        let n = self.noise.sample(snap.cycles);
        let scale = |v: u64| (v as f64 * n.counter_multiplier).round() as u64;
        let cycles =
            ((snap.cycles + n.instructions / 2) as f64 * n.cycle_multiplier).round() as u64;
        let noisy = CounterSnapshot {
            instructions: scale(snap.instructions + n.instructions),
            loads: scale(snap.loads + n.instructions / 4),
            stores: scale(snap.stores + n.instructions / 10),
            branches: scale(snap.branches + n.branches),
            branch_misses: scale(snap.branch_misses + n.branch_misses),
            l1d_accesses: scale(snap.l1d_accesses + n.instructions / 3),
            l1d_misses: scale(snap.l1d_misses + n.llc_references),
            l2_accesses: scale(snap.l2_accesses + n.llc_references),
            l2_misses: scale(snap.l2_misses + n.llc_misses),
            llc_references: scale(snap.llc_references + n.llc_references),
            llc_misses: scale(snap.llc_misses + n.llc_misses),
            dtlb_misses: scale(snap.dtlb_misses + n.context_switches * 64),
            prefetches: snap.prefetches,
            cycles,
            ref_cycles: self.core.config().cycles.ref_cycles(cycles),
            bus_cycles: self.core.config().cycles.bus_cycles(cycles),
        };
        // A context switch during this window pollutes state for the next
        // one (only observable under the Warm policy).
        if n.context_switches > 0 {
            self.core
                .pollute(0.5, self.measurements_taken.wrapping_mul(0x9E37_79B9));
        }
        noisy
    }

    /// Like [`Pmu::measure`], but segments the counter stream at every
    /// [`Probe::layer_boundary`] the workload reports, returning one noisy
    /// [`CounterSnapshot`] per window.
    ///
    /// Window `i` covers the events between the `i`-th and `(i+1)`-th
    /// boundary (the run's end closes the last window), so a workload that
    /// reports `k` boundaries yields `k + 1` windows and the first window
    /// holds whatever ran before the first boundary. A workload that never
    /// reports a boundary yields exactly one window — the same counts
    /// [`Pmu::measure`] would see. Noise is sampled per window, scaled by
    /// that window's cycle count, exactly as a real per-window
    /// attach/detach would observe it.
    pub fn measure_layers(
        &mut self,
        workload: &mut dyn FnMut(&mut dyn Probe),
    ) -> Vec<CounterSnapshot> {
        if self.config.warmup == WarmupPolicy::ColdStart {
            self.core.cold_start();
        }
        self.core.reset_counters();
        let mut marks = Vec::new();
        {
            let mut capture = LayerCapture {
                core: &mut self.core,
                marks: &mut marks,
            };
            workload(&mut capture);
        }
        marks.push(self.core.snapshot());
        self.measurements_taken += 1;

        let mut windows = Vec::with_capacity(marks.len());
        let mut prev = CounterSnapshot::default();
        for mark in marks {
            let delta = mark.delta(&prev);
            prev = mark;
            windows.push(self.apply_noise(delta));
        }
        windows
    }
}

/// Probe adapter for [`SimulatedPmu::measure_layers`]: forwards every
/// architectural event to the simulated core untouched and snapshots the
/// cumulative counters at each layer boundary. Because boundaries retire
/// nothing, the core sees a stream bit-identical to an unsegmented run.
struct LayerCapture<'c> {
    core: &'c mut CoreSim,
    marks: &'c mut Vec<CounterSnapshot>,
}

impl Probe for LayerCapture<'_> {
    fn load(&mut self, addr: u64, pc: u64) {
        self.core.load(addr, pc);
    }

    fn store(&mut self, addr: u64, pc: u64) {
        self.core.store(addr, pc);
    }

    fn branch(&mut self, pc: u64, taken: bool) {
        self.core.branch(pc, taken);
    }

    fn alu(&mut self, n: u64) {
        self.core.alu(n);
    }

    fn layer_boundary(&mut self, _index: usize) {
        self.marks.push(self.core.snapshot());
    }
}

impl Pmu for SimulatedPmu {
    fn measure(
        &mut self,
        group: &CounterGroup,
        workload: &mut dyn FnMut(&mut dyn Probe),
    ) -> Result<Measurement, PmuError> {
        if self.config.warmup == WarmupPolicy::ColdStart {
            self.core.cold_start();
        }
        self.core.reset_counters();
        workload(&mut self.core);
        let snap = self.core.snapshot();
        let noisy = self.apply_noise(snap);
        self.measurements_taken += 1;

        let window_ns = (noisy.cycles as f64 / self.config.clock_ghz.max(0.1)).round() as u64;
        let readings = group.schedule(window_ns.max(1), |e| e.value_from(&noisy));
        Ok(Measurement {
            readings,
            window_ns: window_ns.max(1),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::HpcEvent;

    fn quiet_pmu() -> SimulatedPmu {
        SimulatedPmu::new(
            SimPmuConfig {
                noise: NoiseConfig::quiet(),
                ..SimPmuConfig::default()
            },
            1,
        )
        .unwrap()
    }

    fn group(events: &[HpcEvent]) -> CounterGroup {
        CounterGroup::new(events.to_vec(), 8).unwrap()
    }

    #[test]
    fn quiet_measurement_is_exact_and_deterministic() {
        let mut pmu = quiet_pmu();
        let g = group(&[HpcEvent::Instructions, HpcEvent::Branches]);
        let run = |pmu: &mut SimulatedPmu| {
            pmu.measure(&g, &mut |p| {
                for i in 0..100u64 {
                    p.load(i * 64, 0x40);
                    p.branch(0x40, i % 2 == 0);
                }
                p.alu(500);
            })
            .unwrap()
        };
        let a = run(&mut pmu);
        let b = run(&mut pmu);
        assert_eq!(a.value(HpcEvent::Instructions), Some(700));
        assert_eq!(a.value(HpcEvent::Branches), Some(100));
        // Branch-predictor state legitimately stays warm across runs (as
        // on real hardware), so cycles may differ; retired counts must
        // not.
        assert_eq!(
            a.values(),
            b.values(),
            "cold-start + quiet noise → identical counts"
        );
    }

    #[test]
    fn noise_perturbs_counts() {
        let mut pmu = SimulatedPmu::new(SimPmuConfig::default(), 7).unwrap();
        let g = group(&[HpcEvent::Instructions]);
        let mut values = Vec::new();
        for _ in 0..10 {
            let m = pmu
                .measure(&g, &mut |p| {
                    for i in 0..50_000u64 {
                        p.load((i % 512) * 64, 0x40);
                    }
                })
                .unwrap();
            values.push(m.value(HpcEvent::Instructions).unwrap());
        }
        let all_same = values.windows(2).all(|w| w[0] == w[1]);
        assert!(!all_same, "noise should disperse readings: {values:?}");
        assert_eq!(pmu.measurements_taken(), 10);
    }

    #[test]
    fn cold_start_policy_repeats_misses() {
        let mut pmu = quiet_pmu();
        let g = group(&[HpcEvent::CacheMisses]);
        let mut wl = |p: &mut dyn Probe| {
            for i in 0..64u64 {
                p.load(i * 64, 0x40);
            }
        };
        let a = pmu.measure(&g, &mut wl).unwrap();
        let b = pmu.measure(&g, &mut wl).unwrap();
        assert_eq!(
            a.value(HpcEvent::CacheMisses),
            b.value(HpcEvent::CacheMisses)
        );
        assert!(a.value(HpcEvent::CacheMisses).unwrap() > 0);
    }

    #[test]
    fn warm_policy_reduces_misses() {
        let mut pmu = SimulatedPmu::new(
            SimPmuConfig {
                noise: NoiseConfig::quiet(),
                warmup: WarmupPolicy::Warm,
                ..SimPmuConfig::default()
            },
            1,
        )
        .unwrap();
        let g = group(&[HpcEvent::CacheMisses]);
        let mut wl = |p: &mut dyn Probe| {
            for i in 0..64u64 {
                p.load(i * 64, 0x40);
            }
        };
        let cold = pmu.measure(&g, &mut wl).unwrap();
        let warm = pmu.measure(&g, &mut wl).unwrap();
        assert!(
            warm.value(HpcEvent::CacheMisses).unwrap() < cold.value(HpcEvent::CacheMisses).unwrap(),
            "second run should hit warm caches"
        );
    }

    #[test]
    fn multiplexed_group_scales_back() {
        let mut pmu = quiet_pmu();
        // 12 events on a 4-counter budget.
        let g = CounterGroup::new(HpcEvent::ALL.to_vec(), 4).unwrap();
        let m = pmu
            .measure(&g, &mut |p| {
                p.alu(30_000);
            })
            .unwrap();
        let insns = m.value(HpcEvent::Instructions).unwrap();
        assert!(
            (insns as i64 - 30_000).abs() <= 30,
            "scaling should approximately recover the total: {insns}"
        );
        assert!(m.readings.iter().all(|r| r.was_multiplexed()));
    }

    #[test]
    fn measure_layers_segments_the_stream() {
        let mut pmu = quiet_pmu();
        let windows = pmu.measure_layers(&mut |p| {
            p.alu(100);
            p.layer_boundary(1);
            for i in 0..50u64 {
                p.load(i * 64, 0x40);
            }
            p.layer_boundary(2);
            p.alu(25);
        });
        assert_eq!(windows.len(), 3, "k boundaries => k + 1 windows");
        assert_eq!(windows[0].instructions, 100);
        assert_eq!(windows[0].loads, 0);
        assert_eq!(windows[1].loads, 50);
        assert_eq!(windows[2].instructions, 25);
    }

    #[test]
    fn measure_layers_without_boundaries_is_one_whole_window() {
        let g = group(&[HpcEvent::Instructions, HpcEvent::Branches]);
        let mut wl = |p: &mut dyn Probe| {
            for i in 0..100u64 {
                p.load(i * 64, 0x40);
                p.branch(0x40, i % 2 == 0);
            }
            p.alu(500);
        };
        let whole = quiet_pmu().measure(&g, &mut wl).unwrap();
        let windows = quiet_pmu().measure_layers(&mut wl);
        assert_eq!(windows.len(), 1);
        assert_eq!(
            Some(windows[0].instructions),
            whole.value(HpcEvent::Instructions)
        );
        assert_eq!(Some(windows[0].branches), whole.value(HpcEvent::Branches));
    }

    #[test]
    fn window_tracks_cycles() {
        let mut pmu = quiet_pmu();
        let g = group(&[HpcEvent::Cycles]);
        let small = pmu.measure(&g, &mut |p| p.alu(1_000)).unwrap();
        let large = pmu.measure(&g, &mut |p| p.alu(1_000_000)).unwrap();
        assert!(large.window_ns > small.window_ns * 100);
    }
}
