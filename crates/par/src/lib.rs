//! # scnn-par
//!
//! A zero-dependency scoped worker pool for the `scnn` workspace.
//!
//! The paper's evaluator protocol is embarrassingly parallel: each input
//! category's HPC campaign is independent, every cell of the pairwise
//! t-test matrix is independent, and every sample gradient of a training
//! minibatch is independent. This crate provides the one execution
//! primitive those layers share — [`Pool::par_map`] — built on
//! [`std::thread::scope`] with a fixed-size work deque, so the hermetic
//! build stays free of external crates.
//!
//! # Determinism contract
//!
//! `par_map` returns results **in item order**, whatever the thread
//! count, and [`Threads::Count(1)`] (or a single-item input) runs the
//! closure on the caller's thread with no pool machinery at all. Callers
//! keep bit-identical output across thread counts by making each item's
//! work self-contained (own RNG stream, own scratch state) and doing any
//! floating-point reduction over the *ordered* result vector.
//!
//! # Examples
//!
//! ```
//! use scnn_par::{Pool, Threads};
//!
//! let pool = Pool::new(Threads::Count(4));
//! let squares = pool.par_map((0..8u64).collect(), |x| x * x);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```

#![warn(missing_docs)]

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, PoisonError};

/// How many worker threads a parallel stage may use.
///
/// The default is [`Threads::Auto`], which resolves to the machine's
/// available parallelism. `Threads::Count(1)` requests exact sequential
/// execution on the caller's thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Threads {
    /// Use [`std::thread::available_parallelism`] (falling back to 1 when
    /// the OS cannot report it).
    #[default]
    Auto,
    /// Use exactly this many workers; `0` is normalised to `1`.
    Count(usize),
}

impl Threads {
    /// The resolved worker count (always ≥ 1).
    pub fn get(self) -> usize {
        match self {
            Threads::Auto => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            Threads::Count(n) => n.max(1),
        }
    }

    /// True when this setting resolves to a single worker.
    pub fn is_sequential(self) -> bool {
        self.get() == 1
    }
}

impl From<usize> for Threads {
    /// `0` maps to [`Threads::Auto`]; anything else to that exact count.
    fn from(n: usize) -> Self {
        if n == 0 {
            Threads::Auto
        } else {
            Threads::Count(n)
        }
    }
}

impl std::str::FromStr for Threads {
    type Err = String;

    /// Parses `"auto"` or a worker count (`"0"` also meaning auto).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.eq_ignore_ascii_case("auto") {
            return Ok(Threads::Auto);
        }
        s.parse::<usize>()
            .map(Threads::from)
            .map_err(|_| format!("invalid thread count {s:?} (expected a number or \"auto\")"))
    }
}

impl std::fmt::Display for Threads {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Threads::Auto => write!(f, "auto"),
            Threads::Count(n) => write!(f, "{n}"),
        }
    }
}

/// A scoped worker pool.
///
/// The pool is a configuration object, not a set of live threads: each
/// [`Pool::par_map`]/[`Pool::par_for_each`] call opens one
/// [`std::thread::scope`], drains a fixed-size deque of jobs, and joins
/// every worker before returning. A panic in any job propagates to the
/// caller after all workers have stopped, so no thread outlives the call
/// even on the unwind path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Pool {
    threads: Threads,
    /// Job-count floor below which the pool runs sequentially even with
    /// multiple workers configured; `0` (the default) never bypasses.
    min_jobs: usize,
}

/// Locks `m`, treating a poisoned mutex as still usable: jobs run outside
/// the critical sections, so a panicking job cannot leave the shared
/// queue or result slots in a torn state.
fn lock_ignore_poison<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Pool {
    /// Creates a pool with the given thread setting.
    pub fn new(threads: Threads) -> Self {
        Pool {
            threads,
            min_jobs: 0,
        }
    }

    /// Runs sequentially whenever a call has fewer than `min_jobs` items.
    ///
    /// Spinning up a [`std::thread::scope`] costs hundreds of
    /// microseconds; for a handful of cheap jobs that overhead dwarfs the
    /// work (the evaluator's small t-test matrices ran 6× *slower*
    /// parallel than sequential). The bypass cannot change results — the
    /// sequential path is the same closure over the same ordered items —
    /// so the bit-identical contract holds by construction.
    pub fn with_min_jobs(mut self, min_jobs: usize) -> Self {
        self.min_jobs = min_jobs;
        self
    }

    /// The resolved worker count this pool will use.
    pub fn workers(&self) -> usize {
        self.threads.get()
    }

    /// Applies `f` to every item, returning the results **in item
    /// order**.
    ///
    /// With a single worker (or a single item) the closure runs on the
    /// calling thread — exact sequential behaviour. Otherwise workers
    /// pull `(index, item)` jobs off a shared deque and write each result
    /// into its slot, so scheduling order never affects output order.
    ///
    /// # Panics
    ///
    /// Re-raises the panic of any job after all workers have joined.
    pub fn par_map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        let n = items.len();
        // Telemetry is observation-only: counters and the queue-occupancy
        // histogram never influence scheduling, and results are still
        // assembled in item order, so output stays bit-identical whether
        // a recorder is installed or not.
        scnn_obs::counter_add("par.tasks", n as u64);
        let workers = self.workers().min(n);
        if workers <= 1 || n < self.min_jobs {
            if workers > 1 {
                // Only count bypasses where the pool *would* have run.
                scnn_obs::counter_add("par.seq_bypass", 1);
            }
            return items.into_iter().map(f).collect();
        }
        scnn_obs::counter_add("par.pool_runs", 1);

        let queue: Mutex<VecDeque<(usize, T)>> =
            Mutex::new(items.into_iter().enumerate().collect());
        let slots: Mutex<Vec<Option<R>>> = Mutex::new((0..n).map(|_| None).collect());
        let observing = scnn_obs::enabled();

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let (job, remaining) = {
                        let mut queue = lock_ignore_poison(&queue);
                        let job = queue.pop_front();
                        (job, queue.len())
                    };
                    let Some((index, item)) = job else { break };
                    if observing {
                        scnn_obs::counter_add("par.dispatches", 1);
                        scnn_obs::histogram_record("par.queue_occupancy", remaining as f64);
                    }
                    let result = f(item);
                    lock_ignore_poison(&slots)[index] = Some(result);
                });
            }
        });

        slots
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
            .into_iter()
            .map(|slot| slot.expect("every job filled its slot"))
            .collect()
    }

    /// Applies `f` to every item for its side effects only.
    ///
    /// Same scheduling and panic semantics as [`Pool::par_map`].
    pub fn par_for_each<T, F>(&self, items: Vec<T>, f: F)
    where
        T: Send,
        F: Fn(T) + Sync,
    {
        self.par_map(items, f);
    }

    /// Streams jobs from `source` through a bounded worker fleet,
    /// calling `done` once per completed job — the long-running-service
    /// primitive behind `repro serve`.
    ///
    /// Unlike [`Pool::par_map`], the job set is not known up front and
    /// there is no barrier: the calling thread keeps pulling from
    /// `source` (typically a blocking reader over stdin or a socket)
    /// and enqueueing, while workers drain the queue concurrently. When
    /// `source` returns `None` the queue is closed, the workers finish
    /// whatever remains, and the call returns. Every job is delivered
    /// to exactly one worker and `done` fires exactly once per job —
    /// the zero-lost / zero-duplicated accounting is returned in
    /// [`StreamStats`] and pinned by tests.
    ///
    /// `done` runs on whichever worker finished the job, in completion
    /// order, concurrently with other workers' `done` calls — callers
    /// that need exclusive access to a sink must synchronise it (a
    /// `Mutex<impl Write>` suffices). With a single resolved worker the
    /// whole stream runs on the calling thread: read one, work one,
    /// done one — exact sequential behaviour, deterministic output
    /// order.
    ///
    /// Telemetry: `par.stream_jobs` counts submissions and the
    /// `par.stream_depth` histogram records the queue depth observed at
    /// each enqueue (the service's queue-depth signal).
    ///
    /// # Panics
    ///
    /// A panicking job or `done` unwinds through the scope join and
    /// poisons the whole stream, like [`Pool::par_map`]. Long-running
    /// services should catch panics inside `work` and turn them into
    /// error results instead.
    pub fn stream<T, R, F, D>(
        &self,
        mut source: impl FnMut() -> Option<T>,
        work: F,
        done: D,
    ) -> StreamStats
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
        D: Fn(R) + Sync,
    {
        let workers = self.workers();
        if workers <= 1 {
            let mut stats = StreamStats::default();
            while let Some(item) = source() {
                scnn_obs::counter_add("par.stream_jobs", 1);
                stats.submitted += 1;
                done(work(item));
                stats.completed += 1;
            }
            return stats;
        }

        struct Shared<T> {
            queue: VecDeque<T>,
            closed: bool,
            max_depth: usize,
        }
        let shared = Mutex::new(Shared::<T> {
            queue: VecDeque::new(),
            closed: false,
            max_depth: 0,
        });
        let ready = Condvar::new();
        let completed = AtomicU64::new(0);
        let mut submitted = 0u64;

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let item = {
                        let mut guard = lock_ignore_poison(&shared);
                        loop {
                            if let Some(item) = guard.queue.pop_front() {
                                break Some(item);
                            }
                            if guard.closed {
                                break None;
                            }
                            guard = ready.wait(guard).unwrap_or_else(PoisonError::into_inner);
                        }
                    };
                    let Some(item) = item else { break };
                    done(work(item));
                    completed.fetch_add(1, Ordering::Relaxed);
                });
            }

            while let Some(item) = source() {
                scnn_obs::counter_add("par.stream_jobs", 1);
                submitted += 1;
                let depth = {
                    let mut guard = lock_ignore_poison(&shared);
                    guard.queue.push_back(item);
                    guard.max_depth = guard.max_depth.max(guard.queue.len());
                    guard.queue.len()
                };
                scnn_obs::histogram_record("par.stream_depth", depth as f64);
                ready.notify_one();
            }
            lock_ignore_poison(&shared).closed = true;
            ready.notify_all();
        });

        StreamStats {
            submitted,
            completed: completed.load(Ordering::Relaxed),
            max_queue_depth: shared
                .into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                .max_depth,
        }
    }
}

/// Accounting from one [`Pool::stream`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Jobs pulled from the source and enqueued.
    pub submitted: u64,
    /// Jobs a worker finished (`done` invocations). Equal to
    /// `submitted` on every non-panicking run — zero lost, zero
    /// duplicated.
    pub completed: u64,
    /// Highest queue depth observed at any enqueue (0 when every job
    /// was picked up before the next arrived, or on the sequential
    /// path).
    pub max_queue_depth: usize,
}

/// One-shot convenience: [`Pool::par_map`] without naming a pool.
pub fn par_map<T, R, F>(threads: Threads, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    Pool::new(threads).par_map(items, f)
}

/// One-shot convenience: [`Pool::par_for_each`] without naming a pool.
pub fn par_for_each<T, F>(threads: Threads, items: Vec<T>, f: F)
where
    T: Send,
    F: Fn(T) + Sync,
{
    Pool::new(threads).par_for_each(items, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_are_in_item_order() {
        for threads in [Threads::Count(1), Threads::Count(2), Threads::Count(7)] {
            let pool = Pool::new(threads);
            let out = pool.par_map((0..100usize).collect(), |x| x * 3);
            assert_eq!(
                out,
                (0..100).map(|x| x * 3).collect::<Vec<_>>(),
                "{threads}"
            );
        }
    }

    #[test]
    fn single_worker_matches_parallel_exactly() {
        // Same float work, different thread counts: bit-identical output.
        let work = |x: usize| ((x as f64).sqrt() + 1.0).ln();
        let seq = Pool::new(Threads::Count(1)).par_map((0..500).collect(), work);
        let par = Pool::new(Threads::Count(4)).par_map((0..500).collect(), work);
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let pool = Pool::new(Threads::Count(4));
        let empty: Vec<u32> = pool.par_map(Vec::new(), |x: u32| x);
        assert!(empty.is_empty());
        assert_eq!(pool.par_map(vec![9], |x| x + 1), vec![10]);
    }

    #[test]
    fn for_each_visits_every_item_once() {
        let hits = AtomicUsize::new(0);
        Pool::new(Threads::Count(3)).par_for_each((0..64).collect::<Vec<u32>>(), |_| {
            hits.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn threads_resolution() {
        assert_eq!(Threads::Count(3).get(), 3);
        assert_eq!(Threads::Count(0).get(), 1, "0 normalises to 1");
        assert!(Threads::Auto.get() >= 1);
        assert!(Threads::Count(1).is_sequential());
        assert_eq!(Threads::from(0), Threads::Auto);
        assert_eq!(Threads::from(5), Threads::Count(5));
        assert_eq!("auto".parse::<Threads>().unwrap(), Threads::Auto);
        assert_eq!("6".parse::<Threads>().unwrap(), Threads::Count(6));
        assert!("six".parse::<Threads>().is_err());
        assert_eq!(Threads::Count(2).to_string(), "2");
        assert_eq!(Threads::Auto.to_string(), "auto");
    }

    #[test]
    fn min_jobs_bypass_is_sequential_and_identical() {
        let work = |x: usize| ((x as f64) * 0.5).sin();
        let plain = Pool::new(Threads::Count(4));
        let bypassing = plain.with_min_jobs(64);

        // 32 < 64: every job runs on the caller's thread — observable
        // directly via thread ids, with no reliance on the global
        // recorder (other tests share it concurrently).
        let caller = std::thread::current().id();
        let small = bypassing.par_map((0..32).collect(), |x| {
            assert_eq!(std::thread::current().id(), caller, "bypass must not spawn");
            work(x)
        });

        // 64 >= 64: the pool engages again (some job lands off-thread).
        let off_thread = std::sync::atomic::AtomicBool::new(false);
        let large = bypassing.par_map((0..64).collect(), |x| {
            if std::thread::current().id() != caller {
                off_thread.store(true, Ordering::SeqCst);
            }
            work(x)
        });
        assert!(
            off_thread.load(Ordering::SeqCst),
            "pool should re-engage at min_jobs"
        );

        // Either way, results match the plain pool bit-for-bit.
        assert_eq!(small, plain.par_map((0..32).collect(), work));
        assert_eq!(large, plain.par_map((0..64).collect(), work));
    }

    #[test]
    fn panic_in_worker_propagates_and_pool_survives() {
        let pool = Pool::new(Threads::Count(4));
        let result = std::panic::catch_unwind(|| {
            pool.par_map((0..32usize).collect(), |x| {
                if x == 17 {
                    panic!("job 17 exploded");
                }
                x
            })
        });
        assert!(result.is_err(), "worker panic must reach the caller");
        // The scope joined every worker on the way out; the pool value is
        // reusable for the next call.
        let out = pool.par_map((0..8usize).collect(), |x| x + 1);
        assert_eq!(out, (1..9).collect::<Vec<_>>());
    }

    #[test]
    fn panic_on_sequential_path_propagates_too() {
        let pool = Pool::new(Threads::Count(1));
        let result = std::panic::catch_unwind(|| pool.par_map(vec![0u8], |_| panic!("seq")));
        assert!(result.is_err());
    }

    #[test]
    fn pool_metrics_flow_to_an_installed_recorder() {
        // Other tests in this binary may run par_map concurrently and
        // also feed the global recorder, so assert lower bounds only.
        let recorder = std::sync::Arc::new(scnn_obs::Recorder::new());
        scnn_obs::install(recorder.clone());
        let out = Pool::new(Threads::Count(3)).par_map((0..16usize).collect(), |x| x + 1);
        scnn_obs::uninstall();
        assert_eq!(out, (1..17).collect::<Vec<_>>());
        let snap = recorder.snapshot();
        assert!(snap.counter("par.tasks").unwrap_or(0) >= 16);
        assert!(snap.counter("par.pool_runs").unwrap_or(0) >= 1);
        assert!(snap.counter("par.dispatches").unwrap_or(0) >= 16);
        let occupancy = snap.histogram("par.queue_occupancy").unwrap();
        assert!(occupancy.count >= 16);
        assert_eq!(occupancy.min, Some(0.0), "the last pop sees an empty queue");
    }

    #[test]
    fn stream_delivers_every_job_exactly_once() {
        for threads in [Threads::Count(1), Threads::Count(3), Threads::Count(8)] {
            let total = 5_000usize;
            let mut next = 0usize;
            let seen = Mutex::new(vec![0u32; total]);
            let stats = Pool::new(threads).stream(
                || {
                    let i = next;
                    next += 1;
                    (i < total).then_some(i)
                },
                |i| i,
                |i| lock_ignore_poison(&seen)[i] += 1,
            );
            assert_eq!(stats.submitted, total as u64, "{threads}");
            assert_eq!(stats.completed, total as u64, "zero lost ({threads})");
            let seen = seen.into_inner().unwrap();
            assert!(
                seen.iter().all(|&n| n == 1),
                "zero duplicated ({threads}): {:?}",
                seen.iter()
                    .enumerate()
                    .filter(|(_, &n)| n != 1)
                    .take(5)
                    .collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn stream_single_worker_is_sequential_and_ordered() {
        let caller = std::thread::current().id();
        let mut next = 0usize;
        let order = Mutex::new(Vec::new());
        let stats = Pool::new(Threads::Count(1)).stream(
            || {
                let i = next;
                next += 1;
                (i < 64).then_some(i)
            },
            |i| {
                assert_eq!(std::thread::current().id(), caller, "no pool machinery");
                i * 2
            },
            |r| lock_ignore_poison(&order).push(r),
        );
        assert_eq!(stats.submitted, 64);
        assert_eq!(stats.completed, 64);
        assert_eq!(stats.max_queue_depth, 0, "sequential path never queues");
        assert_eq!(
            order.into_inner().unwrap(),
            (0..64).map(|i| i * 2).collect::<Vec<_>>(),
            "single-worker completion order is submission order"
        );
    }

    #[test]
    fn stream_overlaps_reading_and_working() {
        // A slow consumer-side job mix: the source produces a burst, the
        // workers drain it; the queue must actually be exercised.
        let total = 256usize;
        let mut next = 0usize;
        let sum = AtomicU64::new(0);
        let stats = Pool::new(Threads::Count(4)).stream(
            || {
                let i = next;
                next += 1;
                (i < total).then_some(i as u64)
            },
            |i| i + 1,
            |r| {
                sum.fetch_add(r, Ordering::Relaxed);
            },
        );
        assert_eq!(stats.completed, total as u64);
        assert_eq!(
            sum.load(Ordering::Relaxed),
            (1..=total as u64).sum::<u64>(),
            "every result accounted for exactly once"
        );
    }

    #[test]
    fn stream_empty_source_returns_immediately() {
        let stats = Pool::new(Threads::Count(4)).stream(|| None::<u8>, |x| x, |_| {});
        assert_eq!(stats, StreamStats::default());
    }

    #[test]
    #[ignore = "stress test: run explicitly with `cargo test -- --ignored`"]
    fn stress_eight_workers() {
        let pool = Pool::new(Threads::Count(8));
        for round in 0..50 {
            let items: Vec<u64> = (0..10_000).collect();
            let out = pool.par_map(items, |x| x.wrapping_mul(0x9E37_79B9).rotate_left(13));
            let expected: Vec<u64> = (0..10_000)
                .map(|x: u64| x.wrapping_mul(0x9E37_79B9).rotate_left(13))
                .collect();
            assert_eq!(out, expected, "round {round}");
        }
    }
}
