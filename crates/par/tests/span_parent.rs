//! Pins span parentage across [`Pool`] dispatch boundaries.
//!
//! Parenthood in `scnn-obs` is a **per-thread** notion: a span opened on
//! a pool worker thread lands on that worker's thread-local stack with
//! no parent linkage back to whatever span the *dispatching* thread had
//! open (`crates/obs/src/span.rs`). The evaluation service's per-job
//! telemetry depends on this exact behaviour: a `service.job` span
//! opened inside the worker closure becomes the root of that job's span
//! tree (every pipeline span the job opens nests under it, same
//! thread), while the dispatcher's own spans never leak in as bogus
//! parents. This test pins both sides of that contract so a future
//! change to span parentage is a deliberate decision, not an accident.
//!
//! The whole contract lives in one test function on purpose: the
//! recorder installation is process-global, and integration tests in
//! one binary run on concurrent threads.

use scnn_par::{Pool, Threads};
use std::sync::Arc;

#[test]
fn pool_dispatched_spans_have_no_parent_linkage() {
    let recorder = Arc::new(scnn_obs::Recorder::new());
    scnn_obs::install(recorder.clone());

    // Parallel dispatch: an enclosing span on the caller, per-job spans
    // on the workers. Enough jobs that at least one runs off-thread.
    {
        let outer = scnn_obs::Span::enter("test.dispatch");
        Pool::new(Threads::Count(4)).par_map((0..16u64).collect(), |i| {
            let _job = scnn_obs::Span::enter_indexed("test.job", i);
            std::hint::black_box(i)
        });
        drop(outer);
    }

    // Sequential path for contrast: same closure, one worker, so the
    // jobs run on the caller's thread *inside* the outer span.
    {
        let outer = scnn_obs::Span::enter("test.seq-dispatch");
        Pool::new(Threads::Count(1)).par_map((0..4u64).collect(), |i| {
            let _job = scnn_obs::Span::enter_indexed("test.seq-job", i);
            std::hint::black_box(i)
        });
        drop(outer);
    }

    scnn_obs::uninstall();
    let snapshot = recorder.snapshot();
    let by_name =
        |name: &str| -> Vec<_> { snapshot.spans.iter().filter(|s| s.name == name).collect() };

    let dispatch = by_name("test.dispatch");
    assert_eq!(dispatch.len(), 1);
    let dispatcher_thread = dispatch[0].thread;

    let jobs = by_name("test.job");
    assert_eq!(jobs.len(), 16, "one span per dispatched job");
    for job in &jobs {
        // Pinned current behaviour: no cross-thread parent linkage. A
        // worker-side span is a root (parent None, depth 0) even though
        // `test.dispatch` was open on the dispatching thread.
        assert_eq!(
            job.parent, None,
            "pool-dispatched span must not inherit the dispatcher's span"
        );
        assert_eq!(job.depth, 0, "worker-side spans start a fresh stack");
    }
    assert!(
        jobs.iter().any(|j| j.thread != dispatcher_thread),
        "at least one job must have run on a worker thread"
    );

    // The sequential path keeps normal nesting: same thread, so the
    // outer span *is* the parent.
    let seq_dispatch = by_name("test.seq-dispatch");
    assert_eq!(seq_dispatch.len(), 1);
    let seq_jobs = by_name("test.seq-job");
    assert_eq!(seq_jobs.len(), 4);
    for job in &seq_jobs {
        assert_eq!(
            job.parent,
            Some(seq_dispatch[0].id),
            "sequential-path spans nest under the dispatcher's span"
        );
        assert_eq!(job.depth, 1);
        assert_eq!(job.thread, seq_dispatch[0].thread);
    }
}
