//! # scnn-obs
//!
//! Zero-dependency observability layer for the `scnn` workspace: spans,
//! counters, histograms and per-run series, collected by an installable
//! [`Recorder`] and exported as a [`TelemetrySnapshot`].
//!
//! The paper's evaluator is itself a measurement tool (`perf stat`
//! around every classification), but the pipeline that drives it —
//! dataset generation, training, collection, the t-test matrix — was a
//! black box. This crate is the substrate every layer shares:
//!
//! - [`Span`] — nested wall-clock timing (`Span::enter("collect.category")`),
//!   with parent tracking per thread;
//! - monotonic counters ([`counter_add`]) and log-bucketed histograms
//!   ([`histogram_record`]) in a lazily-populated registry;
//! - ordered series ([`series_push`]) for per-epoch training curves;
//! - a process-wide [`Recorder`] sink with an optional observer hook for
//!   live progress reporting.
//!
//! # Observation-only contract
//!
//! Telemetry must never influence what an experiment computes. All
//! instrumentation in the workspace follows two rules (see DESIGN.md
//! § Observability):
//!
//! 1. **No recorder, no work.** Every entry point checks [`enabled`]
//!    first (a single relaxed atomic load) and is a no-op when nothing
//!    is installed.
//! 2. **Nothing deterministic flows out.** Recorded data is wall-clock
//!    timing and occurrence counts; none of it feeds back into seeds,
//!    scheduling decisions or reported artefacts. The byte-identical
//!    output contract across `--threads` settings therefore holds with
//!    telemetry on or off.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//!
//! let recorder = Arc::new(scnn_obs::Recorder::new());
//! scnn_obs::install(recorder.clone());
//!
//! {
//!     let _run = scnn_obs::Span::enter("demo.run");
//!     let _step = scnn_obs::Span::enter("demo.step");
//!     scnn_obs::counter_add("demo.items", 3);
//! }
//!
//! scnn_obs::uninstall();
//! let snapshot = recorder.snapshot();
//! assert_eq!(snapshot.spans.len(), 2);
//! assert_eq!(snapshot.counters[0].value, 3);
//! ```

#![warn(missing_docs)]

mod metrics;
mod recorder;
mod span;

pub use metrics::{CounterSnapshot, HistogramSnapshot, SeriesSnapshot};
pub use recorder::{Recorder, SpanEvent, SpanPhase, TelemetrySnapshot};
pub use span::{Span, SpanRecord};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};

/// Fast-path switch: `true` iff a recorder is installed. Checked with a
/// relaxed load before any instrumentation does real work, so the
/// disabled cost of a span or counter is one atomic read.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// The installed recorder, if any.
static RECORDER: RwLock<Option<Arc<Recorder>>> = RwLock::new(None);

/// True when a [`Recorder`] is installed and instrumentation is live.
///
/// Instrumented code may also use this to gate *extra observation work*
/// (e.g. computing a per-epoch accuracy series) — but never work that
/// changes deterministic outputs.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Installs `recorder` as the process-wide telemetry sink, replacing any
/// previous one.
pub fn install(recorder: Arc<Recorder>) {
    let mut slot = RECORDER.write().unwrap_or_else(|e| e.into_inner());
    *slot = Some(recorder);
    ENABLED.store(true, Ordering::Relaxed);
}

/// Uninstalls the process-wide recorder, returning it if one was
/// installed. Spans already entered keep reporting to the recorder they
/// captured at entry.
pub fn uninstall() -> Option<Arc<Recorder>> {
    let mut slot = RECORDER.write().unwrap_or_else(|e| e.into_inner());
    ENABLED.store(false, Ordering::Relaxed);
    slot.take()
}

/// The installed recorder, if any.
pub fn recorder() -> Option<Arc<Recorder>> {
    if !enabled() {
        return None;
    }
    RECORDER
        .read()
        .unwrap_or_else(|e| e.into_inner())
        .as_ref()
        .cloned()
}

/// Adds `n` to the monotonic counter `name` (no-op when disabled).
pub fn counter_add(name: &'static str, n: u64) {
    if let Some(r) = recorder() {
        r.counter_add(name, n);
    }
}

/// Records `value` into the histogram `name` (no-op when disabled).
pub fn histogram_record(name: &'static str, value: f64) {
    if let Some(r) = recorder() {
        r.histogram_record(name, value);
    }
}

/// Appends the point `(x, y)` to the series `name` (no-op when
/// disabled). Points keep their append order in the snapshot.
pub fn series_push(name: &'static str, x: f64, y: f64) {
    if let Some(r) = recorder() {
        r.series_push(name, x, y);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// The recorder slot is process-global; tests that install one are
    /// serialized through this lock.
    static INSTALL_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_instrumentation_is_a_no_op() {
        let _guard = INSTALL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        uninstall();
        assert!(!enabled());
        assert!(recorder().is_none());
        // None of these may panic or allocate registry state anywhere.
        let _span = Span::enter("noop.span");
        counter_add("noop.counter", 1);
        histogram_record("noop.hist", 1.0);
        series_push("noop.series", 0.0, 1.0);
    }

    #[test]
    fn install_uninstall_roundtrip() {
        let _guard = INSTALL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let r = Arc::new(Recorder::new());
        install(r.clone());
        assert!(enabled());
        counter_add("roundtrip.counter", 2);
        counter_add("roundtrip.counter", 3);
        let back = uninstall().expect("recorder was installed");
        assert!(Arc::ptr_eq(&r, &back));
        assert!(!enabled());
        let snap = r.snapshot();
        let c = snap
            .counters
            .iter()
            .find(|c| c.name == "roundtrip.counter")
            .unwrap();
        assert_eq!(c.value, 5);
    }

    #[test]
    fn spans_nest_and_time() {
        let _guard = INSTALL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let r = Arc::new(Recorder::new());
        install(r.clone());
        {
            let _outer = Span::enter("nest.outer");
            let _inner = Span::enter_indexed("nest.inner", 7);
        }
        uninstall();
        let snap = r.snapshot();
        assert_eq!(snap.spans.len(), 2);
        let outer = snap.spans.iter().find(|s| s.name == "nest.outer").unwrap();
        let inner = snap.spans.iter().find(|s| s.name == "nest.inner").unwrap();
        assert_eq!(outer.parent, None);
        assert_eq!(outer.depth, 0);
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(inner.depth, 1);
        assert_eq!(inner.index, Some(7));
        // The inner span closed first and is contained in the outer one.
        assert!(inner.start_ns >= outer.start_ns);
        assert!(outer.duration_ns >= inner.duration_ns);
    }

    #[test]
    fn spans_on_worker_threads_record_their_thread() {
        let _guard = INSTALL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let r = Arc::new(Recorder::new());
        install(r.clone());
        let main_span = Span::enter("thread.main");
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let _s = Span::enter("thread.worker");
            });
        });
        drop(main_span);
        uninstall();
        let snap = r.snapshot();
        let main = snap.spans.iter().find(|s| s.name == "thread.main").unwrap();
        let worker = snap
            .spans
            .iter()
            .find(|s| s.name == "thread.worker")
            .unwrap();
        assert_ne!(main.thread, worker.thread);
        // Parenthood is tracked per thread: the worker's stack was empty.
        assert_eq!(worker.parent, None);
    }

    #[test]
    fn observer_sees_enter_and_exit() {
        let _guard = INSTALL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let events: Arc<Mutex<Vec<(String, SpanPhase, usize)>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = events.clone();
        let r = Arc::new(Recorder::with_observer(Box::new(move |e: &SpanEvent| {
            sink.lock()
                .unwrap()
                .push((e.name.to_owned(), e.phase, e.depth));
        })));
        install(r);
        {
            let _a = Span::enter("obs.a");
            let _b = Span::enter("obs.b");
        }
        uninstall();
        let events = events.lock().unwrap();
        assert_eq!(
            *events,
            vec![
                ("obs.a".to_owned(), SpanPhase::Enter, 0),
                ("obs.b".to_owned(), SpanPhase::Enter, 1),
                ("obs.b".to_owned(), SpanPhase::Exit, 1),
                ("obs.a".to_owned(), SpanPhase::Exit, 0),
            ]
        );
    }
}
