//! The metrics registry: monotonic counters, log-bucketed histograms and
//! append-ordered series, all lazily created on first touch.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Number of histogram buckets. Bucket `i` counts values `v` with
/// `2^(i - OFFSET - 1) < v <= 2^(i - OFFSET)`; bucket 0 additionally
/// absorbs every value `<= 2^-OFFSET` (including zero and negatives).
const BUCKETS: usize = 64;

/// Shift applied to the base-2 exponent so sub-unit values (seconds,
/// losses) still resolve: bucket 0 tops out at 2^-20 ≈ 1e-6.
const OFFSET: i32 = 20;

fn bucket_index(value: f64) -> usize {
    // Zero, negatives and NaN all land in the bottom bucket.
    if value.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
        return 0;
    }
    // `+inf` saturates through the cast and clamps to the top bucket.
    let exp = (value.log2().ceil() as i64).saturating_add(OFFSET as i64);
    exp.clamp(0, BUCKETS as i64 - 1) as usize
}

/// The inclusive upper bound of bucket `i`.
fn bucket_upper(i: usize) -> f64 {
    (2.0f64).powi(i as i32 - OFFSET)
}

fn lock_ignore_poison<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Mutable histogram state behind the registry lock.
#[derive(Debug)]
struct HistogramState {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    buckets: [u64; BUCKETS],
}

impl HistogramState {
    fn new() -> Self {
        HistogramState {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: [0; BUCKETS],
        }
    }

    fn record(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[bucket_index(value)] += 1;
    }
}

/// Snapshot of one monotonic counter.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterSnapshot {
    /// Dotted metric name (e.g. `collect.samples`).
    pub name: String,
    /// Current value. Counters only ever increase.
    pub value: u64,
}

/// Snapshot of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Dotted metric name (e.g. `par.queue_occupancy`).
    pub name: String,
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: f64,
    /// Smallest recorded value, `None` when empty.
    pub min: Option<f64>,
    /// Largest recorded value, `None` when empty.
    pub max: Option<f64>,
    /// Non-empty buckets as `(inclusive upper bound, count)`, in
    /// ascending bound order.
    pub buckets: Vec<(f64, u64)>,
}

impl HistogramSnapshot {
    /// Mean of the recorded values, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }
}

/// Snapshot of one series: `(x, y)` points in append order.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesSnapshot {
    /// Dotted metric name (e.g. `train.epoch_loss`).
    pub name: String,
    /// The points, in the order they were pushed.
    pub points: Vec<(f64, f64)>,
}

/// A named-metric map: each entry is created on first touch and shared
/// out as an `Arc` so recording never holds the map lock.
type MetricMap<T> = Mutex<BTreeMap<&'static str, Arc<T>>>;

/// The registry held by a [`Recorder`](crate::Recorder).
#[derive(Debug, Default)]
pub(crate) struct Registry {
    counters: MetricMap<AtomicU64>,
    histograms: MetricMap<Mutex<HistogramState>>,
    series: MetricMap<Mutex<Vec<(f64, f64)>>>,
}

impl Registry {
    pub(crate) fn counter_add(&self, name: &'static str, n: u64) {
        let counter = lock_ignore_poison(&self.counters)
            .entry(name)
            .or_default()
            .clone();
        counter.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn histogram_record(&self, name: &'static str, value: f64) {
        let hist = lock_ignore_poison(&self.histograms)
            .entry(name)
            .or_insert_with(|| Arc::new(Mutex::new(HistogramState::new())))
            .clone();
        lock_ignore_poison(&hist).record(value);
    }

    pub(crate) fn series_push(&self, name: &'static str, x: f64, y: f64) {
        let series = lock_ignore_poison(&self.series)
            .entry(name)
            .or_default()
            .clone();
        lock_ignore_poison(&series).push((x, y));
    }

    pub(crate) fn counter_snapshots(&self) -> Vec<CounterSnapshot> {
        lock_ignore_poison(&self.counters)
            .iter()
            .map(|(name, v)| CounterSnapshot {
                name: (*name).to_owned(),
                value: v.load(Ordering::Relaxed),
            })
            .collect()
    }

    pub(crate) fn histogram_snapshots(&self) -> Vec<HistogramSnapshot> {
        lock_ignore_poison(&self.histograms)
            .iter()
            .map(|(name, h)| {
                let h = lock_ignore_poison(h);
                HistogramSnapshot {
                    name: (*name).to_owned(),
                    count: h.count,
                    sum: h.sum,
                    min: (h.count > 0).then_some(h.min),
                    max: (h.count > 0).then_some(h.max),
                    buckets: h
                        .buckets
                        .iter()
                        .enumerate()
                        .filter(|(_, &c)| c > 0)
                        .map(|(i, &c)| (bucket_upper(i), c))
                        .collect(),
                }
            })
            .collect()
    }

    pub(crate) fn series_snapshots(&self) -> Vec<SeriesSnapshot> {
        lock_ignore_poison(&self.series)
            .iter()
            .map(|(name, s)| SeriesSnapshot {
                name: (*name).to_owned(),
                points: lock_ignore_poison(s).clone(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_sort_by_name() {
        let reg = Registry::default();
        reg.counter_add("b.second", 2);
        reg.counter_add("a.first", 1);
        reg.counter_add("b.second", 3);
        let snap = reg.counter_snapshots();
        assert_eq!(snap.len(), 2);
        assert_eq!((snap[0].name.as_str(), snap[0].value), ("a.first", 1));
        assert_eq!((snap[1].name.as_str(), snap[1].value), ("b.second", 5));
    }

    #[test]
    fn histogram_tracks_count_sum_min_max() {
        let reg = Registry::default();
        for v in [1.0, 4.0, 0.25, 1000.0] {
            reg.histogram_record("h", v);
        }
        let snap = &reg.histogram_snapshots()[0];
        assert_eq!(snap.count, 4);
        assert_eq!(snap.sum, 1005.25);
        assert_eq!(snap.min, Some(0.25));
        assert_eq!(snap.max, Some(1000.0));
        assert_eq!(snap.mean(), Some(1005.25 / 4.0));
        let total: u64 = snap.buckets.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 4, "every value lands in exactly one bucket");
        for w in snap.buckets.windows(2) {
            assert!(w[0].0 < w[1].0, "bucket bounds ascend");
        }
    }

    #[test]
    fn bucket_index_edges() {
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-3.0), 0);
        assert_eq!(bucket_index(f64::NAN), 0);
        assert_eq!(bucket_index(f64::INFINITY), BUCKETS - 1);
        // 1.0 has upper bound exactly 1.0.
        assert_eq!(bucket_upper(bucket_index(1.0)), 1.0);
        // Just above a bound falls into the next bucket.
        assert_eq!(bucket_index(1.01), bucket_index(1.0) + 1);
        assert!(bucket_index(1e300) < BUCKETS);
    }

    #[test]
    fn empty_histogram_has_no_extrema() {
        let reg = Registry::default();
        reg.histogram_record("h", f64::NAN);
        let snap = &reg.histogram_snapshots()[0];
        assert_eq!(snap.count, 1);
        // NaN min/max still "Some" since count > 0 — but a never-touched
        // histogram cannot exist in the registry at all.
        assert!(snap.min.is_some());
    }

    #[test]
    fn series_keeps_append_order() {
        let reg = Registry::default();
        reg.series_push("s", 2.0, 20.0);
        reg.series_push("s", 0.0, 0.5);
        let snap = &reg.series_snapshots()[0];
        assert_eq!(snap.points, vec![(2.0, 20.0), (0.0, 0.5)]);
    }
}
