//! The telemetry sink: spans + metrics registry + snapshot export.

use crate::metrics::{CounterSnapshot, HistogramSnapshot, Registry, SeriesSnapshot};
use crate::span::SpanRecord;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Whether a [`SpanEvent`] marks a span opening or closing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanPhase {
    /// The span was just entered.
    Enter,
    /// The span is closing; `duration` is set.
    Exit,
}

/// A live span notification delivered to a recorder's observer, e.g. to
/// print a per-phase progress line while a run is still going.
#[derive(Debug, Clone)]
pub struct SpanEvent {
    /// Span name.
    pub name: &'static str,
    /// Optional item index (category, epoch, …).
    pub index: Option<u64>,
    /// Nesting depth on the entering thread.
    pub depth: usize,
    /// Enter or exit.
    pub phase: SpanPhase,
    /// Wall-clock duration; set on [`SpanPhase::Exit`] only.
    pub duration: Option<Duration>,
}

type Observer = Box<dyn Fn(&SpanEvent) + Send + Sync>;

/// Collects spans and metrics for one run.
///
/// A recorder is shared behind an [`Arc`](std::sync::Arc): install it
/// with [`install`](crate::install), run the instrumented workload, then
/// [`uninstall`](crate::uninstall) and take a [`snapshot`](Recorder::snapshot).
pub struct Recorder {
    epoch: Instant,
    next_span: AtomicU64,
    spans: Mutex<Vec<SpanRecord>>,
    registry: Registry,
    observer: Option<Observer>,
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new()
    }
}

impl Recorder {
    /// Creates an empty recorder; its epoch (span timestamp zero) is now.
    pub fn new() -> Recorder {
        Recorder {
            epoch: Instant::now(),
            next_span: AtomicU64::new(1),
            spans: Mutex::new(Vec::new()),
            registry: Registry::default(),
            observer: None,
        }
    }

    /// Creates a recorder that additionally forwards every span
    /// enter/exit to `observer` (called synchronously on the
    /// instrumented thread — keep it cheap, write to stderr only).
    pub fn with_observer(observer: Observer) -> Recorder {
        Recorder {
            observer: Some(observer),
            ..Recorder::new()
        }
    }

    pub(crate) fn next_span_id(&self) -> u64 {
        self.next_span.fetch_add(1, Ordering::Relaxed)
    }

    pub(crate) fn nanos_since_epoch(&self, at: Instant) -> u64 {
        at.checked_duration_since(self.epoch)
            .unwrap_or_default()
            .as_nanos() as u64
    }

    pub(crate) fn record_span(&self, record: SpanRecord) {
        self.spans
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(record);
    }

    pub(crate) fn observe(&self, event: &SpanEvent) {
        if let Some(observer) = &self.observer {
            observer(event);
        }
    }

    /// Adds `n` to the monotonic counter `name`.
    pub fn counter_add(&self, name: &'static str, n: u64) {
        self.registry.counter_add(name, n);
    }

    /// Records `value` into the histogram `name`.
    pub fn histogram_record(&self, name: &'static str, value: f64) {
        self.registry.histogram_record(name, value);
    }

    /// Appends `(x, y)` to the series `name`.
    pub fn series_push(&self, name: &'static str, x: f64, y: f64) {
        self.registry.series_push(name, x, y);
    }

    /// Exports everything recorded so far. Spans are ordered by id
    /// (i.e. entry order); counters, histograms and series by name.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let mut spans = self
            .spans
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        spans.sort_by_key(|s| s.id);
        TelemetrySnapshot {
            version: TelemetrySnapshot::VERSION,
            spans,
            counters: self.registry.counter_snapshots(),
            histograms: self.registry.histogram_snapshots(),
            series: self.registry.series_snapshots(),
        }
    }
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field(
                "spans",
                &self
                    .spans
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .len(),
            )
            .field("observer", &self.observer.is_some())
            .finish_non_exhaustive()
    }
}

/// Everything one recorder collected, ready for serialization.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetrySnapshot {
    /// Snapshot format version ([`TelemetrySnapshot::VERSION`]).
    pub version: u32,
    /// Completed spans in entry order.
    pub spans: Vec<SpanRecord>,
    /// Counters, sorted by name.
    pub counters: Vec<CounterSnapshot>,
    /// Histograms, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
    /// Series, sorted by name.
    pub series: Vec<SeriesSnapshot>,
}

impl TelemetrySnapshot {
    /// Current snapshot format version.
    pub const VERSION: u32 = 1;

    /// All spans with the given name, in entry order.
    pub fn spans_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a SpanRecord> {
        self.spans.iter().filter(move |s| s.name == name)
    }

    /// The value of counter `name`, if it was ever touched.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// The histogram `name`, if it was ever touched.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// The series `name`, if it was ever touched.
    pub fn series(&self, name: &str) -> Option<&SeriesSnapshot> {
        self.series.iter().find(|s| s.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_of_fresh_recorder_is_empty() {
        let snap = Recorder::new().snapshot();
        assert_eq!(snap.version, TelemetrySnapshot::VERSION);
        assert!(snap.spans.is_empty());
        assert!(snap.counters.is_empty());
        assert!(snap.histograms.is_empty());
        assert!(snap.series.is_empty());
    }

    #[test]
    fn direct_metric_recording_without_install() {
        // A recorder is usable stand-alone (e.g. in tests) without being
        // installed globally.
        let r = Recorder::new();
        r.counter_add("direct.counter", 4);
        r.histogram_record("direct.hist", 2.5);
        r.series_push("direct.series", 0.0, 1.0);
        let snap = r.snapshot();
        assert_eq!(snap.counter("direct.counter"), Some(4));
        assert_eq!(snap.histogram("direct.hist").unwrap().count, 1);
        assert_eq!(snap.series("direct.series").unwrap().points.len(), 1);
        assert_eq!(snap.counter("never.touched"), None);
        assert!(snap.histogram("never.touched").is_none());
        assert!(snap.series("never.touched").is_none());
    }

    #[test]
    fn span_ids_are_unique_and_increasing() {
        let r = Recorder::new();
        let a = r.next_span_id();
        let b = r.next_span_id();
        assert!(b > a);
        assert!(a >= 1);
    }
}
