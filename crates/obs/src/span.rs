//! Nested wall-clock spans with per-thread parent tracking.

use crate::recorder::{Recorder, SpanEvent, SpanPhase};
use std::cell::{Cell, RefCell};
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

thread_local! {
    /// Stack of currently-open span ids on this thread. Parenthood is a
    /// per-thread notion: a span opened on a worker thread has no parent
    /// unless the worker itself opened an enclosing span.
    ///
    /// This is a deliberate contract, pinned by
    /// `crates/par/tests/span_parent.rs`: a span opened inside a
    /// pool-dispatched job (`scnn_par::Pool::par_map` / `stream`) is a
    /// *root* (parent `None`, depth 0) — it does **not** link to
    /// whatever span the dispatching thread had open, because carrying
    /// cross-thread context would require channeling an ambient parent
    /// id through the pool and reintroduce exactly the kind of shared
    /// mutable state the determinism contract bans. Consumers that need
    /// per-job trees (the evaluation service's per-job telemetry) open
    /// one span at the top of the worker closure; everything the job
    /// does then nests under it on that worker's stack. The
    /// dispatching-side span still brackets the whole dispatch in wall
    /// time, so attribution is recoverable by interval containment even
    /// without explicit linkage.
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };

    /// Small dense id for the current thread, assigned on first use.
    static THREAD_INDEX: Cell<Option<u64>> = const { Cell::new(None) };
}

static NEXT_THREAD_INDEX: AtomicU64 = AtomicU64::new(0);

fn thread_index() -> u64 {
    THREAD_INDEX.with(|slot| match slot.get() {
        Some(i) => i,
        None => {
            let i = NEXT_THREAD_INDEX.fetch_add(1, Ordering::Relaxed);
            slot.set(Some(i));
            i
        }
    })
}

/// One completed span, as stored in a
/// [`TelemetrySnapshot`](crate::TelemetrySnapshot).
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Unique id within the recorder (assigned at entry, starting at 1).
    pub id: u64,
    /// Id of the span that was open on the same thread at entry, if any.
    pub parent: Option<u64>,
    /// Dotted span name (e.g. `pipeline.train`).
    pub name: &'static str,
    /// Optional item index (category, epoch, …) distinguishing repeated
    /// spans of the same name.
    pub index: Option<u64>,
    /// Dense id of the thread the span ran on.
    pub thread: u64,
    /// Nesting depth at entry (0 = no enclosing span on this thread).
    pub depth: usize,
    /// Entry time in nanoseconds since the recorder's epoch.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub duration_ns: u64,
}

struct ActiveSpan {
    recorder: Arc<Recorder>,
    id: u64,
    parent: Option<u64>,
    name: &'static str,
    index: Option<u64>,
    depth: usize,
    start: Instant,
}

/// An RAII timing scope. Entering returns a guard; dropping it records
/// the completed [`SpanRecord`] into the installed [`Recorder`].
///
/// When no recorder is installed the guard is inert — entry costs one
/// relaxed atomic load and drop is free. The guard is `!Send`: a span
/// must end on the thread that started it, because parenthood is
/// tracked in thread-local state.
#[must_use = "a span measures the scope it is bound to; dropping it immediately records nothing useful"]
pub struct Span {
    active: Option<ActiveSpan>,
    /// Opts out of `Send`/`Sync`: the thread-local span stack must see
    /// entry and exit on the same thread.
    _not_send: PhantomData<*const ()>,
}

impl Span {
    /// Opens a span named `name` on the current thread.
    pub fn enter(name: &'static str) -> Span {
        Span::enter_inner(name, None)
    }

    /// Opens a span named `name` carrying an item index (category,
    /// epoch, …).
    pub fn enter_indexed(name: &'static str, index: u64) -> Span {
        Span::enter_inner(name, Some(index))
    }

    fn enter_inner(name: &'static str, index: Option<u64>) -> Span {
        let Some(recorder) = crate::recorder() else {
            return Span {
                active: None,
                _not_send: PhantomData,
            };
        };
        let id = recorder.next_span_id();
        let (parent, depth) = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let parent = stack.last().copied();
            let depth = stack.len();
            stack.push(id);
            (parent, depth)
        });
        recorder.observe(&SpanEvent {
            name,
            index,
            depth,
            phase: SpanPhase::Enter,
            duration: None,
        });
        Span {
            active: Some(ActiveSpan {
                recorder,
                id,
                parent,
                name,
                index,
                depth,
                start: Instant::now(),
            }),
            _not_send: PhantomData,
        }
    }

    /// True when this span is actually recording (a recorder was
    /// installed at entry).
    pub fn is_recording(&self) -> bool {
        self.active.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else {
            return;
        };
        let duration = active.start.elapsed();
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Spans are strictly nested per thread, so the top of the
            // stack is this span. Be lenient anyway: remove by id so a
            // logic error upstream cannot corrupt unrelated spans.
            if stack.last() == Some(&active.id) {
                stack.pop();
            } else if let Some(pos) = stack.iter().rposition(|&id| id == active.id) {
                stack.remove(pos);
            }
        });
        active.recorder.record_span(SpanRecord {
            id: active.id,
            parent: active.parent,
            name: active.name,
            index: active.index,
            thread: thread_index(),
            depth: active.depth,
            start_ns: active.recorder.nanos_since_epoch(active.start),
            duration_ns: duration.as_nanos() as u64,
        });
        active.recorder.observe(&SpanEvent {
            name: active.name,
            index: active.index,
            depth: active.depth,
            phase: SpanPhase::Exit,
            duration: Some(duration),
        });
    }
}

impl std::fmt::Debug for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.active {
            Some(a) => f
                .debug_struct("Span")
                .field("name", &a.name)
                .field("id", &a.id)
                .field("depth", &a.depth)
                .finish_non_exhaustive(),
            None => f.debug_struct("Span").field("recording", &false).finish(),
        }
    }
}
