//! One error type for the whole crate surface.
//!
//! Every module keeps its own precise error enum ([`CollectError`],
//! [`EvaluateError`], [`AttackError`], [`ExperimentError`], …) so
//! library callers can match on exactly what failed. [`Error`] is the
//! ergonomic top: anything the crate (or the datasets underneath it)
//! can raise converts into it with `?`, and [`source`] chains all the
//! way down, so binaries and examples can return `scnn_core::Result<()>`
//! instead of `Box<dyn Error>`.
//!
//! [`source`]: std::error::Error::source

use crate::attack::AttackError;
use crate::collect::CollectError;
use crate::evaluator::EvaluateError;
use crate::json::JsonParseError;
use crate::pipeline::ExperimentError;
use scnn_data::DatasetError;
use scnn_hpc::{GroupError, PmuError};
use scnn_nn::spec::DecodeError;
use scnn_nn::NnError;
use std::fmt;

/// Any failure the scnn stack can produce, in one enum.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// An end-to-end experiment failed (dataset → train → collect →
    /// evaluate).
    Experiment(ExperimentError),
    /// An HPC collection campaign failed.
    Collect(CollectError),
    /// The leakage evaluator rejected its observations.
    Evaluate(EvaluateError),
    /// The profiling attack could not be mounted.
    Attack(AttackError),
    /// Dataset construction or manipulation failed.
    Dataset(DatasetError),
    /// Network construction, training or inference failed.
    Nn(NnError),
    /// A serialized model could not be decoded.
    Decode(DecodeError),
    /// The performance-counter backend failed.
    Pmu(PmuError),
    /// A counter group could not be assembled.
    Group(GroupError),
    /// A JSON document (e.g. a telemetry file) did not parse.
    Json(JsonParseError),
    /// An I/O operation failed, with the path involved when known.
    Io {
        /// The path being read or written, if any.
        path: Option<String>,
        /// The underlying error.
        source: std::io::Error,
    },
    /// Anything else, described in prose (CLI misuse, invalid
    /// configuration, …).
    Msg(String),
}

/// Crate-wide result alias over [`Error`].
pub type Result<T> = std::result::Result<T, Error>;

impl Error {
    /// A freeform error from a message.
    pub fn msg(message: impl Into<String>) -> Self {
        Error::Msg(message.into())
    }

    /// An I/O error annotated with the path it happened on.
    pub fn io(path: impl Into<String>, source: std::io::Error) -> Self {
        Error::Io {
            path: Some(path.into()),
            source,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Experiment(e) => write!(f, "experiment failed: {e}"),
            Error::Collect(e) => write!(f, "collection failed: {e}"),
            Error::Evaluate(e) => write!(f, "evaluation failed: {e}"),
            Error::Attack(e) => write!(f, "attack failed: {e}"),
            Error::Dataset(e) => write!(f, "dataset error: {e}"),
            Error::Nn(e) => write!(f, "network error: {e}"),
            Error::Decode(e) => write!(f, "model decode error: {e}"),
            Error::Pmu(e) => write!(f, "pmu error: {e}"),
            Error::Group(e) => write!(f, "counter-group error: {e}"),
            Error::Json(e) => write!(f, "json error: {e}"),
            Error::Io {
                path: Some(path),
                source,
            } => write!(f, "io error on {path}: {source}"),
            Error::Io { path: None, source } => write!(f, "io error: {source}"),
            Error::Msg(msg) => f.write_str(msg),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Experiment(e) => Some(e),
            Error::Collect(e) => Some(e),
            Error::Evaluate(e) => Some(e),
            Error::Attack(e) => Some(e),
            Error::Dataset(e) => Some(e),
            Error::Nn(e) => Some(e),
            Error::Decode(e) => Some(e),
            Error::Pmu(e) => Some(e),
            Error::Group(e) => Some(e),
            Error::Json(e) => Some(e),
            Error::Io { source, .. } => Some(source),
            Error::Msg(_) => None,
        }
    }
}

impl From<ExperimentError> for Error {
    fn from(e: ExperimentError) -> Self {
        Error::Experiment(e)
    }
}
impl From<CollectError> for Error {
    fn from(e: CollectError) -> Self {
        Error::Collect(e)
    }
}
impl From<EvaluateError> for Error {
    fn from(e: EvaluateError) -> Self {
        Error::Evaluate(e)
    }
}
impl From<AttackError> for Error {
    fn from(e: AttackError) -> Self {
        Error::Attack(e)
    }
}
impl From<DatasetError> for Error {
    fn from(e: DatasetError) -> Self {
        Error::Dataset(e)
    }
}
impl From<NnError> for Error {
    fn from(e: NnError) -> Self {
        Error::Nn(e)
    }
}
impl From<DecodeError> for Error {
    fn from(e: DecodeError) -> Self {
        Error::Decode(e)
    }
}
impl From<PmuError> for Error {
    fn from(e: PmuError) -> Self {
        Error::Pmu(e)
    }
}
impl From<GroupError> for Error {
    fn from(e: GroupError) -> Self {
        Error::Group(e)
    }
}
impl From<JsonParseError> for Error {
    fn from(e: JsonParseError) -> Self {
        Error::Json(e)
    }
}
impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io {
            path: None,
            source: e,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn every_module_error_converts_and_chains() {
        let e: Error = EvaluateError::TooFewCategories { got: 1 }.into();
        assert!(e.to_string().contains("evaluation failed"));
        assert!(e.source().is_some(), "source chain preserved");

        let e: Error = ExperimentError::Evaluate(EvaluateError::TooFewCategories { got: 1 }).into();
        // Two hops: Error -> ExperimentError -> EvaluateError.
        let mid = e.source().expect("experiment source");
        assert!(mid.source().is_some(), "nested source chain preserved");

        let e: Error = DatasetError::Empty.into();
        assert!(matches!(e, Error::Dataset(_)));

        let e: Error = AttackError::NoFeatures.into();
        assert!(matches!(e, Error::Attack(_)));
    }

    #[test]
    fn io_errors_carry_their_path() {
        let e = Error::io("out.json", std::io::Error::other("disk full"));
        let text = e.to_string();
        assert!(text.contains("out.json"), "{text}");
        assert!(text.contains("disk full"), "{text}");
    }

    #[test]
    fn msg_errors_display_verbatim() {
        let e = Error::msg("unknown flag --bogus");
        assert_eq!(e.to_string(), "unknown flag --bogus");
        assert!(e.source().is_none());
    }
}
